//! Integration tests for the robust aggregation machinery across crates:
//! the Section 8 worked example end-to-end, custom rank orders, and the
//! comparison between natural and robust aggregation.

use treechase::engine::aggregation::natural_aggregation;
use treechase::engine::robust::{robust_renaming, RobustSequence};
use treechase::kbs::Staircase;
use treechase::prelude::*;

/// The Section 8 worked example: along the staircase core chase the
/// robust renaming keeps per-height names stable, so the robust
/// aggregation converges to the infinite column while the natural
/// aggregation reconstructs the grid-laden I^h.
#[test]
fn staircase_natural_vs_robust_aggregation() {
    let mut s = Staircase::new();
    let steps = 4;
    let d = s.scripted_core_chase(steps);

    let natural = natural_aggregation(&d);
    let lab = s.grid_labeling(1);
    assert!(
        contains_grid(&natural, &lab),
        "natural aggregation contains grids"
    );

    let rs = RobustSequence::build(&d);
    let robust = rs.aggregation_prefix(2 * (steps as usize - 1) + 3);
    assert_eq!(treewidth(&robust), 1, "robust aggregation is a column");
    assert!(
        treewidth_bounds(&natural).upper >= 2,
        "natural aggregation exceeds the chase bound"
    );
    // Both are universal *for CQ answering* (Prop 1.3 / Prop 9): any CQ
    // mapping into the robust prefix maps into the natural aggregation.
    assert!(maps_to(&robust, &natural));
}

/// The per-height stable names of the worked example: after the first
/// fold the bottom variable keeps the original `X0_0` name.
#[test]
fn first_fold_preserves_oldest_names() {
    let mut s = Staircase::new();
    let d = s.scripted_core_chase(1);
    let rs = RobustSequence::build(&d);
    let g_last = rs.sets.last().unwrap();
    // G_last ≅ C_1 and its bottom variable must be the original X0_0 (the
    // rank-smallest name ever used at height 0).
    let x00 = s.x(0, 0);
    assert!(
        g_last.mentions(x00),
        "stable name X0_0 must survive the fold; G = {g_last:?}"
    );
}

/// A custom (reversed) rank changes which names survive folds.
#[test]
fn custom_rank_reverses_survivors() {
    let mut s = Staircase::new();
    let d = s.scripted_core_chase(1);
    let newest_first = |v: VarId| u64::MAX - u64::from(v.raw());
    let rs = RobustSequence::build_with_rank(&d, &newest_first);
    assert_eq!(rs.verify_invariants(&d), Ok(()));
    let g_last = rs.sets.last().unwrap();
    let x00 = s.x(0, 0);
    // Under newest-first rank the old name is *not* kept.
    assert!(!g_last.mentions(x00));
}

/// Robust renaming on a hand-made retraction agrees with Definition 14.
#[test]
fn renaming_matches_definition_14() {
    let mut vocab = Vocabulary::new();
    let r = vocab.pred("r", 2);
    let v0 = Term::Var(vocab.fresh_var());
    let v1 = Term::Var(vocab.fresh_var());
    let v2 = Term::Var(vocab.fresh_var());
    let a: AtomSet = [
        Atom::new(r, vec![v0, v2]),
        Atom::new(r, vec![v1, v2]),
        Atom::new(r, vec![v2, v2]),
    ]
    .into_iter()
    .collect();
    // σ folds v0 and v1 onto v2.
    let sigma = Substitution::from_pairs([(v0.as_var().unwrap(), v2), (v1.as_var().unwrap(), v2)]);
    assert!(sigma.is_retraction_of(&a));
    let rho = robust_renaming(&a, &sigma, &treechase::engine::robust::default_rank);
    // σ⁻¹(v2) = {v0, v1, v2}; rank-min is v0.
    assert_eq!(rho.apply_term(v2), v0);
}

/// Robust aggregation of a *monotonic* derivation equals its natural
/// aggregation horizon (no folds ⇒ nothing transient).
#[test]
fn monotonic_robust_equals_natural() {
    let mut s = Staircase::new();
    let d = s.scripted_restricted_chase(3);
    let rs = RobustSequence::build(&d);
    for i in 0..rs.len() {
        assert_eq!(&rs.sets[i], d.instance(i));
    }
    assert_eq!(rs.aggregation_prefix(0), natural_aggregation(&d));
}
