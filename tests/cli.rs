//! End-to-end tests of the `treechase` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_treechase"))
}

fn write_kb(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("treechase-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, src).unwrap();
    path
}

#[test]
fn run_reports_certified_queries() {
    let kb = write_kb(
        "closure.tc",
        "r(a, b). r(b, c).\nT: r(X, Y), r(Y, Z) -> r(X, Z).\nQyes: ?- r(a, c).\nQno: ?- r(c, a).\n",
    );
    let out = bin()
        .args(["run", kb.to_str().unwrap(), "--variant", "core"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Terminated"), "{stdout}");
    assert!(
        stdout.contains("query Qyes: entailed (certified)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("query Qno: not entailed (certified)"),
        "{stdout}"
    );
}

#[test]
fn run_with_budget_is_inconclusive_on_divergent_kb() {
    let kb = write_kb(
        "chain.tc",
        "r(a, b).\nR: r(X, Y) -> r(Y, Z).\nQ: ?- r(X, X).\n",
    );
    let out = bin()
        .args([
            "run",
            kb.to_str().unwrap(),
            "--variant",
            "restricted",
            "--max-apps",
            "5",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ApplicationBudgetExhausted"), "{stdout}");
    assert!(stdout.contains("inconclusive"), "{stdout}");
}

#[test]
fn analyze_prints_certificates() {
    let kb = write_kb(
        "wa.tc",
        "r(a, b).\nR: r(X, Y) -> s(Y, Z).\nS: s(X, Y) -> t(X).\n",
    );
    let out = bin()
        .args(["analyze", kb.to_str().unwrap(), "--budget", "40"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("weakly acyclic:   true"), "{stdout}");
    assert!(stdout.contains("terminates everywhere"), "{stdout}");
    assert!(stdout.contains("core chase terminated: true"), "{stdout}");
}

#[test]
fn decide_races_twin_procedure() {
    let kb = write_kb("family.tc", "p(a).\nP: p(X) -> e(X, Y), p(Y).\n");
    let out = bin()
        .args([
            "decide",
            kb.to_str().unwrap(),
            "e(A, B), e(B, C)",
            "--max-apps",
            "50",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Entailed"), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = bin().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn parse_errors_are_reported_with_location() {
    let kb = write_kb("broken.tc", "r(a, b\n");
    let out = bin()
        .args(["run", kb.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "{err}");
}

#[test]
fn dot_export_writes_file() {
    let kb = write_kb("dot.tc", "r(a, b).\n");
    let dot_path = std::env::temp_dir().join("treechase-cli-tests/out.dot");
    let out = bin()
        .args([
            "run",
            kb.to_str().unwrap(),
            "--dot",
            dot_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let dot = std::fs::read_to_string(&dot_path).unwrap();
    assert!(dot.starts_with("digraph"));
}

/// Runs `analyze <operand> --json` and parses the emitted report.
fn analyze_json(operand: &str) -> treechase::service::Json {
    let out = bin()
        .args(["analyze", operand, "--json"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    treechase::service::parse_json(stdout.trim()).expect("valid JSON")
}

fn str_at<'j>(j: &'j treechase::service::Json, path: &[&str]) -> Option<&'j str> {
    let mut cur = j;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_str()
}

/// Snapshot of the stable fields for the built-in steepening staircase:
/// termination likely-refuted (the MFA cyclic-term witness is evidence,
/// not proof), core-bts certified by the core-width probe, and a
/// core-bounded plan.
#[test]
fn analyze_json_staircase_snapshot() {
    let j = analyze_json("staircase");
    assert_eq!(
        j.get("report")
            .and_then(|r| r.get("weakly_acyclic"))
            .and_then(|b| b.as_bool()),
        Some(false)
    );
    assert_eq!(
        str_at(&j, &["report", "terminating", "status"]),
        Some("likely-refuted")
    );
    assert_eq!(
        str_at(&j, &["evidence", "restricted_width_status"]),
        Some("climbing")
    );
    assert_eq!(
        str_at(&j, &["evidence", "core_width_status"]),
        Some("plateau")
    );
    assert_eq!(
        str_at(&j, &["report", "core_bts", "status"]),
        Some("certified")
    );
    assert_eq!(str_at(&j, &["plan", "variant"]), Some("core"));
    let shapes: Vec<&str> = j
        .get("plan")
        .and_then(|p| p.get("strata"))
        .and_then(|s| s.as_arr())
        .expect("strata")
        .iter()
        .filter_map(|s| s.get("shape").and_then(|v| v.as_str()))
        .collect();
    assert!(shapes.contains(&"core-bounded-loop"), "{shapes:?}");
    assert_eq!(j.get("admissible").and_then(|b| b.as_bool()), Some(true));
}

/// Snapshot for the built-in inflating elevator: the restricted profile
/// plateaus, so the plan stays on the restricted chase — distinct from
/// the staircase snapshot above.
#[test]
fn analyze_json_elevator_snapshot() {
    let j = analyze_json("elevator");
    assert_eq!(str_at(&j, &["plan", "variant"]), Some("restricted"));
    let shapes: Vec<&str> = j
        .get("plan")
        .and_then(|p| p.get("strata"))
        .and_then(|s| s.as_arr())
        .expect("strata")
        .iter()
        .filter_map(|s| s.get("shape").and_then(|v| v.as_str()))
        .collect();
    assert!(shapes.contains(&"bounded-width-loop"), "{shapes:?}");
    assert!(!shapes.contains(&"core-bounded-loop"), "{shapes:?}");
    assert_eq!(
        str_at(&j, &["evidence", "restricted_width_status"]),
        Some("plateau")
    );
    let w = j
        .get("evidence")
        .and_then(|e| e.get("restricted_width"))
        .and_then(|v| v.as_i64())
        .expect("plateaued width");
    assert!(w <= 3, "elevator restricted width should be small, got {w}");
    assert_eq!(j.get("admissible").and_then(|b| b.as_bool()), Some(true));
}

/// A weakly acyclic file KB: certified-terminating end to end, with a
/// fully non-core plan.
#[test]
fn analyze_json_weakly_acyclic_file() {
    let kb = write_kb(
        "wa_json.tc",
        "r(a, b).\nR: r(X, Y) -> s(Y, Z).\nS: s(X, Y) -> t(X).\n",
    );
    let j = analyze_json(kb.to_str().unwrap());
    assert_eq!(
        j.get("report")
            .and_then(|r| r.get("weakly_acyclic"))
            .and_then(|b| b.as_bool()),
        Some(true)
    );
    assert_eq!(
        str_at(&j, &["report", "terminating", "status"]),
        Some("certified")
    );
    assert_eq!(str_at(&j, &["plan", "variant"]), Some("restricted"));
    assert_eq!(j.get("admissible").and_then(|b| b.as_bool()), Some(true));
}
