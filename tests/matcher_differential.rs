//! Matcher regression suite for the positional-index candidate pruner:
//!
//! * a differential property test — the indexed matcher and the
//!   pre-index naive scan enumerate exactly the same homomorphism sets
//!   over hundreds of random pattern/target pairs, across retraction
//!   mode, injective mode and budget truncation;
//! * chase determinism — the same KB chased twice produces
//!   byte-identical derivation logs (the matcher's candidate order and
//!   atom selection are fully deterministic);
//! * auto-compaction transparency — a retraction-heavy core chase that
//!   compacts its arena mid-run lands on the same result as a run with
//!   compaction disabled.

use std::ops::ControlFlow;

use treechase::atoms::{Atom, AtomSet, ConstId, PredId, Substitution, Term, VarId};
use treechase::engine::prng::SplitMix64;
use treechase::engine::{ChaseConfig, ChaseVariant, MatchStrategy};
use treechase::homomorphism::{for_each_homomorphism, isomorphism, MatchConfig};
use treechase::prelude::*;

fn random_term(rng: &mut SplitMix64, vars: u32, consts: u32) -> Term {
    if consts == 0 || rng.gen_bool() {
        Term::Var(VarId::from_raw(rng.gen_range(vars as usize) as u32))
    } else {
        Term::Const(ConstId::from_raw(rng.gen_range(consts as usize) as u32))
    }
}

fn random_atom(rng: &mut SplitMix64, preds: u32, vars: u32, consts: u32) -> Atom {
    let arity = 1 + rng.gen_range(2);
    Atom::new(
        PredId::from_raw(rng.gen_range(preds as usize) as u32),
        (0..arity)
            .map(|_| random_term(rng, vars, consts))
            .collect::<Vec<_>>(),
    )
}

fn random_atomset(rng: &mut SplitMix64, max_atoms: usize, vars: u32, consts: u32) -> AtomSet {
    let n = 1 + rng.gen_range(max_atoms.max(2) - 1);
    (0..n).map(|_| random_atom(rng, 3, vars, consts)).collect()
}

/// Every homomorphism found under `cfg`, as a canonically sorted list of
/// binding vectors, plus whether the enumeration was truncated.
fn enumerate(
    pattern: &AtomSet,
    target: &AtomSet,
    cfg: &MatchConfig,
) -> (Vec<Vec<(VarId, Term)>>, bool) {
    let mut found = Vec::new();
    let outcome = for_each_homomorphism(pattern, target, &Substitution::new(), cfg, |sub| {
        found.push(sub.iter().collect::<Vec<_>>());
        ControlFlow::Continue(())
    });
    found.sort();
    (found, outcome.truncated)
}

/// The tentpole invariant: positional-index pruning never changes which
/// homomorphisms exist. Exercised over ~200 random pattern/target pairs
/// in plain mode and ~100 each in injective and retraction modes.
#[test]
fn indexed_matcher_equals_naive_scan_on_random_pairs() {
    let mut rng = SplitMix64::new(0x9E37);
    for case in 0..200 {
        let pattern = random_atomset(&mut rng, 4, 4, 3);
        let target = random_atomset(&mut rng, 10, 3, 3);
        let naive = MatchConfig {
            naive_scan: true,
            ..MatchConfig::default()
        };
        let (hi, ti) = enumerate(&pattern, &target, &MatchConfig::default());
        let (hn, tn) = enumerate(&pattern, &target, &naive);
        assert!(!ti && !tn, "unbudgeted searches never truncate");
        assert_eq!(
            hi, hn,
            "case {case}: hom sets differ\n{pattern:?}\n{target:?}"
        );
    }
}

#[test]
fn indexed_matcher_equals_naive_scan_injective_mode() {
    let mut rng = SplitMix64::new(0xA5A5);
    for case in 0..100 {
        // Variable-only targets so injective variable→variable maps exist.
        let pattern = random_atomset(&mut rng, 4, 4, 0);
        let target = random_atomset(&mut rng, 8, 4, 0);
        let base = MatchConfig {
            injective_vars: true,
            ..MatchConfig::default()
        };
        let naive = MatchConfig {
            naive_scan: true,
            ..base.clone()
        };
        let (hi, _) = enumerate(&pattern, &target, &base);
        let (hn, _) = enumerate(&pattern, &target, &naive);
        assert_eq!(hi, hn, "injective case {case} differs");
    }
}

#[test]
fn indexed_matcher_equals_naive_scan_retraction_mode() {
    let mut rng = SplitMix64::new(0x5EED);
    for case in 0..100 {
        // Retraction mode maps an atomset into itself under fixpoint
        // constraints — the core-computation workload.
        let a = random_atomset(&mut rng, 8, 4, 2);
        let base = MatchConfig {
            retraction: true,
            ..MatchConfig::default()
        };
        let naive = MatchConfig {
            naive_scan: true,
            ..base.clone()
        };
        let (hi, _) = enumerate(&a, &a, &base);
        let (hn, _) = enumerate(&a, &a, &naive);
        assert_eq!(hi, hn, "retraction case {case} differs");
    }
}

/// Budgeted runs may truncate at different points (the strategies visit
/// different node counts), but agreement is restored whenever *neither*
/// side truncated, and every reported homomorphism must be genuine.
#[test]
fn budget_truncation_stays_sound() {
    let mut rng = SplitMix64::new(0xB0D9);
    for _ in 0..100 {
        let pattern = random_atomset(&mut rng, 4, 4, 2);
        let target = random_atomset(&mut rng, 10, 3, 3);
        let limit = 1 + rng.gen_range(12);
        let base = MatchConfig {
            node_limit: Some(limit),
            ..MatchConfig::default()
        };
        let naive = MatchConfig {
            naive_scan: true,
            ..base.clone()
        };
        let (hi, ti) = enumerate(&pattern, &target, &base);
        let (hn, tn) = enumerate(&pattern, &target, &naive);
        for subs in [&hi, &hn] {
            for pairs in subs {
                let sub = Substitution::from_pairs(pairs.iter().copied());
                assert!(
                    sub.is_homomorphism(&pattern, &target),
                    "budgeted search reported a non-homomorphism"
                );
            }
        }
        if !ti && !tn {
            assert_eq!(hi, hn, "untruncated budgeted runs must agree");
        }
    }
}

/// One line per derivation step — triggers, safe substitutions,
/// simplifications and instances all rendered. Any nondeterminism in
/// match order, trigger scheduling or retraction choice shows up as a
/// byte difference.
fn derivation_log(res: &treechase::engine::ChaseResult) -> String {
    let mut log = String::new();
    for step in res
        .derivation
        .as_ref()
        .expect("RecordLevel::Full records the derivation")
        .steps()
    {
        log.push_str(&format!("{step:?}\n"));
    }
    log
}

#[test]
fn restricted_chase_log_is_byte_identical_across_runs() {
    let kb = KnowledgeBase::staircase();
    let cfg = ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(80);
    let a = kb.chase(&cfg);
    let b = kb.chase(&cfg);
    assert_eq!(derivation_log(&a), derivation_log(&b));
    assert_eq!(a.final_instance, b.final_instance);
}

#[test]
fn core_chase_log_is_byte_identical_with_single_probe_thread() {
    // Parallel core probing is made deterministic by pinning one probe
    // thread; everything else (matching, scheduling) must already be.
    let kb = KnowledgeBase::elevator();
    let cfg = ChaseConfig::variant(ChaseVariant::Core)
        .with_max_applications(40)
        .with_probe_threads(1);
    let a = kb.chase(&cfg);
    let b = kb.chase(&cfg);
    assert_eq!(derivation_log(&a), derivation_log(&b));
}

#[test]
fn naive_and_indexed_strategies_chase_identically() {
    for variant in [ChaseVariant::Restricted, ChaseVariant::Core] {
        let kb = KnowledgeBase::staircase();
        let cfg = |s| {
            ChaseConfig::variant(variant)
                .with_max_applications(60)
                .with_probe_threads(1)
                .with_match_strategy(s)
        };
        let a = kb.chase(&cfg(MatchStrategy::Indexed));
        let b = kb.chase(&cfg(MatchStrategy::NaiveScan));
        assert_eq!(
            a.final_instance, b.final_instance,
            "{variant:?}: match strategy changed the chase result"
        );
    }
}

/// A retraction-heavy core chase drives the arena past the compaction
/// threshold mid-run; with compaction disabled the same chase must land
/// on an isomorphic instance (compaction renumbers `AtomId`s, so only
/// set-level results are comparable).
#[test]
fn mid_chase_compaction_is_transparent() {
    let kb = KnowledgeBase::staircase();
    let cfg = ChaseConfig::variant(ChaseVariant::Core)
        .with_max_applications(120)
        .with_probe_threads(1);

    let compacted = kb.chase(&cfg);

    let mut frozen_kb = KnowledgeBase::staircase();
    frozen_kb.facts.set_auto_compact(false);
    let frozen = frozen_kb.chase(&cfg);

    assert!(
        compacted.final_instance.compactions() > 0,
        "workload too small: auto-compaction never fired (arena {} slots, {} live)",
        compacted.final_instance.arena_len(),
        compacted.final_instance.len(),
    );
    assert_eq!(
        frozen.final_instance.compactions(),
        0,
        "set_auto_compact(false) must survive the whole chase"
    );
    assert!(
        isomorphism(&compacted.final_instance, &frozen.final_instance).is_some(),
        "compaction changed the chase result"
    );
}
