//! Overload-protection integration tests: admission control under
//! burst load, hard-memory-ceiling suspension with resume equivalence,
//! priority scheduling, and graceful SIGTERM drain of the `serve`
//! subcommand.

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use treechase::core::KnowledgeBase;
use treechase::engine::{ChaseConfig, ChaseOutcome, ChaseVariant, SuspendReason};
use treechase::homomorphism::isomorphism;
use treechase::service::{
    parse_json, JobSpec, JobStatus, Priority, RejectReason, Service, ServiceConfig, WaitResult,
};

fn elevator_spec(name: &str, cfg: ChaseConfig) -> JobSpec {
    JobSpec::from_kb(name, KnowledgeBase::elevator(), cfg)
}

fn staircase_spec(name: &str, cfg: ChaseConfig) -> JobSpec {
    JobSpec::from_kb(name, KnowledgeBase::staircase(), cfg)
}

/// Spins until the job leaves the queue (i.e. a worker picked it up).
fn wait_until_running(svc: &Service, id: u64) {
    let start = Instant::now();
    while svc.status(id) == Some(JobStatus::Queued) {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "job {id} never started"
        );
        std::thread::yield_now();
    }
}

/// The acceptance burst: 4× queue capacity of elevator jobs. Exactly
/// `capacity` are admitted, the rest are shed with structured
/// rejections carrying a retry hint — no panic, no silent drop.
#[test]
fn elevator_burst_over_queue_capacity_sheds_structurally() {
    let cap = 3usize;
    let svc = Service::with_config(
        1,
        ServiceConfig {
            max_queue: Some(cap),
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    // Occupy the single worker so the burst lands entirely in the queue.
    let busy = svc.submit(elevator_spec(
        "busy",
        ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(10_000_000),
    ));
    wait_until_running(&svc, busy);

    let mut admitted = Vec::new();
    let mut sheds = Vec::new();
    for i in 0..cap * 4 {
        let spec = elevator_spec(
            &format!("burst-{i}"),
            ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(50),
        );
        match svc.try_submit(spec) {
            Ok(id) => admitted.push(id),
            Err(rej) => sheds.push(rej),
        }
    }
    assert_eq!(admitted.len(), cap, "queue admits exactly its capacity");
    assert_eq!(sheds.len(), cap * 3, "the overflow is shed");
    for rej in &sheds {
        assert_eq!(rej.reason, RejectReason::QueueFull);
        let retry = rej.retry_after.expect("shed replies carry a retry hint");
        assert!(retry >= Duration::from_millis(100));
        assert!(rej.message.contains(&format!("{cap}/{cap}")));
    }
    // The pool survives the burst: free the worker and the admitted
    // backlog completes.
    svc.cancel(busy);
    for id in admitted {
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
    }
}

/// The acceptance memory scenario: a job driven past its hard memory
/// ceiling suspends cleanly (no abort, no OOM) with a resumable
/// checkpoint, and the resumed run — ceiling lifted — reaches exactly
/// what an unconstrained run reaches.
#[test]
fn mem_hard_suspension_resumes_isomorphic_to_unconstrained_run() {
    // A terminating program (transitive closure of a 10-node chain) so
    // "unconstrained" has a canonical final instance to compare against.
    let chain = "r(c1, c2). r(c2, c3). r(c3, c4). r(c4, c5). r(c5, c6). \
                 r(c6, c7). r(c7, c8). r(c8, c9). r(c9, c10). \
                 T: r(X, Y), r(Y, Z) -> r(X, Z). Q: ?- r(c1, c10).";
    let spec = |name: &str, cfg: ChaseConfig| JobSpec::from_text(name, chain, cfg).unwrap();
    let svc = Service::start(1);

    let free = svc
        .take_result(svc.submit(spec(
            "free",
            ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(1_000),
        )))
        .expect("unconstrained result");
    assert_eq!(free.outcome, ChaseOutcome::Terminated);

    let constrained = svc
        .take_result(
            svc.submit(spec(
                "ceiling",
                ChaseConfig::variant(ChaseVariant::Restricted)
                    .with_max_applications(1_000)
                    .with_mem_hard(20),
            )),
        )
        .expect("constrained result");
    assert_eq!(
        constrained.outcome,
        ChaseOutcome::Suspended(SuspendReason::MemoryCeiling)
    );
    let k = constrained.stats.applications;
    assert!(
        k >= 1 && k < free.stats.applications,
        "suspended strictly mid-derivation (at {k})"
    );
    assert!(constrained.stats.peak_mem_units > 20);
    let ck = constrained
        .checkpoint
        .expect("memory suspension is resumable");
    assert!(ck.exact(), "restricted checkpoints are resume-exact");

    // Resume with the ceiling lifted (the operator's move after adding
    // capacity) and budget to spare.
    let mut resumed_spec = ck.into_spec().expect("checkpoint reparses");
    resumed_spec.config.mem_hard = None;
    resumed_spec.config.mem_soft = None;
    resumed_spec.config.max_applications = 1_000;
    let resumed = svc
        .take_result(svc.submit(resumed_spec))
        .expect("resumed result");
    assert_eq!(resumed.outcome, ChaseOutcome::Terminated);
    assert_eq!(
        resumed.stats.applications, free.stats.applications,
        "counters accumulate across the suspension"
    );
    assert!(
        isomorphism(&resumed.final_instance, &free.final_instance).is_some(),
        "suspend/resume is equivalent to never having been constrained \
         ({} vs {} atoms)",
        resumed.final_instance.len(),
        free.final_instance.len()
    );
}

/// Soft-ceiling degradation is observable end to end: the degraded
/// event fires exactly once and the job still completes its budget.
#[test]
fn mem_soft_degrades_once_and_job_completes() {
    let svc = Service::start(1);
    let rx = svc.events();
    let id = svc.submit(staircase_spec(
        "softy",
        ChaseConfig::variant(ChaseVariant::Restricted)
            .with_max_applications(25)
            .with_mem_soft(8),
    ));
    assert_eq!(svc.wait(id), Some(JobStatus::Finished));
    let res = svc.take_result(id).expect("result");
    assert_eq!(res.outcome, ChaseOutcome::ApplicationBudgetExhausted);
    let degraded: Vec<(usize, usize)> = std::iter::from_fn(|| rx.try_recv())
        .filter_map(|ev| match ev.kind {
            treechase::service::JobEventKind::Degraded {
                mem_units,
                soft_limit,
            } => Some((mem_units, soft_limit)),
            _ => None,
        })
        .collect();
    assert_eq!(degraded.len(), 1, "degrade fires exactly once");
    assert!(degraded[0].0 > 8);
    assert_eq!(degraded[0].1, 8);
}

/// A high-priority probe submitted behind a wall of queued heavyweights
/// finishes while they still wait — and a timed-out wait on one of the
/// heavyweights reports without blocking the client forever.
#[test]
fn probe_overtakes_heavyweights_and_waits_respect_deadlines() {
    let svc = Service::with_config(
        1,
        ServiceConfig {
            op_deadline: Some(Duration::from_millis(200)),
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    let busy = svc.submit(elevator_spec(
        "busy",
        ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(10_000_000),
    ));
    wait_until_running(&svc, busy);
    let heavy = svc.submit(elevator_spec(
        "heavy",
        ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(10_000_000),
    ));
    let probe = svc.submit(
        elevator_spec(
            "probe",
            ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(50),
        )
        .with_priority(Priority::High),
    );
    // The op-deadline bounds this wait: the heavyweight is nowhere near
    // terminal, so the wait reports a timeout instead of hanging.
    match svc.wait_timeout(heavy, None) {
        WaitResult::TimedOut(status) => assert!(!status.is_terminal()),
        other => panic!("expected deadline-bounded wait, got {other:?}"),
    }
    svc.cancel(busy);
    assert_eq!(svc.wait(probe), Some(JobStatus::Finished));
    assert_ne!(
        svc.status(heavy),
        Some(JobStatus::Finished),
        "probe overtook the queued heavyweight"
    );
    svc.cancel(heavy);
}

/// The acceptance drain scenario, end to end over the binary: SIGTERM
/// mid-burst stops admission, checkpoints the running slice durably,
/// emits a `drained` line and exits 0.
#[cfg(unix)]
#[test]
fn sigterm_mid_burst_drains_checkpoints_and_exits_zero() {
    let dir = std::env::temp_dir().join(format!("treechase-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut child = Command::new(env!("CARGO_BIN_EXE_treechase"))
        .args([
            "serve",
            "--workers",
            "1",
            "--max-queue",
            "2",
            "--state-dir",
            dir.to_str().unwrap(),
            "--drain-grace",
            "10000",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdin = child.stdin.take().unwrap();
    // One long-running elevator job plus a burst over the queue bound:
    // some are admitted, the rest must be shed with structured replies.
    writeln!(
        stdin,
        r#"{{"op":"submit","name":"long","kb":"elevator","variant":"oblivious","max_apps":10000000}}"#
    )
    .unwrap();
    for i in 0..6 {
        writeln!(
            stdin,
            r#"{{"op":"submit","name":"burst-{i}","kb":"elevator","variant":"oblivious","max_apps":10000000}}"#
        )
        .unwrap();
    }
    stdin.flush().unwrap();
    // Let the worker pick the long job up and make some progress.
    std::thread::sleep(Duration::from_millis(700));
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    // stdin stays open: the exit must come from the drain path, not
    // from EOF on the request loop.
    let out = child.wait_with_output().expect("serve exits");
    drop(stdin);

    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "drain must exit 0\nstderr: {stderr}\nstdout: {stdout}"
    );
    assert!(
        !stderr.contains("panicked"),
        "no panics under overload: {stderr}"
    );
    // Every line is valid JSON (structured shedding, no torn output).
    let mut sheds = 0usize;
    let mut drained = None;
    for line in stdout.lines() {
        let v = parse_json(line).unwrap_or_else(|e| panic!("bad wire line {line}: {e}"));
        match v.get("type").and_then(|t| t.as_str()) {
            Some("rejected") => {
                assert_eq!(
                    v.get("reason").and_then(|r| r.as_str()),
                    Some("queue-full"),
                    "{line}"
                );
                sheds += 1;
            }
            Some("drained") => drained = Some(v.clone()),
            _ => {}
        }
    }
    assert!(sheds >= 1, "the burst overflow was shed\n{stdout}");
    let drained = drained.expect("SIGTERM emits a drained line");
    assert!(
        drained.get("checkpointed").and_then(|n| n.as_i64()) >= Some(1),
        "the running slice was checkpointed: {stdout}"
    );
    // The checkpoint of the running slice is durable: a fresh service
    // over the same state dir recovers it.
    let ckpts: Vec<_> = std::fs::read_dir(&dir)
        .expect("state dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".ckpt.json"))
        .collect();
    assert!(
        !ckpts.is_empty(),
        "drain persisted at least one checkpoint in {}",
        dir.display()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
