//! Cross-crate integration tests tracking the paper's propositions at
//! small scale. The experiment binaries (`crates/bench/src/bin/e*.rs`)
//! run the same checks at larger horizons; these keep them under
//! `cargo test`.

use treechase::engine::aggregation::natural_aggregation;
use treechase::engine::boundedness::treewidth_profile;
use treechase::engine::robust::RobustSequence;
use treechase::engine::{is_model_of_rules, run_chase};
use treechase::kbs::{queries, Elevator, Staircase};
use treechase::prelude::*;

/// Proposition 1: every chase element maps into every model
/// (universality), here tested against the analytic models.
#[test]
fn prop1_chase_elements_are_universal() {
    let mut s = Staircase::new();
    let d = s.scripted_core_chase(3);
    let model_prefix = s.universal_prefix(8);
    assert!(d.all_instances_map_into(&model_prefix));
    let column = s.infinite_column_prefix(10);
    assert!(d.all_instances_map_into(&column));
}

/// Proposition 3/4: restricted chase builds I^h; core chase stays at
/// treewidth ≤ 2 and ends on a core column.
#[test]
fn prop3_and_4_staircase_chases() {
    let mut s = Staircase::new();
    let dr = s.scripted_restricted_chase(3);
    assert_eq!(dr.validate(), Ok(()));
    assert_eq!(natural_aggregation(&dr), s.universal_prefix(3));

    let dc = s.scripted_core_chase(3);
    assert_eq!(dc.validate(), Ok(()));
    assert!(treewidth_profile(&dc).iter().all(|b| b.upper <= 2));
    assert!(is_core(dc.last_instance()));
}

/// Proposition 5 mechanism: the aggregation contains grids, and grids
/// force treewidth (Fact 2 + exact solver cross-check at n = 2).
#[test]
fn prop5_grids_force_treewidth() {
    let mut s = Staircase::new();
    let agg = natural_aggregation(&s.scripted_restricted_chase(5));
    let lab = s.grid_labeling(2);
    assert!(contains_grid(&agg, &lab));
    // The 2×2 grid sub-instance has treewidth ≥ 2:
    assert!(treewidth_bounds(&agg).upper >= 2);
}

/// Proposition 7: the spine is a treewidth-1 universal model inside I^v.
#[test]
fn prop7_spine() {
    let mut e = Elevator::new();
    let spine = e.spine_prefix(5);
    assert_eq!(treewidth(&spine), 1);
    assert!(spine.is_subset_of(&e.universal_prefix(5)));
    assert!(maps_to(&e.facts, &spine));
}

/// Proposition 8.1/8.2: cabins are cores containing grids.
#[test]
fn prop8_cabins() {
    let mut e = Elevator::new();
    for n in [2u32, 3] {
        let cabin = e.cabin(n);
        assert!(is_core(&cabin), "cabin {n}");
        assert!(contains_grid(&cabin, &e.cabin_grid_labeling(n)));
    }
}

/// Propositions 10–12 on the staircase core chase: invariants, settling,
/// model-ness and treewidth preservation of the robust aggregation.
#[test]
fn prop10_to_12_robust_aggregation() {
    let mut s = Staircase::new();
    let d = s.scripted_core_chase(4);
    let rs = RobustSequence::build(&d);
    assert_eq!(rs.verify_invariants(&d), Ok(()));

    // Settling: at most one renaming per variable in this construction.
    for start in 0..rs.len() - 1 {
        for var in rs.sets[start].vars() {
            let tr = rs.trace_var(start, var);
            let changes = tr.images.windows(2).filter(|w| w[0] != w[1]).count();
            assert!(changes <= 1, "variable renamed {changes} times");
        }
    }

    let dsq = rs.aggregation_prefix(2 * 3 + 3);
    assert!(maps_to(d.initial(), &dsq), "D^⊛ is a model of F");
    assert_eq!(treewidth(&dsq), 1, "tw(D^⊛) ≤ recurring bound");
    // Finitely universal proxy: D^⊛ maps into the universal chase element.
    assert!(maps_to(&dsq, d.last_instance()));
}

/// Proposition 9: the finitely universal models answer exactly the
/// entailed CQs.
#[test]
fn prop9_finitely_universal_models_answer_cqs() {
    let mut s = Staircase::new();
    let ih = s.universal_prefix(8);
    let itilde = s.infinite_column_prefix(10);
    let mut vocab = s.vocab.clone();
    for gt in queries::staircase_queries(&mut vocab) {
        assert_eq!(maps_to(&gt.query, &ih), gt.entailed, "{} in I^h", gt.name);
        assert_eq!(
            maps_to(&gt.query, &itilde),
            gt.entailed,
            "{} in Ĩ^h",
            gt.name
        );
    }
}

/// Proposition 13 witnesses behave as claimed (finite-horizon evidence).
#[test]
fn prop13_witness_separation() {
    // bts ∖ fes: diverges at treewidth ≤ 1.
    let w = treechase::kbs::witnesses::bts_not_fes();
    let mut vocab = w.vocab.clone();
    let cfg = ChaseConfig::variant(ChaseVariant::Core).with_max_applications(15);
    let res = run_chase(&mut vocab, &w.facts, &w.rules, &cfg);
    assert!(!res.outcome.terminated());
    assert!(treewidth_profile(res.derivation.as_ref().unwrap())
        .iter()
        .all(|b| b.upper <= 1));

    // fes ∖ bts: the core chase terminates.
    let w = treechase::kbs::witnesses::fes_not_bts();
    let mut vocab = w.vocab.clone();
    let cfg = ChaseConfig::variant(ChaseVariant::Core).with_max_applications(400);
    let res = run_chase(&mut vocab, &w.facts, &w.rules, &cfg);
    assert!(res.outcome.terminated());
    assert!(is_core(&res.final_instance));
    assert!(is_model_of_rules(&w.rules, &res.final_instance));
}

/// Theorem 2 in action: CQ entailment over the staircase (a core-bts KB)
/// decided by the twin procedure, agreeing with ground truth.
#[test]
fn thm2_decidability_on_core_bts_kb() {
    let kb = KnowledgeBase::staircase();
    let mut vocab = kb.vocab.clone();
    let cfg = DecideConfig {
        max_applications: 120,
        max_atoms: 20_000,
        core_max_applications: 30,
    };
    for gt in queries::staircase_queries(&mut vocab) {
        let out = decide(&kb, &gt.query, &cfg);
        let answer = match out {
            DecideOutcome::Entailed { .. } => true,
            DecideOutcome::NotEntailed { .. } => false,
            DecideOutcome::Exhausted { heuristic_entailed } => heuristic_entailed,
        };
        assert_eq!(answer, gt.entailed, "query {}", gt.name);
        if gt.entailed {
            assert!(
                matches!(out, DecideOutcome::Entailed { .. }),
                "positives must be certified ({})",
                gt.name
            );
        }
    }
}
