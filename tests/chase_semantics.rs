//! Cross-variant chase semantics: confluence on datalog, variant
//! ordering on null production, fairness, and budget behavior.

use treechase::prelude::*;

fn kb(src: &str) -> KnowledgeBase {
    KnowledgeBase::from_text(src).unwrap()
}

#[test]
fn oblivious_produces_at_least_semi_oblivious_at_least_restricted() {
    // r(X,Y) → ∃Z. s(Y,Z) on a fan-in instance: oblivious makes one null
    // per trigger, semi-oblivious one per frontier class, restricted one
    // per unsatisfied class.
    let k = kb("r(a, c). r(b, c). r(d, e). R: r(X, Y) -> s(Y, Z).");
    let count = |variant| {
        let res = k.chase(&ChaseConfig::variant(variant));
        assert!(res.outcome.terminated());
        res.stats.applications
    };
    let obl = count(ChaseVariant::Oblivious);
    let semi = count(ChaseVariant::SemiOblivious);
    let rest = count(ChaseVariant::Restricted);
    assert_eq!(obl, 3, "one application per trigger");
    assert_eq!(semi, 2, "one application per frontier class");
    assert_eq!(rest, 2, "no satisfaction shortcuts here");
    assert!(obl >= semi && semi >= rest);
}

#[test]
fn restricted_skips_satisfied_triggers_where_semi_oblivious_fires() {
    // Head already satisfied for one trigger.
    let k = kb("r(a, b). s(b, w). R: r(X, Y) -> s(Y, Z).");
    let semi = k.chase(&ChaseConfig::variant(ChaseVariant::SemiOblivious));
    let rest = k.chase(&ChaseConfig::variant(ChaseVariant::Restricted));
    assert_eq!(semi.stats.applications, 1);
    assert_eq!(rest.stats.applications, 0);
}

#[test]
fn all_variants_entail_same_cqs_on_terminating_kb() {
    let mut k = kb("r(a, b). r(b, a). R: r(X, Y) -> s(Y, Z). T: s(X, Y) -> t(X).");
    let queries = ["t(a)", "t(b)", "s(a, W)", "t(W), s(W, V)"];
    for q in queries {
        let query = k.parse_query(q).unwrap();
        let mut answers = Vec::new();
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
            ChaseVariant::Core,
        ] {
            let res = k.chase(&ChaseConfig::variant(variant));
            assert!(res.outcome.terminated());
            answers.push(maps_to(&query, &res.final_instance));
        }
        assert!(
            answers.windows(2).all(|w| w[0] == w[1]),
            "variants disagree on {q}: {answers:?}"
        );
    }
}

#[test]
fn core_chase_final_is_always_core() {
    for src in [
        "r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).",
        "p(a). R: p(X) -> e(X, Y), e(Y, X).",
        "r(a, a). r(a, b). R: r(X, Y) -> r(Y, Z).",
    ] {
        let k = kb(src);
        let res = k.chase(&ChaseConfig::variant(ChaseVariant::Core).with_max_applications(100));
        if res.outcome.terminated() {
            assert!(is_core(&res.final_instance), "{src}");
        }
    }
}

#[test]
fn fairness_no_rule_starves() {
    // Two independent growing chains; fairness means both grow.
    let k = kb("p(a). q(b). P: p(X) -> e(X, Y), p(Y). Q: q(X) -> f(X, Y), q(Y).");
    let res = k.chase(&ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(20));
    let e_pred = k.vocab.lookup_pred("e").unwrap();
    let f_pred = k.vocab.lookup_pred("f").unwrap();
    let e_count = res.final_instance.pred_count(e_pred);
    let f_count = res.final_instance.pred_count(f_pred);
    assert!(e_count >= 5 && f_count >= 5, "e={e_count} f={f_count}");
}

#[test]
fn atom_budget_stops_the_chase() {
    let k = kb("p(a). P: p(X) -> e(X, Y), p(Y).");
    let res = k.chase(
        &ChaseConfig::variant(ChaseVariant::Restricted)
            .with_max_atoms(10)
            .with_max_applications(10_000),
    );
    assert_eq!(res.outcome, ChaseOutcome::AtomBudgetExhausted);
    assert!(res.final_instance.len() <= 12);
}

#[test]
fn datalog_first_scheduler_prioritizes_datalog() {
    // One datalog rule and one existential rule both applicable; under
    // DatalogFirst the first application must be the datalog one.
    let k = kb("r(a, b). D: r(X, Y) -> r2(Y, X). E: r(X, Y) -> s(Y, Z).");
    let res = {
        let mut vocab = k.vocab.clone();
        treechase::engine::run_chase(
            &mut vocab,
            &k.facts,
            &k.rules,
            &ChaseConfig::variant(ChaseVariant::Restricted)
                .with_scheduler(SchedulerKind::DatalogFirst),
        )
    };
    let d = res.derivation.unwrap();
    let first = d.steps()[1].trigger.as_ref().unwrap();
    assert_eq!(d.rules().get(first.rule).name(), "D");
}

#[test]
fn recorded_derivations_validate_for_restricted_and_core() {
    for variant in [ChaseVariant::Restricted, ChaseVariant::Core] {
        let k = kb("r(a, b). R: r(X, Y) -> r(Y, Z).");
        let res = k.chase(&ChaseConfig::variant(variant).with_max_applications(8));
        let d = res.derivation.unwrap();
        assert_eq!(d.validate(), Ok(()), "{variant:?}");
    }
}

/// Differential regression for the semi-naive/retraction interplay
/// (`crates/engine/src/chase.rs`, the non-monotonic re-scan): a KB
/// whose core fold retracts an atom that had both *fired* a rule and
/// *satisfied* another trigger. R2 fires on `r(a, n1)` and creates the
/// very witness `r(a, n2), g(n2)` that the core then folds `n1` into —
/// after the fold, the applied-trigger memory and satisfaction state
/// both reference a retracted atom. A delta-tracking shortcut that
/// survives retraction would either re-fire R2 into duplicate nulls or
/// miss the datalog tail (R3, R4) behind the fold; the full re-scan
/// must do neither. Restricted and core chase must agree up to core
/// isomorphism (universal models have a unique core), and the tail
/// facts must be derived exactly once.
#[test]
fn core_fold_invalidating_satisfied_trigger_matches_restricted_core() {
    use treechase::homomorphism::{core_of, is_core, isomorphism};

    let src = "p(a).\n\
               R1: p(X) -> r(X, Y).\n\
               R2: r(X, Y) -> r(X, Z), g(Z).\n\
               R3: g(Z) -> h(Z).\n\
               R4: h(Z), p(X) -> k(X).\n";
    let k = kb(src);

    let rest = k.chase(&ChaseConfig::variant(ChaseVariant::Restricted));
    assert!(rest.outcome.terminated(), "{:?}", rest.outcome);
    let core = k.chase(&ChaseConfig::variant(ChaseVariant::Core));
    assert!(core.outcome.terminated(), "{:?}", core.outcome);

    // The core run actually folded something — the scenario under test
    // happened — and ended on a genuine core.
    assert!(
        core.stats.retractions > 0,
        "no fold occurred: the scenario is vacuous"
    );
    assert!(is_core(&core.final_instance));

    // Differential: the restricted run's core is the core run's result,
    // up to isomorphism.
    let folded = core_of(&rest.final_instance).core;
    assert!(
        isomorphism(&folded, &core.final_instance).is_some(),
        "restricted core ({} atoms) != core chase result ({} atoms)",
        folded.len(),
        core.final_instance.len()
    );

    // The datalog tail behind the fold fired exactly once per variant:
    // one h-null and k(a), no duplicates from re-fired triggers.
    let mut k_query = kb(src);
    for (probe, want) in [("k(a)", true), ("g(V), h(V)", true)] {
        let q = k_query.parse_query(probe).unwrap();
        for res in [&rest, &core] {
            assert!(
                treechase::homomorphism::maps_to(&q, &res.final_instance) == want,
                "{probe} on {:?}",
                res.outcome
            );
        }
    }
}
