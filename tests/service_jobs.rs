//! Integration tests of the `treechase-service` job runner: budget
//! exhaustion → checkpoint → resume equivalence, cancellation latency,
//! concurrent batches, and the JSONL wire protocol end to end.

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use treechase::core::KnowledgeBase;
use treechase::engine::{ChaseConfig, ChaseOutcome, ChaseVariant};
use treechase::homomorphism::isomorphism;
use treechase::service::{parse_json, JobEventKind, JobSpec, JobStatus, QueryVerdict, Service};

fn staircase_spec(name: &str, cfg: ChaseConfig) -> JobSpec {
    JobSpec::from_kb(name, KnowledgeBase::staircase(), cfg)
}

/// The acceptance scenario: a core-chase job on the staircase KB runs
/// out of budget, is checkpointed, and the resumed job reaches a result
/// isomorphic to an uninterrupted run of the same total budget.
#[test]
fn staircase_core_chase_resumes_isomorphic_to_uninterrupted() {
    let total = 60usize;
    let cut = 30usize;
    let svc = Service::start(2);

    let full_id = svc.submit(staircase_spec(
        "full",
        ChaseConfig::variant(ChaseVariant::Core).with_max_applications(total),
    ));
    let cut_id = svc.submit(staircase_spec(
        "cut",
        ChaseConfig::variant(ChaseVariant::Core).with_max_applications(cut),
    ));
    let full = svc.take_result(full_id).expect("full run result");
    let cut_res = svc.take_result(cut_id).expect("cut run result");
    assert_eq!(full.outcome, ChaseOutcome::ApplicationBudgetExhausted);
    assert_eq!(cut_res.outcome, ChaseOutcome::ApplicationBudgetExhausted);

    let ck = cut_res.checkpoint.expect("budget exhaustion is resumable");
    assert!(ck.exact(), "core chase checkpoints are resume-exact");
    assert_eq!(ck.stats.applications, cut);

    let mut resumed_spec = ck.into_spec().expect("checkpoint reparses");
    resumed_spec.config.max_applications = total - cut;
    let resumed_id = svc.submit(resumed_spec);
    let resumed = svc.take_result(resumed_id).expect("resumed result");

    // Accumulated counters cover both slices.
    assert_eq!(resumed.stats.applications, total);
    assert!(
        isomorphism(&resumed.final_instance, &full.final_instance).is_some(),
        "resumed instance ({} atoms) must be isomorphic to the \
         uninterrupted one ({} atoms)",
        resumed.final_instance.len(),
        full.final_instance.len()
    );
}

/// A cancelled running job stops within 100 ms and the worker pool
/// stays healthy for subsequent jobs.
#[test]
fn cancellation_lands_within_100ms_without_poisoning_the_pool() {
    let svc = Service::start(1);
    // A divergent KB with a huge budget: would run for minutes.
    let id = svc.submit(staircase_spec(
        "longrun",
        ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(10_000_000),
    ));
    // Wait until the job is actually running.
    let spin_start = Instant::now();
    while svc.status(id) != Some(JobStatus::Running) {
        assert!(
            spin_start.elapsed() < Duration::from_secs(10),
            "job never started"
        );
        std::thread::yield_now();
    }
    // Let it chew for a moment so cancellation hits mid-run.
    std::thread::sleep(Duration::from_millis(50));

    let cancel_at = Instant::now();
    assert!(svc.cancel(id));
    let status = svc.wait(id).expect("job known");
    let latency = cancel_at.elapsed();
    assert_eq!(status, JobStatus::Cancelled);
    assert!(
        latency < Duration::from_millis(100),
        "cancellation took {latency:?}"
    );

    // The pool still runs new work afterwards.
    let next = svc.submit(
        JobSpec::from_text(
            "after-cancel",
            "r(a, b). T: r(X, Y) -> r(Y, X). Q: ?- r(b, a).",
            ChaseConfig::variant(ChaseVariant::Restricted),
        )
        .unwrap(),
    );
    let res = svc.take_result(next).expect("post-cancel job runs");
    assert!(res.outcome.terminated());
    assert_eq!(res.queries[0].1, QueryVerdict::EntailedCertified);
}

/// A cancelled run is still a valid prefix: it yields a checkpoint from
/// which the job can be resumed to completion.
#[test]
fn cancelled_job_checkpoint_resumes_to_completion() {
    let svc = Service::start(1);
    let id = svc.submit(JobSpec::from_kb(
        "cancel-resume",
        KnowledgeBase::staircase(),
        ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(2_000_000),
    ));
    while svc.status(id) != Some(JobStatus::Running) {
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(20));
    assert!(svc.cancel(id));
    let res = svc.take_result(id).expect("cancelled result");
    assert_eq!(res.outcome, ChaseOutcome::Cancelled);
    let ck = res.checkpoint.expect("cancellation is resumable");

    let mut spec = ck.into_spec().expect("checkpoint reparses");
    // Resume with a budget instead of cancelling again.
    spec.config.max_applications = res.stats.applications + 10;
    let resumed = svc.take_result(svc.submit(spec)).expect("resumed");
    assert_eq!(resumed.outcome, ChaseOutcome::ApplicationBudgetExhausted);
    assert!(resumed.stats.applications >= res.stats.applications);
}

/// Resuming an oblivious checkpoint drops the applied-trigger memory;
/// the runner must say so (a `warning` event) instead of silently
/// producing a run that may re-fire the prefix's triggers.
#[test]
fn inexact_oblivious_resume_emits_a_warning_event() {
    let svc = Service::start(1);
    let cut = svc
        .take_result(svc.submit(staircase_spec(
            "obliv-cut",
            ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(5),
        )))
        .expect("cut result");
    assert_eq!(cut.outcome, ChaseOutcome::ApplicationBudgetExhausted);
    let ck = cut.checkpoint.expect("budget exhaustion is resumable");
    assert!(!ck.exact(), "oblivious checkpoints are inexact");

    let events = svc.events();
    let mut spec = ck.into_spec().expect("checkpoint reparses");
    assert!(spec.resumed_inexact);
    spec.config.max_applications = 5;
    let id = svc.submit(spec);
    svc.wait(id);
    let mut warning = None;
    while let Ok(ev) = events.try_recv() {
        if let JobEventKind::Warning { message } = ev.kind {
            assert_eq!(ev.job, id);
            warning = Some(message);
        }
    }
    let message = warning.expect("inexact resume must emit a warning event");
    assert!(message.contains("inexact resume"), "{message}");
    assert!(message.contains("oblivious"), "{message}");

    // An exact (core) resume stays warning-free.
    let core_cut = svc
        .take_result(svc.submit(staircase_spec(
            "core-cut",
            ChaseConfig::variant(ChaseVariant::Core).with_max_applications(5),
        )))
        .expect("core cut result");
    let core_ck = core_cut.checkpoint.expect("resumable");
    assert!(core_ck.exact());
    let events = svc.events();
    let resumed_spec = core_ck.into_spec().expect("reparses");
    assert!(!resumed_spec.resumed_inexact);
    let id2 = svc.submit(resumed_spec);
    svc.wait(id2);
    while let Ok(ev) = events.try_recv() {
        assert!(
            !matches!(ev.kind, JobEventKind::Warning { .. }),
            "exact resume must not warn"
        );
    }
}

/// With four workers, four submitted jobs all start before any of them
/// finishes — i.e. they genuinely execute concurrently.
#[test]
fn four_jobs_run_concurrently_with_interleaved_starts() {
    let svc = Service::start(4);
    let events = svc.events();
    let cfg = ChaseConfig::variant(ChaseVariant::Oblivious)
        .with_max_applications(10_000_000)
        .with_max_wall(Duration::from_millis(700));
    let ids: Vec<_> = (0..4)
        .map(|i| svc.submit(staircase_spec(&format!("conc-{i}"), cfg.clone())))
        .collect();
    for id in &ids {
        assert_eq!(svc.wait(*id), Some(JobStatus::Finished));
    }
    let mut started_before_first_finish = std::collections::HashSet::new();
    let mut finished = false;
    while let Ok(ev) = events.try_recv() {
        match ev.kind {
            JobEventKind::Started if !finished => {
                started_before_first_finish.insert(ev.job);
            }
            JobEventKind::Finished { .. } => finished = true,
            _ => {}
        }
    }
    assert_eq!(
        started_before_first_finish.len(),
        4,
        "all four jobs must be running before the first one finishes"
    );
}

/// A concurrent batch over the repo's `testdata/` directory: every KB
/// file becomes a job, all reach a terminal state, none fails.
#[test]
fn concurrent_batch_over_testdata() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("testdata exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "tc"))
        .collect();
    files.sort();
    assert!(files.len() >= 4, "need at least 4 KBs for a real batch");

    let svc = Service::start(4);
    let cfg = ChaseConfig::variant(ChaseVariant::Core)
        .with_max_applications(60)
        .with_max_wall(Duration::from_millis(2_000));
    let ids: Vec<_> = files
        .iter()
        .map(|path| {
            let src = std::fs::read_to_string(path).unwrap();
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            svc.submit(JobSpec::from_text(name, &src, cfg.clone()).expect("testdata parses"))
        })
        .collect();
    for id in ids {
        let status = svc.wait(id).expect("job known");
        assert_eq!(status, JobStatus::Finished, "job {id} did not finish");
        let (outcome, atoms) = svc
            .with_result(id, |r| (r.outcome, r.final_instance.len()))
            .expect("result stored");
        assert!(atoms > 0);
        // Terminated or budget-stopped, never crashed.
        assert_ne!(outcome, ChaseOutcome::Cancelled);
    }
}

/// End-to-end JSONL protocol over the `treechase serve` subcommand:
/// submit with a budget, fetch the checkpoint, resume it, and watch the
/// query verdict flip from inconclusive to entailed.
#[test]
fn serve_protocol_checkpoint_resume_roundtrip() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_treechase"))
        .args(["serve", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdin = child.stdin.take().unwrap();
    writeln!(
        stdin,
        r#"{{"op":"submit","name":"wire","source":"r(a, b). r(b, c). r(c, d). r(d, e). T: r(X, Y), r(Y, Z) -> r(X, Z). Q: ?- r(a, e).","variant":"restricted","max_apps":2}}"#
    )
    .unwrap();
    writeln!(stdin, r#"{{"op":"wait","job":1}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"checkpoint","job":1}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"shutdown"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    // Every line is valid JSON; find the checkpoint response.
    let mut checkpoint = None;
    for line in stdout.lines() {
        let v = parse_json(line).unwrap_or_else(|e| panic!("bad wire line {line}: {e}"));
        if v.get("op").and_then(|o| o.as_str()) == Some("checkpoint") {
            checkpoint = v.get("checkpoint").cloned();
        }
    }
    let checkpoint = checkpoint.expect("checkpoint response present");
    assert!(stdout.contains(r#""verdict":"inconclusive""#), "{stdout}");

    // Second serve session: resume from the captured checkpoint.
    let mut child = Command::new(env!("CARGO_BIN_EXE_treechase"))
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdin = child.stdin.take().unwrap();
    writeln!(
        stdin,
        r#"{{"op":"resume","checkpoint":{checkpoint},"max_apps":1000}}"#
    )
    .unwrap();
    writeln!(stdin, r#"{{"op":"wait","job":1}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"shutdown"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(r#""outcome":"terminated""#), "{stdout}");
    assert!(stdout.contains(r#""verdict":"entailed""#), "{stdout}");
}

/// Malformed requests produce error lines, not a dead server.
#[test]
fn serve_survives_malformed_requests() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_treechase"))
        .args(["serve", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdin = child.stdin.take().unwrap();
    writeln!(stdin, "this is not json").unwrap();
    writeln!(stdin, r#"{{"op":"frobnicate"}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"status","job":99}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"list"}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"shutdown"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let errors = stdout
        .lines()
        .filter(|l| l.contains(r#""type":"error""#))
        .count();
    assert_eq!(errors, 3, "{stdout}");
    assert!(stdout.contains(r#""op":"list""#), "{stdout}");
}
