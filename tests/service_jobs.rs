//! Integration tests of the `treechase-service` job runner: budget
//! exhaustion → checkpoint → resume equivalence, cancellation latency,
//! concurrent batches, and the JSONL wire protocol end to end.

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use treechase::core::KnowledgeBase;
use treechase::engine::{ChaseConfig, ChaseOutcome, ChaseVariant, FaultPlan, FaultSite};
use treechase::homomorphism::isomorphism;
use treechase::parser::parse_program_trusted;
use treechase::service::{
    parse_json, Checkpoint, JobEventKind, JobSpec, JobStatus, Json, QueryVerdict, Service,
    ServiceConfig,
};

fn staircase_spec(name: &str, cfg: ChaseConfig) -> JobSpec {
    JobSpec::from_kb(name, KnowledgeBase::staircase(), cfg)
}

/// The acceptance scenario: a core-chase job on the staircase KB runs
/// out of budget, is checkpointed, and the resumed job reaches a result
/// isomorphic to an uninterrupted run of the same total budget.
#[test]
fn staircase_core_chase_resumes_isomorphic_to_uninterrupted() {
    let total = 60usize;
    let cut = 30usize;
    let svc = Service::start(2);

    let full_id = svc.submit(staircase_spec(
        "full",
        ChaseConfig::variant(ChaseVariant::Core).with_max_applications(total),
    ));
    let cut_id = svc.submit(staircase_spec(
        "cut",
        ChaseConfig::variant(ChaseVariant::Core).with_max_applications(cut),
    ));
    let full = svc.take_result(full_id).expect("full run result");
    let cut_res = svc.take_result(cut_id).expect("cut run result");
    assert_eq!(full.outcome, ChaseOutcome::ApplicationBudgetExhausted);
    assert_eq!(cut_res.outcome, ChaseOutcome::ApplicationBudgetExhausted);

    let ck = cut_res.checkpoint.expect("budget exhaustion is resumable");
    assert!(ck.exact(), "core chase checkpoints are resume-exact");
    assert_eq!(ck.stats.applications, cut);

    let mut resumed_spec = ck.into_spec().expect("checkpoint reparses");
    resumed_spec.config.max_applications = total - cut;
    let resumed_id = svc.submit(resumed_spec);
    let resumed = svc.take_result(resumed_id).expect("resumed result");

    // Accumulated counters cover both slices.
    assert_eq!(resumed.stats.applications, total);
    assert!(
        isomorphism(&resumed.final_instance, &full.final_instance).is_some(),
        "resumed instance ({} atoms) must be isomorphic to the \
         uninterrupted one ({} atoms)",
        resumed.final_instance.len(),
        full.final_instance.len()
    );
}

/// A cancelled running job stops within 100 ms and the worker pool
/// stays healthy for subsequent jobs.
#[test]
fn cancellation_lands_within_100ms_without_poisoning_the_pool() {
    let svc = Service::start(1);
    // A divergent KB with a huge budget: would run for minutes.
    let id = svc.submit(staircase_spec(
        "longrun",
        ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(10_000_000),
    ));
    // Wait until the job is actually running.
    let spin_start = Instant::now();
    while svc.status(id) != Some(JobStatus::Running) {
        assert!(
            spin_start.elapsed() < Duration::from_secs(10),
            "job never started"
        );
        std::thread::yield_now();
    }
    // Let it chew for a moment so cancellation hits mid-run.
    std::thread::sleep(Duration::from_millis(50));

    let cancel_at = Instant::now();
    assert!(svc.cancel(id));
    let status = svc.wait(id).expect("job known");
    let latency = cancel_at.elapsed();
    assert_eq!(status, JobStatus::Cancelled);
    assert!(
        latency < Duration::from_millis(100),
        "cancellation took {latency:?}"
    );

    // The pool still runs new work afterwards.
    let next = svc.submit(
        JobSpec::from_text(
            "after-cancel",
            "r(a, b). T: r(X, Y) -> r(Y, X). Q: ?- r(b, a).",
            ChaseConfig::variant(ChaseVariant::Restricted),
        )
        .unwrap(),
    );
    let res = svc.take_result(next).expect("post-cancel job runs");
    assert!(res.outcome.terminated());
    assert_eq!(res.queries[0].1, QueryVerdict::EntailedCertified);
}

/// A cancelled run is still a valid prefix: it yields a checkpoint from
/// which the job can be resumed to completion.
#[test]
fn cancelled_job_checkpoint_resumes_to_completion() {
    let svc = Service::start(1);
    let id = svc.submit(JobSpec::from_kb(
        "cancel-resume",
        KnowledgeBase::staircase(),
        ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(2_000_000),
    ));
    while svc.status(id) != Some(JobStatus::Running) {
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(20));
    assert!(svc.cancel(id));
    let res = svc.take_result(id).expect("cancelled result");
    assert_eq!(res.outcome, ChaseOutcome::Cancelled);
    let ck = res.checkpoint.expect("cancellation is resumable");

    let mut spec = ck.into_spec().expect("checkpoint reparses");
    // Resume with a budget instead of cancelling again.
    spec.config.max_applications = res.stats.applications + 10;
    let resumed = svc.take_result(svc.submit(spec)).expect("resumed");
    assert_eq!(resumed.outcome, ChaseOutcome::ApplicationBudgetExhausted);
    assert!(resumed.stats.applications >= res.stats.applications);
}

/// Resuming an oblivious checkpoint drops the applied-trigger memory;
/// the runner must say so (a `warning` event) instead of silently
/// producing a run that may re-fire the prefix's triggers.
#[test]
fn inexact_oblivious_resume_emits_a_warning_event() {
    let svc = Service::start(1);
    let cut = svc
        .take_result(svc.submit(staircase_spec(
            "obliv-cut",
            ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(5),
        )))
        .expect("cut result");
    assert_eq!(cut.outcome, ChaseOutcome::ApplicationBudgetExhausted);
    let ck = cut.checkpoint.expect("budget exhaustion is resumable");
    assert!(!ck.exact(), "oblivious checkpoints are inexact");

    let events = svc.events();
    let mut spec = ck.into_spec().expect("checkpoint reparses");
    assert!(spec.resumed_inexact);
    spec.config.max_applications = 5;
    let id = svc.submit(spec);
    svc.wait(id);
    let mut warning = None;
    while let Some(ev) = events.try_recv() {
        if let JobEventKind::Warning { message } = ev.kind {
            assert_eq!(ev.job, id);
            warning = Some(message);
        }
    }
    let message = warning.expect("inexact resume must emit a warning event");
    assert!(message.contains("inexact resume"), "{message}");
    assert!(message.contains("oblivious"), "{message}");

    // An exact (core) resume stays warning-free.
    let core_cut = svc
        .take_result(svc.submit(staircase_spec(
            "core-cut",
            ChaseConfig::variant(ChaseVariant::Core).with_max_applications(5),
        )))
        .expect("core cut result");
    let core_ck = core_cut.checkpoint.expect("resumable");
    assert!(core_ck.exact());
    let events = svc.events();
    let resumed_spec = core_ck.into_spec().expect("reparses");
    assert!(!resumed_spec.resumed_inexact);
    let id2 = svc.submit(resumed_spec);
    svc.wait(id2);
    while let Some(ev) = events.try_recv() {
        assert!(
            !matches!(ev.kind, JobEventKind::Warning { .. }),
            "exact resume must not warn"
        );
    }
}

/// With four workers, four submitted jobs all start before any of them
/// finishes — i.e. they genuinely execute concurrently.
#[test]
fn four_jobs_run_concurrently_with_interleaved_starts() {
    let svc = Service::start(4);
    let events = svc.events();
    let cfg = ChaseConfig::variant(ChaseVariant::Oblivious)
        .with_max_applications(10_000_000)
        .with_max_wall(Duration::from_millis(700));
    let ids: Vec<_> = (0..4)
        .map(|i| svc.submit(staircase_spec(&format!("conc-{i}"), cfg.clone())))
        .collect();
    for id in &ids {
        assert_eq!(svc.wait(*id), Some(JobStatus::Finished));
    }
    let mut started_before_first_finish = std::collections::HashSet::new();
    let mut finished = false;
    while let Some(ev) = events.try_recv() {
        match ev.kind {
            JobEventKind::Started if !finished => {
                started_before_first_finish.insert(ev.job);
            }
            JobEventKind::Finished { .. } => finished = true,
            _ => {}
        }
    }
    assert_eq!(
        started_before_first_finish.len(),
        4,
        "all four jobs must be running before the first one finishes"
    );
}

/// A concurrent batch over the repo's `testdata/` directory: every KB
/// file becomes a job, all reach a terminal state, none fails.
#[test]
fn concurrent_batch_over_testdata() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("testdata exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "tc"))
        .collect();
    files.sort();
    assert!(files.len() >= 4, "need at least 4 KBs for a real batch");

    let svc = Service::start(4);
    let cfg = ChaseConfig::variant(ChaseVariant::Core)
        .with_max_applications(60)
        .with_max_wall(Duration::from_millis(2_000));
    let ids: Vec<_> = files
        .iter()
        .map(|path| {
            let src = std::fs::read_to_string(path).unwrap();
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            svc.submit(JobSpec::from_text(name, &src, cfg.clone()).expect("testdata parses"))
        })
        .collect();
    for id in ids {
        let status = svc.wait(id).expect("job known");
        assert_eq!(status, JobStatus::Finished, "job {id} did not finish");
        let (outcome, atoms) = svc
            .with_result(id, |r| (r.outcome, r.final_instance.len()))
            .expect("result stored");
        assert!(atoms > 0);
        // Terminated or budget-stopped, never crashed.
        assert_ne!(outcome, ChaseOutcome::Cancelled);
    }
}

/// End-to-end JSONL protocol over the `treechase serve` subcommand:
/// submit with a budget, fetch the checkpoint, resume it, and watch the
/// query verdict flip from inconclusive to entailed.
#[test]
fn serve_protocol_checkpoint_resume_roundtrip() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_treechase"))
        .args(["serve", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdin = child.stdin.take().unwrap();
    writeln!(
        stdin,
        r#"{{"op":"submit","name":"wire","source":"r(a, b). r(b, c). r(c, d). r(d, e). T: r(X, Y), r(Y, Z) -> r(X, Z). Q: ?- r(a, e).","variant":"restricted","max_apps":2}}"#
    )
    .unwrap();
    writeln!(stdin, r#"{{"op":"wait","job":1}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"checkpoint","job":1}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"shutdown"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    // Every line is valid JSON; find the checkpoint response.
    let mut checkpoint = None;
    for line in stdout.lines() {
        let v = parse_json(line).unwrap_or_else(|e| panic!("bad wire line {line}: {e}"));
        if v.get("op").and_then(|o| o.as_str()) == Some("checkpoint") {
            checkpoint = v.get("checkpoint").cloned();
        }
    }
    let checkpoint = checkpoint.expect("checkpoint response present");
    assert!(stdout.contains(r#""verdict":"inconclusive""#), "{stdout}");

    // Second serve session: resume from the captured checkpoint.
    let mut child = Command::new(env!("CARGO_BIN_EXE_treechase"))
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdin = child.stdin.take().unwrap();
    writeln!(
        stdin,
        r#"{{"op":"resume","checkpoint":{checkpoint},"max_apps":1000}}"#
    )
    .unwrap();
    writeln!(stdin, r#"{{"op":"wait","job":1}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"shutdown"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(r#""outcome":"terminated""#), "{stdout}");
    assert!(stdout.contains(r#""verdict":"entailed""#), "{stdout}");
}

/// The supervision acceptance scenario: a core-chase staircase job
/// whose worker is killed *twice* by injected crashes is retried from
/// the last periodic checkpoint each time and converges to a result
/// isomorphic to a clean run, with monotone counters (each pre-crash
/// prefix is counted once, not rerun).
#[test]
fn supervised_core_crash_recovers_isomorphic_to_clean_run() {
    let total = 40usize;
    let clean_svc = Service::start(1);
    let clean = clean_svc
        .take_result(clean_svc.submit(staircase_spec(
            "clean",
            ChaseConfig::variant(ChaseVariant::Core).with_max_applications(total),
        )))
        .expect("clean run result");
    assert_eq!(clean.outcome, ChaseOutcome::ApplicationBudgetExhausted);

    let svc = Service::with_config(
        1,
        ServiceConfig {
            retry_backoff: Duration::ZERO,
            checkpoint_every: Some(1),
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    let events = svc.events();
    let id = svc.submit(staircase_spec(
        "crashy",
        ChaseConfig::variant(ChaseVariant::Core)
            .with_max_applications(total)
            // The application counter is process-global and monotone,
            // so the two sites land in different slices: the first
            // kills the initial run, the second kills its retry.
            .with_fault(FaultPlan::new(vec![
                FaultSite::Application(total / 4),
                FaultSite::Application(3 * total / 4),
            ])),
    ));
    assert_eq!(svc.wait(id), Some(JobStatus::Finished));
    let res = svc.take_result(id).expect("supervised result");
    assert_eq!(res.outcome, ChaseOutcome::ApplicationBudgetExhausted);
    // Monotone stats across the crash: total applications equal the
    // uninterrupted run's, and the accumulated wall clock is nonzero.
    assert_eq!(res.stats.applications, total);
    assert!(res.stats.wall_us > 0);
    assert!(
        isomorphism(&res.final_instance, &clean.final_instance).is_some(),
        "crash-recovered instance ({} atoms) must be isomorphic to the \
         clean one ({} atoms)",
        res.final_instance.len(),
        clean.final_instance.len()
    );
    let crashes: Vec<_> = std::iter::from_fn(|| events.try_recv())
        .filter_map(|ev| match ev.kind {
            JobEventKind::Crashed {
                attempt, retrying, ..
            } => Some((attempt, retrying)),
            _ => None,
        })
        .collect();
    assert_eq!(
        crashes,
        vec![(1, true), (2, true)],
        "two supervised kills, each retried"
    );
}

/// A crash injected *inside the incremental core phase* — not between
/// trigger applications — is also recovered to an isomorphic result.
/// The core retraction is the hairiest place to interrupt: the durable
/// checkpoint predates the retraction, so the retry must redo it.
#[test]
fn core_phase_crash_recovers_isomorphic_to_clean_run() {
    let total = 30usize;
    let clean_svc = Service::start(1);
    let clean = clean_svc
        .take_result(clean_svc.submit(staircase_spec(
            "clean",
            ChaseConfig::variant(ChaseVariant::Core).with_max_applications(total),
        )))
        .expect("clean run result");

    let svc = Service::with_config(
        1,
        ServiceConfig {
            retry_backoff: Duration::ZERO,
            checkpoint_every: Some(1),
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    let id = svc.submit(staircase_spec(
        "core-crash",
        ChaseConfig::variant(ChaseVariant::Core)
            .with_max_applications(total)
            .with_fault(FaultPlan::new(vec![FaultSite::CorePhase(total / 2)])),
    ));
    assert_eq!(svc.wait(id), Some(JobStatus::Finished));
    let res = svc.take_result(id).expect("supervised result");
    assert_eq!(res.outcome, ChaseOutcome::ApplicationBudgetExhausted);
    assert_eq!(res.stats.applications, total);
    assert!(isomorphism(&res.final_instance, &clean.final_instance).is_some());
}

/// Satellite: cancelling a `Core` job mid-run (so the interruption can
/// land inside the incremental core phase, on a possibly non-core
/// instance) still yields an exact checkpoint, and resuming it runs the
/// chase to termination on an instance isomorphic to the uninterrupted
/// closure — `resume_reaches_the_same_closure_as_uninterrupted`, beyond
/// the restricted variant.
#[test]
fn cancelled_core_job_resumes_isomorphic_to_uninterrupted() {
    // A terminating core chase that is still slow enough to interrupt:
    // transitive closure over a 40-edge chain (780 applications, each
    // followed by an incremental core-maintenance phase).
    let mut src: String = (0..40).map(|i| format!("r(c{i}, c{}). ", i + 1)).collect();
    src.push_str("T: r(X, Y), r(Y, Z) -> r(X, Z).");
    let cfg = ChaseConfig::variant(ChaseVariant::Core);

    let svc = Service::start(2);
    let clean_id = svc.submit(JobSpec::from_text("core-clean", &src, cfg.clone()).unwrap());
    let id = svc.submit(JobSpec::from_text("core-cancel", &src, cfg).unwrap());
    while svc.status(id) != Some(JobStatus::Running) {
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(10));
    assert!(svc.cancel(id));
    let cut = svc.take_result(id).expect("cancelled result");
    assert_eq!(cut.outcome, ChaseOutcome::Cancelled);
    let ck = cut.checkpoint.expect("cancellation is resumable");
    assert!(ck.exact(), "core checkpoints are resume-exact");
    assert!(ck.stats.applications > 0, "cancel landed mid-run");

    let resumed_spec = ck.into_spec().expect("checkpoint reparses");
    let resumed = svc
        .take_result(svc.submit(resumed_spec))
        .expect("resumed result");
    assert!(resumed.outcome.terminated(), "{:?}", resumed.outcome);
    // Monotone counters: the continuation extends the prefix.
    assert!(resumed.stats.applications > cut.stats.applications);

    let clean = svc.take_result(clean_id).expect("clean run result");
    assert!(clean.outcome.terminated());
    assert!(
        isomorphism(&resumed.final_instance, &clean.final_instance).is_some(),
        "core resume after mid-run cancellation must converge to the \
         uninterrupted closure ({} vs {} atoms)",
        resumed.final_instance.len(),
        clean.final_instance.len()
    );
}

/// The crash-recovery smoke: SIGKILL a `serve` process mid-run, restart
/// it over the same `--state-dir`, and check the recovered job finishes
/// the derivation — same application total as an uninterrupted run
/// (prefix counted once) and an isomorphic final instance.
#[test]
fn sigkill_mid_run_recovers_from_durable_checkpoints() {
    let total = 60usize;
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/staircase.tc"),
    )
    .expect("staircase testdata");
    let state_dir = std::env::temp_dir().join(format!("treechase-sigkill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let state_dir_arg = state_dir.to_str().expect("utf-8 temp dir");

    // Reference: the same job uninterrupted, in-process.
    let clean_svc = Service::start(1);
    let clean = clean_svc
        .take_result(
            clean_svc.submit(
                JobSpec::from_text(
                    "clean",
                    &src,
                    ChaseConfig::variant(ChaseVariant::Core).with_max_applications(total),
                )
                .expect("staircase parses"),
            ),
        )
        .expect("clean run result");
    assert_eq!(clean.outcome, ChaseOutcome::ApplicationBudgetExhausted);

    // Session 1: submit, wait for the first durable checkpoint to land
    // on disk, then SIGKILL the whole process mid-run.
    let mut child = Command::new(env!("CARGO_BIN_EXE_treechase"))
        .args([
            "serve",
            "--workers",
            "1",
            "--state-dir",
            state_dir_arg,
            "--checkpoint-every",
            "1",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut stdin = child.stdin.take().unwrap();
    let submit = Json::obj([
        ("op", Json::str("submit")),
        ("name", Json::str("stair")),
        ("source", Json::str(&src)),
        ("variant", Json::str("core")),
        ("max_apps", Json::Int(total as i64)),
    ]);
    writeln!(stdin, "{submit}").unwrap();
    let has_checkpoint_file = || {
        std::fs::read_dir(&state_dir).is_ok_and(|entries| {
            entries
                .filter_map(|e| e.ok())
                .any(|e| e.file_name().to_string_lossy().ends_with(".ckpt.json"))
        })
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    while !has_checkpoint_file() {
        assert!(
            Instant::now() < deadline,
            "no durable checkpoint appeared in {}",
            state_dir.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL lands"); // SIGKILL: no cleanup runs
    child.wait().expect("killed child reaped");
    drop(stdin);

    // Session 2: the restarted service recovers the checkpoint into a
    // queued job and runs it to the original application target.
    let mut child = Command::new(env!("CARGO_BIN_EXE_treechase"))
        .args(["serve", "--workers", "1", "--state-dir", state_dir_arg])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve restarts");
    let mut stdin = child.stdin.take().unwrap();
    writeln!(stdin, r#"{{"op":"wait","job":1}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"checkpoint","job":1}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"shutdown"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    let mut recovered = false;
    let mut checkpoint = None;
    for line in stdout.lines() {
        let v = parse_json(line).unwrap_or_else(|e| panic!("bad wire line {line}: {e}"));
        if v.get("type").and_then(|t| t.as_str()) == Some("recovered") {
            recovered = true;
        }
        if v.get("op").and_then(|o| o.as_str()) == Some("checkpoint") {
            checkpoint = v.get("checkpoint").cloned();
        }
    }
    assert!(recovered, "restart must announce recovered jobs: {stdout}");
    let ck = Checkpoint::from_json(&checkpoint.expect("checkpoint response present"))
        .expect("wire checkpoint parses");
    // Monotone across the kill: the killed prefix plus the recovered
    // slice together hit the original budget exactly once.
    assert_eq!(ck.stats.applications, total);
    let program = parse_program_trusted(&ck.program).expect("checkpoint program parses");
    assert!(
        isomorphism(&program.facts, &clean.final_instance).is_some(),
        "recovered instance ({} atoms) must be isomorphic to the clean \
         one ({} atoms)",
        program.facts.len(),
        clean.final_instance.len()
    );
    let _ = std::fs::remove_dir_all(&state_dir);
}

/// Malformed requests produce error lines, not a dead server.
#[test]
fn serve_survives_malformed_requests() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_treechase"))
        .args(["serve", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdin = child.stdin.take().unwrap();
    writeln!(stdin, "this is not json").unwrap();
    writeln!(stdin, r#"{{"op":"frobnicate"}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"status","job":99}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"list"}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"shutdown"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let errors = stdout
        .lines()
        .filter(|l| l.contains(r#""type":"error""#))
        .count();
    assert_eq!(errors, 3, "{stdout}");
    assert!(stdout.contains(r#""op":"list""#), "{stdout}");
}
