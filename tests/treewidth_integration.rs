//! Cross-crate treewidth integration: exact vs heuristic agreement on
//! the paper's structures, pathwidth comparisons, and grid-based lower
//! bounds (Facts 1 and 2).

use treechase::kbs::grids::{best_grid_lower_bound, labeled_grid};
use treechase::kbs::{Elevator, Staircase};
use treechase::prelude::*;
use treechase::treewidth::{
    exact_pathwidth, exact_treewidth, min_degree_decomposition, min_fill_decomposition,
};

#[test]
fn staircase_structures_have_expected_widths() {
    let mut s = Staircase::new();
    for k in 1..=4 {
        assert_eq!(exact_treewidth(&s.step_rect(k)), 2, "tw(S_{k})");
        assert_eq!(exact_treewidth(&s.column(k)), 1, "tw(C_{k})");
    }
    let col = s.infinite_column_prefix(12);
    assert_eq!(exact_treewidth(&col), 1);
    assert_eq!(exact_pathwidth(&col), 1);
}

#[test]
fn elevator_spine_and_cabin_widths() {
    let mut e = Elevator::new();
    assert_eq!(exact_treewidth(&e.spine_prefix(8)), 1);
    // The cabin of size 3 contains a 2×2 grid: tw ≥ 2 certified both by
    // the grid and by the decomposition sandwich.
    let cabin = e.cabin(3);
    let b = treewidth_bounds(&cabin);
    assert!(b.lower >= 2 || contains_grid(&cabin, &e.cabin_grid_labeling(3)));
    assert!(b.upper >= 2);
}

#[test]
fn heuristics_agree_with_exact_on_small_structures() {
    let mut vocab = Vocabulary::new();
    for n in 2..=4usize {
        let (grid, _) = labeled_grid(&mut vocab, n);
        let exact = exact_treewidth(&grid);
        assert_eq!(exact, n);
        let d1 = min_degree_decomposition(&grid);
        let d2 = min_fill_decomposition(&grid);
        assert!(d1.validate(&grid).is_ok());
        assert!(d2.validate(&grid).is_ok());
        assert!(d1.width() >= exact && d2.width() >= exact);
        // Min-fill is exact on small grids.
        assert_eq!(d2.width(), exact, "min-fill on {n}×{n}");
    }
}

#[test]
fn grid_search_matches_known_content() {
    // The staircase prefix P_{2n} contains exactly the grids the paper's
    // proof constructs; the directional search must find (at least) side
    // n there.
    let mut s = Staircase::new();
    let n = 2u32;
    let prefix = s.universal_prefix(2 * n + 1);
    let h = s.vocab.lookup_pred("h").unwrap();
    let v = s.vocab.lookup_pred("v").unwrap();
    let found = best_grid_lower_bound(&prefix, 4, h, v).side;
    assert!(found >= n as usize, "found only {found}");
    // Fact 2 cross-check: the exact treewidth of the prefix is ≥ found.
    let b = treewidth_bounds(&prefix);
    assert!(b.upper >= found);
}

#[test]
fn fact1_monotonicity_on_chase_prefixes() {
    // tw(F_i) ≤ tw(D*) along a monotonic chase (Fact 1) — certified via
    // lower(F_i) ≤ upper(D*).
    let mut s = Staircase::new();
    let d = s.scripted_restricted_chase(3);
    let agg = treechase::engine::aggregation::natural_aggregation(&d);
    let agg_ub = treewidth_bounds(&agg).upper;
    for f in d.instances() {
        assert!(treewidth_bounds(f).lower <= agg_ub);
    }
}

#[test]
fn pathwidth_dominates_treewidth_on_paper_structures() {
    let mut s = Staircase::new();
    for k in 1..=3 {
        let step = s.step_rect(k);
        assert!(exact_pathwidth(&step) >= exact_treewidth(&step));
    }
}

#[test]
fn decompositions_of_chase_elements_validate() {
    // Every certified bound in the experiments rests on validated
    // decompositions; spot-check on real chase elements.
    let kb = KnowledgeBase::elevator();
    let res = kb.chase(
        &ChaseConfig::variant(ChaseVariant::Core)
            .with_scheduler(SchedulerKind::DatalogFirst)
            .with_max_applications(30),
    );
    let d = res.derivation.unwrap();
    for f in d.instances() {
        let td = min_fill_decomposition(f);
        assert!(td.validate(f).is_ok());
    }
}
