//! Integration tests for the coordinator/worker cluster: leased TCP
//! dispatch, heartbeat loss, reschedule-from-checkpoint exactness,
//! duplicate-lease fencing and coordinator restart over a populated
//! state dir.
//!
//! The invariant under test throughout: a cluster run — including one
//! that loses a worker mid-lease and replays from the last durable
//! checkpoint — produces a final instance isomorphic to a
//! single-process run of the same job, with exactly the same number of
//! rule applications (budgets are derivation totals; nothing is
//! double-counted).

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use treechase::atoms::AtomSet;
use treechase::cluster::wire::roundtrip;
use treechase::cluster::{run_worker, ClusterConfig, Coordinator, WorkerConfig};
use treechase::engine::{ChaseConfig, ChaseVariant};
use treechase::homomorphism::isomorphism;
use treechase::service::{Checkpoint, JobSpec, Json, Service};

/// A transitive-closure chain: terminates, with enough applications to
/// span several checkpoints. For `n` nodes the restricted chase derives
/// every `r(a_i, a_j)` with `i < j`: `n * (n - 1) / 2` applications.
fn chain_src(n: usize) -> String {
    let mut s = String::new();
    for i in 1..n {
        s.push_str(&format!("e(a{}, a{}). ", i, i + 1));
    }
    s.push('\n');
    s.push_str("Tbase: e(X, Y) -> r(X, Y).\n");
    s.push_str("Ttrans: r(X, Y), e(Y, Z) -> r(X, Z).\n");
    s.push_str(&format!("Qend: ?- r(a1, a{n}).\n"));
    s
}

fn chain_apps(n: usize) -> usize {
    n * (n - 1) / 2
}

/// Single-process ground truth for the same job: final instance and
/// total applications.
fn ground_truth(src: &str) -> (AtomSet, usize) {
    let svc = Service::start(1);
    let mut cfg = ChaseConfig::variant(ChaseVariant::Restricted);
    cfg.max_applications = 10_000;
    let spec = JobSpec::from_text("truth", src, cfg).expect("truth spec parses");
    let id = svc.try_submit(spec).expect("truth submit");
    svc.wait_timeout(id, Some(Duration::from_secs(60)));
    svc.with_result(id, |r| (r.final_instance.clone(), r.stats.applications))
        .expect("truth result")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("treechase-cluster-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quiet_config(lease_ms: u64) -> ClusterConfig {
    ClusterConfig {
        lease: Duration::from_millis(lease_ms),
        heartbeat: Duration::from_millis((lease_ms / 4).max(25)),
        checkpoint_every: 4,
        announce: false,
        ..ClusterConfig::default()
    }
}

struct TestCluster {
    addr: String,
    handle: thread::JoinHandle<Result<(), String>>,
    shutdown: treechase::cluster::coordinator::ShutdownHandle,
}

fn start_coordinator(dir: &std::path::Path, cfg: ClusterConfig) -> TestCluster {
    let coord = Coordinator::bind("127.0.0.1:0", dir, cfg).expect("coordinator binds");
    let addr = coord.local_addr().expect("local addr").to_string();
    let shutdown = coord.shutdown_handle();
    let handle = thread::spawn(move || coord.run());
    TestCluster {
        addr,
        handle,
        shutdown,
    }
}

impl TestCluster {
    fn stop(self) {
        self.shutdown.shutdown();
        self.handle.join().unwrap().unwrap();
    }
}

fn connect(addr: &str) -> TcpStream {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_millis(250)))
        .unwrap();
    conn
}

/// Spawns a real worker thread; returns its stop flag and join handle.
fn spawn_worker(
    addr: &str,
    name: &str,
) -> (Arc<AtomicBool>, thread::JoinHandle<Result<(), String>>) {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let cfg = WorkerConfig {
        connect: addr.to_string(),
        name: name.to_string(),
        announce: false,
    };
    let handle = thread::spawn(move || run_worker(&cfg, &move || flag.load(Ordering::Relaxed)));
    (stop, handle)
}

fn submit_chain(conn: &mut TcpStream, n: usize) -> u64 {
    // Pinning variant + budget keeps the admission gate out of the way
    // (it has its own tests); the gate path is exercised separately.
    let req = Json::obj([
        ("op", Json::str("submit")),
        ("source", Json::Str(chain_src(n))),
        ("name", Json::str("chain")),
        ("variant", Json::str("restricted")),
        ("max_apps", Json::Int(10_000)),
        ("checkpoint_every", Json::Int(4)),
    ]);
    let reply = roundtrip(conn, &req).expect("submit roundtrip");
    assert_eq!(
        reply.get("op").and_then(Json::as_str),
        Some("submit"),
        "{reply}"
    );
    reply.require_u64("job").unwrap()
}

fn wait_for(conn: &mut TcpStream, job: u64, timeout_ms: u64) -> Json {
    let req = Json::obj([
        ("op", Json::str("wait")),
        ("job", Json::Int(job as i64)),
        ("timeout_ms", Json::Int(timeout_ms as i64)),
    ]);
    roundtrip(conn, &req).expect("wait roundtrip")
}

fn status_of(conn: &mut TcpStream, job: u64) -> Json {
    let req = Json::obj([("op", Json::str("status")), ("job", Json::Int(job as i64))]);
    roundtrip(conn, &req).expect("status roundtrip")
}

/// Fetches the job's freshest checkpoint and materializes its instance.
fn final_instance_of(conn: &mut TcpStream, job: u64) -> (AtomSet, usize) {
    let req = Json::obj([
        ("op", Json::str("checkpoint")),
        ("job", Json::Int(job as i64)),
    ]);
    let reply = roundtrip(conn, &req).expect("checkpoint roundtrip");
    let ck = Checkpoint::from_json(reply.require("checkpoint").unwrap()).unwrap();
    let apps = ck.stats.applications;
    let spec = ck.into_spec().unwrap();
    (spec.kb.facts, apps)
}

/// A hand-driven worker connection: registers and pulls one lease, but
/// never heartbeats unless the test says so — the controllable stand-in
/// for a worker about to be lost.
fn fake_pull(conn: &mut TcpStream, worker: &str) -> Json {
    let hello = Json::obj([("op", Json::str("hello")), ("worker", Json::str(worker))]);
    let welcome = roundtrip(conn, &hello).expect("hello");
    assert_eq!(welcome.get("op").and_then(Json::as_str), Some("welcome"));
    let pull = Json::obj([("op", Json::str("pull")), ("worker", Json::str(worker))]);
    let lease = roundtrip(conn, &pull).expect("pull");
    assert_eq!(
        lease.get("op").and_then(Json::as_str),
        Some("lease"),
        "{lease}"
    );
    lease
}

/// Runs the leased checkpoint locally for a bounded number of
/// applications and returns the periodic checkpoint a real worker
/// would have shipped at that point (budgets restored to the
/// derivation totals of the lease).
fn partial_run(lease: &Json, apps: usize) -> Checkpoint {
    let ck = Checkpoint::from_json(lease.require("checkpoint").unwrap()).unwrap();
    let mut spec = ck.into_spec().unwrap();
    let total_budget = spec.config.max_applications;
    spec.config.max_applications = apps;
    spec.checkpoint_every = Some(apps);
    let svc = Service::start(1);
    let local = svc.try_submit(spec).unwrap();
    svc.wait_timeout(local, Some(Duration::from_secs(30)));
    let mut mid = svc.checkpoint_of(local).expect("partial checkpoint");
    assert_eq!(mid.stats.applications, apps, "partial slice ran to cap");
    // A real worker's periodic checkpoint carries the lease's own
    // (derivation-total) budget, not our local cap.
    mid.config.max_applications = total_budget;
    mid
}

#[test]
fn cluster_completes_job_and_matches_single_process() {
    let dir = fresh_dir("complete");
    let cluster = start_coordinator(&dir, quiet_config(3_000));
    let (stop, worker) = spawn_worker(&cluster.addr, "w1");

    let mut conn = connect(&cluster.addr);
    let job = submit_chain(&mut conn, 12);
    let done = wait_for(&mut conn, job, 30_000);
    assert_eq!(done.get("timed_out").and_then(Json::as_bool), Some(false));
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("finished"),
        "{done}"
    );
    assert_eq!(done.get("terminated").and_then(Json::as_bool), Some(true));
    // The named query rode along and was certified on the worker.
    let queries = done.get("queries").and_then(Json::as_arr).expect("queries");
    assert_eq!(queries.len(), 1);
    assert_eq!(
        queries[0].get("verdict").and_then(Json::as_str),
        Some("entailed")
    );

    // Exactness + isomorphism against the single-process run.
    let (truth_instance, truth_apps) = ground_truth(&chain_src(12));
    assert_eq!(truth_apps, chain_apps(12));
    let (cluster_instance, cluster_apps) = final_instance_of(&mut conn, job);
    assert_eq!(cluster_apps, truth_apps, "identical application totals");
    assert!(
        isomorphism(&cluster_instance, &truth_instance).is_some(),
        "cluster final instance isomorphic to single-process run"
    );

    // Query through the coordinator: served from the terminal snapshot,
    // tagged complete.
    let q = Json::obj([
        ("op", Json::str("query")),
        ("job", Json::Int(job as i64)),
        ("query", Json::str("?(X) :- r(a1, X)")),
    ]);
    let reply = roundtrip(&mut conn, &q).expect("query");
    assert_eq!(
        reply.get("completeness").and_then(Json::as_str),
        Some("complete"),
        "{reply}"
    );
    assert_eq!(
        reply.get("answers").and_then(Json::as_arr).unwrap().len(),
        11
    );

    stop.store(true, Ordering::Relaxed);
    worker.join().unwrap().unwrap();
    cluster.stop();
}

#[test]
fn expired_lease_reschedules_from_checkpoint_exactly() {
    let dir = fresh_dir("expiry");
    // Short lease so heartbeat loss is detected fast.
    let cluster = start_coordinator(&dir, quiet_config(300));
    let mut conn = connect(&cluster.addr);
    let job = submit_chain(&mut conn, 12);

    // A worker takes the lease, makes real progress, ships one
    // checkpoint — then goes silent (the in-test stand-in for SIGKILL).
    let mut dead = connect(&cluster.addr);
    let lease = fake_pull(&mut dead, "doomed");
    let epoch = lease.require_u64("epoch").unwrap();
    let mid = partial_run(&lease, 10);
    let ship = Json::obj([
        ("op", Json::str("checkpoint")),
        ("worker", Json::str("doomed")),
        ("job", Json::Int(job as i64)),
        ("epoch", Json::Int(epoch as i64)),
        ("checkpoint", mid.to_json()),
    ]);
    let ack = roundtrip(&mut dead, &ship).expect("checkpoint ack");
    assert_eq!(ack.get("op").and_then(Json::as_str), Some("ack"), "{ack}");

    // Mid-run query against the shipped prefix: sound, not complete.
    let q = Json::obj([
        ("op", Json::str("query")),
        ("job", Json::Int(job as i64)),
        ("query", Json::str("?(X) :- r(a1, X)")),
    ]);
    let reply = roundtrip(&mut conn, &q).expect("mid-run query");
    assert_eq!(
        reply.get("completeness").and_then(Json::as_str),
        Some("sound-prefix"),
        "{reply}"
    );

    // No heartbeats: the lease expires and the reaper requeues the job
    // from the durable checkpoint.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let st = status_of(&mut conn, job);
        if st.get("state").and_then(Json::as_str) == Some("queued") {
            assert_eq!(st.require_u64("reschedules").unwrap(), 1);
            assert_eq!(st.require_u64("applications").unwrap(), 10);
            break;
        }
        assert!(Instant::now() < deadline, "lease never expired: {st}");
        thread::sleep(Duration::from_millis(50));
    }

    // A healthy worker picks it up and finishes the remaining suffix.
    let (stop, worker) = spawn_worker(&cluster.addr, "healthy");
    let done = wait_for(&mut conn, job, 30_000);
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("finished"),
        "{done}"
    );

    // Exactness: 10 applications before the loss + the suffix must
    // total exactly the single-process count — nothing double-counted,
    // nothing lost.
    let (truth_instance, truth_apps) = ground_truth(&chain_src(12));
    let (cluster_instance, cluster_apps) = final_instance_of(&mut conn, job);
    assert_eq!(cluster_apps, truth_apps);
    assert!(isomorphism(&cluster_instance, &truth_instance).is_some());

    // The zombie wakes up: every message under its dead epoch is
    // fenced, and nothing about the finished job changes.
    let hb = Json::obj([
        ("op", Json::str("heartbeat")),
        ("worker", Json::str("doomed")),
        ("job", Json::Int(job as i64)),
        ("epoch", Json::Int(epoch as i64)),
    ]);
    let reply = roundtrip(&mut dead, &hb).expect("zombie heartbeat");
    assert_eq!(reply.get("op").and_then(Json::as_str), Some("fenced"));
    let stale = Json::obj([
        ("op", Json::str("checkpoint")),
        ("worker", Json::str("doomed")),
        ("job", Json::Int(job as i64)),
        ("epoch", Json::Int(epoch as i64)),
        ("checkpoint", mid.to_json()),
    ]);
    let reply = roundtrip(&mut dead, &stale).expect("zombie checkpoint");
    assert_eq!(reply.get("op").and_then(Json::as_str), Some("fenced"));
    let st = status_of(&mut conn, job);
    assert_eq!(st.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(st.require_u64("applications").unwrap(), truth_apps as u64);

    stop.store(true, Ordering::Relaxed);
    worker.join().unwrap().unwrap();
    cluster.stop();
}

#[test]
fn released_lease_requeues_with_shipped_progress() {
    let dir = fresh_dir("release");
    // Long lease: requeue must come from the release, not expiry.
    let cluster = start_coordinator(&dir, quiet_config(30_000));
    let mut conn = connect(&cluster.addr);
    let job = submit_chain(&mut conn, 12);

    // A draining worker hands the lease back with its progress.
    let mut draining = connect(&cluster.addr);
    let lease = fake_pull(&mut draining, "draining");
    let epoch = lease.require_u64("epoch").unwrap();
    let mid = partial_run(&lease, 8);
    let release = Json::obj([
        ("op", Json::str("release")),
        ("worker", Json::str("draining")),
        ("job", Json::Int(job as i64)),
        ("epoch", Json::Int(epoch as i64)),
        ("checkpoint", mid.to_json()),
    ]);
    let ack = roundtrip(&mut draining, &release).expect("release ack");
    assert_eq!(ack.get("op").and_then(Json::as_str), Some("ack"), "{ack}");

    // Immediately queued again — no lease-clock wait — with the
    // released progress.
    let st = status_of(&mut conn, job);
    assert_eq!(st.get("state").and_then(Json::as_str), Some("queued"));
    assert_eq!(st.require_u64("applications").unwrap(), 8);

    let (stop, worker) = spawn_worker(&cluster.addr, "successor");
    let done = wait_for(&mut conn, job, 30_000);
    assert_eq!(done.get("status").and_then(Json::as_str), Some("finished"));
    let (truth_instance, truth_apps) = ground_truth(&chain_src(12));
    let (cluster_instance, cluster_apps) = final_instance_of(&mut conn, job);
    assert_eq!(cluster_apps, truth_apps);
    assert!(isomorphism(&cluster_instance, &truth_instance).is_some());

    stop.store(true, Ordering::Relaxed);
    worker.join().unwrap().unwrap();
    cluster.stop();
}

#[test]
fn coordinator_restart_recovers_state_dir() {
    let dir = fresh_dir("restart");

    // First life: accept a job, durably checkpoint it at its base
    // facts, shut down before any worker shows up.
    let first = start_coordinator(&dir, quiet_config(3_000));
    let mut conn = connect(&first.addr);
    let job = submit_chain(&mut conn, 12);
    assert_eq!(job, 1);
    drop(conn);
    first.stop();

    // Second life over the same state dir: the job is back, queued,
    // and runs to the exact same result.
    let second = start_coordinator(&dir, quiet_config(3_000));
    let mut conn = connect(&second.addr);
    let st = status_of(&mut conn, job);
    assert_eq!(
        st.get("state").and_then(Json::as_str),
        Some("queued"),
        "{st}"
    );

    // Ids keep growing past recovered ones.
    let other = submit_chain(&mut conn, 5);
    assert_eq!(other, 2);

    let (stop, worker) = spawn_worker(&second.addr, "after-restart");
    let done = wait_for(&mut conn, job, 30_000);
    assert_eq!(done.get("status").and_then(Json::as_str), Some("finished"));
    let done2 = wait_for(&mut conn, other, 30_000);
    assert_eq!(done2.get("status").and_then(Json::as_str), Some("finished"));

    let (truth_instance, truth_apps) = ground_truth(&chain_src(12));
    let (cluster_instance, cluster_apps) = final_instance_of(&mut conn, job);
    assert_eq!(cluster_apps, truth_apps);
    assert!(isomorphism(&cluster_instance, &truth_instance).is_some());

    // Terminated jobs leave no durable entry behind; a third life
    // starts with an empty table.
    stop.store(true, Ordering::Relaxed);
    worker.join().unwrap().unwrap();
    second.stop();
    let third = start_coordinator(&dir, quiet_config(3_000));
    let mut conn = connect(&third.addr);
    let list = roundtrip(&mut conn, &Json::obj([("op", Json::str("list"))])).unwrap();
    assert_eq!(
        list.get("jobs").and_then(Json::as_arr).unwrap().len(),
        0,
        "{list}"
    );
    third.stop();
}

#[test]
fn cancel_fences_the_running_lease() {
    let dir = fresh_dir("cancel");
    let cluster = start_coordinator(&dir, quiet_config(30_000));
    let mut conn = connect(&cluster.addr);
    let job = submit_chain(&mut conn, 12);

    let mut holder = connect(&cluster.addr);
    let lease = fake_pull(&mut holder, "holder");
    let epoch = lease.require_u64("epoch").unwrap();

    let cancel = Json::obj([("op", Json::str("cancel")), ("job", Json::Int(job as i64))]);
    let reply = roundtrip(&mut conn, &cancel).expect("cancel");
    assert_eq!(reply.get("cancelled").and_then(Json::as_bool), Some(true));

    // The holder's next heartbeat is fenced — it learns to abort.
    let hb = Json::obj([
        ("op", Json::str("heartbeat")),
        ("worker", Json::str("holder")),
        ("job", Json::Int(job as i64)),
        ("epoch", Json::Int(epoch as i64)),
    ]);
    let reply = roundtrip(&mut holder, &hb).expect("heartbeat after cancel");
    assert_eq!(reply.get("op").and_then(Json::as_str), Some("fenced"));

    let st = status_of(&mut conn, job);
    assert_eq!(st.get("state").and_then(Json::as_str), Some("cancelled"));
    cluster.stop();
}
