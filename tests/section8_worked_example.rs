//! Pins the paper's Section 8 worked example exactly: along the
//! staircase core chase, the robust renaming keeps one stable name per
//! height, and the names are the *first* name each height ever carried —
//! the paper's `X⁰₀, X⁰₁, X¹₂, …, X^j_{j+1}, …` sequence.

use treechase::engine::robust::RobustSequence;
use treechase::kbs::Staircase;
use treechase::prelude::*;

/// The stable name of height `j` is `X^{j-1}_j` for `j ≥ 1` (first minted
/// as the top of column `j-1`) and `X⁰₀` for `j = 0` — matching the
/// paper's naming of `D^⊛` verbatim.
#[test]
fn robust_aggregation_uses_papers_stable_names() {
    let steps = 4u32;
    let mut s = Staircase::new();
    let d = s.scripted_core_chase(steps);
    let rs = RobustSequence::build(&d);
    let dsq = rs.aggregation_prefix(2 * (steps as usize - 1) + 3);

    // Expected stable terms, bottom to top: X0_0, X0_1, X1_2, X2_3.
    let expected: Vec<Term> = (0..steps)
        .map(|j| if j == 0 { s.x(0, 0) } else { s.x(j - 1, j) })
        .collect();
    for (j, &t) in expected.iter().enumerate() {
        assert!(
            dsq.mentions(t),
            "stable name for height {j} missing from D^⊛: {}",
            dsq.with(&s.vocab)
        );
    }

    // And the v-path connects them in order.
    let v = s.vocab.lookup_pred("v").unwrap();
    for w in expected.windows(2) {
        let atom = Atom::new(v, vec![w[0], w[1]]);
        assert!(
            dsq.contains(&atom),
            "v-edge {} missing",
            atom.with(&s.vocab)
        );
    }

    // The floor mark sits at the bottom stable name; ceilings above.
    let f = s.vocab.lookup_pred("f").unwrap();
    let c = s.vocab.lookup_pred("c").unwrap();
    assert!(dsq.contains(&Atom::new(f, vec![expected[0]])));
    for &t in &expected[1..] {
        assert!(dsq.contains(&Atom::new(c, vec![t])));
    }

    // Every stable name carries its h-loop (this is what makes D^⊛ a
    // model — the paper's Ĩ^h).
    let h = s.vocab.lookup_pred("h").unwrap();
    for &t in &expected {
        assert!(dsq.contains(&Atom::new(h, vec![t, t])));
    }
}

/// The first proper retraction of the worked example maps `X⁰₀ ↦ X¹₀`
/// and `X⁰₁ ↦ X¹₁` (quoted verbatim in Section 8), and the robust
/// renaming undoes exactly that rename.
#[test]
fn first_retraction_matches_paper_text() {
    let mut s = Staircase::new();
    let d = s.scripted_core_chase(1);
    // The fold is attached to the last application of step 0.
    let fold = &d.steps().last().unwrap().simplification;
    assert_eq!(fold.apply_term(s.x(0, 0)), s.x(1, 0));
    assert_eq!(fold.apply_term(s.x(0, 1)), s.x(1, 1));

    let rs = RobustSequence::build(&d);
    let g_last = rs.sets.last().unwrap();
    // After robust renaming, the bottom of G is named X0_0 and height 1
    // is named X0_1 — the old names survive.
    assert!(g_last.mentions(s.x(0, 0)));
    assert!(g_last.mentions(s.x(0, 1)));
    assert!(
        !g_last.mentions(s.x(1, 0)),
        "folded-away name must not resurface"
    );
}
