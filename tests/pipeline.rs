//! End-to-end pipeline tests: text → parse → chase → entail/decide.

use treechase::prelude::*;

#[test]
fn parse_chase_entail_roundtrip() {
    let src = "
        % A tiny org chart.
        works_for(ann, bea). works_for(bea, cal).
        Boss: works_for(X, Y) -> boss(Y, X).
        Up:   boss(X, Y), boss(Y, Z) -> boss(X, Z).
    ";
    let mut kb = KnowledgeBase::from_text(src).unwrap();
    let res = kb.chase(&ChaseConfig::variant(ChaseVariant::Core));
    assert!(res.outcome.terminated());

    let q1 = kb.parse_query("boss(cal, ann)").unwrap();
    assert!(entail(&kb, &q1, &ChaseConfig::default()).is_entailed());

    let q2 = kb.parse_query("boss(ann, cal)").unwrap();
    assert!(entail(&kb, &q2, &ChaseConfig::default()).is_not_entailed());
}

#[test]
fn program_queries_evaluate_against_chase() {
    let prog = parse_program(
        "
        r(a, b). r(b, c).
        T: r(X, Y), r(Y, Z) -> r(X, Z).
        Qpos: ?- r(a, c).
        Qneg: ?- r(c, a).
        ",
    )
    .unwrap();
    let (kb, queries) = KnowledgeBase::from_program(prog);
    let res = kb.chase(&ChaseConfig::variant(ChaseVariant::Restricted));
    assert!(res.outcome.terminated());
    let by_name: std::collections::HashMap<_, _> = queries.into_iter().collect();
    assert!(maps_to(&by_name["Qpos"], &res.final_instance));
    assert!(!maps_to(&by_name["Qneg"], &res.final_instance));
}

#[test]
fn nonterminating_kb_still_answers_positives() {
    let mut kb = KnowledgeBase::from_text("p(a). G: p(X) -> e(X, Y), p(Y).").unwrap();
    let q = kb.parse_query("e(A, B), e(B, C), e(C, D)").unwrap();
    let cfg = ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(30);
    assert!(entail(&kb, &q, &cfg).is_entailed());
}

#[test]
fn decide_races_on_paper_kbs() {
    let mut kb = KnowledgeBase::staircase();
    let q = kb.parse_query("f(X), h(X, X)").unwrap();
    let out = decide(&kb, &q, &DecideConfig::default());
    assert!(matches!(out, DecideOutcome::Entailed { .. }), "{out:?}");
}

#[test]
fn chase_results_are_reproducible_across_runs() {
    use treechase::engine::ChaseStats;

    let kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> r(Y, Z).").unwrap();
    let cfg = ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(7);
    let r1 = kb.chase(&cfg);
    let r2 = kb.chase(&cfg);
    assert_eq!(r1.final_instance, r2.final_instance);
    // Wall time is the one legitimately nondeterministic counter.
    let strip = |s: ChaseStats| ChaseStats {
        wall_us: 0,
        match_time_us: 0,
        ..s
    };
    assert_eq!(strip(r1.stats), strip(r2.stats));
}

#[test]
fn display_renders_parsed_symbols() {
    let kb = KnowledgeBase::from_text("likes(ann, bea).").unwrap();
    let rendered = format!("{}", kb.facts.with(&kb.vocab));
    assert_eq!(rendered, "{likes(ann, bea)}");
}
