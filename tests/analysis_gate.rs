//! Integration tests of the admission-time analysis gate: property
//! tests tying static certificates to actual chase behaviour, the
//! paper's two headline KBs landing in distinct plan shapes, and the
//! analysis block a service submit puts on the wire.

use treechase::analysis::{analyze_with_budget, StratumShape};
use treechase::atoms::Vocabulary;
use treechase::core::{analyze_kb, KnowledgeBase};
use treechase::engine::{ChaseConfig, ChaseVariant};
use treechase::homomorphism::SearchBudget;
use treechase::kbs::random::{random_instance, random_linear_ruleset, InstanceConfig};
use treechase::service::{protocol, JobSpec, Service, ServiceConfig};

fn budget() -> SearchBudget {
    SearchBudget::unlimited().with_node_limit(4_000)
}

/// Probe horizon used throughout: separates the staircase from the
/// elevator (see `chase_core::gate`) while staying cheap in debug
/// builds.
const PROBE: usize = 80;

/// Soundness of the fes certificates, checked against the engine: on
/// seeded random linear rulesets, whenever the analyzer certifies
/// termination (weak/joint acyclicity or MFA), the restricted chase
/// from a seeded random instance really does reach a fixpoint within a
/// generous application budget. A single counterexample here would mean
/// an unsound certificate, so the budget failure mode is a hard panic.
#[test]
fn certified_fes_rulesets_really_terminate() {
    let mut certified = 0;
    for seed in 0..40u64 {
        let mut vocab = Vocabulary::new();
        let rules = random_linear_ruleset(&mut vocab, 4, seed);
        let report = analyze_with_budget(&rules, &budget());
        if !report.certified_fes() {
            continue;
        }
        certified += 1;
        let facts = random_instance(
            &mut vocab,
            &InstanceConfig {
                atoms: 12,
                terms: 8,
                const_percent: 50,
                preds: vec!["r", "s"],
            },
            seed,
        );
        let kb = KnowledgeBase::new(vocab, facts, rules);
        let res =
            kb.chase(&ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(20_000));
        assert!(
            res.outcome.terminated(),
            "seed {seed}: certified-terminating ruleset did not reach a fixpoint \
             within 20k applications (outcome {:?})",
            res.outcome
        );
    }
    // The generator mixes datalog-ish and existential chain rules, so a
    // healthy fraction of seeds must actually exercise the property.
    assert!(
        certified >= 5,
        "only {certified}/40 seeds produced a certified-terminating ruleset; \
         the property test lost its teeth"
    );
}

/// The steepening staircase (paper §5): not weakly acyclic, MFA finds a
/// cyclic-term witness (divergence *evidence* — the verdict is
/// likely-refuted, since a cyclic Skolem term refutes MFA-class
/// membership, not termination itself), yet core-bts certified by the
/// plateauing core-width probe — and the plan puts its rules in a
/// core-bounded loop.
#[test]
fn staircase_is_refuted_weakly_acyclic_but_certified_core_bts() {
    let kb = KnowledgeBase::staircase();
    let gate = analyze_kb(&kb, &budget(), PROBE);
    assert!(!gate.report.weakly_acyclic);
    assert!(
        gate.report.terminating.is_likely_refuted(),
        "the staircase chase never terminates; MFA's cyclic-term witness \
         must mark fes likely-refuted: {}",
        gate.report.terminating
    );
    assert!(gate.report.terminating.suspects_divergence());
    assert!(
        gate.report.certified_core_bts(),
        "core-width probe must certify core-bts: {}",
        gate.report.core_bts
    );
    assert!(gate
        .plan
        .strata
        .iter()
        .any(|s| s.shape == StratumShape::CoreBoundedLoop));
    assert_eq!(gate.plan.recommended_variant(), ChaseVariant::Core);
}

/// The inflating elevator (paper §6): its universal model has treewidth
/// 1, so the restricted-width probe plateaus at a small constant, bts
/// stays unrefuted, and the plan shape is a bounded-width loop — a
/// restricted-chase strategy, distinct from the staircase's core plan.
#[test]
fn elevator_is_treewidth_compatible_and_gets_restricted_plan() {
    let kb = KnowledgeBase::elevator();
    let gate = analyze_kb(&kb, &budget(), PROBE);
    assert!(!gate.report.bts.is_refuted(), "{}", gate.report.bts);
    let w = gate
        .evidence
        .restricted_width
        .plateau()
        .expect("restricted profile must plateau");
    assert!(
        w <= 3,
        "elevator restricted-chase width must stay near its treewidth-1 \
         universal model, got {w}"
    );
    assert!(gate
        .plan
        .strata
        .iter()
        .any(|s| s.shape == StratumShape::BoundedWidthLoop));
    assert_eq!(gate.plan.recommended_variant(), ChaseVariant::Restricted);
}

/// The two headline KBs must land in *distinct* plan shapes — this is
/// the separation the admission gate exists to make.
#[test]
fn staircase_and_elevator_plans_are_distinct() {
    let stairs = analyze_kb(&KnowledgeBase::staircase(), &budget(), PROBE);
    let lift = analyze_kb(&KnowledgeBase::elevator(), &budget(), PROBE);
    let shapes =
        |p: &treechase::analysis::ChasePlan| p.strata.iter().map(|s| s.shape).collect::<Vec<_>>();
    assert_ne!(shapes(&stairs.plan), shapes(&lift.plan));
    assert_ne!(
        stairs.plan.recommended_variant(),
        lift.plan.recommended_variant()
    );
}

/// Submitting a certified-terminating ruleset with auto-strategy on:
/// the admission gate certifies fes, derives a stratified terminating
/// plan, applies it to the job's config, and the analysis block
/// serializes for the wire with the plan attached.
#[test]
fn submit_analyzed_attaches_plan_and_analysis_block() {
    let kb = KnowledgeBase::from_text(
        "e(a, b). e(b, c).
         Copy:  e(X, Y) -> r(X, Y).
         Close: r(X, Y), r(Y, Z) -> r(X, Z).
         Label: r(X, Y) -> lab(X, L).",
    )
    .unwrap();
    let rules = kb.rules.clone();
    let svc = Service::with_config(
        2,
        ServiceConfig {
            analysis_probe: PROBE,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut spec = JobSpec::from_kb("auto", kb, ChaseConfig::default());
    spec.auto_strategy = true;
    let (id, admission) = svc.submit_analyzed(spec).expect("admitted");
    assert!(admission.strategy_applied);
    let gate = admission.gate.as_ref().expect("auto submits run the gate");
    assert!(gate.report.certified_fes());
    assert!(gate.plan.strata.iter().all(|s| !s.shape.needs_core()));

    // The analysis block as the wire sees it: report + stratified plan.
    let json = protocol::analysis_to_json(gate, &rules).to_string();
    let parsed = treechase::service::parse_json(&json).unwrap();
    assert_eq!(
        parsed
            .get("report")
            .and_then(|r| r.get("terminating"))
            .and_then(|t| t.get("status"))
            .and_then(|s| s.as_str()),
        Some("certified")
    );
    let strata = parsed
        .get("plan")
        .and_then(|p| p.get("strata"))
        .and_then(|s| s.as_arr())
        .expect("plan.strata array");
    assert!(!strata.is_empty());
    assert_eq!(
        parsed.get("admissible").and_then(|a| a.as_bool()),
        Some(true)
    );

    // And the job itself runs to termination under the applied plan.
    let result = svc.take_result(id).expect("job result");
    assert!(result.outcome.terminated(), "{:?}", result.outcome);
    svc.shutdown();
}
