//! Integration tests of the admission-time analysis gate: property
//! tests tying static certificates to actual chase behaviour, the
//! paper's two headline KBs landing in distinct plan shapes, and the
//! analysis block a service submit puts on the wire.

use treechase::analysis::{
    analyze_with_budget, critical_instance, Certificate, KBoundedOutcome, Refutation, StratumShape,
    Verdict,
};
use treechase::atoms::Vocabulary;
use treechase::core::{analyze_kb, KnowledgeBase};
use treechase::engine::{ChaseConfig, ChaseVariant};
use treechase::homomorphism::SearchBudget;
use treechase::kbs::random::{random_instance, random_linear_ruleset, InstanceConfig};
use treechase::service::{protocol, JobSpec, Service, ServiceConfig};

fn budget() -> SearchBudget {
    SearchBudget::unlimited().with_node_limit(4_000)
}

/// Probe horizon used throughout: separates the staircase from the
/// elevator (see `chase_core::gate`) while staying cheap in debug
/// builds.
const PROBE: usize = 80;

/// Soundness of the fes certificates, checked against the engine: on
/// seeded random linear rulesets, whenever the analyzer certifies
/// termination (weak/joint acyclicity or MFA), the restricted chase
/// from a seeded random instance really does reach a fixpoint within a
/// generous application budget. A single counterexample here would mean
/// an unsound certificate, so the budget failure mode is a hard panic.
#[test]
fn certified_fes_rulesets_really_terminate() {
    let mut certified = 0;
    for seed in 0..40u64 {
        let mut vocab = Vocabulary::new();
        let rules = random_linear_ruleset(&mut vocab, 4, seed);
        let report = analyze_with_budget(&rules, &budget());
        if !report.certified_fes() {
            continue;
        }
        certified += 1;
        let facts = random_instance(
            &mut vocab,
            &InstanceConfig {
                atoms: 12,
                terms: 8,
                const_percent: 50,
                preds: vec!["r", "s"],
            },
            seed,
        );
        let kb = KnowledgeBase::new(vocab, facts, rules);
        let res =
            kb.chase(&ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(20_000));
        assert!(
            res.outcome.terminated(),
            "seed {seed}: certified-terminating ruleset did not reach a fixpoint \
             within 20k applications (outcome {:?})",
            res.outcome
        );
    }
    // The generator mixes datalog-ish and existential chain rules, so a
    // healthy fraction of seeds must actually exercise the property.
    assert!(
        certified >= 5,
        "only {certified}/40 seeds produced a certified-terminating ruleset; \
         the property test lost its teeth"
    );
}

/// Exactness of the linear decision, checked against the engine on the
/// same seeded random linear rulesets: the decision must never be
/// inconclusive on a linear ruleset at this budget, a `Certified`
/// verdict means the Skolem chase really does reach a fixpoint from the
/// critical instance (the hardest fact base), and a `Refuted` verdict
/// means the same chase really does blow through a generous application
/// budget without plateauing. Either direction failing on any seed
/// would make the "exact" claim of `linear_termination` a lie.
#[test]
fn linear_decision_is_exact_on_random_linear_rulesets() {
    let (mut certified, mut refuted) = (0usize, 0usize);
    for seed in 0..40u64 {
        let mut vocab = Vocabulary::new();
        let rules = random_linear_ruleset(&mut vocab, 4, seed);
        let report = analyze_with_budget(&rules, &budget());
        assert_eq!(
            report.linear_rules.len(),
            rules.len(),
            "seed {seed}: every rule of a random linear ruleset is linear"
        );
        let facts = critical_instance(&mut vocab, &rules);
        let kb = KnowledgeBase::new(vocab, facts, rules);
        let chase = |cap: usize| {
            kb.chase(&ChaseConfig::variant(ChaseVariant::SemiOblivious).with_max_applications(cap))
        };
        match &report.linear_fragment {
            Verdict::Certified(Certificate::LinearTermination) => {
                certified += 1;
                let res = chase(20_000);
                assert!(
                    res.outcome.terminated(),
                    "seed {seed}: linear-certified ruleset did not reach a Skolem \
                     fixpoint from the critical instance (outcome {:?})",
                    res.outcome
                );
            }
            Verdict::Refuted(Refutation::LinearNonTermination { rule }) => {
                refuted += 1;
                let res = chase(2_000);
                assert!(
                    !res.outcome.terminated(),
                    "seed {seed}: linear refutation (pumping rule {rule}) but the \
                     critical Skolem chase plateaued after {} applications",
                    res.stats.applications
                );
            }
            other => panic!(
                "seed {seed}: the exact linear decision returned a non-verdict \
                 on a fully linear ruleset: {other:?}"
            ),
        }
    }
    // The generator mixes swap (datalog) and chain (existential) heads,
    // so both directions of the decision must be exercised.
    assert!(
        certified >= 5 && refuted >= 5,
        "decision lost its teeth: {certified} certified / {refuted} refuted of 40 seeds"
    );
}

/// The steepening staircase (paper §5): not weakly acyclic, MFA finds a
/// cyclic-term witness (divergence *evidence* — the verdict is
/// likely-refuted, since a cyclic Skolem term refutes MFA-class
/// membership, not termination itself), yet core-bts certified by the
/// plateauing core-width probe — and the plan puts its rules in a
/// core-bounded loop.
#[test]
fn staircase_is_refuted_weakly_acyclic_but_certified_core_bts() {
    let kb = KnowledgeBase::staircase();
    let gate = analyze_kb(&kb, &budget(), PROBE);
    assert!(!gate.report.weakly_acyclic);
    assert!(
        gate.report.terminating.is_likely_refuted(),
        "the staircase chase never terminates; MFA's cyclic-term witness \
         must mark fes likely-refuted: {}",
        gate.report.terminating
    );
    assert!(gate.report.terminating.suspects_divergence());
    assert!(
        gate.report.certified_core_bts(),
        "core-width probe must certify core-bts: {}",
        gate.report.core_bts
    );
    assert!(gate
        .plan
        .strata
        .iter()
        .any(|s| s.shape == StratumShape::CoreBoundedLoop));
    assert_eq!(gate.plan.recommended_variant(), ChaseVariant::Core);
}

/// The inflating elevator (paper §6): its universal model has treewidth
/// 1, so the restricted-width probe plateaus at a small constant, bts
/// stays unrefuted, and the plan shape is a bounded-width loop — a
/// restricted-chase strategy, distinct from the staircase's core plan.
#[test]
fn elevator_is_treewidth_compatible_and_gets_restricted_plan() {
    let kb = KnowledgeBase::elevator();
    let gate = analyze_kb(&kb, &budget(), PROBE);
    assert!(!gate.report.bts.is_refuted(), "{}", gate.report.bts);
    let w = gate
        .evidence
        .restricted_width
        .plateau()
        .expect("restricted profile must plateau");
    assert!(
        w <= 3,
        "elevator restricted-chase width must stay near its treewidth-1 \
         universal model, got {w}"
    );
    assert!(gate
        .plan
        .strata
        .iter()
        .any(|s| s.shape == StratumShape::BoundedWidthLoop));
    assert_eq!(gate.plan.recommended_variant(), ChaseVariant::Restricted);
}

/// The two headline KBs must land in *distinct* plan shapes — this is
/// the separation the admission gate exists to make.
#[test]
fn staircase_and_elevator_plans_are_distinct() {
    let stairs = analyze_kb(&KnowledgeBase::staircase(), &budget(), PROBE);
    let lift = analyze_kb(&KnowledgeBase::elevator(), &budget(), PROBE);
    let shapes =
        |p: &treechase::analysis::ChasePlan| p.strata.iter().map(|s| s.shape).collect::<Vec<_>>();
    assert_ne!(shapes(&stairs.plan), shapes(&lift.plan));
    assert_ne!(
        stairs.plan.recommended_variant(),
        lift.plan.recommended_variant()
    );
}

/// Submitting a certified-terminating ruleset with auto-strategy on:
/// the admission gate certifies fes, derives a stratified terminating
/// plan, applies it to the job's config, and the analysis block
/// serializes for the wire with the plan attached.
#[test]
fn submit_analyzed_attaches_plan_and_analysis_block() {
    let kb = KnowledgeBase::from_text(
        "e(a, b). e(b, c).
         Copy:  e(X, Y) -> r(X, Y).
         Close: r(X, Y), r(Y, Z) -> r(X, Z).
         Label: r(X, Y) -> lab(X, L).",
    )
    .unwrap();
    let rules = kb.rules.clone();
    let svc = Service::with_config(
        2,
        ServiceConfig {
            analysis_probe: PROBE,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut spec = JobSpec::from_kb("auto", kb, ChaseConfig::default());
    spec.auto_strategy = true;
    let (id, admission) = svc.submit_analyzed(spec).expect("admitted");
    assert!(admission.strategy_applied);
    let gate = admission.gate.as_ref().expect("auto submits run the gate");
    assert!(gate.report.certified_fes());
    assert!(gate.plan.strata.iter().all(|s| !s.shape.needs_core()));

    // The analysis block as the wire sees it: report + stratified plan.
    let json = protocol::analysis_to_json(gate, &rules).to_string();
    let parsed = treechase::service::parse_json(&json).unwrap();
    assert_eq!(
        parsed
            .get("report")
            .and_then(|r| r.get("terminating"))
            .and_then(|t| t.get("status"))
            .and_then(|s| s.as_str()),
        Some("certified")
    );
    let strata = parsed
        .get("plan")
        .and_then(|p| p.get("strata"))
        .and_then(|s| s.as_arr())
        .expect("plan.strata array");
    assert!(!strata.is_empty());
    assert_eq!(
        parsed.get("admissible").and_then(|a| a.as_bool()),
        Some(true)
    );

    // And the job itself runs to termination under the applied plan.
    let result = svc.take_result(id).expect("job result");
    assert!(result.outcome.terminated(), "{:?}", result.outcome);
    svc.shutdown();
}

/// Wire-format snapshots of every analyzer-v3 verdict status: the JSON
/// a client sees for the new exact certificates, the new refutation,
/// and the k-boundedness outcome, pinned field by field.
#[test]
fn new_verdict_statuses_serialize_to_stable_wire_shapes() {
    let snap = |v: &Verdict| protocol::analysis_verdict_to_json(v).to_string();
    assert_eq!(
        snap(&Verdict::Certified(Certificate::LinearTermination)),
        r#"{"status":"certified","certificate":"linear-termination"}"#
    );
    assert_eq!(
        snap(&Verdict::Certified(Certificate::KBounded(3))),
        r#"{"status":"certified","certificate":"k-bounded","k":3}"#
    );
    assert_eq!(
        snap(&Verdict::Refuted(Refutation::LinearNonTermination {
            rule: 2
        })),
        r#"{"status":"refuted","refutation":"linear-non-termination","rule":2}"#
    );
    assert_eq!(
        snap(&Verdict::Inconclusive { budget: 7 }),
        r#"{"status":"inconclusive","budget":7}"#
    );
    let ksnap = |o: &KBoundedOutcome| protocol::kbounded_to_json(o).to_string();
    assert_eq!(
        ksnap(&KBoundedOutcome::Bounded {
            k: 2,
            applications: 5
        }),
        r#"{"status":"bounded","k":2,"applications":5}"#
    );
    assert_eq!(
        ksnap(&KBoundedOutcome::DepthUnbounded { applications: 9 }),
        r#"{"status":"depth-unbounded","applications":9}"#
    );
    assert_eq!(
        ksnap(&KBoundedOutcome::BudgetExhausted { applications: 0 }),
        r#"{"status":"budget-exhausted","applications":0}"#
    );
}

/// End-to-end `analyze --json` shape for a linear, non-terminating KB:
/// the exact linear refutation reaches the wire (not the MFA evidence
/// it overrides), the report carries the linear fragment and the
/// k-boundedness outcome, and the certificate-priced envelope rides
/// along with its provenance.
#[test]
fn analysis_json_carries_linear_fragment_kbounded_and_envelope() {
    let kb = KnowledgeBase::from_text("r(a, b). Step: r(X, Y) -> r(Y, Z).").unwrap();
    let gate = analyze_kb(&kb, &budget(), PROBE);
    let json = protocol::analysis_to_json(&gate, &kb.rules).to_string();
    let parsed = treechase::service::parse_json(&json).unwrap();
    let report = parsed.get("report").expect("report");
    let terminating = report.get("terminating").expect("terminating");
    assert_eq!(
        terminating.get("status").and_then(|s| s.as_str()),
        Some("refuted"),
        "the linear decision refutes termination outright: {json}"
    );
    assert_eq!(
        terminating.get("refutation").and_then(|s| s.as_str()),
        Some("linear-non-termination")
    );
    assert_eq!(terminating.get("rule").and_then(|r| r.as_i64()), Some(0));
    assert_eq!(
        report
            .get("linear_fragment")
            .and_then(|f| f.get("status"))
            .and_then(|s| s.as_str()),
        Some("refuted")
    );
    assert_eq!(
        report
            .get("linear_rules")
            .and_then(|a| a.as_arr())
            .map(<[_]>::len),
        Some(1)
    );
    assert!(
        report
            .get("kbounded")
            .and_then(|k| k.get("status"))
            .and_then(|s| s.as_str())
            .is_some(),
        "kbounded outcome must serialize: {json}"
    );
    assert!(parsed.get("cost_class").and_then(|c| c.as_str()).is_some());
    let provenance = parsed
        .get("provenance")
        .and_then(|p| p.as_str())
        .expect("provenance names the pricing certificate");
    assert!(!provenance.is_empty());
    let envelope = parsed.get("envelope").expect("envelope");
    for field in ["max_apps", "mem_soft", "mem_hard", "deadline_ms"] {
        assert!(
            envelope.get(field).and_then(|v| v.as_i64()).is_some(),
            "envelope.{field} missing: {json}"
        );
    }
}
