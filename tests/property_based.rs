//! Property-based tests (proptest) over the core data structures and
//! invariants: substitution algebra, homomorphism/core laws, treewidth
//! monotonicity, decomposition validity, and chase universality.

use proptest::prelude::*;
use treechase::atoms::{Atom, AtomSet, PredId, Substitution, Term, VarId};
use treechase::homomorphism::{core_of, hom_equivalent, is_core, isomorphism, maps_to};
use treechase::treewidth::{
    min_degree_decomposition, min_fill_decomposition, treewidth_bounds,
};

fn term_strategy(vars: u32) -> impl Strategy<Value = Term> {
    (0..vars).prop_map(|i| Term::Var(VarId::from_raw(i)))
}

fn atom_strategy(preds: u32, vars: u32) -> impl Strategy<Value = Atom> {
    (
        0..preds,
        term_strategy(vars),
        term_strategy(vars),
    )
        .prop_map(|(p, a, b)| Atom::new(PredId::from_raw(p), vec![a, b]))
}

fn atomset_strategy(max_atoms: usize) -> impl Strategy<Value = AtomSet> {
    prop::collection::vec(atom_strategy(2, 8), 1..max_atoms)
        .prop_map(|atoms| atoms.into_iter().collect())
}

fn substitution_strategy(vars: u32) -> impl Strategy<Value = Substitution> {
    prop::collection::btree_map(
        (0..vars).prop_map(VarId::from_raw),
        term_strategy(vars),
        0..6,
    )
    .prop_map(Substitution::from_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Substitution composition is function composition.
    #[test]
    fn substitution_then_is_composition(
        s in substitution_strategy(8),
        t in substitution_strategy(8),
        v in 0u32..8,
    ) {
        let c = s.then(&t);
        let term = Term::Var(VarId::from_raw(v));
        prop_assert_eq!(c.apply_term(term), t.apply_term(s.apply_term(term)));
    }

    /// Composition is associative (as functions).
    #[test]
    fn substitution_composition_associative(
        s in substitution_strategy(8),
        t in substitution_strategy(8),
        u in substitution_strategy(8),
        v in 0u32..8,
    ) {
        let left = s.then(&t).then(&u);
        let right = s.then(&t.then(&u));
        let term = Term::Var(VarId::from_raw(v));
        prop_assert_eq!(left.apply_term(term), right.apply_term(term));
    }

    /// Applying a substitution never grows an atomset.
    #[test]
    fn apply_never_grows(a in atomset_strategy(12), s in substitution_strategy(8)) {
        prop_assert!(s.apply_set(&a).len() <= a.len());
    }

    /// The core is hom-equivalent to the input, is itself a core, and the
    /// witnessing retraction really is one.
    #[test]
    fn core_laws(a in atomset_strategy(10)) {
        let res = core_of(&a);
        prop_assert!(hom_equivalent(&a, &res.core));
        prop_assert!(is_core(&res.core));
        prop_assert!(res.retraction.is_retraction_of(&a));
        prop_assert_eq!(res.retraction.apply_set(&a), res.core.clone());
        // Idempotence up to isomorphism.
        let twice = core_of(&res.core);
        prop_assert!(isomorphism(&res.core, &twice.core).is_some());
    }

    /// Homomorphic images preserve CQ satisfaction: if q maps to a and a
    /// maps to b then q maps to b (composition closure).
    #[test]
    fn hom_composition_closure(
        q in atomset_strategy(4),
        a in atomset_strategy(8),
        b in atomset_strategy(8),
    ) {
        if maps_to(&q, &a) && maps_to(&a, &b) {
            prop_assert!(maps_to(&q, &b));
        }
    }

    /// Subsets have smaller-or-equal treewidth (Fact 1), certified via
    /// upper/lower bound sandwiches.
    #[test]
    fn treewidth_monotone_under_subset(a in atomset_strategy(12), keep in 0usize..12) {
        let atoms: Vec<Atom> = a.iter().cloned().collect();
        let sub: AtomSet = atoms.into_iter().take(keep.max(1)).collect();
        let b_sub = treewidth_bounds(&sub);
        let b_all = treewidth_bounds(&a);
        // Certified direction only: lower(sub) cannot exceed upper(all).
        prop_assert!(b_sub.lower <= b_all.upper);
    }

    /// Both elimination heuristics always produce decompositions that
    /// validate against the instance.
    #[test]
    fn heuristic_decompositions_validate(a in atomset_strategy(14)) {
        let d1 = min_degree_decomposition(&a);
        let d2 = min_fill_decomposition(&a);
        prop_assert!(d1.validate(&a).is_ok());
        prop_assert!(d2.validate(&a).is_ok());
        prop_assert!(treewidth_bounds(&a).lower <= d1.width());
        prop_assert!(treewidth_bounds(&a).lower <= d2.width());
    }

    /// Isomorphic rename invariance: renaming all variables injectively
    /// yields an isomorphic atomset with identical treewidth bounds.
    #[test]
    fn rename_invariance(a in atomset_strategy(10), offset in 100u32..200) {
        let rename = Substitution::from_pairs(
            a.vars().into_iter().map(|v| {
                (v, Term::Var(VarId::from_raw(v.raw() + offset)))
            }),
        );
        let b = rename.apply_set(&a);
        prop_assert!(isomorphism(&a, &b).is_some());
        prop_assert_eq!(treewidth_bounds(&a), treewidth_bounds(&b));
        prop_assert_eq!(is_core(&a), is_core(&b));
    }
}

mod chase_properties {
    use super::*;
    use treechase::engine::{
        run_chase, ChaseConfig, ChaseVariant, Rule, RuleSet, SchedulerKind,
    };
    use treechase::prelude::Vocabulary;

    fn rule_strategy() -> impl Strategy<Value = Rule> {
        // Single-body-atom rules r_p(X,Y) → h_p(Y, Z or X).
        (0u32..2, 0u32..2, proptest::bool::ANY).prop_map(|(bp, hp, existential)| {
            let x = Term::Var(VarId::from_raw(1000));
            let y = Term::Var(VarId::from_raw(1001));
            let z = Term::Var(VarId::from_raw(1002));
            let body: AtomSet = [Atom::new(PredId::from_raw(bp), vec![x, y])]
                .into_iter()
                .collect();
            let head: AtomSet = if existential {
                [Atom::new(PredId::from_raw(hp), vec![y, z])]
                    .into_iter()
                    .collect()
            } else {
                [Atom::new(PredId::from_raw(hp), vec![y, x])]
                    .into_iter()
                    .collect()
            };
            Rule::new("r", body, head).expect("nonempty")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Prop 1 shape: every recorded chase element of a fair chase maps
        /// into the final element *when the chase terminates* (the final
        /// element is then a universal model).
        #[test]
        fn terminated_chase_elements_map_into_final(
            facts in atomset_strategy(6),
            rules in prop::collection::vec(rule_strategy(), 1..3),
            seed in 0u64..8,
        ) {
            let ruleset: RuleSet = rules.into_iter().collect();
            let mut vocab = Vocabulary::new();
            let cfg = ChaseConfig::variant(ChaseVariant::Core)
                .with_scheduler(SchedulerKind::Random(seed))
                .with_max_applications(40)
                .with_max_atoms(500);
            let res = run_chase(&mut vocab, &facts, &ruleset, &cfg);
            if res.outcome.terminated() {
                let d = res.derivation.unwrap();
                prop_assert!(d.all_instances_map_into(&res.final_instance));
                prop_assert!(is_core(&res.final_instance));
            }
        }

        /// Restricted and core chase entail the same CQs on whatever
        /// horizon both reach (they share the universal aggregation).
        #[test]
        fn variants_agree_on_query_membership(
            facts in atomset_strategy(5),
            rules in prop::collection::vec(rule_strategy(), 1..3),
            q in atomset_strategy(3),
        ) {
            let ruleset: RuleSet = rules.into_iter().collect();
            let run = |variant| {
                let mut vocab = Vocabulary::new();
                run_chase(
                    &mut vocab,
                    &facts,
                    &ruleset,
                    &ChaseConfig::variant(variant).with_max_applications(60),
                )
            };
            let r = run(ChaseVariant::Restricted);
            let c = run(ChaseVariant::Core);
            if r.outcome.terminated() && c.outcome.terminated() {
                prop_assert_eq!(
                    maps_to(&q, &r.final_instance),
                    maps_to(&q, &c.final_instance)
                );
            }
        }
    }
}
