//! Randomized property tests over the core data structures and
//! invariants: substitution algebra, homomorphism/core laws, treewidth
//! monotonicity, decomposition validity, and chase universality.
//!
//! Cases are generated with the engine's deterministic [`SplitMix64`]
//! generator (fixed seeds), so every run exercises the same inputs —
//! failures are reproducible without a shrinker.

use treechase::atoms::{Atom, AtomSet, PredId, Substitution, Term, VarId};
use treechase::engine::prng::SplitMix64;
use treechase::homomorphism::{core_of, hom_equivalent, is_core, isomorphism, maps_to};
use treechase::treewidth::{min_degree_decomposition, min_fill_decomposition, treewidth_bounds};

fn random_term(rng: &mut SplitMix64, vars: u32) -> Term {
    Term::Var(VarId::from_raw(rng.gen_range(vars as usize) as u32))
}

fn random_atom(rng: &mut SplitMix64, preds: u32, vars: u32) -> Atom {
    Atom::new(
        PredId::from_raw(rng.gen_range(preds as usize) as u32),
        vec![random_term(rng, vars), random_term(rng, vars)],
    )
}

fn random_atomset(rng: &mut SplitMix64, max_atoms: usize) -> AtomSet {
    let n = 1 + rng.gen_range(max_atoms.max(2) - 1);
    (0..n).map(|_| random_atom(rng, 2, 8)).collect()
}

fn random_substitution(rng: &mut SplitMix64, vars: u32) -> Substitution {
    let n = rng.gen_range(6);
    Substitution::from_pairs((0..n).map(|_| {
        (
            VarId::from_raw(rng.gen_range(vars as usize) as u32),
            random_term(rng, vars),
        )
    }))
}

/// Substitution composition is function composition, and associative.
#[test]
fn substitution_composition_laws() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for _ in 0..64 {
        let s = random_substitution(&mut rng, 8);
        let t = random_substitution(&mut rng, 8);
        let u = random_substitution(&mut rng, 8);
        for v in 0..8u32 {
            let term = Term::Var(VarId::from_raw(v));
            let c = s.then(&t);
            assert_eq!(c.apply_term(term), t.apply_term(s.apply_term(term)));
            let left = s.then(&t).then(&u);
            let right = s.then(&t.then(&u));
            assert_eq!(left.apply_term(term), right.apply_term(term));
        }
    }
}

/// Applying a substitution never grows an atomset.
#[test]
fn apply_never_grows() {
    let mut rng = SplitMix64::new(2);
    for _ in 0..64 {
        let a = random_atomset(&mut rng, 12);
        let s = random_substitution(&mut rng, 8);
        assert!(s.apply_set(&a).len() <= a.len());
    }
}

/// The core is hom-equivalent to the input, is itself a core, and the
/// witnessing retraction really is one. Idempotent up to isomorphism.
#[test]
fn core_laws() {
    let mut rng = SplitMix64::new(3);
    for _ in 0..48 {
        let a = random_atomset(&mut rng, 10);
        let res = core_of(&a);
        assert!(hom_equivalent(&a, &res.core));
        assert!(is_core(&res.core));
        assert!(res.retraction.is_retraction_of(&a));
        assert_eq!(res.retraction.apply_set(&a), res.core);
        let twice = core_of(&res.core);
        assert!(isomorphism(&res.core, &twice.core).is_some());
    }
}

/// Homomorphic images preserve CQ satisfaction: if q maps to a and a
/// maps to b then q maps to b (composition closure).
#[test]
fn hom_composition_closure() {
    let mut rng = SplitMix64::new(4);
    for _ in 0..64 {
        let q = random_atomset(&mut rng, 4);
        let a = random_atomset(&mut rng, 8);
        let b = random_atomset(&mut rng, 8);
        if maps_to(&q, &a) && maps_to(&a, &b) {
            assert!(maps_to(&q, &b));
        }
    }
}

/// Subsets have smaller-or-equal treewidth (Fact 1), certified via
/// upper/lower bound sandwiches.
#[test]
fn treewidth_monotone_under_subset() {
    let mut rng = SplitMix64::new(5);
    for _ in 0..48 {
        let a = random_atomset(&mut rng, 12);
        let keep = 1 + rng.gen_range(a.len());
        let atoms: Vec<Atom> = a.iter().cloned().collect();
        let sub: AtomSet = atoms.into_iter().take(keep).collect();
        let b_sub = treewidth_bounds(&sub);
        let b_all = treewidth_bounds(&a);
        // Certified direction only: lower(sub) cannot exceed upper(all).
        assert!(b_sub.lower <= b_all.upper);
    }
}

/// Both elimination heuristics always produce decompositions that
/// validate against the instance.
#[test]
fn heuristic_decompositions_validate() {
    let mut rng = SplitMix64::new(6);
    for _ in 0..48 {
        let a = random_atomset(&mut rng, 14);
        let d1 = min_degree_decomposition(&a);
        let d2 = min_fill_decomposition(&a);
        assert!(d1.validate(&a).is_ok());
        assert!(d2.validate(&a).is_ok());
        assert!(treewidth_bounds(&a).lower <= d1.width());
        assert!(treewidth_bounds(&a).lower <= d2.width());
    }
}

/// Isomorphic rename invariance: renaming all variables injectively
/// yields an isomorphic atomset with identical treewidth bounds.
#[test]
fn rename_invariance() {
    let mut rng = SplitMix64::new(7);
    for _ in 0..48 {
        let a = random_atomset(&mut rng, 10);
        let offset = 100 + rng.gen_range(100) as u32;
        let rename = Substitution::from_pairs(
            a.vars()
                .into_iter()
                .map(|v| (v, Term::Var(VarId::from_raw(v.raw() + offset)))),
        );
        let b = rename.apply_set(&a);
        assert!(isomorphism(&a, &b).is_some());
        assert_eq!(treewidth_bounds(&a), treewidth_bounds(&b));
        assert_eq!(is_core(&a), is_core(&b));
    }
}

mod chase_properties {
    use super::*;
    use treechase::engine::{run_chase, ChaseConfig, ChaseVariant, Rule, RuleSet, SchedulerKind};
    use treechase::prelude::Vocabulary;

    // Single-body-atom rules r_p(X,Y) → h_p(Y, Z or X).
    fn random_rule(rng: &mut SplitMix64) -> Rule {
        let bp = rng.gen_range(2) as u32;
        let hp = rng.gen_range(2) as u32;
        let existential = rng.gen_bool();
        let x = Term::Var(VarId::from_raw(1000));
        let y = Term::Var(VarId::from_raw(1001));
        let z = Term::Var(VarId::from_raw(1002));
        let body: AtomSet = [Atom::new(PredId::from_raw(bp), vec![x, y])]
            .into_iter()
            .collect();
        let head: AtomSet = if existential {
            [Atom::new(PredId::from_raw(hp), vec![y, z])]
                .into_iter()
                .collect()
        } else {
            [Atom::new(PredId::from_raw(hp), vec![y, x])]
                .into_iter()
                .collect()
        };
        Rule::new("r", body, head).expect("nonempty")
    }

    fn random_ruleset(rng: &mut SplitMix64) -> RuleSet {
        let n = 1 + rng.gen_range(2);
        (0..n).map(|_| random_rule(rng)).collect()
    }

    /// Prop 1 shape: every recorded chase element of a fair chase maps
    /// into the final element *when the chase terminates* (the final
    /// element is then a universal model).
    #[test]
    fn terminated_chase_elements_map_into_final() {
        let mut rng = SplitMix64::new(8);
        for case in 0..24u64 {
            let facts = random_atomset(&mut rng, 6);
            let ruleset = random_ruleset(&mut rng);
            let mut vocab = Vocabulary::new();
            let cfg = ChaseConfig::variant(ChaseVariant::Core)
                .with_scheduler(SchedulerKind::Random(case))
                .with_max_applications(40)
                .with_max_atoms(500);
            let res = run_chase(&mut vocab, &facts, &ruleset, &cfg);
            if res.outcome.terminated() {
                let d = res.derivation.unwrap();
                assert!(d.all_instances_map_into(&res.final_instance));
                assert!(is_core(&res.final_instance));
            }
        }
    }

    /// Restricted and core chase entail the same CQs on whatever
    /// horizon both reach (they share the universal aggregation).
    #[test]
    fn variants_agree_on_query_membership() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..24 {
            let facts = random_atomset(&mut rng, 5);
            let ruleset = random_ruleset(&mut rng);
            let q = random_atomset(&mut rng, 3);
            let run = |variant| {
                let mut vocab = Vocabulary::new();
                run_chase(
                    &mut vocab,
                    &facts,
                    &ruleset,
                    &ChaseConfig::variant(variant).with_max_applications(60),
                )
            };
            let r = run(ChaseVariant::Restricted);
            let c = run(ChaseVariant::Core);
            if r.outcome.terminated() && c.outcome.terminated() {
                assert_eq!(
                    maps_to(&q, &r.final_instance),
                    maps_to(&q, &c.final_instance)
                );
            }
        }
    }
}
