//! Property tests for the incremental core maintainer: on seeded random
//! inputs the dirty-region maintainer must agree with the from-scratch
//! [`core_of`] up to isomorphism (cores are unique up to iso), both on
//! single core-∪-added instances and along whole chase trajectories, and
//! parallel probing must be deterministic in its *result* regardless of
//! thread interleaving.
//!
//! Cases are generated with the engine's deterministic [`SplitMix64`]
//! generator (fixed seeds), so failures are reproducible without a
//! shrinker.

use treechase::atoms::{Atom, AtomSet, PredId, Term, VarId};
use treechase::engine::prng::SplitMix64;
use treechase::homomorphism::{core_of, incremental_core, is_core, isomorphism, SearchBudget};

/// Draws a random binary atom over `vars` variables and `preds`
/// predicates.
fn random_atom(rng: &mut SplitMix64, preds: u32, vars: u32) -> Atom {
    let t = |rng: &mut SplitMix64| Term::Var(VarId::from_raw(rng.gen_range(vars as usize) as u32));
    Atom::new(
        PredId::from_raw(rng.gen_range(preds as usize) as u32),
        vec![t(rng), t(rng)],
    )
}

fn random_atomset(rng: &mut SplitMix64, max_atoms: usize, vars: u32) -> AtomSet {
    let n = 1 + rng.gen_range(max_atoms.max(2) - 1);
    (0..n).map(|_| random_atom(rng, 2, vars)).collect()
}

/// One random "core maintenance step": a cored base plus a batch of
/// added atoms that may touch base terms and fresh nulls alike.
fn random_step(seed: u64) -> (AtomSet, Vec<Atom>, Vec<VarId>) {
    let mut rng = SplitMix64::new(seed);
    let base = core_of(&random_atomset(&mut rng, 8, 6)).core;
    // Added atoms draw from a widened pool (0..10): ids 6..10 are fresh
    // nulls that the base cannot mention, the rest alias base variables.
    let n_added = 1 + rng.gen_range(4);
    let added: Vec<Atom> = (0..n_added).map(|_| random_atom(&mut rng, 2, 10)).collect();
    let base_vars = base.vars();
    let fresh: Vec<VarId> = added
        .iter()
        .flat_map(|a| a.terms().filter_map(Term::as_var))
        .filter(|v| !base_vars.contains(v))
        .collect();
    (base, added, fresh)
}

/// The incremental maintainer reaches the same core (up to isomorphism)
/// as the from-scratch algorithm on ≥200 random core-∪-added instances,
/// and its witness really is a retraction onto that core.
#[test]
fn incremental_matches_core_of_on_random_instances() {
    for seed in 0..220u64 {
        let (base, added, fresh) = random_step(seed);
        let mut full = base.clone();
        for a in &added {
            full.insert(a.clone());
        }
        let inc = incremental_core(&full, &added, &fresh, &SearchBudget::unlimited(), 1);
        let scratch = core_of(&full);
        assert!(
            !inc.stats.truncated,
            "seed {seed}: unlimited budget truncated"
        );
        assert!(
            isomorphism(&inc.core, &scratch.core).is_some(),
            "seed {seed}: incremental core not isomorphic to core_of\n  full: {full:?}\n  inc: {:?}\n  scratch: {:?}",
            inc.core,
            scratch.core
        );
        assert!(is_core(&inc.core), "seed {seed}: result is not a core");
        assert!(inc.retraction.is_retraction_of(&full));
        assert_eq!(inc.retraction.apply_set(&full), inc.core);
    }
}

/// Parallel probing is deterministic in its *result*: whatever retract a
/// 4-thread race lands on, it is a core isomorphic to the sequential
/// one, across repeated runs (thread interleavings).
#[test]
fn parallel_probing_is_deterministic_up_to_isomorphism() {
    for seed in 300..340u64 {
        let (base, added, fresh) = random_step(seed);
        let mut full = base.clone();
        for a in &added {
            full.insert(a.clone());
        }
        let reference = incremental_core(&full, &added, &fresh, &SearchBudget::unlimited(), 1);
        for _run in 0..4 {
            let par = incremental_core(&full, &added, &fresh, &SearchBudget::unlimited(), 4);
            assert!(!par.stats.truncated);
            assert!(
                is_core(&par.core),
                "seed {seed}: parallel result not a core"
            );
            assert!(
                isomorphism(&par.core, &reference.core).is_some(),
                "seed {seed}: parallel core not isomorphic to sequential core"
            );
            assert!(par.retraction.is_retraction_of(&full));
        }
    }
}

mod trajectories {
    use super::*;
    use treechase::engine::{run_chase, ChaseConfig, ChaseVariant, CoreMaintenance, Rule, RuleSet};
    use treechase::prelude::Vocabulary;

    // Single-body-atom rules r_p(X,Y) → h_p(Y, Z or X), as in the
    // chase properties suite.
    fn random_rule(rng: &mut SplitMix64) -> Rule {
        let bp = rng.gen_range(2) as u32;
        let hp = rng.gen_range(2) as u32;
        let x = Term::Var(VarId::from_raw(1000));
        let y = Term::Var(VarId::from_raw(1001));
        let z = Term::Var(VarId::from_raw(1002));
        let body: AtomSet = [Atom::new(PredId::from_raw(bp), vec![x, y])]
            .into_iter()
            .collect();
        let head: AtomSet = if rng.gen_bool() {
            [Atom::new(PredId::from_raw(hp), vec![y, z])]
                .into_iter()
                .collect()
        } else {
            [Atom::new(PredId::from_raw(hp), vec![y, x])]
                .into_iter()
                .collect()
        };
        Rule::new("r", body, head).expect("nonempty")
    }

    /// A full core chase with `CoreMaintenance::Incremental` reaches an
    /// instance isomorphic to the `FullRecompute` run on the same KB —
    /// the maintainer is trajectory-equivalent, not just step-equivalent.
    #[test]
    fn incremental_chase_trajectories_match_full_recompute() {
        let mut rng = SplitMix64::new(0xD1247);
        let mut terminated = 0usize;
        for case in 0..48u64 {
            let facts = random_atomset(&mut rng, 6, 8);
            let n_rules = 1 + rng.gen_range(2);
            let ruleset: RuleSet = (0..n_rules).map(|_| random_rule(&mut rng)).collect();
            let run = |maintenance| {
                let mut vocab = Vocabulary::new();
                run_chase(
                    &mut vocab,
                    &facts,
                    &ruleset,
                    &ChaseConfig::variant(ChaseVariant::Core)
                        .with_core_maintenance(maintenance)
                        .with_max_applications(40)
                        .with_max_atoms(500),
                )
            };
            let full = run(CoreMaintenance::FullRecompute);
            let inc = run(CoreMaintenance::Incremental);
            if full.outcome.terminated() && inc.outcome.terminated() {
                terminated += 1;
                assert!(is_core(&inc.final_instance), "case {case}");
                assert!(
                    isomorphism(&full.final_instance, &inc.final_instance).is_some(),
                    "case {case}: incremental trajectory diverged from full recompute"
                );
            }
        }
        // The generator must actually exercise the property, not skip it.
        assert!(terminated >= 24, "only {terminated} cases terminated");
    }
}
