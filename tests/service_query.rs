//! End-to-end tests of the query-serving subsystem: the per-job
//! materialization snapshot cache, certain-answer semantics over the
//! robust aggregate prefix, completeness tagging, admission-control
//! shedding, and the `query` wire op.

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use treechase::core::{certain_answers, AnswerQuery, KnowledgeBase};
use treechase::engine::{ChaseConfig, ChaseVariant, FaultPlan, FaultSite};
use treechase::parser::parse_query_with;
use treechase::query::Completeness;
use treechase::service::{parse_json, JobSpec, JobStatus, QueryError, Service, ServiceConfig};

/// A transitive-closure chain over constants: terminating, and every
/// derived atom is constant-only, so answer tuples are visible through
/// the null filter.
fn chain_src(n: usize) -> String {
    let mut src: String = (0..n).map(|i| format!("r(c{i}, c{}). ", i + 1)).collect();
    src.push_str("T: r(X, Y), r(Y, Z) -> r(X, Z).");
    src
}

/// The differential acceptance check: answers served for a *terminated*
/// job must be tagged `complete` and coincide exactly with the
/// library-level certain answers of the same query over the same KB.
#[test]
fn terminated_job_answers_match_library_certain_answers() {
    let src = chain_src(6);
    let kb = KnowledgeBase::from_text(&src).expect("chain parses");
    let cfg = ChaseConfig::variant(ChaseVariant::Restricted);

    let svc = Service::start(1);
    let id = svc.submit(JobSpec::from_text("chain", &src, cfg.clone()).unwrap());
    assert_eq!(svc.wait(id), Some(JobStatus::Finished));

    let query_src = "?(X) :- r(c0, X)";
    let reply = svc
        .query_job(id, query_src, None, None)
        .expect("terminated job answers");
    assert_eq!(reply.outcome.completeness, Completeness::Complete);
    assert!(reply.outcome.entailed());
    assert_eq!(reply.job, Some(id));
    assert!(reply.snapshot_age_ms.is_some());

    // Library side: the same query through `certain_answers`.
    let mut vocab = kb.vocab.clone();
    let parsed = parse_query_with(&mut vocab, "q", query_src).expect("query parses");
    let (atoms, answer_vars) = parsed.disjuncts.into_iter().next().expect("one disjunct");
    let lib = certain_answers(&kb, &AnswerQuery::new(atoms, answer_vars).unwrap(), &cfg);
    assert!(lib.complete);
    let lib_names: Vec<Vec<String>> = lib
        .answers
        .iter()
        .map(|row| {
            row.iter()
                .map(|&c| vocab.const_name(c).expect("constant named").to_string())
                .collect()
        })
        .collect();
    assert_eq!(reply.outcome.answers, lib_names);
    // c0 reaches every other chain node under transitive closure.
    assert_eq!(reply.outcome.answers.len(), 6);
}

/// A live (non-terminated) elevator job answers from the robust ring
/// intersection and tags the reply `sound-prefix` with a positive
/// horizon; boolean entailment over the prefix is sound.
#[test]
fn live_elevator_job_serves_sound_prefix_answers() {
    let svc = Service::with_config(
        1,
        ServiceConfig {
            snapshot_every: 8,
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    let id = svc.submit(JobSpec::from_kb(
        "elevator",
        KnowledgeBase::elevator(),
        ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(50_000_000),
    ));
    while svc.status(id) != Some(JobStatus::Running) {
        std::thread::yield_now();
    }

    // Spin until a snapshot lands, then query the live prefix. The
    // elevator's initial facts already entail `?- c(X), h(X, Y)`.
    let deadline = Instant::now() + Duration::from_secs(30);
    let reply = loop {
        match svc.query_job(id, "?- c(X), h(X, Y)", None, None) {
            Ok(reply) => break reply,
            Err(QueryError::NoSnapshot(_)) => {
                assert!(Instant::now() < deadline, "no snapshot published");
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("unexpected query error: {e}"),
        }
    };
    match reply.outcome.completeness {
        Completeness::SoundPrefix { .. } => {}
        other => panic!("live job must answer sound-prefix, got {other:?}"),
    }
    assert!(reply.outcome.entailed(), "initial facts entail the query");
    assert!(reply.sequence.is_some());

    // Sound under the prefix semantics: a predicate the KB never
    // derives is not entailed, and the miss is *inconclusive* — the
    // reply still says sound-prefix, never complete.
    let miss = svc
        .query_job(id, "?- nosuchpred(X)", None, None)
        .expect("snapshot available");
    assert!(!miss.outcome.entailed());
    assert!(matches!(
        miss.outcome.completeness,
        Completeness::SoundPrefix { .. }
    ));

    assert!(svc.cancel(id));
    svc.wait(id);
}

/// Along a restricted (retraction-free) derivation the robust prefix
/// only grows, so certain answers served mid-run grow monotonically and
/// the final complete set contains every prefix answer.
#[test]
fn live_answers_grow_monotonically_to_the_complete_set() {
    let n = 30usize;
    // Stretch the run with injected sleeps so mid-run queries land at
    // several different snapshot horizons.
    let slow_sites: Vec<FaultSite> = (1..=8).map(|k| FaultSite::Slow(k * 40, 40)).collect();
    let svc = Service::with_config(
        1,
        ServiceConfig {
            snapshot_every: 16,
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    let id = svc.submit(
        JobSpec::from_text(
            "chain-live",
            &chain_src(n),
            ChaseConfig::variant(ChaseVariant::Restricted).with_fault(FaultPlan::new(slow_sites)),
        )
        .unwrap(),
    );

    let query_src = "?(X) :- r(c0, X)";
    let mut observed: Vec<(u64, Vec<Vec<String>>)> = Vec::new();
    let mut saw_sound_prefix = false;
    while svc.status(id) == Some(JobStatus::Queued) || svc.status(id) == Some(JobStatus::Running) {
        match svc.query_job(id, query_src, None, None) {
            Ok(reply) => {
                if let Completeness::SoundPrefix { horizon } = reply.outcome.completeness {
                    saw_sound_prefix = true;
                    assert!(reply.applications.is_some());
                    observed.push((horizon, reply.outcome.answers.clone()));
                }
            }
            Err(QueryError::NoSnapshot(_)) => {}
            Err(e) => panic!("unexpected query error: {e}"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(svc.wait(id), Some(JobStatus::Finished));
    assert!(saw_sound_prefix, "no query landed mid-run; slow the job");

    let final_reply = svc
        .query_job(id, query_src, None, None)
        .expect("final answers");
    assert_eq!(final_reply.outcome.completeness, Completeness::Complete);
    assert_eq!(final_reply.outcome.answers.len(), n);

    // Monotone growth: sort by horizon; every earlier answer set is a
    // subset of every later one and of the final complete set.
    observed.sort_by_key(|(h, _)| *h);
    for pair in observed.windows(2) {
        let (h1, earlier) = &pair[0];
        let (h2, later) = &pair[1];
        for row in earlier {
            assert!(
                later.contains(row),
                "answer {row:?} at horizon {h1} vanished by horizon {h2}"
            );
        }
    }
    for (h, answers) in &observed {
        for row in answers {
            assert!(
                final_reply.outcome.answers.contains(row),
                "prefix answer {row:?} at horizon {h} missing from the complete set"
            );
        }
    }
}

/// A query whose homomorphism search exhausts its node budget reports
/// `truncated` — never an empty `complete` set (truncated-miss-is-
/// inconclusive).
#[test]
fn budget_truncated_query_reports_truncated_not_empty_complete() {
    let svc = Service::start(1);
    let id = svc.submit(
        JobSpec::from_text(
            "chain",
            &chain_src(12),
            ChaseConfig::variant(ChaseVariant::Restricted),
        )
        .unwrap(),
    );
    assert_eq!(svc.wait(id), Some(JobStatus::Finished));

    // A three-atom join over the 78-atom closure blows a 1-node budget.
    let reply = svc
        .query_job(id, "?(X) :- r(X, Y), r(Y, Z), r(Z, W)", Some(1), None)
        .expect("job answers");
    assert_eq!(reply.outcome.completeness, Completeness::Truncated);

    // The same query with no limit is complete and non-empty, proving
    // the truncated run really did miss answers.
    let full = svc
        .query_job(id, "?(X) :- r(X, Y), r(Y, Z), r(Z, W)", None, None)
        .expect("job answers");
    assert_eq!(full.outcome.completeness, Completeness::Complete);
    assert!(full.outcome.entailed());
}

/// Under `--max-queue` pressure, queries are shed with a structured
/// queue-full rejection (with a retry hint) instead of piling onto an
/// overloaded service.
#[test]
fn queries_are_shed_with_queue_full_under_max_queue() {
    let svc = Service::with_config(
        1,
        ServiceConfig {
            max_queue: Some(1),
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    // One long job runs, a second fills the queue to its cap.
    let cfg = ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(10_000_000);
    let running = svc.submit(JobSpec::from_kb(
        "long-a",
        KnowledgeBase::staircase(),
        cfg.clone(),
    ));
    while svc.status(running) != Some(JobStatus::Running) {
        std::thread::yield_now();
    }
    let queued = svc.submit(JobSpec::from_kb("long-b", KnowledgeBase::staircase(), cfg));
    assert_eq!(svc.status(queued), Some(JobStatus::Queued));

    let err = svc
        .query_job(running, "?- h(X, Y)", None, None)
        .expect_err("overloaded service sheds queries");
    let QueryError::Rejected(rej) = err else {
        panic!("expected a structured rejection, got {err}");
    };
    assert_eq!(rej.reason.name(), "queue-full");
    assert!(rej.retry_after.is_some(), "shed replies carry a retry hint");

    // The ad-hoc KB path is shed by the same gate.
    let kb = KnowledgeBase::from_text(&chain_src(3)).unwrap();
    assert!(matches!(
        svc.query_kb(
            &kb,
            &ChaseConfig::variant(ChaseVariant::Restricted),
            "?- r(c0, c1)",
            None,
            None
        ),
        Err(QueryError::Rejected(_))
    ));

    assert!(svc.cancel(running));
    assert!(svc.cancel(queued));
    svc.wait(running);
    svc.wait(queued);
}

/// Concurrent readers over the snapshot cache never block or panic the
/// chase writer: a burst of queries from several threads runs to
/// completion while the job keeps making progress, and the job still
/// reaches a clean terminal state afterwards.
#[test]
fn concurrent_queries_never_block_or_panic_the_writer() {
    let svc = Arc::new(
        Service::with_config(
            1,
            ServiceConfig {
                snapshot_every: 4,
                ..ServiceConfig::default()
            },
        )
        .expect("service starts"),
    );
    let id = svc.submit(JobSpec::from_kb(
        "elevator-live",
        KnowledgeBase::elevator(),
        ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(50_000_000),
    ));
    while svc.status(id) != Some(JobStatus::Running) {
        std::thread::yield_now();
    }

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let mut served = 0usize;
                for _ in 0..50 {
                    match svc.query_job(id, "?- h(X, Y), v(Y, Z)", None, None) {
                        Ok(reply) => {
                            assert!(!matches!(
                                reply.outcome.completeness,
                                Completeness::Complete
                            ));
                            served += 1;
                        }
                        Err(QueryError::NoSnapshot(_)) => {}
                        Err(e) => panic!("reader failed: {e}"),
                    }
                }
                served
            })
        })
        .collect();
    let mut total = 0usize;
    for h in readers {
        total += h.join().expect("reader thread must not panic");
    }
    assert!(total > 0, "at least some queries must be served live");

    // The writer survived the read burst and still terminates cleanly.
    assert_eq!(svc.status(id), Some(JobStatus::Running));
    assert!(svc.cancel(id));
    assert_eq!(svc.wait(id), Some(JobStatus::Cancelled));

    // Per-job counters and the service-wide cache stats both saw the
    // burst.
    let row = svc
        .list()
        .into_iter()
        .find(|r| r.id == id)
        .expect("job listed");
    assert!(row.queries_served >= total as u64);
    assert!(svc.cache_stats().hits >= total as u64);
}

/// The `query` wire op end to end over `treechase serve`: job-targeted
/// queries after termination are `complete`; ad-hoc `source` queries
/// work without a job; bad targets produce structured errors, not a
/// dead server.
#[test]
fn serve_query_op_roundtrip() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_treechase"))
        .args(["serve", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdin = child.stdin.take().unwrap();
    let src = chain_src(4);
    writeln!(
        stdin,
        r#"{{"op":"submit","name":"chain","source":"{src}","variant":"restricted"}}"#
    )
    .unwrap();
    writeln!(stdin, r#"{{"op":"wait","job":1}}"#).unwrap();
    writeln!(
        stdin,
        r#"{{"op":"query","job":1,"query":"?(X) :- r(c0, X)"}}"#
    )
    .unwrap();
    writeln!(
        stdin,
        r#"{{"op":"query","source":"{src}","query":"?- r(c0, c4)","variant":"restricted"}}"#
    )
    .unwrap();
    writeln!(stdin, r#"{{"op":"query","job":99,"query":"?- r(c0, c1)"}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"query","job":1}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"list"}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"shutdown"}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    let mut query_replies = Vec::new();
    let mut errors = 0usize;
    let mut listed_queries_served = None;
    for line in stdout.lines() {
        let v = parse_json(line).unwrap_or_else(|e| panic!("bad wire line {line}: {e}"));
        match v.get("type").and_then(|t| t.as_str()) {
            Some("error") => errors += 1,
            Some("response") if v.get("op").and_then(|o| o.as_str()) == Some("query") => {
                query_replies.push(v.clone());
            }
            Some("response") if v.get("op").and_then(|o| o.as_str()) == Some("list") => {
                listed_queries_served = v
                    .get("jobs")
                    .and_then(|jobs| jobs.as_arr())
                    .and_then(|jobs| jobs.first())
                    .and_then(|job| job.get("queries_served"))
                    .and_then(treechase::service::Json::as_u64);
            }
            _ => {}
        }
    }
    assert_eq!(errors, 2, "unknown job + missing query text: {stdout}");
    assert_eq!(query_replies.len(), 2, "{stdout}");

    // Job-targeted reply: complete, with the four reachable constants
    // and the snapshot metadata attached.
    let job_reply = &query_replies[0];
    assert_eq!(
        job_reply.get("completeness").and_then(|c| c.as_str()),
        Some("complete")
    );
    assert_eq!(
        job_reply
            .get("answers")
            .and_then(|a| a.as_arr())
            .map(<[_]>::len),
        Some(4)
    );
    assert_eq!(job_reply.get("job").and_then(|j| j.as_u64()), Some(1));
    assert!(job_reply.get("cache").is_some());

    // Ad-hoc source reply: boolean, entailed, no job metadata.
    let adhoc_reply = &query_replies[1];
    assert_eq!(
        adhoc_reply.get("completeness").and_then(|c| c.as_str()),
        Some("complete")
    );
    assert_eq!(
        adhoc_reply
            .get("entailed")
            .and_then(treechase::service::Json::as_bool),
        Some(true)
    );
    assert!(matches!(
        adhoc_reply.get("job"),
        Some(treechase::service::Json::Null)
    ));

    assert_eq!(listed_queries_served, Some(1), "{stdout}");
}
