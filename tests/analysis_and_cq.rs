//! Integration tests for the static analyses (chase-analysis), the CQ
//! operations, and the frugal chase variant — checking that the
//! syntactic certificates agree with the dynamic chase behaviour.

use treechase::analysis::{analyze, jointly_acyclic, weakly_acyclic};
use treechase::core::cq::{
    certain_answers, cq_contained_in, cq_equivalent, minimize_cq, AnswerQuery,
};
use treechase::prelude::*;

fn kb(src: &str) -> KnowledgeBase {
    KnowledgeBase::from_text(src).unwrap()
}

/// Weak acyclicity certificates agree with observed termination on the
/// witness suite.
#[test]
fn acyclicity_predicts_termination() {
    // (source, weakly acyclic expected, chase terminates expected)
    let cases = [
        ("r(a, b). T: r(X, Y), r(Y, Z) -> r(X, Z).", true, true),
        ("r(a, b). R: r(X, Y) -> r(Y, Z).", false, false),
        (
            "r(a, b). R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X).",
            true,
            true,
        ),
    ];
    for (src, wa, terminates) in cases {
        let k = kb(src);
        assert_eq!(weakly_acyclic(&k.rules), wa, "{src}");
        let res =
            k.chase(&ChaseConfig::variant(ChaseVariant::SemiOblivious).with_max_applications(200));
        assert_eq!(res.outcome.terminated(), terminates, "{src}");
        // Soundness direction: certified ⇒ terminates.
        if wa {
            assert!(res.outcome.terminated());
        }
    }
}

/// Joint acyclicity is implied by weak acyclicity on a sample of
/// rulesets (subsumption direction of Krötzsch–Rudolph).
#[test]
fn weak_implies_joint_acyclicity() {
    let sources = [
        "T: r(X, Y), r(Y, Z) -> r(X, Z).",
        "R: r(X, Y) -> s(Y, Z).",
        "A: p(X) -> q(X). B: q(X) -> e(X, Y).",
        "R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> r(X, X).",
    ];
    for src in sources {
        let k = kb(&format!("seed(a). {src}"));
        if weakly_acyclic(&k.rules) {
            assert!(jointly_acyclic(&k.rules), "{src}");
        }
    }
}

/// The staircase and elevator rulesets carry no syntactic certificate —
/// their behaviour is exactly what the paper's dynamic analysis is for.
#[test]
fn paper_kbs_have_no_syntactic_certificate() {
    let kh = KnowledgeBase::staircase();
    let report = analyze(&kh.rules);
    assert!(!report.certified_fes());

    let kv = KnowledgeBase::elevator();
    let report = analyze(&kv.rules);
    assert!(!report.certified_fes());
}

/// CQ minimization interacts correctly with entailment: a query and its
/// core are entailed by exactly the same KBs.
#[test]
fn minimized_queries_answer_identically() {
    let mut k = kb("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).");
    let q = k.parse_query("r(X, Y), r(X, Z)").unwrap(); // redundant
    let m = minimize_cq(&q);
    assert!(m.len() < q.len());
    assert!(cq_equivalent(&q, &m));
    let cfg = ChaseConfig::default();
    assert_eq!(
        entail(&k, &q, &cfg).is_entailed(),
        entail(&k, &m, &cfg).is_entailed()
    );
}

/// Containment is reflexive, transitive, and antisymmetric up to
/// equivalence on a small query family.
#[test]
fn containment_is_a_preorder() {
    let mut vocab = Vocabulary::new();
    let qs: Vec<AtomSet> = ["r(X, Y)", "r(X, Y), r(Y, Z)", "r(X, X)", "r(X, Y), r(Y, X)"]
        .iter()
        .enumerate()
        .map(|(i, src)| chase_parser_parse(&mut vocab, &format!("q{i}"), src))
        .collect();
    for q in &qs {
        assert!(cq_contained_in(q, q));
    }
    for a in &qs {
        for b in &qs {
            for c in &qs {
                if cq_contained_in(a, b) && cq_contained_in(b, c) {
                    assert!(cq_contained_in(a, c));
                }
            }
        }
    }
    // r(X,X) ⊑ r(X,Y) but not conversely.
    assert!(cq_contained_in(&qs[2], &qs[0]));
    assert!(!cq_contained_in(&qs[0], &qs[2]));
}

fn chase_parser_parse(vocab: &mut Vocabulary, prefix: &str, src: &str) -> AtomSet {
    treechase::parser::parse_atoms_with(vocab, prefix, src).unwrap()
}

/// The frugal chase sits between restricted and core on instance size,
/// and all three agree on CQ entailment.
#[test]
fn frugal_between_restricted_and_core() {
    let k = kb("r(a, b).
         R: r(X, Y) -> s(Y, Z), s(Y, W), t(Z).");
    let sizes: Vec<usize> = [
        ChaseVariant::Restricted,
        ChaseVariant::Frugal,
        ChaseVariant::Core,
    ]
    .iter()
    .map(|&v| {
        let res = k.chase(&ChaseConfig::variant(v).with_max_applications(50));
        assert!(res.outcome.terminated(), "{v:?}");
        res.final_instance.len()
    })
    .collect();
    assert!(
        sizes[0] >= sizes[1] && sizes[1] >= sizes[2],
        "restricted {} ≥ frugal {} ≥ core {}",
        sizes[0],
        sizes[1],
        sizes[2]
    );

    let mut k2 = k.clone();
    let q = k2.parse_query("s(b, V), t(V)").unwrap();
    for v in [
        ChaseVariant::Restricted,
        ChaseVariant::Frugal,
        ChaseVariant::Core,
    ] {
        assert!(
            entail(&k, &q, &ChaseConfig::variant(v)).is_entailed(),
            "{v:?}"
        );
    }
}

/// Certain answers respect the core/restricted equivalence.
#[test]
fn certain_answers_variant_independent() {
    let mut k = kb("emp(ann, cs). emp(bea, cs).
         M: emp(N, D) -> works(N, D).
         H: works(N, D) -> head(D, H).");
    let q_atoms = k.parse_query("works(X, cs)").unwrap();
    let x = *q_atoms.vars().iter().next().unwrap();
    let query = AnswerQuery::new(q_atoms, vec![x]).unwrap();
    let a1 = certain_answers(&k, &query, &ChaseConfig::variant(ChaseVariant::Core));
    let a2 = certain_answers(&k, &query, &ChaseConfig::variant(ChaseVariant::Frugal));
    let a3 = certain_answers(&k, &query, &ChaseConfig::variant(ChaseVariant::Restricted));
    assert_eq!(a1.answers, a2.answers);
    assert_eq!(a1.answers, a3.answers);
    assert!(a1.complete && a2.complete && a3.complete);
}
