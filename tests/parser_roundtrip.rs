//! Property-based parser round-trips: random programs survive
//! print → parse with structure intact (up to variable renaming, which
//! we verify through isomorphism of the lowered atomsets).

use proptest::prelude::*;
use treechase::homomorphism::isomorphism;
use treechase::parser::{parse_program, program_to_text};

/// A tiny random program generator working at the *source* level so the
/// property covers lexer + parser + lowering + printer together.
fn program_source() -> impl Strategy<Value = String> {
    let pred = prop::sample::select(vec!["r", "s", "t"]);
    let con = prop::sample::select(vec!["a", "b", "c"]);
    let var = prop::sample::select(vec!["X", "Y", "Z", "W"]);

    let fact = (pred.clone(), con.clone(), con.clone())
        .prop_map(|(p, a, b)| format!("{p}({a}, {b})."));

    let rule = (
        pred.clone(),
        pred.clone(),
        var.clone(),
        var.clone(),
        var.clone(),
        proptest::bool::ANY,
    )
        .prop_map(|(bp, hp, x, y, z, existential)| {
            if existential && z != x && z != y {
                format!("{bp}({x}, {y}) -> {hp}({y}, {z}).")
            } else {
                format!("{bp}({x}, {y}) -> {hp}({y}, {x}).")
            }
        });

    let query = (pred, var.clone(), var).prop_map(|(p, x, y)| format!("?- {p}({x}, {y})."));

    (
        prop::collection::vec(fact, 1..4),
        prop::collection::vec(rule, 0..3),
        prop::collection::vec(query, 0..2),
    )
        .prop_map(|(facts, rules, queries)| {
            let mut src = String::new();
            for f in facts {
                src.push_str(&f);
                src.push('\n');
            }
            for r in rules {
                src.push_str(&r);
                src.push('\n');
            }
            for q in queries {
                src.push_str(&q);
                src.push('\n');
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn print_parse_preserves_structure(src in program_source()) {
        let p1 = parse_program(&src).expect("generated source parses");
        let text = program_to_text(&p1);
        let p2 = parse_program(&text)
            .unwrap_or_else(|e| panic!("printed text must reparse: {e}\n---\n{text}"));

        // Facts are isomorphic (ground facts: even equal).
        prop_assert!(isomorphism(&p1.facts, &p2.facts).is_some());

        // Rules correspond 1:1 with isomorphic bodies and heads.
        prop_assert_eq!(p1.rules.len(), p2.rules.len());
        for ((_, r1), (_, r2)) in p1.rules.iter().zip(p2.rules.iter()) {
            prop_assert_eq!(r1.name(), r2.name());
            prop_assert!(isomorphism(r1.body(), r2.body()).is_some());
            prop_assert!(isomorphism(r1.head(), r2.head()).is_some());
            prop_assert_eq!(
                r1.existential_vars().len(),
                r2.existential_vars().len()
            );
            prop_assert_eq!(r1.frontier_vars().len(), r2.frontier_vars().len());
        }

        // Queries correspond with isomorphic atomsets.
        prop_assert_eq!(p1.queries.len(), p2.queries.len());
        for ((n1, q1), (n2, q2)) in p1.queries.iter().zip(p2.queries.iter()) {
            prop_assert_eq!(n1, n2);
            prop_assert!(isomorphism(q1, q2).is_some());
        }
    }

    #[test]
    fn printing_stabilizes(src in program_source()) {
        let p1 = parse_program(&src).expect("parses");
        let t1 = program_to_text(&p1);
        let t2 = program_to_text(&parse_program(&t1).expect("reparses"));
        prop_assert_eq!(t1, t2);
    }
}
