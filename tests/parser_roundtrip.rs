//! Randomized parser round-trips: random programs survive
//! print → parse with structure intact (up to variable renaming, which
//! we verify through isomorphism of the lowered atomsets).
//!
//! Programs are generated at the *source* level with the engine's
//! deterministic [`SplitMix64`] generator, so the property covers
//! lexer + parser + lowering + printer together on reproducible inputs.

use treechase::engine::prng::SplitMix64;
use treechase::homomorphism::isomorphism;
use treechase::parser::{parse_program, program_to_text};

const PREDS: [&str; 3] = ["r", "s", "t"];
const CONS: [&str; 3] = ["a", "b", "c"];
const VARS: [&str; 4] = ["X", "Y", "Z", "W"];

fn pick<'a>(rng: &mut SplitMix64, from: &[&'a str]) -> &'a str {
    from[rng.gen_range(from.len())]
}

fn random_program_source(rng: &mut SplitMix64) -> String {
    let mut src = String::new();
    for _ in 0..1 + rng.gen_range(3) {
        let (p, a, b) = (pick(rng, &PREDS), pick(rng, &CONS), pick(rng, &CONS));
        src.push_str(&format!("{p}({a}, {b}).\n"));
    }
    for _ in 0..rng.gen_range(3) {
        let bp = pick(rng, &PREDS);
        let hp = pick(rng, &PREDS);
        let x = pick(rng, &VARS);
        let y = pick(rng, &VARS);
        let z = pick(rng, &VARS);
        if rng.gen_bool() && z != x && z != y {
            src.push_str(&format!("{bp}({x}, {y}) -> {hp}({y}, {z}).\n"));
        } else {
            src.push_str(&format!("{bp}({x}, {y}) -> {hp}({y}, {x}).\n"));
        }
    }
    for _ in 0..rng.gen_range(2) {
        let (p, x, y) = (pick(rng, &PREDS), pick(rng, &VARS), pick(rng, &VARS));
        src.push_str(&format!("?- {p}({x}, {y}).\n"));
    }
    src
}

#[test]
fn print_parse_preserves_structure() {
    let mut rng = SplitMix64::new(0x5EED);
    for _ in 0..48 {
        let src = random_program_source(&mut rng);
        let p1 = parse_program(&src).expect("generated source parses");
        let text = program_to_text(&p1);
        let p2 = parse_program(&text)
            .unwrap_or_else(|e| panic!("printed text must reparse: {e}\n---\n{text}"));

        // Facts are isomorphic (ground facts: even equal).
        assert!(isomorphism(&p1.facts, &p2.facts).is_some());

        // Rules correspond 1:1 with isomorphic bodies and heads.
        assert_eq!(p1.rules.len(), p2.rules.len());
        for ((_, r1), (_, r2)) in p1.rules.iter().zip(p2.rules.iter()) {
            assert_eq!(r1.name(), r2.name());
            assert!(isomorphism(r1.body(), r2.body()).is_some());
            assert!(isomorphism(r1.head(), r2.head()).is_some());
            assert_eq!(r1.existential_vars().len(), r2.existential_vars().len());
            assert_eq!(r1.frontier_vars().len(), r2.frontier_vars().len());
        }

        // Queries correspond with isomorphic atomsets.
        assert_eq!(p1.queries.len(), p2.queries.len());
        for ((n1, q1), (n2, q2)) in p1.queries.iter().zip(p2.queries.iter()) {
            assert_eq!(n1, n2);
            assert!(isomorphism(q1, q2).is_some());
        }
    }
}

#[test]
fn printing_stabilizes() {
    let mut rng = SplitMix64::new(0xFACADE);
    for _ in 0..48 {
        let src = random_program_source(&mut rng);
        let p1 = parse_program(&src).expect("parses");
        let t1 = program_to_text(&p1);
        let t2 = program_to_text(&parse_program(&t1).expect("reparses"));
        assert_eq!(t1, t2);
    }
}
