//! `treechase` — command-line front end for the chase engine.
//!
//! ```text
//! treechase run <file> [--variant V] [--max-apps N] [--dot OUT.dot]
//! treechase analyze <file> [--budget N]
//! treechase decide <file> "<query>" [--max-apps N]
//! ```
//!
//! The input file uses the `chase-parser` syntax (facts, rules, optional
//! `?-` queries). `run` chases the KB and evaluates every query of the
//! file against the result; `analyze` prints static certificates plus the
//! Figure 1 dynamic probes; `decide` races the Theorem 1 twin procedure
//! on an ad-hoc query.

use std::process::ExitCode;

use treechase::analysis::{analyze, critical_instance_test, CriticalOutcome};
use treechase::core::classes::probe_classes;
use treechase::engine::dot::instance_dot;
use treechase::prelude::*;

struct Args {
    positional: Vec<String>,
    variant: ChaseVariant,
    max_apps: usize,
    budget: usize,
    dot: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  treechase run <file> [--variant oblivious|semi|restricted|frugal|core] \
         [--max-apps N] [--dot OUT.dot]\n  treechase analyze <file> [--budget N]\n  \
         treechase decide <file> \"<query>\" [--max-apps N]"
    );
    ExitCode::from(2)
}

fn parse_args(mut raw: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        variant: ChaseVariant::Core,
        max_apps: 1_000,
        budget: 80,
        dot: None,
    };
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--variant" => {
                let v = raw.next().ok_or("--variant needs a value")?;
                args.variant = match v.as_str() {
                    "oblivious" => ChaseVariant::Oblivious,
                    "semi" | "semi-oblivious" | "skolem" => ChaseVariant::SemiOblivious,
                    "restricted" | "standard" => ChaseVariant::Restricted,
                    "frugal" => ChaseVariant::Frugal,
                    "core" => ChaseVariant::Core,
                    other => return Err(format!("unknown variant `{other}`")),
                };
            }
            "--max-apps" => {
                args.max_apps = raw
                    .next()
                    .ok_or("--max-apps needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-apps: {e}"))?;
            }
            "--budget" => {
                args.budget = raw
                    .next()
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
            }
            "--dot" => args.dot = Some(raw.next().ok_or("--dot needs a path")?),
            other => args.positional.push(other.to_string()),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<(KnowledgeBase, Vec<(String, AtomSet)>), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let prog = parse_program(&src).map_err(|e| format!("{path}:{e}"))?;
    Ok(KnowledgeBase::from_program(prog))
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let [_, path] = &args.positional[..] else {
        return Err("run takes exactly one file".into());
    };
    let (kb, queries) = load(path)?;
    let cfg = ChaseConfig::variant(args.variant).with_max_applications(args.max_apps);
    let res = kb.chase(&cfg);
    println!(
        "{:?} chase: {:?} after {} applications ({} rounds, {} retractions)",
        args.variant, res.outcome, res.stats.applications, res.stats.rounds,
        res.stats.retractions
    );
    println!(
        "final instance: {} atoms = {}",
        res.final_instance.len(),
        res.final_instance.with(&kb.vocab)
    );
    for (name, q) in &queries {
        let hit = maps_to(q, &res.final_instance);
        let verdict = match (hit, res.outcome.terminated()) {
            (true, _) => "entailed (certified)",
            (false, true) => "not entailed (certified)",
            (false, false) => "not found (inconclusive: budget)",
        };
        println!("query {name}: {verdict}");
    }
    if let Some(out) = &args.dot {
        std::fs::write(out, instance_dot(&kb.vocab, &res.final_instance, path))
            .map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let [_, path] = &args.positional[..] else {
        return Err("analyze takes exactly one file".into());
    };
    let (kb, _) = load(path)?;
    println!("--- static certificates ---");
    println!("{}", analyze(&kb.rules));
    match critical_instance_test(&kb.rules, args.budget * 4) {
        CriticalOutcome::TerminatesEverywhere { applications } => println!(
            "critical-instance test: terminates everywhere ({applications} applications) ⇒ fes"
        ),
        CriticalOutcome::BudgetExhausted => {
            println!("critical-instance test: inconclusive at this budget")
        }
    }
    println!("--- dynamic probes (this fact base, budget {}) ---", args.budget);
    let probe = probe_classes(&kb, args.budget);
    println!("core chase terminated: {}", probe.core_chase_terminated);
    println!(
        "restricted chase: terminated={} tw-profile max {}",
        probe.restricted_chase_terminated,
        probe.restricted_uniform_bound()
    );
    println!(
        "core chase tw: max {} recurring {:?}",
        probe.core_uniform_bound(),
        probe.core_recurring_bound()
    );
    Ok(())
}

fn cmd_decide(args: &Args) -> Result<(), String> {
    let [_, path, query_src] = &args.positional[..] else {
        return Err("decide takes a file and a query".into());
    };
    let (mut kb, _) = load(path)?;
    let query = kb
        .parse_query(query_src)
        .map_err(|e| format!("query: {e}"))?;
    let cfg = DecideConfig {
        max_applications: args.max_apps,
        max_atoms: 100_000,
        core_max_applications: (args.max_apps / 5).max(20),
    };
    let out = decide(&kb, &query, &cfg);
    println!("{out:?}");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let Some(cmd) = args.positional.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&args),
        "analyze" => cmd_analyze(&args),
        "decide" => cmd_decide(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
