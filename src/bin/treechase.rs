//! `treechase` — command-line front end for the chase engine.
//!
//! ```text
//! treechase run <file> [--variant V] [--max-apps N] [--dot OUT.dot]
//! treechase analyze <file> [--budget N] [--probe-apps N] [--json]
//! treechase decide <file> "<query>" [--max-apps N]
//! treechase query <file|kb> "<query>" [--variant V] [--max-apps N]
//!                 [--node-limit N] [--max-wall-ms N]
//! treechase serve [--workers N] [--state-dir DIR] [--retries N]
//!                 [--retry-backoff-ms N] [--checkpoint-every N]
//!                 [--max-queue N] [--quota N] [--mem-soft N] [--mem-hard N]
//!                 [--op-deadline MS] [--drain-grace MS] [--job-deadline MS]
//!                 [--strict-admission]
//! treechase batch <dir> [--workers N] [--variant V] [--max-apps N]
//!                       [--max-wall-ms N] [--tw-every N] [--progress-every N]
//!                       [--state-dir DIR] [--retries N] [--retry-backoff-ms N]
//!                       [--checkpoint-every N] [--fault-plan SPEC]
//!                       [--mem-soft N] [--mem-hard N]
//! treechase coordinator --state-dir DIR [--listen HOST:PORT] [--lease MS]
//!                       [--heartbeat MS] [--checkpoint-every N]
//!                       [--max-queue N] [--op-deadline MS]
//!                       [--strict-admission]
//! treechase worker --connect HOST:PORT [--name NAME]
//! treechase cluster-client <host:port>
//! ```
//!
//! The input files use the `chase-parser` syntax (facts, rules, optional
//! `?-` queries). `run` chases the KB and evaluates every query of the
//! file against the result; `analyze` runs the admission-time analysis
//! gate — static certificates, the Figure 1 dynamic probes, and the
//! derived stratified chase plan (`--json` emits the wire-format
//! report); `decide` races the Theorem 1 twin procedure
//! on an ad-hoc query; `query` answers a CQ/UCQ with answer variables
//! (`?(X) :- p(X, Y)`) over a budgeted chase of the file or a named
//! built-in KB, tagging the reply `complete` / `sound-prefix` /
//! `truncated`. `serve` speaks the JSONL job protocol over
//! stdin/stdout (see README, "Running as a service"); `batch` submits
//! every `.tc` file in a directory to a shared worker pool and streams
//! progress events as JSONL.
//!
//! Flags are declared in one table ([`FLAGS`]) shared by all subcommands;
//! a flag passed to a subcommand that does not accept it is a usage
//! error. All usage errors exit with status 2.

use std::io::{BufRead, Write as _};
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Duration;

use treechase::analysis::{critical_instance_test, CriticalOutcome};
use treechase::core::{analyze_kb_with, ProbeConfig};
use treechase::engine::dot::instance_dot;
use treechase::homomorphism::SearchBudget;
use treechase::prelude::*;
use treechase::service::protocol::{self, event_to_json, parse_request, result_to_json, Request};
use treechase::service::{
    parse_fault_plan, parse_json, Checkpoint, JobSpec, JobStatus, Json, Service, ServiceConfig,
};

/// Parsed command line: the subcommand's positional operands plus every
/// flag value (each flag has a default, so commands just read fields).
struct Args {
    positional: Vec<String>,
    variant: ChaseVariant,
    max_apps: usize,
    budget: usize,
    probe_apps: Option<usize>,
    node_limit: Option<usize>,
    dot: Option<String>,
    workers: usize,
    max_wall_ms: Option<u64>,
    tw_every: Option<usize>,
    progress_every: usize,
    state_dir: Option<String>,
    retries: usize,
    retry_backoff_ms: u64,
    checkpoint_every: Option<usize>,
    fault_plan: Option<String>,
    max_queue: Option<usize>,
    quota: Option<usize>,
    mem_soft: Option<usize>,
    mem_hard: Option<usize>,
    op_deadline_ms: Option<u64>,
    drain_grace_ms: u64,
    job_deadline_ms: Option<u64>,
    json: bool,
    strict_admission: bool,
    listen: String,
    connect: Option<String>,
    lease_ms: u64,
    heartbeat_ms: Option<u64>,
    worker_name: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            positional: Vec::new(),
            variant: ChaseVariant::Core,
            max_apps: 1_000,
            budget: 80,
            probe_apps: None,
            node_limit: None,
            dot: None,
            workers: 4,
            max_wall_ms: None,
            tw_every: None,
            progress_every: 1,
            state_dir: None,
            retries: 2,
            retry_backoff_ms: 50,
            checkpoint_every: None,
            fault_plan: None,
            max_queue: None,
            quota: None,
            mem_soft: None,
            mem_hard: None,
            op_deadline_ms: None,
            drain_grace_ms: 5_000,
            job_deadline_ms: None,
            json: false,
            strict_admission: false,
            listen: "127.0.0.1:7070".to_string(),
            connect: None,
            lease_ms: 3_000,
            heartbeat_ms: None,
            worker_name: None,
        }
    }
}

/// One row of the flag table: spelling, value placeholder (empty for a
/// boolean flag that takes no value), the subcommands that accept it,
/// and the setter.
struct FlagSpec {
    name: &'static str,
    metavar: &'static str,
    commands: &'static [&'static str],
    apply: fn(&mut Args, &str) -> Result<(), String>,
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    v.parse().map_err(|e| format!("{flag}: {e}"))
}

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--variant",
        metavar: "oblivious|semi|restricted|frugal|core",
        commands: &["run", "batch", "query"],
        apply: |a, v| {
            a.variant = protocol::parse_variant(v)?;
            Ok(())
        },
    },
    FlagSpec {
        name: "--max-apps",
        metavar: "N",
        commands: &["run", "decide", "batch", "query"],
        apply: |a, v| {
            a.max_apps = parse_num("--max-apps", v)?;
            Ok(())
        },
    },
    FlagSpec {
        name: "--budget",
        metavar: "N",
        commands: &["analyze"],
        apply: |a, v| {
            a.budget = parse_num("--budget", v)?;
            Ok(())
        },
    },
    FlagSpec {
        name: "--probe-apps",
        metavar: "N",
        commands: &["analyze"],
        apply: |a, v| {
            a.probe_apps = Some(parse_num("--probe-apps", v)?);
            Ok(())
        },
    },
    FlagSpec {
        name: "--node-limit",
        metavar: "N",
        commands: &["query"],
        apply: |a, v| {
            a.node_limit = Some(parse_num::<usize>("--node-limit", v)?.max(1));
            Ok(())
        },
    },
    FlagSpec {
        name: "--dot",
        metavar: "OUT.dot",
        commands: &["run"],
        apply: |a, v| {
            a.dot = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--workers",
        metavar: "N",
        commands: &["serve", "batch"],
        apply: |a, v| {
            a.workers = parse_num::<usize>("--workers", v)?.max(1);
            Ok(())
        },
    },
    FlagSpec {
        name: "--max-wall-ms",
        metavar: "N",
        commands: &["batch", "query"],
        apply: |a, v| {
            a.max_wall_ms = Some(parse_num("--max-wall-ms", v)?);
            Ok(())
        },
    },
    FlagSpec {
        name: "--tw-every",
        metavar: "N",
        commands: &["batch"],
        apply: |a, v| {
            a.tw_every = Some(parse_num::<usize>("--tw-every", v)?.max(1));
            Ok(())
        },
    },
    FlagSpec {
        name: "--progress-every",
        metavar: "N",
        commands: &["batch"],
        apply: |a, v| {
            a.progress_every = parse_num::<usize>("--progress-every", v)?.max(1);
            Ok(())
        },
    },
    FlagSpec {
        name: "--state-dir",
        metavar: "DIR",
        commands: &["serve", "batch", "coordinator"],
        apply: |a, v| {
            a.state_dir = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--retries",
        metavar: "N",
        commands: &["serve", "batch"],
        apply: |a, v| {
            a.retries = parse_num("--retries", v)?;
            Ok(())
        },
    },
    FlagSpec {
        name: "--retry-backoff-ms",
        metavar: "N",
        commands: &["serve", "batch"],
        apply: |a, v| {
            a.retry_backoff_ms = parse_num("--retry-backoff-ms", v)?;
            Ok(())
        },
    },
    FlagSpec {
        name: "--checkpoint-every",
        metavar: "N",
        commands: &["serve", "batch", "coordinator"],
        apply: |a, v| {
            a.checkpoint_every = Some(parse_num::<usize>("--checkpoint-every", v)?.max(1));
            Ok(())
        },
    },
    FlagSpec {
        name: "--fault-plan",
        metavar: "app:K|core:K|ckpt:K|mem:K|slow:K:MS|rand:S:K:H,...",
        commands: &["batch"],
        apply: |a, v| {
            parse_fault_plan(v)?; // validate eagerly; a fresh plan is built per job
            a.fault_plan = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--max-queue",
        metavar: "N",
        commands: &["serve", "coordinator"],
        apply: |a, v| {
            a.max_queue = Some(parse_num::<usize>("--max-queue", v)?.max(1));
            Ok(())
        },
    },
    FlagSpec {
        name: "--quota",
        metavar: "N",
        commands: &["serve"],
        apply: |a, v| {
            a.quota = Some(parse_num::<usize>("--quota", v)?.max(1));
            Ok(())
        },
    },
    FlagSpec {
        name: "--mem-soft",
        metavar: "UNITS",
        commands: &["serve", "batch"],
        apply: |a, v| {
            a.mem_soft = Some(parse_num::<usize>("--mem-soft", v)?.max(1));
            Ok(())
        },
    },
    FlagSpec {
        name: "--mem-hard",
        metavar: "UNITS",
        commands: &["serve", "batch"],
        apply: |a, v| {
            a.mem_hard = Some(parse_num::<usize>("--mem-hard", v)?.max(1));
            Ok(())
        },
    },
    FlagSpec {
        name: "--op-deadline",
        metavar: "MS",
        commands: &["serve", "coordinator"],
        apply: |a, v| {
            a.op_deadline_ms = Some(parse_num("--op-deadline", v)?);
            Ok(())
        },
    },
    FlagSpec {
        name: "--drain-grace",
        metavar: "MS",
        commands: &["serve"],
        apply: |a, v| {
            a.drain_grace_ms = parse_num("--drain-grace", v)?;
            Ok(())
        },
    },
    FlagSpec {
        name: "--job-deadline",
        metavar: "MS",
        commands: &["serve"],
        apply: |a, v| {
            a.job_deadline_ms = Some(parse_num("--job-deadline", v)?);
            Ok(())
        },
    },
    FlagSpec {
        name: "--json",
        metavar: "",
        commands: &["analyze"],
        apply: |a, _| {
            a.json = true;
            Ok(())
        },
    },
    FlagSpec {
        name: "--strict-admission",
        metavar: "",
        commands: &["serve", "coordinator"],
        apply: |a, _| {
            a.strict_admission = true;
            Ok(())
        },
    },
    FlagSpec {
        name: "--listen",
        metavar: "HOST:PORT",
        commands: &["coordinator"],
        apply: |a, v| {
            a.listen = v.to_string();
            Ok(())
        },
    },
    FlagSpec {
        name: "--connect",
        metavar: "HOST:PORT",
        commands: &["worker"],
        apply: |a, v| {
            a.connect = Some(v.to_string());
            Ok(())
        },
    },
    FlagSpec {
        name: "--lease",
        metavar: "MS",
        commands: &["coordinator"],
        apply: |a, v| {
            a.lease_ms = parse_num::<u64>("--lease", v)?.max(1);
            Ok(())
        },
    },
    FlagSpec {
        name: "--heartbeat",
        metavar: "MS",
        commands: &["coordinator"],
        apply: |a, v| {
            a.heartbeat_ms = Some(parse_num::<u64>("--heartbeat", v)?.max(1));
            Ok(())
        },
    },
    FlagSpec {
        name: "--name",
        metavar: "NAME",
        commands: &["worker"],
        apply: |a, v| {
            a.worker_name = Some(v.to_string());
            Ok(())
        },
    },
];

/// One row of the command table: spelling, operand count bounds, operand
/// placeholder and handler.
struct CommandSpec {
    name: &'static str,
    operands: &'static str,
    min_args: usize,
    max_args: usize,
    run: fn(&Args) -> Result<(), String>,
}

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "run",
        operands: "<file>",
        min_args: 1,
        max_args: 1,
        run: cmd_run,
    },
    CommandSpec {
        name: "analyze",
        operands: "<file>",
        min_args: 1,
        max_args: 1,
        run: cmd_analyze,
    },
    CommandSpec {
        name: "decide",
        operands: "<file> \"<query>\"",
        min_args: 2,
        max_args: 2,
        run: cmd_decide,
    },
    CommandSpec {
        name: "query",
        operands: "<file|kb> \"<query>\"",
        min_args: 2,
        max_args: 2,
        run: cmd_query,
    },
    CommandSpec {
        name: "serve",
        operands: "",
        min_args: 0,
        max_args: 0,
        run: cmd_serve,
    },
    CommandSpec {
        name: "batch",
        operands: "<dir>",
        min_args: 1,
        max_args: 1,
        run: cmd_batch,
    },
    CommandSpec {
        name: "coordinator",
        operands: "",
        min_args: 0,
        max_args: 0,
        run: cmd_coordinator,
    },
    CommandSpec {
        name: "worker",
        operands: "",
        min_args: 0,
        max_args: 0,
        run: cmd_worker,
    },
    CommandSpec {
        name: "cluster-client",
        operands: "<host:port>",
        min_args: 1,
        max_args: 1,
        run: cmd_cluster_client,
    },
];

fn usage() -> ExitCode {
    let mut text = String::from("usage:\n");
    for cmd in COMMANDS {
        text.push_str("  treechase ");
        text.push_str(cmd.name);
        if !cmd.operands.is_empty() {
            text.push(' ');
            text.push_str(cmd.operands);
        }
        for flag in FLAGS {
            if flag.commands.contains(&cmd.name) {
                if flag.metavar.is_empty() {
                    text.push_str(&format!(" [{}]", flag.name));
                } else {
                    text.push_str(&format!(" [{} {}]", flag.name, flag.metavar));
                }
            }
        }
        text.push('\n');
    }
    eprint!("{text}");
    ExitCode::from(2)
}

/// Parses flags against the table, rejecting unknown flags and flags the
/// subcommand does not accept.
fn parse_args(cmd: &CommandSpec, mut raw: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args::default();
    while let Some(arg) = raw.next() {
        if let Some(flag) = FLAGS.iter().find(|f| f.name == arg) {
            if !flag.commands.contains(&cmd.name) {
                return Err(format!("{} does not apply to `{}`", flag.name, cmd.name));
            }
            // An empty metavar marks a boolean flag: no value consumed.
            let value = if flag.metavar.is_empty() {
                String::new()
            } else {
                raw.next()
                    .ok_or_else(|| format!("{} needs a value", flag.name))?
            };
            (flag.apply)(&mut args, &value)?;
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            args.positional.push(arg);
        }
    }
    if args.positional.len() < cmd.min_args || args.positional.len() > cmd.max_args {
        return Err(format!("{} takes {}", cmd.name, cmd.operands_description()));
    }
    Ok(args)
}

impl CommandSpec {
    fn operands_description(&self) -> String {
        match (self.min_args, self.max_args) {
            (0, 0) => "no operands".to_string(),
            (1, 1) => "exactly one operand".to_string(),
            (lo, hi) if lo == hi => format!("exactly {lo} operands"),
            (lo, hi) => format!("{lo} to {hi} operands"),
        }
    }
}

fn load(path: &str) -> Result<(KnowledgeBase, Vec<(String, AtomSet)>), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let prog = parse_program(&src).map_err(|e| format!("{path}:{e}"))?;
    Ok(KnowledgeBase::from_program(prog))
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let path = &args.positional[0];
    let (kb, queries) = load(path)?;
    let cfg = ChaseConfig::variant(args.variant).with_max_applications(args.max_apps);
    let res = kb.chase(&cfg);
    println!(
        "{:?} chase: {:?} after {} applications ({} rounds, {} retractions)",
        args.variant, res.outcome, res.stats.applications, res.stats.rounds, res.stats.retractions
    );
    println!(
        "final instance: {} atoms = {}",
        res.final_instance.len(),
        res.final_instance.with(&kb.vocab)
    );
    for (name, q) in &queries {
        let hit = maps_to(q, &res.final_instance);
        let verdict = match (hit, res.outcome.terminated()) {
            (true, _) => "entailed (certified)",
            (false, true) => "not entailed (certified)",
            (false, false) => "not found (inconclusive: budget)",
        };
        println!("query {name}: {verdict}");
    }
    if let Some(out) = &args.dot {
        std::fs::write(out, instance_dot(&kb.vocab, &res.final_instance, path))
            .map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let path = &args.positional[0];
    // The operand is a program file, or the name of a built-in KB
    // (`staircase` / `elevator`) when no such file exists.
    let kb = match load(path) {
        Ok((kb, _)) => kb,
        Err(e) => treechase::service::named_kb(path).map_err(|_| e)?,
    };
    // The static sub-tests get a search budget proportional to the
    // probe budget, so one knob scales the whole analysis; `--probe-apps`
    // overrides just the dynamic probe's application horizon.
    let budget = SearchBudget::unlimited().with_node_limit(args.budget.saturating_mul(25));
    let probe_cfg = ProbeConfig::with_applications(args.probe_apps.unwrap_or(args.budget));
    let gate = analyze_kb_with(&kb, &budget, &probe_cfg);
    if args.json {
        println!("{}", protocol::analysis_to_json(&gate, &kb.rules));
        return Ok(());
    }
    println!("--- ruleset report (static + probe evidence) ---");
    println!("{}", gate.report);
    match critical_instance_test(
        &kb.rules,
        &SearchBudget::unlimited().with_node_limit(args.budget.saturating_mul(4)),
    ) {
        CriticalOutcome::TerminatesEverywhere { applications } => println!(
            "critical-instance test: terminates everywhere ({applications} applications) ⇒ fes"
        ),
        CriticalOutcome::BudgetExhausted => {
            println!("critical-instance test: inconclusive at this budget");
        }
    }
    println!(
        "--- dynamic probes (this fact base, budget {}) ---",
        args.budget
    );
    let probe = &gate.probe;
    println!("core chase terminated: {}", probe.core_chase_terminated);
    println!(
        "restricted chase: terminated={} tw-profile max {}",
        probe.restricted_chase_terminated,
        probe.restricted_uniform_bound()
    );
    println!(
        "core chase tw: max {} recurring {:?}",
        probe.core_uniform_bound(),
        probe.core_recurring_bound()
    );
    println!("--- chase plan ---");
    println!("{}", gate.plan.describe(&kb.rules));
    println!(
        "recommended variant: {}",
        protocol::variant_name(gate.plan.recommended_variant())
    );
    println!("admissible: {}", gate.admissible());
    println!(
        "cost model: {} (from {}) -> max_apps {} mem {}/{} deadline {:?}",
        gate.cost_class.name(),
        gate.provenance,
        gate.envelope.max_apps,
        gate.envelope.mem_soft,
        gate.envelope.mem_hard,
        gate.envelope.deadline,
    );
    Ok(())
}

fn cmd_decide(args: &Args) -> Result<(), String> {
    let [path, query_src] = &args.positional[..] else {
        unreachable!("operand count checked by parse_args");
    };
    let (mut kb, _) = load(path)?;
    let query = kb
        .parse_query(query_src)
        .map_err(|e| format!("query: {e}"))?;
    let cfg = DecideConfig {
        max_applications: args.max_apps,
        max_atoms: 100_000,
        core_max_applications: (args.max_apps / 5).max(20),
    };
    let out = decide(&kb, &query, &cfg);
    println!("{out:?}");
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let [path, query_src] = &args.positional[..] else {
        unreachable!("operand count checked by parse_args");
    };
    // The operand is a program file, or the name of a built-in KB
    // (`staircase` / `elevator`) when no such file exists.
    let kb = match load(path) {
        Ok((kb, _)) => kb,
        Err(e) => treechase::service::named_kb(path).map_err(|_| e)?,
    };
    let mut cfg = ChaseConfig::variant(args.variant).with_max_applications(args.max_apps);
    cfg.max_wall = args.max_wall_ms.map(Duration::from_millis);
    let mut budget = SearchBudget::unlimited();
    if let Some(n) = args.node_limit {
        budget = budget.with_node_limit(n);
    }
    let out = treechase::query::answer_kb(&kb, query_src, &cfg, &budget)
        .map_err(|e| format!("query: {e}"))?;
    match out.completeness.horizon() {
        Some(h) => println!("completeness: {} (horizon {h})", out.completeness.label()),
        None => println!("completeness: {}", out.completeness.label()),
    }
    println!("entailed: {}", out.entailed());
    if out.var_names.is_empty() {
        return Ok(());
    }
    println!("answers ({}):", out.answers.len());
    for row in &out.answers {
        let mut line = String::new();
        for (name, value) in out.var_names.iter().zip(row) {
            if !line.is_empty() {
                line.push_str(", ");
            }
            line.push_str(&format!("{name} = {value}"));
        }
        println!("  {line}");
    }
    Ok(())
}

/// Writes one JSONL line to stdout under the shared lock (events from
/// the forwarder thread interleave with responses from the request
/// loop, but never mid-line).
fn emit_line(lock: &Mutex<()>, line: &Json) {
    let _guard = lock.lock().expect("stdout lock poisoned");
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

fn response(op: &str, fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![
        ("type".to_string(), Json::str("response")),
        ("op".to_string(), Json::str(op)),
    ];
    obj.extend(fields);
    Json::Obj(obj)
}

fn error_response(message: &str) -> Json {
    Json::obj([
        ("type", Json::str("error")),
        ("message", Json::str(message)),
    ])
}

/// The supervision/persistence/overload configuration shared by `serve`
/// and `batch`.
fn service_config(args: &Args) -> ServiceConfig {
    ServiceConfig {
        state_dir: args.state_dir.as_ref().map(std::path::PathBuf::from),
        max_retries: args.retries,
        retry_backoff: Duration::from_millis(args.retry_backoff_ms),
        checkpoint_every: args.checkpoint_every,
        max_queue: args.max_queue,
        submitter_quota: args.quota,
        job_deadline: args.job_deadline_ms.map(Duration::from_millis),
        op_deadline: args.op_deadline_ms.map(Duration::from_millis),
        drain_grace: Duration::from_millis(args.drain_grace_ms),
        strict_admission: args.strict_admission,
        ..ServiceConfig::default()
    }
}

/// Checks the service-level memory ceilings for consistency (the same
/// rule the protocol enforces per request).
fn validate_mem_flags(args: &Args) -> Result<(), String> {
    if let (Some(soft), Some(hard)) = (args.mem_soft, args.mem_hard) {
        if soft > hard {
            return Err(format!(
                "--mem-soft ({soft}) must not exceed --mem-hard ({hard})"
            ));
        }
    }
    Ok(())
}

/// Applies the service-level memory ceilings to a job config that did
/// not set its own.
fn apply_mem_defaults(cfg: &mut ChaseConfig, args: &Args) {
    if cfg.mem_soft.is_none() {
        cfg.mem_soft = args.mem_soft;
    }
    if cfg.mem_hard.is_none() {
        cfg.mem_hard = args.mem_hard;
    }
}

/// Reports checkpoint recovery on stderr and returns the recovered ids.
fn report_recovery(svc: &Service) -> Vec<treechase::service::JobId> {
    for err in svc.recovery_errors() {
        eprintln!(
            "warning: unrecoverable checkpoint {}: {}",
            err.path.display(),
            err.error
        );
    }
    svc.recovered_jobs().to_vec()
}

/// Builds the spec for a `resume` request. By default the new slice
/// continues the derivation's remaining budgets; an explicit budget on
/// the request replaces the corresponding carry-over with a fresh one.
fn resume_spec(
    checkpoint: &Checkpoint,
    max_applications: Option<usize>,
    max_wall_ms: Option<u64>,
) -> Result<JobSpec, String> {
    let mut spec = checkpoint.into_spec()?;
    if let Some(n) = max_applications {
        spec.config.max_applications = n;
    }
    if let Some(ms) = max_wall_ms {
        spec.config.max_wall = Some(Duration::from_millis(ms));
        // A fresh wall budget starts from zero; without this the new
        // slice would still be charged for the prefix's wall time.
        spec.config.consumed_wall = Duration::ZERO;
    }
    Ok(spec)
}

fn handle_request(svc: &Service, args: &Args, req: Request) -> Result<Json, String> {
    match req {
        Request::Submit {
            name,
            source,
            kb,
            mut config,
            tw_sample_interval,
            progress_every,
            checkpoint_every,
            priority,
            submitter,
            auto_strategy,
            auto_budgets,
        } => {
            apply_mem_defaults(&mut config, args);
            let mut spec = match (&source, &kb) {
                (Some(src), None) => JobSpec::from_text(name.unwrap_or_default(), src, *config)?,
                (None, Some(kb_name)) => {
                    let base = treechase::service::named_kb(kb_name)?;
                    let mut spec =
                        JobSpec::from_kb(name.unwrap_or_else(|| kb_name.clone()), base, *config);
                    if spec.name.is_empty() {
                        spec.name = kb_name.clone();
                    }
                    spec
                }
                // parse_request enforces exactly-one; keep a defensive
                // error for in-process callers.
                _ => return Err("submit takes exactly one of `source` / `kb`".to_string()),
            };
            if let Some(every) = tw_sample_interval {
                spec = spec.with_tw_samples(every);
            }
            if let Some(every) = progress_every {
                spec = spec.with_progress_every(every);
            }
            if let Some(every) = checkpoint_every {
                spec = spec.with_checkpoint_every(every);
            }
            spec = spec.with_priority(priority);
            spec.submitter = submitter;
            spec.auto_strategy = auto_strategy;
            spec.auto_budgets = auto_budgets;
            if spec.name.is_empty() {
                // Ids are minted densely from 1 and entries are never
                // removed, so the next id is the table size plus one.
                spec.name = format!("job-{}", svc.list().len() + 1);
            }
            let rules = spec.kb.rules.clone();
            match svc.submit_analyzed(spec) {
                Ok((id, admission)) => {
                    let mut fields = vec![("job".to_string(), Json::Int(id as i64))];
                    // Fully-pinned submits skip the gate; the reply then
                    // carries no analysis block.
                    if let Some(gate) = &admission.gate {
                        fields.push((
                            "analysis".to_string(),
                            protocol::analysis_to_json(gate, &rules),
                        ));
                        fields.push((
                            "strategy_applied".to_string(),
                            Json::Bool(admission.strategy_applied),
                        ));
                        fields.push((
                            "budgets_tightened".to_string(),
                            Json::Bool(admission.budgets_tightened),
                        ));
                    }
                    Ok(response("submit", fields))
                }
                Err(rej) => Ok(treechase::service::rejection_to_json("submit", &rej)),
            }
        }
        Request::Resume {
            checkpoint,
            max_applications,
            max_wall_ms,
        } => {
            let spec = resume_spec(&checkpoint, max_applications, max_wall_ms)?;
            match svc.try_submit(spec) {
                Ok(id) => Ok(response(
                    "resume",
                    vec![
                        ("job".to_string(), Json::Int(id as i64)),
                        ("exact".to_string(), Json::Bool(checkpoint.exact())),
                    ],
                )),
                Err(rej) => Ok(treechase::service::rejection_to_json("resume", &rej)),
            }
        }
        Request::Cancel { job } => {
            let ok = svc.cancel(job);
            Ok(response(
                "cancel",
                vec![
                    ("job".to_string(), Json::Int(job as i64)),
                    ("cancelled".to_string(), Json::Bool(ok)),
                ],
            ))
        }
        Request::Status { job } => {
            let status = svc
                .status(job)
                .ok_or_else(|| format!("unknown job {job}"))?;
            Ok(response(
                "status",
                vec![
                    ("job".to_string(), Json::Int(job as i64)),
                    (
                        "status".to_string(),
                        Json::str(protocol::status_name(&status)),
                    ),
                ],
            ))
        }
        Request::Wait { job, timeout_ms } => {
            // An explicit timeout wins; otherwise the service-level
            // --op-deadline applies; with neither, blocks indefinitely.
            let (status, timed_out) =
                match svc.wait_timeout(job, timeout_ms.map(Duration::from_millis)) {
                    treechase::service::WaitResult::Terminal(s) => (s, false),
                    treechase::service::WaitResult::TimedOut(s) => (s, true),
                    treechase::service::WaitResult::Unknown => {
                        return Err(format!("unknown job {job}"))
                    }
                };
            let name = svc
                .list()
                .into_iter()
                .find(|r| r.id == job)
                .map(|r| r.name)
                .unwrap_or_default();
            let mut fields = vec![
                ("job".to_string(), Json::Int(job as i64)),
                (
                    "status".to_string(),
                    Json::str(protocol::status_name(&status)),
                ),
                ("timed_out".to_string(), Json::Bool(timed_out)),
            ];
            if !timed_out {
                if let Some(r) = svc.with_result(job, |r| result_to_json(job, &name, r)) {
                    fields.push(("result".to_string(), r));
                }
            }
            Ok(response("wait", fields))
        }
        Request::Checkpoint { job } => {
            // Falls back from the final result's checkpoint to the last
            // periodic capture, so even a job that crashed out past its
            // retry budget hands back its durable progress.
            let ck = svc
                .checkpoint_of(job)
                .ok_or_else(|| format!("job {job} has no checkpoint"))?;
            Ok(response(
                "checkpoint",
                vec![
                    ("job".to_string(), Json::Int(job as i64)),
                    ("checkpoint".to_string(), ck.to_json()),
                ],
            ))
        }
        Request::Query {
            job,
            kb,
            source,
            query,
            config,
            node_limit,
            timeout_ms,
        } => {
            let timeout = timeout_ms.map(Duration::from_millis);
            let reply = if let Some(id) = job {
                svc.query_job(id, &query, node_limit, timeout)
            } else {
                let base = match (&kb, &source) {
                    (Some(kb_name), None) => treechase::service::named_kb(kb_name)?,
                    (None, Some(src)) => {
                        JobSpec::from_text(String::new(), src, (*config).clone())?.kb
                    }
                    // parse_request enforces exactly-one; keep a
                    // defensive error for in-process callers.
                    _ => {
                        return Err("query takes exactly one of `job` / `kb` / `source`".to_string())
                    }
                };
                svc.query_kb(&base, &config, &query, node_limit, timeout)
            };
            match reply {
                Ok(r) => Ok(protocol::query_reply_to_json(&r)),
                Err(treechase::service::QueryError::Rejected(rej)) => {
                    Ok(treechase::service::rejection_to_json("query", &rej))
                }
                Err(e) => Err(e.to_string()),
            }
        }
        Request::List => Ok(response(
            "list",
            vec![(
                "jobs".to_string(),
                Json::Arr(
                    svc.list()
                        .into_iter()
                        .map(|r| {
                            Json::obj([
                                ("job", Json::Int(r.id as i64)),
                                ("name", Json::str(&r.name)),
                                ("status", Json::str(protocol::status_name(&r.status))),
                                ("events_dropped", Json::Int(r.events_dropped as i64)),
                                ("queries_served", Json::Int(r.queries_served as i64)),
                                (
                                    "snapshot_age_ms",
                                    r.snapshot_age_ms
                                        .map_or(Json::Null, |ms| Json::Int(ms as i64)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            )],
        )),
        Request::Drain => {
            let report = svc.drain(None);
            Ok(response("drain", drain_fields(&report)))
        }
        Request::Shutdown => Ok(response("shutdown", Vec::new())),
    }
}

/// The wire rendering of a [`DrainReport`] (shared by the `drain` op
/// response and the SIGTERM-driven `drained` line).
fn drain_fields(report: &treechase::service::DrainReport) -> Vec<(String, Json)> {
    vec![
        (
            "cancelled_queued".to_string(),
            Json::Int(report.cancelled_queued as i64),
        ),
        (
            "checkpointed".to_string(),
            Json::Int(report.checkpointed as i64),
        ),
        ("timed_out".to_string(), Json::Int(report.timed_out as i64)),
    ]
}

/// SIGTERM handling for graceful drain, without any external crate: the
/// C handler only flips an atomic; a watcher thread polls it and runs
/// the drain sequence outside signal context.
#[cfg(unix)]
#[allow(unsafe_code)] // the single vetted `signal(2)` registration below
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::Release);
    }

    /// Installs the handler (async-signal-safe: it only stores a flag).
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` with a handler that only performs an atomic
        // store is async-signal-safe; no allocation, locking or I/O
        // happens in signal context.
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }

    /// Has SIGTERM arrived?
    pub fn received() -> bool {
        TERM.load(Ordering::Acquire)
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    validate_mem_flags(args)?;
    let svc = std::sync::Arc::new(Service::with_config(args.workers, service_config(args))?);
    let recovered = report_recovery(&svc);
    let events = svc.events();
    let lock = std::sync::Arc::new(Mutex::new(()));
    if !recovered.is_empty() {
        emit_line(
            &lock,
            &Json::obj([
                ("type", Json::str("recovered")),
                (
                    "jobs",
                    Json::Arr(recovered.iter().map(|id| Json::Int(*id as i64)).collect()),
                ),
            ]),
        );
    }
    let event_lock = std::sync::Arc::clone(&lock);
    let forwarder = std::sync::Arc::new(Mutex::new(Some(std::thread::spawn(move || {
        for ev in events {
            emit_line(&event_lock, &event_to_json(&ev));
        }
    }))));

    // SIGTERM → graceful drain: stop admitting, checkpoint running
    // slices, flush the event stream, exit 0. The watcher thread keeps
    // the signal handler itself trivial.
    #[cfg(unix)]
    {
        sigterm::install();
        let svc = std::sync::Arc::clone(&svc);
        let lock = std::sync::Arc::clone(&lock);
        let forwarder = std::sync::Arc::clone(&forwarder);
        std::thread::spawn(move || loop {
            if sigterm::received() {
                let report = svc.drain(None);
                let mut fields = vec![("type".to_string(), Json::str("drained"))];
                fields.extend(drain_fields(&report));
                emit_line(&lock, &Json::Obj(fields));
                svc.close_events();
                let handle = forwarder.lock().ok().and_then(|mut g| g.take());
                if let Some(h) = handle {
                    let _ = h.join();
                }
                std::process::exit(0);
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = parse_json(&line)
            .and_then(|v| parse_request(&v))
            .and_then(|req| handle_request(&svc, args, req));
        // `drain` and `shutdown` both end the serve loop; a drain has
        // already checkpointed the running slices by the time its
        // response is emitted.
        let is_exit = matches!(
            &reply,
            Ok(Json::Obj(fields)) if fields.iter().any(|(k, v)| {
                k == "op" && matches!(v.as_str(), Some("shutdown") | Some("drain"))
            })
        );
        match reply {
            Ok(json) => emit_line(&lock, &json),
            Err(message) => emit_line(&lock, &error_response(&message)),
        }
        if is_exit {
            break;
        }
    }
    svc.shutdown();
    let handle = forwarder.lock().ok().and_then(|mut g| g.take());
    if let Some(h) = handle {
        let _ = h.join();
    }
    Ok(())
}

fn cmd_batch(args: &Args) -> Result<(), String> {
    let dir = &args.positional[0];
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "tc"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{dir}: no .tc files"));
    }

    validate_mem_flags(args)?;
    let mut cfg = ChaseConfig::variant(args.variant).with_max_applications(args.max_apps);
    cfg.max_wall = args.max_wall_ms.map(Duration::from_millis);
    apply_mem_defaults(&mut cfg, args);

    let svc = Service::with_config(args.workers, service_config(args))?;
    let recovered = report_recovery(&svc);
    let events = svc.events();
    let lock = std::sync::Arc::new(Mutex::new(()));
    let event_lock = std::sync::Arc::clone(&lock);
    let forwarder = std::thread::spawn(move || {
        for ev in events {
            emit_line(&event_lock, &event_to_json(&ev));
        }
    });

    let mut ids = recovered;
    for path in &files {
        let name = path.file_stem().map_or_else(
            || path.display().to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        // A fresh fault plan per job: each job's sites fire once.
        let mut job_cfg = cfg.clone();
        if let Some(plan) = &args.fault_plan {
            job_cfg.fault = Some(parse_fault_plan(plan)?);
        }
        let mut spec = JobSpec::from_text(name, &src, job_cfg)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .with_progress_every(args.progress_every);
        if let Some(every) = args.tw_every {
            spec = spec.with_tw_samples(every);
        }
        ids.push(svc.submit(spec));
    }

    let mut failed = 0usize;
    let mut summaries = Vec::new();
    for id in &ids {
        let status = svc.wait(*id).expect("submitted job is known");
        let name = svc
            .list()
            .into_iter()
            .find(|r| r.id == *id)
            .map(|r| r.name)
            .unwrap_or_default();
        if status == JobStatus::Failed {
            failed += 1;
            summaries.push(format!("job {name}: failed"));
            continue;
        }
        if let Some(line) = svc.with_result(*id, |r| {
            format!(
                "job {name}: {} after {} applications, {} atoms, {} ms",
                protocol::outcome_name(r.outcome),
                r.stats.applications,
                r.final_instance.len(),
                r.wall_ms
            )
        }) {
            summaries.push(line);
        }
    }
    svc.shutdown();
    drop(svc);
    let _ = forwarder.join();

    {
        let _guard = lock.lock().expect("stdout lock poisoned");
        for line in &summaries {
            println!("{line}");
        }
        println!(
            "batch: {} jobs, {} completed, {} failed ({} workers)",
            ids.len(),
            ids.len() - failed,
            failed,
            args.workers
        );
    }
    if failed > 0 {
        return Err(format!("{failed} job(s) failed"));
    }
    Ok(())
}

/// `treechase coordinator`: owns the cluster job table, grants leases
/// to workers over TCP, and reschedules lost leases from the durable
/// checkpoints in `--state-dir`. SIGTERM shuts the listener down; the
/// state dir *is* the drain — every job's progress is already durable.
fn cmd_coordinator(args: &Args) -> Result<(), String> {
    let state_dir = args
        .state_dir
        .as_ref()
        .ok_or("coordinator requires --state-dir (durable checkpoints are the unit of dispatch)")?;
    let lease = Duration::from_millis(args.lease_ms);
    let cluster_cfg = treechase::cluster::ClusterConfig {
        lease,
        heartbeat: args.heartbeat_ms.map_or(lease / 4, Duration::from_millis),
        checkpoint_every: args.checkpoint_every.unwrap_or(16),
        max_queue: args.max_queue,
        service: ServiceConfig {
            // The coordinator never runs jobs itself; its store is
            // opened separately from --state-dir.
            state_dir: None,
            op_deadline: args.op_deadline_ms.map(Duration::from_millis),
            strict_admission: args.strict_admission,
            ..ServiceConfig::default()
        },
        ..treechase::cluster::ClusterConfig::default()
    };
    let coord = treechase::cluster::Coordinator::bind(
        &args.listen,
        std::path::Path::new(state_dir),
        cluster_cfg,
    )?;
    #[cfg(unix)]
    {
        sigterm::install();
        let handle = coord.shutdown_handle();
        std::thread::spawn(move || loop {
            if sigterm::received() {
                handle.shutdown();
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }
    coord.run()
}

/// `treechase worker`: connects to a coordinator, pulls leased jobs and
/// runs them through an embedded single-threaded service. SIGTERM
/// drains: the running slice checkpoints, the lease is released with
/// that checkpoint, and the process exits cleanly.
fn cmd_worker(args: &Args) -> Result<(), String> {
    let connect = args
        .connect
        .clone()
        .ok_or("worker requires --connect <host:port>")?;
    let name = args
        .worker_name
        .clone()
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    #[cfg(unix)]
    sigterm::install();
    #[cfg(unix)]
    let stop = sigterm::received;
    #[cfg(not(unix))]
    let stop = || false;
    let cfg = treechase::cluster::WorkerConfig {
        connect,
        name,
        announce: true,
    };
    treechase::cluster::run_worker(&cfg, &stop)
}

/// `treechase cluster-client`: frames stdin JSONL requests to a
/// coordinator and prints each reply as one line — the shell-scriptable
/// client the CI smoke tests drive.
fn cmd_cluster_client(args: &Args) -> Result<(), String> {
    let addr = &args.positional[0];
    let mut conn =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    conn.set_read_timeout(Some(Duration::from_millis(250)))
        .map_err(|e| format!("read timeout: {e}"))?;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let msg = parse_json(&line)?;
        let reply = treechase::cluster::wire::roundtrip(&mut conn, &msg)?;
        println!("{reply}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1);
    let Some(cmd_name) = raw.next() else {
        return usage();
    };
    let Some(cmd) = COMMANDS.iter().find(|c| c.name == cmd_name) else {
        return usage();
    };
    let args = match parse_args(cmd, raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match (cmd.run)(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
