//! `treechase` — umbrella crate re-exporting the whole workspace.
//!
//! This is the root of the reproduction of *Bounded Treewidth and the
//! Infinite Core Chase* (Baget, Mugnier, Rudolph — PODS 2023). See the
//! individual crates for the substrates:
//!
//! * [`chase_atoms`] — terms, atoms, atomsets, substitutions
//! * [`chase_homomorphism`] — homomorphism search, retractions, cores
//! * [`chase_treewidth`] — tree decompositions and treewidth solvers
//! * [`chase_engine`] — derivations, chase variants, robust aggregation
//! * [`chase_parser`] — text syntax for rules, facts and queries
//! * [`chase_kbs`] — the paper's knowledge bases and workload generators
//! * [`chase_analysis`] — static ruleset analyses (acyclicity, guards)
//! * [`chase_core`] — the public facade: KBs, entailment, class analysis
//! * [`chase_query`] — CQ/UCQ answering over materialization snapshots
//! * [`treechase_service`] — concurrent, budgeted chase job runner
//! * [`treechase_cluster`] — coordinator/worker cluster over leased TCP jobs

pub use chase_analysis as analysis;
pub use chase_atoms as atoms;
pub use chase_core as core;
pub use chase_engine as engine;
pub use chase_homomorphism as homomorphism;
pub use chase_kbs as kbs;
pub use chase_parser as parser;
pub use chase_query as query;
pub use chase_treewidth as treewidth;
pub use treechase_cluster as cluster;
pub use treechase_service as service;

pub use chase_core::prelude;
