//! # chase-treewidth
//!
//! Treewidth machinery for atomsets, implementing Section 4 of *Bounded
//! Treewidth and the Infinite Core Chase* (PODS 2023):
//!
//! * the **primal (Gaifman) graph** of an atomset ([`Graph::primal`]);
//! * **tree decompositions** (Definition 4) with an independent validator
//!   ([`TreeDecomposition::validate`]);
//! * **heuristic** upper bounds via elimination orderings (min-degree /
//!   min-fill, [`min_degree_decomposition`] / [`min_fill_decomposition`]);
//! * an **exact** branch-and-bound solver over elimination orderings with
//!   memoization and simplicial-vertex reductions ([`exact_treewidth`]);
//! * a degeneracy-based **lower bound** ([`degeneracy_lower_bound`]) —
//!   `tw(G) ≥ degeneracy(G)` since every subgraph of `G` has a vertex of
//!   degree at most `tw(G)`;
//! * **grid containment** per Definition 5 ([`contains_grid`]), giving the
//!   paper's Fact 2 lower bound `tw(A) ≥ n` when `A` contains an
//!   `n × n`-grid;
//! * **pathwidth** via vertex separation ([`exact_pathwidth`]) — a second
//!   structural measure demonstrating Section 5's remark that the
//!   grid-based counterexamples transfer beyond treewidth;
//! * **structural measures** and the uniform/recurring boundedness notions
//!   of Section 5 ([`measure`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decomposition;
mod elimination;
mod exact;
mod graph;
mod grid;
mod hypertree;
pub mod measure;
mod pathwidth;

pub use decomposition::{DecompositionError, TreeDecomposition};
pub use elimination::{decomposition_from_order, min_degree_decomposition, min_fill_decomposition};
pub use exact::{degeneracy_lower_bound, exact_treewidth, exact_treewidth_graph};
pub use graph::Graph;
pub use grid::{contains_grid, grid_atoms, GridLabeling};
pub use hypertree::{greedy_cover_width, hypertree_width_upper};
pub use pathwidth::{
    exact_pathwidth, exact_pathwidth_graph, is_path_decomposition, path_decomposition_from_order,
};

use chase_atoms::AtomSet;

/// Certified two-sided treewidth estimate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TwBounds {
    /// A proven lower bound on the treewidth.
    pub lower: usize,
    /// A proven upper bound on the treewidth (width of a valid
    /// decomposition).
    pub upper: usize,
}

impl TwBounds {
    /// Are the bounds tight (exact value known)?
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }
}

/// Computes certified treewidth bounds for an atomset.
///
/// The upper bound is the best of the min-degree and min-fill elimination
/// heuristics (each validated against the atomset); the lower bound is the
/// degeneracy of the primal graph. For exact values on small instances use
/// [`treewidth`].
pub fn treewidth_bounds(a: &AtomSet) -> TwBounds {
    let g = Graph::primal(a);
    let lower = degeneracy_lower_bound(&g);
    let d1 = min_degree_decomposition(a);
    let d2 = min_fill_decomposition(a);
    debug_assert!(d1.validate(a).is_ok());
    debug_assert!(d2.validate(a).is_ok());
    let upper = d1.width().min(d2.width());
    TwBounds { lower, upper }
}

/// Computes the exact treewidth of an atomset.
///
/// Uses the sandwich bounds first and falls back to branch-and-bound only
/// when they disagree. Exponential in the worst case — intended for
/// instances whose primal graph has at most a few dozen vertices (the
/// figures of the paper are all in this regime).
pub fn treewidth(a: &AtomSet) -> usize {
    if a.is_empty() {
        return 0;
    }
    let b = treewidth_bounds(a);
    if b.is_exact() {
        return b.lower;
    }
    exact_treewidth(a)
}
