//! Grid containment per Definition 5 of the paper.
//!
//! An atomset `A` *contains an `n × n`-grid* if it has `n²` distinct terms
//! `t_i^j` such that adjacent coordinates (horizontally and vertically)
//! co-occur in some atom. By Fact 2, `tw(A) ≥ n` then.
//!
//! Deciding grid containment for arbitrary labelings is NP-hard, so the
//! checker takes an explicit candidate [`GridLabeling`] — the paper's own
//! proofs (Props. 5 and 8.2) construct these labelings explicitly, and the
//! `chase-kbs` crate reproduces them.

use std::collections::BTreeSet;

use chase_atoms::{Atom, AtomSet, PredId, Term};

/// A candidate labeling of an `n × n` grid: `terms[i][j]` is the term at
/// column `i`, row `j` (0-based; the paper indexes from 1).
#[derive(Clone, Debug)]
pub struct GridLabeling {
    /// `terms[i][j]` for `0 ≤ i, j < n`.
    pub terms: Vec<Vec<Term>>,
}

impl GridLabeling {
    /// Builds a labeling from a coordinate function.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> Term) -> Self {
        GridLabeling {
            terms: (0..n).map(|i| (0..n).map(|j| f(i, j)).collect()).collect(),
        }
    }

    /// The grid dimension `n`.
    pub fn n(&self) -> usize {
        self.terms.len()
    }

    /// Are all `n²` labeled terms pairwise distinct (required by
    /// Definition 5)?
    pub fn is_injective(&self) -> bool {
        let mut seen = BTreeSet::new();
        for row in &self.terms {
            for &t in row {
                if !seen.insert(t) {
                    return false;
                }
            }
        }
        true
    }
}

fn co_occur(a: &AtomSet, t: Term, u: Term) -> bool {
    // Scan the shorter occurrence list.
    if a.term_count(t) <= a.term_count(u) {
        a.with_term(t).any(|atom| atom.mentions(u))
    } else {
        a.with_term(u).any(|atom| atom.mentions(t))
    }
}

/// Checks Definition 5: does `a` contain the `n × n`-grid described by
/// `labeling`?
///
/// Requires (i) the labeling to be injective, (ii) for every column step,
/// `t_i^j` and `t_{i+1}^j` to co-occur in some atom, and (iii) likewise for
/// every row step.
pub fn contains_grid(a: &AtomSet, labeling: &GridLabeling) -> bool {
    let n = labeling.n();
    if n == 0 {
        return true;
    }
    if !labeling.is_injective() {
        return false;
    }
    for i in 0..n {
        for j in 0..n {
            let t = labeling.terms[i][j];
            if !a.mentions(t) {
                return false;
            }
            if i + 1 < n && !co_occur(a, t, labeling.terms[i + 1][j]) {
                return false;
            }
            if j + 1 < n && !co_occur(a, t, labeling.terms[i][j + 1]) {
                return false;
            }
        }
    }
    true
}

/// Generates the atoms of a plain `n × n` grid over fresh-looking terms:
/// `h(t_i^j, t_{i+1}^j)` and `v(t_i^j, t_i^{j+1})`. Returns the atomset and
/// its natural labeling. Useful as a treewidth workload and in tests.
pub fn grid_atoms(
    n: usize,
    h: PredId,
    v: PredId,
    mut term_at: impl FnMut(usize, usize) -> Term,
) -> (AtomSet, GridLabeling) {
    let labeling = GridLabeling::from_fn(n, &mut term_at);
    let mut set = AtomSet::new();
    for i in 0..n {
        for j in 0..n {
            if i + 1 < n {
                set.insert(Atom::new(
                    h,
                    vec![labeling.terms[i][j], labeling.terms[i + 1][j]],
                ));
            }
            if j + 1 < n {
                set.insert(Atom::new(
                    v,
                    vec![labeling.terms[i][j], labeling.terms[i][j + 1]],
                ));
            }
        }
    }
    (set, labeling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::VarId;

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn h_pred() -> PredId {
        PredId::from_raw(0)
    }

    fn v_pred() -> PredId {
        PredId::from_raw(1)
    }

    fn term_at(n: usize) -> impl FnMut(usize, usize) -> Term {
        move |i, j| v((i * n + j) as u32)
    }

    #[test]
    fn generated_grid_contains_itself() {
        // n = 1 generates no atoms (no adjacencies), so start at 2.
        for n in 2..=5 {
            let (set, lab) = grid_atoms(n, h_pred(), v_pred(), term_at(n));
            assert!(contains_grid(&set, &lab), "n = {n}");
        }
    }

    #[test]
    fn missing_edge_breaks_containment() {
        let (mut set, lab) = grid_atoms(3, h_pred(), v_pred(), term_at(3));
        // Remove one horizontal atom.
        let victim = Atom::new(h_pred(), vec![lab.terms[0][0], lab.terms[1][0]]);
        assert!(set.remove(&victim));
        assert!(!contains_grid(&set, &lab));
    }

    #[test]
    fn non_injective_labeling_rejected() {
        let (set, _) = grid_atoms(3, h_pred(), v_pred(), term_at(3));
        let bad = GridLabeling::from_fn(3, |_, _| v(0));
        assert!(!bad.is_injective());
        assert!(!contains_grid(&set, &bad));
    }

    #[test]
    fn grid_gives_fact2_lower_bound() {
        // Fact 2 + exact solver agreement on small grids.
        for n in 2..=4usize {
            let (set, lab) = grid_atoms(n, h_pred(), v_pred(), term_at(n));
            assert!(contains_grid(&set, &lab));
            let tw = crate::exact_treewidth(&set);
            assert!(tw >= n, "tw {tw} < n {n}");
        }
    }

    #[test]
    fn labeling_terms_must_occur() {
        let (set, _) = grid_atoms(2, h_pred(), v_pred(), term_at(2));
        let phantom = GridLabeling::from_fn(2, |i, j| v(100 + (i * 2 + j) as u32));
        assert!(!contains_grid(&set, &phantom));
    }

    #[test]
    fn zero_grid_trivially_contained() {
        let lab = GridLabeling { terms: vec![] };
        assert!(contains_grid(&AtomSet::new(), &lab));
    }

    #[test]
    fn diagonal_atoms_do_not_count() {
        // Terms co-occur only diagonally — adjacency requirements fail.
        let mut set = AtomSet::new();
        for i in 0..2u32 {
            for j in 0..2u32 {
                set.insert(Atom::new(h_pred(), vec![v(i * 2 + j), v(i * 2 + j)]));
            }
        }
        set.insert(Atom::new(h_pred(), vec![v(0), v(3)]));
        let lab = GridLabeling::from_fn(2, |i, j| v((i * 2 + j) as u32));
        assert!(!contains_grid(&set, &lab));
    }
}
