//! Exact treewidth via branch-and-bound over elimination orderings, plus
//! the degeneracy lower bound.
//!
//! The solver is a QuickBB-style search: a state is the set of already
//! eliminated vertices (the width contributed by a prefix is independent
//! of its internal order, so states memoize), branching on the next vertex
//! to eliminate, pruning with (a) the best width found so far, (b) the
//! degeneracy lower bound of the remaining graph, and (c) the *simplicial
//! vertex rule* — a vertex whose neighbourhood is a clique can always be
//! eliminated first without loss of optimality.
//!
//! Intended for primal graphs of up to roughly 30–40 vertices, which
//! covers every structure appearing in the paper's figures. Larger
//! instances should use [`crate::treewidth_bounds`].

use std::collections::{BTreeSet, HashMap};

use chase_atoms::AtomSet;

use crate::graph::Graph;

/// The degeneracy of the graph: `max` over the elimination process of the
/// minimum degree. This is a lower bound on treewidth (any tree
/// decomposition of width `w` yields, for every subgraph, a vertex of
/// degree ≤ `w`).
pub fn degeneracy_lower_bound(g: &Graph) -> usize {
    let n = g.len();
    let mut adj = g.adjacency();
    let mut alive: BTreeSet<usize> = (0..n).collect();
    let mut best = 0usize;
    while !alive.is_empty() {
        let &v = alive
            .iter()
            .min_by_key(|&&v| adj[v].len())
            .expect("alive nonempty");
        best = best.max(adj[v].len());
        let neigh: Vec<usize> = adj[v].iter().copied().collect();
        for u in neigh {
            adj[u].remove(&v);
        }
        adj[v].clear();
        alive.remove(&v);
    }
    best
}

struct Solver {
    adj: Vec<BTreeSet<usize>>,
    n: usize,
    best: usize,
    memo: HashMap<u128, usize>,
}

impl Solver {
    /// Minimum degree over the live vertices (cheap lower bound for the
    /// remaining subproblem).
    fn min_degree_lb(&self, alive: &BTreeSet<usize>) -> usize {
        alive.iter().map(|&v| self.adj[v].len()).min().unwrap_or(0)
    }

    fn is_simplicial(&self, v: usize) -> bool {
        let neigh: Vec<usize> = self.adj[v].iter().copied().collect();
        for (i, &x) in neigh.iter().enumerate() {
            for &y in &neigh[i + 1..] {
                if !self.adj[x].contains(&y) {
                    return false;
                }
            }
        }
        true
    }

    /// Eliminates `v`: removes it and makes its neighbourhood a clique.
    /// Returns the degree at elimination time plus the list of fill edges
    /// added, for undoing.
    fn eliminate(&mut self, v: usize) -> (usize, Vec<(usize, usize)>) {
        let neigh: Vec<usize> = self.adj[v].iter().copied().collect();
        let mut fill = Vec::new();
        for (i, &x) in neigh.iter().enumerate() {
            for &y in &neigh[i + 1..] {
                if self.adj[x].insert(y) {
                    self.adj[y].insert(x);
                    fill.push((x, y));
                }
            }
        }
        for &u in &neigh {
            self.adj[u].remove(&v);
        }
        let deg = neigh.len();
        self.adj[v].clear();
        // Keep v's neighbourhood so we can restore it.
        self.adj[v].extend(neigh.iter().copied());
        (deg, fill)
    }

    fn restore(&mut self, v: usize, fill: &[(usize, usize)]) {
        let neigh: Vec<usize> = self.adj[v].iter().copied().collect();
        for &u in &neigh {
            self.adj[u].insert(v);
        }
        for &(x, y) in fill {
            self.adj[x].remove(&y);
            self.adj[y].remove(&x);
        }
    }

    fn search(&mut self, alive: &mut BTreeSet<usize>, mask: u128, width_so_far: usize) {
        if width_so_far >= self.best {
            return; // cannot improve
        }
        if alive.len() <= 1 {
            self.best = self.best.min(width_so_far);
            return;
        }
        if alive.len().saturating_sub(1) <= width_so_far {
            // Eliminating the rest in any order cannot exceed width_so_far.
            self.best = self.best.min(width_so_far);
            return;
        }
        if let Some(&cached) = self.memo.get(&mask) {
            if cached <= width_so_far {
                return; // already explored this prefix-set at least as well
            }
        }
        self.memo.insert(mask, width_so_far);

        if self.min_degree_lb(alive).max(width_so_far) >= self.best {
            return;
        }

        // Simplicial rule: eliminate a simplicial vertex greedily.
        let simplicial = alive.iter().copied().find(|&v| self.is_simplicial(v));
        let candidates: Vec<usize> = match simplicial {
            Some(v) => vec![v],
            None => {
                let mut c: Vec<usize> = alive.iter().copied().collect();
                // Branch on low-degree vertices first.
                c.sort_by_key(|&v| self.adj[v].len());
                c
            }
        };

        for v in candidates {
            let (deg, fill) = self.eliminate(v);
            alive.remove(&v);
            self.search(alive, mask | (1u128 << v), width_so_far.max(deg));
            alive.insert(v);
            self.restore(v, &fill);
        }
    }
}

/// Exact treewidth of a graph. Panics if the graph has more than 128
/// vertices (use [`crate::treewidth_bounds`] instead at that scale).
pub fn exact_treewidth_graph(g: &Graph) -> usize {
    let n = g.len();
    if n == 0 {
        return 0;
    }
    assert!(
        n <= 128,
        "exact treewidth solver supports at most 128 vertices (got {n})"
    );
    // Start from the min-fill upper bound.
    let order = {
        let mut adj = g.adjacency();
        let mut alive: BTreeSet<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        while !alive.is_empty() {
            let &v = alive
                .iter()
                .min_by_key(|&&v| {
                    let neigh: Vec<usize> = adj[v].iter().copied().collect();
                    let mut fillcount = 0usize;
                    for (i, &x) in neigh.iter().enumerate() {
                        for &y in &neigh[i + 1..] {
                            if !adj[x].contains(&y) {
                                fillcount += 1;
                            }
                        }
                    }
                    fillcount
                })
                .expect("alive nonempty");
            let neigh: Vec<usize> = adj[v].iter().copied().collect();
            for (i, &x) in neigh.iter().enumerate() {
                for &y in &neigh[i + 1..] {
                    adj[x].insert(y);
                    adj[y].insert(x);
                }
            }
            for &u in &neigh {
                adj[u].remove(&v);
            }
            adj[v].clear();
            alive.remove(&v);
            order.push(v);
        }
        order
    };
    // Width of that order:
    let ub = {
        let mut adj = g.adjacency();
        let mut w = 0usize;
        for &v in &order {
            let neigh: Vec<usize> = adj[v].iter().copied().collect();
            w = w.max(neigh.len());
            for (i, &x) in neigh.iter().enumerate() {
                for &y in &neigh[i + 1..] {
                    adj[x].insert(y);
                    adj[y].insert(x);
                }
            }
            for &u in &neigh {
                adj[u].remove(&v);
            }
            adj[v].clear();
        }
        w
    };
    let lb = degeneracy_lower_bound(g);
    if lb == ub {
        return ub;
    }
    let mut solver = Solver {
        adj: g.adjacency(),
        n,
        best: ub,
        memo: HashMap::new(),
    };
    let mut alive: BTreeSet<usize> = (0..n).collect();
    solver.search(&mut alive, 0, lb);
    // `width_so_far` seeded with lb is sound: the true width is ≥ lb.
    let _ = solver.n;
    solver.best
}

/// Exact treewidth of an atomset (treewidth of its primal graph).
pub fn exact_treewidth(a: &AtomSet) -> usize {
    exact_treewidth_graph(&Graph::primal(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, PredId, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(0), args.to_vec())
    }

    fn edges(pairs: &[(u32, u32)]) -> AtomSet {
        pairs.iter().map(|&(a, b)| atom(&[v(a), v(b)])).collect()
    }

    #[test]
    fn empty_and_trivial() {
        assert_eq!(exact_treewidth(&AtomSet::new()), 0);
        let single: AtomSet = [Atom::new(PredId::from_raw(1), vec![v(0)])]
            .into_iter()
            .collect();
        assert_eq!(exact_treewidth(&single), 0);
    }

    #[test]
    fn path_is_one() {
        assert_eq!(exact_treewidth(&edges(&[(0, 1), (1, 2), (2, 3)])), 1);
    }

    #[test]
    fn cycle_is_two() {
        assert_eq!(
            exact_treewidth(&edges(&[(0, 1), (1, 2), (2, 3), (3, 0)])),
            2
        );
    }

    #[test]
    fn clique_is_n_minus_one() {
        let mut pairs = Vec::new();
        for i in 0..6u32 {
            for j in i + 1..6 {
                pairs.push((i, j));
            }
        }
        assert_eq!(exact_treewidth(&edges(&pairs)), 5);
    }

    #[test]
    fn grid_3x3_is_three() {
        // tw of the n×n grid graph is n for n ≥ 2.
        let n = 3u32;
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let id = i * n + j;
                if i + 1 < n {
                    pairs.push((id, id + n));
                }
                if j + 1 < n {
                    pairs.push((id, id + 1));
                }
            }
        }
        assert_eq!(exact_treewidth(&edges(&pairs)), 3);
    }

    #[test]
    fn grid_4x4_is_four() {
        let n = 4u32;
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let id = i * n + j;
                if i + 1 < n {
                    pairs.push((id, id + n));
                }
                if j + 1 < n {
                    pairs.push((id, id + 1));
                }
            }
        }
        assert_eq!(exact_treewidth(&edges(&pairs)), 4);
    }

    #[test]
    fn complete_bipartite_k33_is_three() {
        let mut pairs = Vec::new();
        for i in 0..3u32 {
            for j in 3..6u32 {
                pairs.push((i, j));
            }
        }
        assert_eq!(exact_treewidth(&edges(&pairs)), 3);
    }

    #[test]
    fn tree_is_one() {
        assert_eq!(
            exact_treewidth(&edges(&[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])),
            1
        );
    }

    #[test]
    fn degeneracy_bounds_tw_below() {
        let a = edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g = Graph::primal(&a);
        let lb = degeneracy_lower_bound(&g);
        assert!(lb <= exact_treewidth(&a));
        assert_eq!(lb, 2);
    }

    #[test]
    fn octahedron_is_four() {
        // K_{2,2,2}: 6 vertices, every pair adjacent except 3 disjoint
        // "antipodal" pairs. Treewidth 4.
        let mut pairs = Vec::new();
        for i in 0..6u32 {
            for j in i + 1..6 {
                // K6 minus the perfect matching {(0,3), (1,4), (2,5)}.
                if (i, j) != (0, 3) && (i, j) != (1, 4) && (i, j) != (2, 5) {
                    pairs.push((i, j));
                }
            }
        }
        assert_eq!(exact_treewidth(&edges(&pairs)), 4);
    }
}
