//! Undirected graphs over terms, and the primal (Gaifman) graph of an
//! atomset.

use std::collections::{BTreeSet, HashMap};

use chase_atoms::{AtomSet, Term};

/// A simple undirected graph whose vertices are [`Term`]s.
///
/// Internally vertices are dense indices; the term labels are kept for
/// mapping decompositions back to the atomset world.
#[derive(Clone, Debug)]
pub struct Graph {
    verts: Vec<Term>,
    index: HashMap<Term, usize>,
    adj: Vec<BTreeSet<usize>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph {
            verts: Vec::new(),
            index: HashMap::new(),
            adj: Vec::new(),
        }
    }

    /// The primal (Gaifman) graph of an atomset: one vertex per term, an
    /// edge between two terms whenever they co-occur in an atom.
    ///
    /// A tree decomposition of the atomset per Definition 4 is exactly a
    /// tree decomposition of this graph in which every atom's term set is
    /// covered by a bag; since each atom's terms form a clique here and
    /// every clique of a graph is contained in some bag of any of its tree
    /// decompositions, the two notions give the same width.
    pub fn primal(a: &AtomSet) -> Self {
        let mut g = Graph::new();
        for atom in a.iter() {
            let terms: Vec<Term> = atom.terms().collect();
            for &t in &terms {
                g.ensure_vertex(t);
            }
            for (i, &t) in terms.iter().enumerate() {
                for &u in &terms[i + 1..] {
                    g.add_edge(t, u);
                }
            }
        }
        g
    }

    /// Adds (or finds) a vertex for `t`, returning its dense index.
    pub fn ensure_vertex(&mut self, t: Term) -> usize {
        if let Some(&i) = self.index.get(&t) {
            return i;
        }
        let i = self.verts.len();
        self.verts.push(t);
        self.index.insert(t, i);
        self.adj.push(BTreeSet::new());
        i
    }

    /// Adds an undirected edge between the terms `t` and `u` (self-loops
    /// are ignored).
    pub fn add_edge(&mut self, t: Term, u: Term) {
        let i = self.ensure_vertex(t);
        let j = self.ensure_vertex(u);
        if i != j {
            self.adj[i].insert(j);
            self.adj[j].insert(i);
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// The term labelling vertex `i`.
    pub fn term(&self, i: usize) -> Term {
        self.verts[i]
    }

    /// The dense index of a term, if it is a vertex.
    pub fn vertex(&self, t: Term) -> Option<usize> {
        self.index.get(&t).copied()
    }

    /// The neighbourhood of vertex `i`.
    pub fn neighbors(&self, i: usize) -> &BTreeSet<usize> {
        &self.adj[i]
    }

    /// The degree of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Are vertices `i` and `j` adjacent?
    pub fn adjacent(&self, i: usize, j: usize) -> bool {
        self.adj[i].contains(&j)
    }

    /// Returns the adjacency lists as a plain vector (for solvers that
    /// mutate their own working copy).
    pub fn adjacency(&self) -> Vec<BTreeSet<usize>> {
        self.adj.clone()
    }

    /// All vertex terms, in insertion order.
    pub fn terms(&self) -> &[Term] {
        &self.verts
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, PredId, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    #[test]
    fn primal_graph_of_binary_atoms() {
        let a: AtomSet = [atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]
            .into_iter()
            .collect();
        let g = Graph::primal(&a);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        let i0 = g.vertex(v(0)).unwrap();
        let i1 = g.vertex(v(1)).unwrap();
        let i2 = g.vertex(v(2)).unwrap();
        assert!(g.adjacent(i0, i1));
        assert!(g.adjacent(i1, i2));
        assert!(!g.adjacent(i0, i2));
    }

    #[test]
    fn ternary_atom_forms_clique() {
        let a: AtomSet = [atom(0, &[v(0), v(1), v(2)])].into_iter().collect();
        let g = Graph::primal(&a);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn repeated_terms_no_self_loop() {
        let a: AtomSet = [atom(0, &[v(0), v(0)])].into_iter().collect();
        let g = Graph::primal(&a);
        assert_eq!(g.len(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn isolated_unary_atoms() {
        let a: AtomSet = [atom(0, &[v(0)]), atom(0, &[v(1)])].into_iter().collect();
        let g = Graph::primal(&a);
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 0);
    }
}
