//! Pathwidth: path decompositions and an exact branch-and-bound solver
//! via vertex separation.
//!
//! Pathwidth is the restriction of treewidth to decompositions whose tree
//! is a path; it equals the *vertex separation number*: the minimum over
//! linear layouts `v₁ … v_n` of the maximum boundary size
//! `|{u ∈ S_i : u has a neighbour outside S_i}|` over prefixes `S_i`.
//! Section 5 of the paper notes its grid-based counterexamples transfer
//! to any structural measure that is monotone and grid-divergent —
//! pathwidth is one (grids have pathwidth ≥ n), and this module lets the
//! experiments check that transfer.

use std::collections::{BTreeSet, HashMap};

use chase_atoms::{AtomSet, Term};

use crate::decomposition::TreeDecomposition;
use crate::graph::Graph;

/// The boundary of a prefix set `s`: vertices in `s` with a neighbour
/// outside `s`.
fn boundary(g: &Graph, s: u128) -> usize {
    let mut count = 0;
    for v in 0..g.len() {
        if s & (1u128 << v) != 0 {
            let has_out = g.neighbors(v).iter().any(|&u| s & (1u128 << u) == 0);
            if has_out {
                count += 1;
            }
        }
    }
    count
}

struct PwSolver<'g> {
    g: &'g Graph,
    n: usize,
    best: usize,
    memo: HashMap<u128, usize>,
}

impl PwSolver<'_> {
    /// Returns the minimal achievable max-boundary when extending the
    /// prefix `s` (whose running maximum is `cur_max`) to a full layout.
    fn search(&mut self, s: u128, cur_max: usize, placed: usize) {
        if cur_max >= self.best {
            return;
        }
        if placed == self.n {
            self.best = cur_max;
            return;
        }
        if let Some(&seen) = self.memo.get(&s) {
            if seen <= cur_max {
                return;
            }
        }
        self.memo.insert(s, cur_max);
        // Greedy win: placing a vertex whose neighbours are all placed
        // can never hurt (it strictly shrinks the boundary).
        for v in 0..self.n {
            if s & (1u128 << v) == 0 && self.g.neighbors(v).iter().all(|&u| s & (1u128 << u) != 0) {
                let s2 = s | (1u128 << v);
                let b = boundary(self.g, s2);
                self.search(s2, cur_max.max(b), placed + 1);
                return;
            }
        }
        for v in 0..self.n {
            if s & (1u128 << v) == 0 {
                let s2 = s | (1u128 << v);
                let b = boundary(self.g, s2);
                self.search(s2, cur_max.max(b), placed + 1);
            }
        }
    }
}

/// Exact pathwidth of a graph (vertex separation number). Exponential;
/// intended for graphs of at most a few dozen vertices. Panics above 128
/// vertices.
pub fn exact_pathwidth_graph(g: &Graph) -> usize {
    let n = g.len();
    if n == 0 {
        return 0;
    }
    assert!(n <= 128, "exact pathwidth supports at most 128 vertices");
    let mut solver = PwSolver {
        g,
        n,
        best: n, // trivial upper bound: boundary can never exceed n - 1... use n
        memo: HashMap::new(),
    };
    solver.search(0, 0, 0);
    solver.best
}

/// Exact pathwidth of an atomset (of its primal graph).
pub fn exact_pathwidth(a: &AtomSet) -> usize {
    exact_pathwidth_graph(&Graph::primal(a))
}

/// Builds the path decomposition induced by a linear layout: bag `i` is
/// `{v_i} ∪ boundary(S_{i-1})`.
pub fn path_decomposition_from_order(g: &Graph, order: &[usize]) -> TreeDecomposition {
    let n = g.len();
    assert_eq!(order.len(), n);
    if n == 0 {
        return TreeDecomposition {
            bags: vec![],
            edges: vec![],
        };
    }
    let mut bags: Vec<BTreeSet<Term>> = Vec::with_capacity(n);
    let mut placed = 0u128;
    for &v in order {
        let mut bag: BTreeSet<Term> = BTreeSet::new();
        for u in 0..n {
            if placed & (1u128 << u) != 0 {
                let has_out = g.neighbors(u).iter().any(|&w| placed & (1u128 << w) == 0);
                if has_out {
                    bag.insert(g.term(u));
                }
            }
        }
        bag.insert(g.term(v));
        bags.push(bag);
        placed |= 1u128 << v;
    }
    let edges = (0..n - 1).map(|i| (i, i + 1)).collect();
    TreeDecomposition { bags, edges }
}

/// Is the decomposition path-shaped (every bag has ≤ 2 tree neighbours,
/// no branching)?
pub fn is_path_decomposition(td: &TreeDecomposition) -> bool {
    let mut degree = vec![0usize; td.bags.len()];
    for &(a, b) in &td.edges {
        if a >= degree.len() || b >= degree.len() {
            return false;
        }
        degree[a] += 1;
        degree[b] += 1;
    }
    degree.iter().all(|&d| d <= 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, PredId, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn edges(pairs: &[(u32, u32)]) -> AtomSet {
        pairs
            .iter()
            .map(|&(a, b)| Atom::new(PredId::from_raw(0), vec![v(a), v(b)]))
            .collect()
    }

    #[test]
    fn path_has_pathwidth_one() {
        assert_eq!(exact_pathwidth(&edges(&[(0, 1), (1, 2), (2, 3)])), 1);
    }

    #[test]
    fn cycle_has_pathwidth_two() {
        assert_eq!(
            exact_pathwidth(&edges(&[(0, 1), (1, 2), (2, 3), (3, 0)])),
            2
        );
    }

    #[test]
    fn complete_binary_tree_pathwidth_exceeds_treewidth() {
        // Depth-3 complete binary tree: treewidth 1, pathwidth 2.
        let a = edges(&[
            (0, 1),
            (0, 2),
            (1, 3),
            (1, 4),
            (2, 5),
            (2, 6),
            (3, 7),
            (3, 8),
            (4, 9),
            (4, 10),
            (5, 11),
            (5, 12),
            (6, 13),
            (6, 14),
        ]);
        assert_eq!(crate::exact_treewidth(&a), 1);
        assert_eq!(exact_pathwidth(&a), 2);
    }

    #[test]
    fn grid_pathwidth_equals_side() {
        let n = 3u32;
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let id = i * n + j;
                if i + 1 < n {
                    pairs.push((id, id + n));
                }
                if j + 1 < n {
                    pairs.push((id, id + 1));
                }
            }
        }
        assert_eq!(exact_pathwidth(&edges(&pairs)), 3);
    }

    #[test]
    fn pathwidth_at_least_treewidth() {
        for a in [
            edges(&[(0, 1), (1, 2)]),
            edges(&[(0, 1), (1, 2), (2, 0)]),
            edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
        ] {
            assert!(exact_pathwidth(&a) >= crate::exact_treewidth(&a));
        }
    }

    #[test]
    fn layout_decomposition_validates_and_is_path() {
        let a = edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g = Graph::primal(&a);
        let order: Vec<usize> = (0..g.len()).collect();
        let td = path_decomposition_from_order(&g, &order);
        assert!(td.validate(&a).is_ok(), "{:?}", td.validate(&a));
        assert!(is_path_decomposition(&td));
        assert!(td.width() >= exact_pathwidth(&a));
    }

    #[test]
    fn empty_graph() {
        assert_eq!(exact_pathwidth(&AtomSet::new()), 0);
    }
}
