//! Tree decompositions of atomsets (Definition 4) and an independent
//! validator.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

use chase_atoms::{AtomSet, Term};

/// A tree decomposition: bags of terms plus tree edges between bag
/// indices.
///
/// The width is `max |bag| − 1` (Definition 4). An empty decomposition is
/// valid only for the empty atomset and has width 0 by convention (we
/// report `width() = 0` for it, matching `tw(∅) = 0` conventions used in
/// the paper's examples where the empty set never occurs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeDecomposition {
    /// The vertex bags, each a set of terms of the underlying atomset.
    pub bags: Vec<BTreeSet<Term>>,
    /// Undirected tree edges between bag indices.
    pub edges: Vec<(usize, usize)>,
}

/// Reasons a claimed tree decomposition is invalid for a given atomset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecompositionError {
    /// The bag graph is not a tree (disconnected or has a cycle).
    NotATree,
    /// An edge refers to a bag index that does not exist.
    DanglingEdge(usize, usize),
    /// Some atom's terms are not jointly contained in any bag.
    AtomNotCovered(String),
    /// The bags containing some term do not induce a connected subtree.
    TermNotConnected(Term),
    /// A term of the atomset appears in no bag.
    TermNotCovered(Term),
}

impl fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompositionError::NotATree => write!(f, "bag graph is not a tree"),
            DecompositionError::DanglingEdge(a, b) => {
                write!(f, "edge ({a}, {b}) refers to a missing bag")
            }
            DecompositionError::AtomNotCovered(a) => {
                write!(f, "atom {a} is not covered by any bag")
            }
            DecompositionError::TermNotConnected(t) => {
                write!(f, "bags containing {t:?} are not connected")
            }
            DecompositionError::TermNotCovered(t) => {
                write!(f, "term {t:?} appears in no bag")
            }
        }
    }
}

impl std::error::Error for DecompositionError {}

impl TreeDecomposition {
    /// A decomposition with a single bag holding all given terms.
    pub fn single_bag(terms: impl IntoIterator<Item = Term>) -> Self {
        TreeDecomposition {
            bags: vec![terms.into_iter().collect()],
            edges: Vec::new(),
        }
    }

    /// The width: size of the largest bag minus one (0 when empty).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(BTreeSet::len)
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Checks all three conditions of Definition 4 against `a`:
    /// bag graph is a tree, every atom is covered by a bag, and every
    /// term's bags induce a connected subtree.
    pub fn validate(&self, a: &AtomSet) -> Result<(), DecompositionError> {
        let n = self.bags.len();
        for &(x, y) in &self.edges {
            if x >= n || y >= n {
                return Err(DecompositionError::DanglingEdge(x, y));
            }
        }
        if n > 0 {
            // Tree check: connected and |E| = n − 1.
            if self.edges.len() != n - 1 {
                return Err(DecompositionError::NotATree);
            }
            let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
            for &(x, y) in &self.edges {
                adj[x].push(y);
                adj[y].push(x);
            }
            let mut seen = vec![false; n];
            let mut queue = VecDeque::from([0usize]);
            seen[0] = true;
            let mut count = 1;
            while let Some(u) = queue.pop_front() {
                for &w in &adj[u] {
                    if !seen[w] {
                        seen[w] = true;
                        count += 1;
                        queue.push_back(w);
                    }
                }
            }
            if count != n {
                return Err(DecompositionError::NotATree);
            }
        } else if !a.is_empty() {
            return Err(DecompositionError::NotATree);
        }

        // Occurrence lists per term.
        let mut occurs: HashMap<Term, Vec<usize>> = HashMap::new();
        for (i, bag) in self.bags.iter().enumerate() {
            for &t in bag {
                occurs.entry(t).or_default().push(i);
            }
        }

        // Atom coverage.
        'atoms: for atom in a.iter() {
            let terms: BTreeSet<Term> = atom.terms().collect();
            for bag in &self.bags {
                if terms.is_subset(bag) {
                    continue 'atoms;
                }
            }
            return Err(DecompositionError::AtomNotCovered(format!("{atom:?}")));
        }

        // Term coverage + connectedness of occurrence sets.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(x, y) in &self.edges {
            adj[x].push(y);
            adj[y].push(x);
        }
        for t in a.terms() {
            let Some(bags_with_t) = occurs.get(&t) else {
                return Err(DecompositionError::TermNotCovered(t));
            };
            let members: BTreeSet<usize> = bags_with_t.iter().copied().collect();
            let start = bags_with_t[0];
            let mut seen: BTreeSet<usize> = [start].into_iter().collect();
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &w in &adj[u] {
                    if members.contains(&w) && seen.insert(w) {
                        queue.push_back(w);
                    }
                }
            }
            if seen.len() != members.len() {
                return Err(DecompositionError::TermNotConnected(t));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, PredId, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn path3() -> AtomSet {
        [atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]
            .into_iter()
            .collect()
    }

    #[test]
    fn valid_path_decomposition() {
        let td = TreeDecomposition {
            bags: vec![
                [v(0), v(1)].into_iter().collect(),
                [v(1), v(2)].into_iter().collect(),
            ],
            edges: vec![(0, 1)],
        };
        assert_eq!(td.width(), 1);
        assert!(td.validate(&path3()).is_ok());
    }

    #[test]
    fn single_bag_always_valid() {
        let a = path3();
        let td = TreeDecomposition::single_bag(a.terms());
        assert!(td.validate(&a).is_ok());
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn uncovered_atom_rejected() {
        let td = TreeDecomposition {
            bags: vec![
                [v(0), v(1)].into_iter().collect(),
                [v(2)].into_iter().collect(),
            ],
            edges: vec![(0, 1)],
        };
        assert!(matches!(
            td.validate(&path3()),
            Err(DecompositionError::AtomNotCovered(_))
        ));
    }

    #[test]
    fn disconnected_term_rejected() {
        // v1 occurs in bags 0 and 2, but bag 1 (between them) lacks it.
        let a = path3();
        let td = TreeDecomposition {
            bags: vec![
                [v(0), v(1)].into_iter().collect(),
                [v(0), v(2)].into_iter().collect(),
                [v(1), v(2)].into_iter().collect(),
            ],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(matches!(
            td.validate(&a),
            Err(DecompositionError::TermNotConnected(_))
        ));
    }

    #[test]
    fn cyclic_bag_graph_rejected() {
        let td = TreeDecomposition {
            bags: vec![
                [v(0), v(1), v(2)].into_iter().collect(),
                [v(0), v(1), v(2)].into_iter().collect(),
                [v(0), v(1), v(2)].into_iter().collect(),
            ],
            edges: vec![(0, 1), (1, 2), (2, 0)],
        };
        assert_eq!(td.validate(&path3()), Err(DecompositionError::NotATree));
    }

    #[test]
    fn disconnected_bag_graph_rejected() {
        let td = TreeDecomposition {
            bags: vec![
                [v(0), v(1), v(2)].into_iter().collect(),
                [v(0)].into_iter().collect(),
                [v(0)].into_iter().collect(),
                [v(0)].into_iter().collect(),
            ],
            // 3 edges over 4 bags but bags 2,3 form their own component:
            edges: vec![(0, 1), (2, 3), (3, 2)],
        };
        assert_eq!(td.validate(&path3()), Err(DecompositionError::NotATree));
    }

    #[test]
    fn missing_term_rejected() {
        let td = TreeDecomposition {
            bags: vec![[v(0), v(1)].into_iter().collect()],
            edges: vec![],
        };
        let res = td.validate(&path3());
        assert!(res.is_err());
    }

    #[test]
    fn dangling_edge_rejected() {
        let td = TreeDecomposition {
            bags: vec![[v(0), v(1), v(2)].into_iter().collect()],
            edges: vec![(0, 5)],
        };
        assert!(matches!(
            td.validate(&path3()),
            Err(DecompositionError::DanglingEdge(0, 5))
        ));
    }

    #[test]
    fn empty_decomposition_for_empty_atomset() {
        let td = TreeDecomposition {
            bags: vec![],
            edges: vec![],
        };
        assert!(td.validate(&AtomSet::new()).is_ok());
        assert_eq!(td.width(), 0);
    }
}
