//! Generalized-hypertreewidth upper bounds via greedy bag covers.
//!
//! Section 5 of the paper notes that its grid-based counterexamples work
//! for other structural measures such as (generalized) hypertreewidth.
//! The *generalized hypertree width* of a tree decomposition is the
//! maximum over bags of the minimum number of atoms whose term sets
//! jointly cover the bag; the ghw of an atomset is the minimum over all
//! decompositions. Computing exact covers is NP-hard, so this module
//! certifies **upper bounds** with a greedy set cover on top of the
//! min-fill decomposition — sound for every claim of the form
//! `ghw(A) ≤ k`, and enough to see the measure diverge on grids while
//! collapsing on high-arity-but-acyclic instances.

use std::collections::BTreeSet;

use chase_atoms::{AtomSet, Term};

use crate::decomposition::TreeDecomposition;
use crate::elimination::min_fill_decomposition;

/// The greedy cover number of one bag: repeatedly picks the atom covering
/// the most yet-uncovered bag terms. Terms covered by no atom (isolated
/// constants of the bag) count one atom each — they can always be covered
/// by any atom mentioning them in `a`, which exists by decomposition
/// validity.
fn greedy_bag_cover(bag: &BTreeSet<Term>, a: &AtomSet) -> usize {
    let mut uncovered: BTreeSet<Term> = bag.clone();
    let mut picks = 0usize;
    while !uncovered.is_empty() {
        // Best atom through the occurrence index of any uncovered term.
        let mut best: Option<(usize, Vec<Term>)> = None;
        for &t in &uncovered {
            for atom in a.with_term(t) {
                let gain: Vec<Term> = atom.terms().filter(|x| uncovered.contains(x)).collect();
                if best.as_ref().is_none_or(|(g, _)| gain.len() > *g) {
                    best = Some((gain.len(), gain));
                }
            }
        }
        match best {
            Some((_, gain)) if !gain.is_empty() => {
                for t in gain {
                    uncovered.remove(&t);
                }
                picks += 1;
            }
            _ => {
                // Term occurs in no atom: spend one pick on it.
                let &t = uncovered.iter().next().expect("nonempty");
                uncovered.remove(&t);
                picks += 1;
            }
        }
    }
    picks
}

/// The greedy-cover width of a decomposition: `max` over bags of the
/// greedy bag cover. An upper bound on the decomposition's generalized
/// hypertree width.
pub fn greedy_cover_width(td: &TreeDecomposition, a: &AtomSet) -> usize {
    td.bags
        .iter()
        .map(|bag| greedy_bag_cover(bag, a))
        .max()
        .unwrap_or(0)
}

/// A certified upper bound on the generalized hypertree width of an
/// atomset (greedy cover over the min-fill decomposition).
pub fn hypertree_width_upper(a: &AtomSet) -> usize {
    if a.is_empty() {
        return 0;
    }
    let td = min_fill_decomposition(a);
    debug_assert!(td.validate(a).is_ok());
    greedy_cover_width(&td, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, PredId, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    #[test]
    fn single_wide_atom_has_width_one() {
        // A 5-ary atom: treewidth 4, hypertreewidth 1.
        let a: AtomSet = [atom(0, &[v(0), v(1), v(2), v(3), v(4)])]
            .into_iter()
            .collect();
        assert_eq!(crate::exact_treewidth(&a), 4);
        assert_eq!(hypertree_width_upper(&a), 1);
    }

    #[test]
    fn binary_path_has_width_one() {
        let a: AtomSet = (0..5).map(|i| atom(0, &[v(i), v(i + 1)])).collect();
        assert_eq!(hypertree_width_upper(&a), 1);
    }

    #[test]
    fn triangle_of_binary_atoms_needs_two() {
        let a: AtomSet = [
            atom(0, &[v(0), v(1)]),
            atom(0, &[v(1), v(2)]),
            atom(0, &[v(2), v(0)]),
        ]
        .into_iter()
        .collect();
        // The single bag {0,1,2} needs two binary atoms.
        assert_eq!(hypertree_width_upper(&a), 2);
    }

    #[test]
    fn grid_hypertree_width_grows() {
        // On an n×n grid of binary atoms the bags have ~n+1 terms, so the
        // cover needs ≥ ⌈(n+1)/2⌉ atoms — the measure diverges with n,
        // which is the Section 5 remark in action.
        let n = 4u32;
        let mut atoms = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let id = i * n + j;
                if i + 1 < n {
                    atoms.push(atom(0, &[v(id), v(id + n)]));
                }
                if j + 1 < n {
                    atoms.push(atom(1, &[v(id), v(id + 1)]));
                }
            }
        }
        let a: AtomSet = atoms.into_iter().collect();
        assert!(hypertree_width_upper(&a) >= 2);
    }

    #[test]
    fn empty_atomset() {
        assert_eq!(hypertree_width_upper(&AtomSet::new()), 0);
    }

    #[test]
    fn cover_width_of_explicit_decomposition() {
        let a: AtomSet = [atom(0, &[v(0), v(1), v(2)])].into_iter().collect();
        let td = TreeDecomposition::single_bag(a.terms());
        assert_eq!(greedy_cover_width(&td, &a), 1);
    }
}
