//! Elimination orderings and the decompositions they induce, plus the
//! classic min-degree and min-fill greedy heuristics.
//!
//! Eliminating a vertex `v` creates a bag `{v} ∪ N(v)` and turns `N(v)`
//! into a clique. Processing all vertices yields a valid tree
//! decomposition whose width is the largest bag minus one; the treewidth
//! is the minimum over all orderings, which is what the exact solver
//! branches on.

use std::collections::BTreeSet;

use chase_atoms::{AtomSet, Term};

use crate::decomposition::TreeDecomposition;
use crate::graph::Graph;

/// Builds the tree decomposition induced by an elimination order
/// (given as graph vertex indices; must be a permutation of all vertices).
pub fn decomposition_from_order(g: &Graph, order: &[usize]) -> TreeDecomposition {
    let n = g.len();
    assert_eq!(order.len(), n, "order must cover all vertices");
    if n == 0 {
        return TreeDecomposition {
            bags: vec![],
            edges: vec![],
        };
    }
    let mut adj = g.adjacency();
    let mut eliminated = vec![false; n];
    // position[v] = index in `order` at which v is eliminated.
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v] = i;
    }
    let mut bags: Vec<BTreeSet<Term>> = Vec::with_capacity(n);
    // For bag i (of vertex order[i]): connect to the bag of the neighbour
    // eliminated earliest *after* order[i].
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for (step, &v) in order.iter().enumerate() {
        let neighbors: Vec<usize> = adj[v].iter().copied().collect();
        let mut bag: BTreeSet<Term> = neighbors.iter().map(|&u| g.term(u)).collect();
        bag.insert(g.term(v));
        bags.push(bag);
        // Fill-in: neighbours become a clique.
        for (i, &x) in neighbors.iter().enumerate() {
            for &y in &neighbors[i + 1..] {
                adj[x].insert(y);
                adj[y].insert(x);
            }
        }
        for &u in &neighbors {
            adj[u].remove(&v);
        }
        eliminated[v] = true;
        // Parent bag: the neighbour with the smallest elimination position
        // among those not yet eliminated.
        let next = neighbors
            .iter()
            .filter(|&&u| !eliminated[u])
            .min_by_key(|&&u| position[u]);
        if let Some(&u) = next {
            parent[step] = Some(position[u]);
        }
    }
    let mut edges = Vec::new();
    for (i, p) in parent.iter().enumerate() {
        match p {
            Some(j) => edges.push((i, *j)),
            None => {
                // Last vertex of a connected component: attach to the next
                // bag in order (or nothing if it is the final bag) to keep
                // the bag graph a single tree.
                if i + 1 < n {
                    edges.push((i, i + 1));
                }
            }
        }
    }
    TreeDecomposition { bags, edges }
}

fn greedy_order(
    g: &Graph,
    mut score: impl FnMut(&Vec<BTreeSet<usize>>, usize) -> usize,
) -> Vec<usize> {
    let n = g.len();
    let mut adj = g.adjacency();
    let mut alive: BTreeSet<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&best) = alive.iter().min_by_key(|&&v| (score(&adj, v), v)) {
        let neighbors: Vec<usize> = adj[best].iter().copied().collect();
        for (i, &x) in neighbors.iter().enumerate() {
            for &y in &neighbors[i + 1..] {
                adj[x].insert(y);
                adj[y].insert(x);
            }
        }
        for &u in &neighbors {
            adj[u].remove(&best);
        }
        adj[best].clear();
        alive.remove(&best);
        order.push(best);
    }
    order
}

/// The min-degree heuristic: repeatedly eliminate a vertex of minimum
/// current degree. Returns a valid decomposition of `a`.
pub fn min_degree_decomposition(a: &AtomSet) -> TreeDecomposition {
    let g = Graph::primal(a);
    let order = greedy_order(&g, |adj, v| adj[v].len());
    decomposition_from_order(&g, &order)
}

/// The min-fill heuristic: repeatedly eliminate the vertex whose
/// elimination adds the fewest fill edges. Returns a valid decomposition
/// of `a`.
pub fn min_fill_decomposition(a: &AtomSet) -> TreeDecomposition {
    let g = Graph::primal(a);
    let order = greedy_order(&g, |adj, v| {
        let neigh: Vec<usize> = adj[v].iter().copied().collect();
        let mut fill = 0usize;
        for (i, &x) in neigh.iter().enumerate() {
            for &y in &neigh[i + 1..] {
                if !adj[x].contains(&y) {
                    fill += 1;
                }
            }
        }
        fill
    });
    decomposition_from_order(&g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, PredId, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn path(n: u32) -> AtomSet {
        (0..n - 1).map(|i| atom(0, &[v(i), v(i + 1)])).collect()
    }

    fn cycle(n: u32) -> AtomSet {
        (0..n).map(|i| atom(0, &[v(i), v((i + 1) % n)])).collect()
    }

    fn clique(n: u32) -> AtomSet {
        let mut atoms = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                atoms.push(atom(0, &[v(i), v(j)]));
            }
        }
        atoms.into_iter().collect()
    }

    #[test]
    fn path_has_width_one() {
        let a = path(10);
        let td = min_degree_decomposition(&a);
        assert!(td.validate(&a).is_ok());
        assert_eq!(td.width(), 1);
        let tf = min_fill_decomposition(&a);
        assert!(tf.validate(&a).is_ok());
        assert_eq!(tf.width(), 1);
    }

    #[test]
    fn cycle_has_width_two() {
        let a = cycle(8);
        let td = min_fill_decomposition(&a);
        assert!(td.validate(&a).is_ok());
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn clique_has_width_n_minus_one() {
        let a = clique(5);
        let td = min_degree_decomposition(&a);
        assert!(td.validate(&a).is_ok());
        assert_eq!(td.width(), 4);
    }

    #[test]
    fn disconnected_components_handled() {
        let mut a = path(4);
        a.extend([atom(0, &[v(100), v(101)]), atom(0, &[v(101), v(102)])]);
        let td = min_degree_decomposition(&a);
        assert!(td.validate(&a).is_ok(), "{:?}", td.validate(&a));
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn singleton_vertex() {
        let a: AtomSet = [atom(1, &[v(0)])].into_iter().collect();
        let td = min_fill_decomposition(&a);
        assert!(td.validate(&a).is_ok());
        assert_eq!(td.width(), 0);
    }

    #[test]
    fn decomposition_from_explicit_order() {
        let a = path(4);
        let g = Graph::primal(&a);
        // Eliminate in label order — also yields width 1 on a path.
        let order: Vec<usize> = (0..g.len()).collect();
        let td = decomposition_from_order(&g, &order);
        assert!(td.validate(&a).is_ok());
    }

    #[test]
    fn bad_order_still_valid_just_wider() {
        // Eliminating the middle of a star first gives a big bag, but the
        // decomposition must still validate.
        let mut atoms = Vec::new();
        for i in 1..=6 {
            atoms.push(atom(0, &[v(0), v(i)]));
        }
        let a: AtomSet = atoms.into_iter().collect();
        let g = Graph::primal(&a);
        let center = g.vertex(v(0)).unwrap();
        let mut order = vec![center];
        order.extend((0..g.len()).filter(|&i| i != center));
        let td = decomposition_from_order(&g, &order);
        assert!(td.validate(&a).is_ok());
        assert_eq!(td.width(), 6);
        // The heuristic does better:
        assert_eq!(min_degree_decomposition(&a).width(), 1);
    }
}
