//! Structural measures and the boundedness notions of Section 5.
//!
//! A *structural measure* maps instances to `ℕ ∪ {∞}`. A sequence
//! `(F_i)` is **uniformly μ-bounded** if some `k` bounds every `μ(F_i)`,
//! and **recurringly μ-bounded** if some `k` is attained again and again
//! (for every `j` there is `i ≥ j` with `μ(F_i) ≤ k`). On the finite
//! prefixes this crate works with, the recurring bound of the infinite
//! sequence is approximated by the minimum over a suffix — the
//! documentation of each helper states its exact prefix semantics.

use chase_atoms::AtomSet;

use crate::treewidth_bounds;

/// A structural measure on instances (`μ : instances → ℕ ∪ {∞}`;
/// finite atomsets always measure finite here).
pub trait StructuralMeasure {
    /// A short name for reports.
    fn name(&self) -> &'static str;
    /// Measures one instance.
    fn measure(&self, a: &AtomSet) -> usize;
}

/// The `size` measure of the paper: number of atoms.
#[derive(Copy, Clone, Debug, Default)]
pub struct SizeMeasure;

impl StructuralMeasure for SizeMeasure {
    fn name(&self) -> &'static str {
        "size"
    }

    fn measure(&self, a: &AtomSet) -> usize {
        a.len()
    }
}

/// Treewidth measure using the certified *upper* bound (safe for claims of
/// the form "the sequence is treewidth-bounded by k": if the upper bound is
/// ≤ k then the true treewidth is too).
#[derive(Copy, Clone, Debug, Default)]
pub struct TreewidthUpperMeasure;

impl StructuralMeasure for TreewidthUpperMeasure {
    fn name(&self) -> &'static str {
        "tw-upper"
    }

    fn measure(&self, a: &AtomSet) -> usize {
        treewidth_bounds(a).upper
    }
}

/// Treewidth measure using the certified *lower* bound (safe for claims of
/// the form "the sequence treewidth exceeds k").
#[derive(Copy, Clone, Debug, Default)]
pub struct TreewidthLowerMeasure;

impl StructuralMeasure for TreewidthLowerMeasure {
    fn name(&self) -> &'static str {
        "tw-lower"
    }

    fn measure(&self, a: &AtomSet) -> usize {
        treewidth_bounds(a).lower
    }
}

/// Is the (finite prefix of a) sequence uniformly bounded by `k`?
/// Exact on prefixes: `∀i. values[i] ≤ k`.
pub fn uniformly_bounded(values: &[usize], k: usize) -> bool {
    values.iter().all(|&v| v <= k)
}

/// The uniform bound of a finite prefix: `max` (0 for an empty prefix).
pub fn uniform_bound(values: &[usize]) -> usize {
    values.iter().copied().max().unwrap_or(0)
}

/// Prefix proxy for *recurring* boundedness: is some value in the suffix
/// starting at `from` at most `k`?
///
/// For an infinite sequence, recurring boundedness by `k` means every
/// suffix attains a value ≤ k; on a prefix we can only check the suffixes
/// that are visible, hence the explicit `from`.
pub fn recurringly_bounded_from(values: &[usize], from: usize, k: usize) -> bool {
    values[from.min(values.len())..].iter().any(|&v| v <= k)
}

/// The recurring bound visible in a prefix: the minimum over the suffix
/// starting at `from` (`None` if the suffix is empty).
///
/// For a monotone chase this converges to the liminf, which is the true
/// recurring bound of the infinite sequence.
pub fn recurring_bound_from(values: &[usize], from: usize) -> Option<usize> {
    values[from.min(values.len())..].iter().copied().min()
}

/// Measures every element of a sequence of instances.
pub fn measure_sequence<M: StructuralMeasure>(m: &M, seq: &[AtomSet]) -> Vec<usize> {
    seq.iter().map(|a| m.measure(a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, PredId, Term, VarId};

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn path(n: u32) -> AtomSet {
        (0..n.saturating_sub(1))
            .map(|i| Atom::new(PredId::from_raw(0), vec![v(i), v(i + 1)]))
            .collect()
    }

    #[test]
    fn size_measure_counts_atoms() {
        assert_eq!(SizeMeasure.measure(&path(5)), 4);
        assert_eq!(SizeMeasure.measure(&AtomSet::new()), 0);
    }

    #[test]
    fn tw_measures_bracket_truth() {
        let a = path(6);
        let lo = TreewidthLowerMeasure.measure(&a);
        let hi = TreewidthUpperMeasure.measure(&a);
        assert!(lo <= 1 && 1 <= hi);
        assert_eq!(hi, 1);
    }

    #[test]
    fn uniform_boundedness() {
        assert!(uniformly_bounded(&[1, 2, 2, 1], 2));
        assert!(!uniformly_bounded(&[1, 3, 2], 2));
        assert_eq!(uniform_bound(&[1, 3, 2]), 3);
        assert_eq!(uniform_bound(&[]), 0);
    }

    #[test]
    fn recurring_boundedness_prefix_semantics() {
        // Values oscillate: big, small, big, small…
        let vals = [10, 1, 20, 1, 30, 1];
        assert!(recurringly_bounded_from(&vals, 0, 1));
        assert!(recurringly_bounded_from(&vals, 4, 1));
        assert!(!recurringly_bounded_from(&vals, 0, 0));
        assert_eq!(recurring_bound_from(&vals, 3), Some(1));
        assert_eq!(recurring_bound_from(&vals, 6), None);
    }

    #[test]
    fn uniform_implies_recurring() {
        let vals = [2, 2, 1, 2];
        let k = 2;
        assert!(uniformly_bounded(&vals, k));
        for from in 0..vals.len() {
            assert!(recurringly_bounded_from(&vals, from, k));
        }
    }

    #[test]
    fn measure_sequence_applies_pointwise() {
        let seq = vec![path(2), path(3), path(4)];
        assert_eq!(measure_sequence(&SizeMeasure, &seq), vec![1, 2, 3]);
    }
}
