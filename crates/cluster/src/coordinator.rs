//! The coordinator: job table, lease grants, heartbeat monitoring and
//! reschedule-from-checkpoint.
//!
//! The coordinator never runs a chase itself. It owns three things:
//!
//! 1. the **job table** — every job is a durable
//!    [`Checkpoint`] (fresh submits are checkpointed at their base
//!    facts), so granting, rescheduling and resuming are all "hand the
//!    worker a checkpoint";
//! 2. the **lease clock** — a grant is good for
//!    [`ClusterConfig::lease`]; each heartbeat or shipped checkpoint
//!    extends it; a reaper thread requeues jobs whose lease expired
//!    (worker lost, wedged, or `SIGKILL`ed) from the last durable
//!    checkpoint;
//! 3. the **lease epoch** — bumped on every grant. A message from a
//!    worker whose `(worker, epoch)` no longer matches the live lease
//!    is *fenced*: replied to with `{"op":"fenced"}` and otherwise
//!    ignored, so a zombie worker that wakes up after its lease was
//!    rescheduled cannot corrupt the re-run or double-count budget.
//!
//! Budget exactness across reschedules follows the checkpoint
//! invariants: checkpoints store derivation-total budgets and
//! [`Checkpoint::into_spec`] re-derives the remainder, so a job
//! `SIGKILL`ed mid-lease and replayed from its checkpoint performs the
//! same total number of applications as an uninterrupted run.
//!
//! Client ops (`submit`, `query`, `status`, `wait`, …) ride the same
//! framed socket, reuse the service wire vocabulary via
//! [`parse_request`], and pass through the same admission gate
//! ([`apply_admission_gate`]) and structured rejections as the
//! single-process service. Queries are served from the freshest
//! checkpoint snapshot of whichever worker holds (or held) the lease,
//! through the same [`SnapshotCache`] ring/terminal semantics as
//! `treechase serve`.

use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use chase_homomorphism::SearchBudget;
use chase_query::{answer_kb, answer_view, Snapshot, SnapshotCache};
use treechase_service::protocol::{analysis_to_json, status_name};
use treechase_service::{
    apply_admission_gate, named_kb, parse_request, query_reply_to_json, rejection_to_json,
    Checkpoint, CheckpointStore, JobId, JobSpec, JobStatus, Json, QueryReply, RejectReason,
    Rejection, Request, ServiceConfig,
};

use crate::wire::{read_frame, write_frame, FrameRead};

/// Tuning knobs for a [`Coordinator`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// How long a granted lease is good for without a heartbeat.
    pub lease: Duration,
    /// Heartbeat cadence workers are told to keep (sent in `welcome`;
    /// should be a small fraction of `lease`).
    pub heartbeat: Duration,
    /// Checkpoint-shipping interval, in rule applications, workers are
    /// told to use (sent in `welcome`).
    pub checkpoint_every: usize,
    /// Backoff an idle worker is told before its next `pull`.
    pub idle_retry: Duration,
    /// Admission control: reject new submissions once this many jobs
    /// sit queued (`None` = unbounded).
    pub max_queue: Option<usize>,
    /// Trailing snapshots kept per job for the robust query prefix.
    pub snapshot_ring: usize,
    /// Service-level admission knobs (strict admission, analyzer
    /// budgets, operation deadline) reused verbatim by the cluster
    /// submit path.
    pub service: ServiceConfig,
    /// Print one JSONL line per cluster event (queued / lease /
    /// requeue / checkpoint / done) to stdout.
    pub announce: bool,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            lease: Duration::from_secs(3),
            heartbeat: Duration::from_millis(750),
            checkpoint_every: 16,
            idle_retry: Duration::from_millis(200),
            max_queue: None,
            snapshot_ring: 4,
            service: ServiceConfig::default(),
            announce: true,
        }
    }
}

/// Where a cluster job sits in its lifecycle.
#[derive(Clone, Debug)]
enum JobState {
    /// Waiting for a worker to pull it.
    Queued,
    /// Granted to `worker` under fencing token `epoch` until
    /// `deadline` (extended by heartbeats and checkpoints).
    Leased {
        worker: String,
        epoch: u64,
        deadline: Instant,
    },
    /// The worker reported an outcome. `terminated` distinguishes a
    /// universal-model fixpoint from a resumable budget stop.
    Done { outcome: String, terminated: bool },
    /// The job cannot make progress (bad program, worker-side error).
    Failed { message: String },
    /// Cancelled by a client before completion.
    Cancelled,
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Leased { .. } => "leased",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done { .. } | JobState::Failed { .. } | JobState::Cancelled
        )
    }
}

/// One entry in the coordinator's job table.
struct ClusterJob {
    name: String,
    /// The freshest durable checkpoint — the unit of dispatch: granted
    /// on lease, replayed on reschedule.
    checkpoint: Checkpoint,
    state: JobState,
    /// Last granted fencing token (bumped on every grant).
    epoch: u64,
    /// How many times the lease expired and the job was requeued.
    reschedules: u64,
    /// Named-query verdicts from the `done` report, as wire labels.
    queries: Vec<(String, String)>,
}

struct CoordState {
    jobs: BTreeMap<JobId, ClusterJob>,
    next_id: JobId,
    /// Last time each registered worker was heard from (hello, pull,
    /// heartbeat, checkpoint).
    workers: HashMap<String, Instant>,
    draining: bool,
}

struct Inner {
    state: Mutex<CoordState>,
    store: CheckpointStore,
    snapshots: SnapshotCache,
    cfg: ClusterConfig,
    shutdown: AtomicBool,
    /// Pending live-snapshot publishes, coalesced per job: the
    /// publisher thread always materializes the *freshest* shipped
    /// checkpoint and skips intermediates. Materializing a snapshot
    /// (re-parse + ring intersection) scales with the instance, so
    /// doing it on the checkpoint ack path would grow the ack latency
    /// past any fixed lease on large instances.
    publish_queue: Mutex<BTreeMap<JobId, Checkpoint>>,
    publish_signal: Condvar,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, CoordState> {
        self.state.lock().expect("coordinator state poisoned")
    }

    fn announce(&self, line: &Json) {
        if self.cfg.announce {
            println!("{line}");
        }
    }

    /// Publishes a query snapshot materialized from a checkpoint. The
    /// terminal latch in the cache makes this safe against stragglers:
    /// a live publish racing in after the terminal one is dropped.
    fn publish_snapshot(&self, job: JobId, ck: &Checkpoint, terminal: bool) -> Result<(), String> {
        let spec = ck.into_spec()?;
        let apps = ck.stats.applications as u64;
        let snap = if terminal {
            Snapshot::terminal(spec.kb.vocab, spec.kb.facts, apps)
        } else {
            Snapshot::live(spec.kb.vocab, spec.kb.facts, apps)
        };
        self.snapshots.publish(job, snap);
        Ok(())
    }

    /// Hands a live publish to the publisher thread, coalescing: a
    /// newer checkpoint for the same job replaces an unpublished older
    /// one. The cache's monotone-sequence guard and terminal latch
    /// make the resulting asynchrony safe — a straggling live publish
    /// can never regress a ring or overwrite a terminal snapshot.
    fn queue_publish(&self, job: JobId, ck: Checkpoint) {
        let mut q = self.publish_queue.lock().expect("publish queue poisoned");
        q.insert(job, ck);
        self.publish_signal.notify_one();
    }

    /// Inserts a spec as a new job: capture its base checkpoint, make
    /// it durable, publish the base snapshot, enqueue. Fresh submits,
    /// resumes and recovered checkpoints all funnel through here, which
    /// is what makes dispatch/reschedule/resume one code path.
    fn enqueue(&self, spec: &JobSpec) -> Result<JobId, String> {
        let ck = Checkpoint::capture(spec, &spec.kb.vocab, &spec.kb.facts, spec.base_stats);
        let mut st = self.lock();
        let id = st.next_id;
        st.next_id += 1;
        self.store.save(id, &ck, None)?;
        self.publish_snapshot(id, &ck, false)?;
        st.jobs.insert(
            id,
            ClusterJob {
                name: spec.name.clone(),
                checkpoint: ck,
                state: JobState::Queued,
                epoch: 0,
                reschedules: 0,
                queries: Vec::new(),
            },
        );
        drop(st);
        self.announce(&Json::obj([
            ("op", Json::str("queued")),
            ("job", Json::Int(id as i64)),
            ("name", Json::str(&spec.name)),
        ]));
        Ok(id)
    }
}

/// True iff `(worker, epoch)` still holds the live lease on `job` —
/// the fencing check every worker-originated message must pass.
fn holds_lease(job: &ClusterJob, worker: &str, epoch: u64) -> bool {
    matches!(
        &job.state,
        JobState::Leased { worker: w, epoch: e, .. } if w == worker && *e == epoch
    )
}

/// A coordinator bound to a listening socket. [`Coordinator::run`]
/// serves until [`Coordinator::shutdown`] (or a `shutdown` wire op).
pub struct Coordinator {
    inner: Arc<Inner>,
    listener: TcpListener,
}

impl Coordinator {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and recovers the job table
    /// from the durable checkpoints in `state_dir`: every readable
    /// checkpoint becomes a queued job (rescheduling across coordinator
    /// restarts is the same mechanism as rescheduling across worker
    /// losses), and unreadable entries are reported as failed jobs
    /// rather than silently dropped.
    pub fn bind(addr: &str, state_dir: &Path, cfg: ClusterConfig) -> Result<Coordinator, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let store = CheckpointStore::open(state_dir)?;
        let (good, bad) = store.load_all()?;
        let inner = Arc::new(Inner {
            state: Mutex::new(CoordState {
                jobs: BTreeMap::new(),
                next_id: 1,
                workers: HashMap::new(),
                draining: false,
            }),
            store,
            snapshots: SnapshotCache::new(cfg.snapshot_ring.max(1)),
            cfg,
            shutdown: AtomicBool::new(false),
            publish_queue: Mutex::new(BTreeMap::new()),
            publish_signal: Condvar::new(),
        });
        {
            let mut st = inner.lock();
            for (id, ck) in good {
                let state = match inner.publish_snapshot(id, &ck, false) {
                    Ok(()) => JobState::Queued,
                    Err(e) => JobState::Failed {
                        message: format!("recovered checkpoint does not parse: {e}"),
                    },
                };
                st.next_id = st.next_id.max(id + 1);
                st.jobs.insert(
                    id,
                    ClusterJob {
                        name: ck.name.clone(),
                        checkpoint: ck,
                        state,
                        epoch: 0,
                        reschedules: 0,
                        queries: Vec::new(),
                    },
                );
            }
            drop(st);
            for err in bad {
                inner.announce(&Json::obj([
                    ("op", Json::str("recovery-error")),
                    ("path", Json::Str(err.path.display().to_string())),
                    ("message", Json::str(&err.error)),
                ]));
            }
        }
        Ok(Coordinator { inner, listener })
    }

    /// The address actually bound (port resolved when binding `:0`).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))
    }

    /// A handle that makes [`Coordinator::run`] return; safe to call
    /// from any thread (the CLI's SIGTERM watcher uses it).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Serves connections until shut down. Spawns one thread per
    /// connection plus a lease reaper; returns once the shutdown flag
    /// is set (connection threads wind down within their read timeout).
    pub fn run(self) -> Result<(), String> {
        let addr = self.local_addr()?;
        self.inner.announce(&Json::obj([
            ("op", Json::str("listening")),
            ("addr", Json::Str(addr.to_string())),
        ]));
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking listener: {e}"))?;
        let reaper = {
            let inner = Arc::clone(&self.inner);
            thread::spawn(move || reap_leases(&inner))
        };
        let publisher = {
            let inner = Arc::clone(&self.inner);
            thread::spawn(move || run_publisher(&inner))
        };
        while !self.inner.shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let inner = Arc::clone(&self.inner);
                    thread::spawn(move || handle_conn(&inner, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(format!("accept: {e}")),
            }
        }
        reaper.join().ok();
        self.inner.publish_signal.notify_all();
        publisher.join().ok();
        Ok(())
    }
}

impl Inner {
    /// Requests shutdown; [`Coordinator::run`] returns shortly after.
    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// A cloneable cross-thread handle that can stop a running
/// [`Coordinator`] (the CLI's SIGTERM watcher holds one).
#[derive(Clone)]
pub struct ShutdownHandle {
    inner: Arc<Inner>,
}

impl ShutdownHandle {
    /// Requests shutdown; [`Coordinator::run`] returns shortly after.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }
}

/// The lease reaper: requeues jobs whose lease deadline passed without
/// a heartbeat. The job restarts from its last durable checkpoint; the
/// epoch of the dead lease is left behind, so anything the lost worker
/// still sends is fenced.
/// Publisher thread: drains the coalesced live-publish queue and
/// materializes snapshots off every request path. Per job only the
/// freshest shipped checkpoint is materialized — under a fast worker,
/// intermediates are skipped, bounding the coordinator's snapshot work
/// by publisher throughput instead of checkpoint arrival rate.
fn run_publisher(inner: &Inner) {
    let mut q = inner.publish_queue.lock().expect("publish queue poisoned");
    while !inner.shutdown.load(Ordering::Acquire) {
        if let Some(id) = q.keys().next().copied() {
            let ck = q.remove(&id).expect("key just observed");
            drop(q);
            // Only live jobs get asynchronous publishes: terminal and
            // cancelled jobs already latched or evicted their ring, and
            // a late live publish for them is pure wasted work (the
            // cache would drop it anyway).
            let live = {
                let st = inner.lock();
                matches!(
                    st.jobs.get(&id).map(|j| &j.state),
                    Some(JobState::Queued | JobState::Leased { .. })
                )
            };
            if live {
                if let Err(e) = inner.publish_snapshot(id, &ck, false) {
                    inner.announce(&Json::obj([
                        ("op", Json::str("publish-error")),
                        ("job", Json::Int(id as i64)),
                        ("message", Json::Str(e)),
                    ]));
                }
            }
            q = inner.publish_queue.lock().expect("publish queue poisoned");
        } else {
            let (guard, _) = inner
                .publish_signal
                .wait_timeout(q, Duration::from_millis(100))
                .expect("publish queue poisoned");
            q = guard;
        }
    }
}

fn reap_leases(inner: &Inner) {
    while !inner.shutdown.load(Ordering::Acquire) {
        thread::sleep(Duration::from_millis(50));
        let now = Instant::now();
        let mut requeued = Vec::new();
        {
            let mut st = inner.lock();
            for (&id, job) in &mut st.jobs {
                if let JobState::Leased {
                    worker, deadline, ..
                } = &job.state
                {
                    if *deadline < now {
                        let from = worker.clone();
                        job.state = JobState::Queued;
                        job.reschedules += 1;
                        requeued.push((id, from, job.checkpoint.stats.applications));
                    }
                }
            }
        }
        for (id, from, apps) in requeued {
            inner.announce(&Json::obj([
                ("op", Json::str("requeue")),
                ("job", Json::Int(id as i64)),
                ("from_worker", Json::str(&from)),
                ("applications", Json::Int(apps as i64)),
            ]));
        }
    }
}

/// Serves one connection: a strict frame-in/frame-out loop. Both
/// worker ops and client ops arrive here — the `op` field routes.
fn handle_conn(inner: &Inner, mut stream: TcpStream) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .is_err()
    {
        return;
    }
    loop {
        match read_frame(&mut stream) {
            Ok(FrameRead::Frame(msg)) => {
                let reply = dispatch(inner, &msg);
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
            Ok(FrameRead::Timeout) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Ok(FrameRead::Eof) | Err(_) => return,
        }
    }
}

fn error_json(message: &str) -> Json {
    Json::obj([
        ("type", Json::str("error")),
        ("message", Json::str(message)),
    ])
}

fn ack() -> Json {
    Json::obj([("op", Json::str("ack"))])
}

fn fenced(job: JobId) -> Json {
    Json::obj([("op", Json::str("fenced")), ("job", Json::Int(job as i64))])
}

/// Routes one frame. Worker ops are handled directly; anything else is
/// treated as a client request in the service wire vocabulary.
fn dispatch(inner: &Inner, msg: &Json) -> Json {
    let op = msg.get("op").and_then(Json::as_str).unwrap_or("");
    let out = match op {
        "hello" => worker_hello(inner, msg),
        "pull" => worker_pull(inner, msg),
        "heartbeat" => worker_heartbeat(inner, msg),
        // `checkpoint` is also a client op (fetch a job's checkpoint);
        // the worker variant always carries its sender's name.
        "checkpoint" if msg.get("worker").is_some() => worker_checkpoint(inner, msg),
        "done" => worker_done(inner, msg),
        "release" => worker_release(inner, msg),
        "event" => worker_event(inner, msg),
        "bye" => worker_bye(inner, msg),
        _ => match parse_request(msg) {
            Ok(req) => handle_client(inner, req),
            Err(e) => Err(e),
        },
    };
    out.unwrap_or_else(|e| error_json(&e))
}

fn msg_lease_key(msg: &Json) -> Result<(String, JobId, u64), String> {
    let worker = msg.require_str("worker")?.to_string();
    let job = msg.require_u64("job")?;
    let epoch = msg.require_u64("epoch")?;
    Ok((worker, job, epoch))
}

fn worker_hello(inner: &Inner, msg: &Json) -> Result<Json, String> {
    let name = msg.require_str("worker")?.to_string();
    let mut st = inner.lock();
    st.workers.insert(name.clone(), Instant::now());
    drop(st);
    inner.announce(&Json::obj([
        ("op", Json::str("worker-joined")),
        ("worker", Json::str(&name)),
    ]));
    Ok(Json::obj([
        ("op", Json::str("welcome")),
        ("lease_ms", Json::Int(inner.cfg.lease.as_millis() as i64)),
        (
            "heartbeat_ms",
            Json::Int(inner.cfg.heartbeat.as_millis() as i64),
        ),
        (
            "checkpoint_every",
            Json::Int(inner.cfg.checkpoint_every as i64),
        ),
    ]))
}

/// Grants the lowest-id queued job, bumping its epoch — the previous
/// holder (if any) is fenced from this moment on.
fn worker_pull(inner: &Inner, msg: &Json) -> Result<Json, String> {
    let name = msg.require_str("worker")?.to_string();
    let mut st = inner.lock();
    st.workers.insert(name.clone(), Instant::now());
    let idle = Json::obj([
        ("op", Json::str("idle")),
        (
            "retry_ms",
            Json::Int(inner.cfg.idle_retry.as_millis() as i64),
        ),
    ]);
    if st.draining {
        return Ok(idle);
    }
    let Some((&id, job)) = st
        .jobs
        .iter_mut()
        .find(|(_, j)| matches!(j.state, JobState::Queued))
    else {
        return Ok(idle);
    };
    job.epoch += 1;
    let epoch = job.epoch;
    job.state = JobState::Leased {
        worker: name.clone(),
        epoch,
        deadline: Instant::now() + inner.cfg.lease,
    };
    let reply = Json::obj([
        ("op", Json::str("lease")),
        ("job", Json::Int(id as i64)),
        ("name", Json::str(&job.name)),
        ("epoch", Json::Int(epoch as i64)),
        ("lease_ms", Json::Int(inner.cfg.lease.as_millis() as i64)),
        ("checkpoint", job.checkpoint.to_json()),
    ]);
    let line = Json::obj([
        ("op", Json::str("lease")),
        ("job", Json::Int(id as i64)),
        ("worker", Json::str(&name)),
        ("epoch", Json::Int(epoch as i64)),
        (
            "applications",
            Json::Int(job.checkpoint.stats.applications as i64),
        ),
    ]);
    drop(st);
    inner.announce(&line);
    Ok(reply)
}

fn worker_heartbeat(inner: &Inner, msg: &Json) -> Result<Json, String> {
    let (worker, id, epoch) = msg_lease_key(msg)?;
    if !touch_lease(inner, &worker, id, epoch) {
        return Ok(fenced(id));
    }
    Ok(ack())
}

/// Fence-checks and extends a live lease in one short critical
/// section. Called as soon as an authenticated worker frame arrives:
/// the frame itself proves the holder is alive, and the extension must
/// land *before* any expensive payload processing (checkpoint parse,
/// durable save, snapshot materialization). Otherwise a big upload
/// eats the lease from the inside — the holder is mid-roundtrip,
/// unable to heartbeat, while the reaper requeues its job — which
/// showed up as requeue/fenced churn on large instances.
fn touch_lease(inner: &Inner, worker: &str, id: JobId, epoch: u64) -> bool {
    let mut st = inner.lock();
    st.workers.insert(worker.to_string(), Instant::now());
    let Some(job) = st.jobs.get_mut(&id) else {
        return false;
    };
    if !holds_lease(job, worker, epoch) {
        return false;
    }
    if let JobState::Leased { deadline, .. } = &mut job.state {
        *deadline = Instant::now() + inner.cfg.lease;
    }
    true
}

/// A shipped checkpoint: fence-check, make durable, republish the
/// query snapshot, extend the lease (progress is the best heartbeat).
fn worker_checkpoint(inner: &Inner, msg: &Json) -> Result<Json, String> {
    let (worker, id, epoch) = msg_lease_key(msg)?;
    // Extend before touching the payload: parse + save + snapshot
    // materialization scale with the instance and can cost a real
    // fraction of the lease.
    if !touch_lease(inner, &worker, id, epoch) {
        return Ok(fenced(id));
    }
    let ck = Checkpoint::from_json(msg.require("checkpoint")?)?;
    // The durable save runs outside the state lock so pulls and status
    // reads never queue behind a big upload; the (expensive) snapshot
    // materialization is queued to the publisher thread so the ack —
    // which doubles as the holder's heartbeat — returns promptly no
    // matter how large the instance has grown.
    inner.store.save(id, &ck, None)?;
    let apps = ck.stats.applications;
    {
        let mut st = inner.lock();
        let Some(job) = st.jobs.get_mut(&id) else {
            return Ok(fenced(id));
        };
        if !holds_lease(job, &worker, epoch) {
            // Requeued or cancelled while we persisted. The save is a
            // harmless durable prefix; the holder must still stop.
            return Ok(fenced(id));
        }
        job.checkpoint = ck.clone();
        if let JobState::Leased { deadline, .. } = &mut job.state {
            *deadline = Instant::now() + inner.cfg.lease;
        }
    }
    inner.queue_publish(id, ck);
    inner.announce(&Json::obj([
        ("op", Json::str("checkpointed")),
        ("job", Json::Int(id as i64)),
        ("worker", Json::str(&worker)),
        ("applications", Json::Int(apps as i64)),
    ]));
    Ok(ack())
}

/// The worker's terminal report. For a terminated chase the final
/// checkpoint becomes a terminal query snapshot and the durable entry
/// is removed; for a resumable budget stop the final checkpoint stays
/// durable so a client can `checkpoint`/`resume` it later.
fn worker_done(inner: &Inner, msg: &Json) -> Result<Json, String> {
    let (worker, id, epoch) = msg_lease_key(msg)?;
    let status = msg.require_str("status")?;
    // Extend immediately — the final checkpoint is the largest payload
    // a worker ever ships, and a reaper requeue while it is being
    // parsed would re-run a job that already finished. The remaining
    // processing holds the state lock, which the reaper also needs, so
    // after this touch the done report races nothing.
    if !touch_lease(inner, &worker, id, epoch) {
        return Ok(fenced(id));
    }
    let mut st = inner.lock();
    let Some(job) = st.jobs.get_mut(&id) else {
        return Ok(fenced(id));
    };
    if !holds_lease(job, &worker, epoch) {
        return Ok(fenced(id));
    }
    if status != "ok" {
        let message = msg
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("worker reported failure")
            .to_string();
        job.state = JobState::Failed {
            message: message.clone(),
        };
        drop(st);
        inner.announce(&Json::obj([
            ("op", Json::str("job-failed")),
            ("job", Json::Int(id as i64)),
            ("worker", Json::str(&worker)),
            ("message", Json::str(&message)),
        ]));
        return Ok(ack());
    }
    let outcome = msg.require_str("outcome")?.to_string();
    let terminated = msg
        .get("terminated")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    if let Some(v) = msg.get("checkpoint") {
        job.checkpoint = Checkpoint::from_json(v)?;
    }
    job.queries = msg
        .get("queries")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|row| {
                    Some((
                        row.get("name")?.as_str()?.to_string(),
                        row.get("verdict")?.as_str()?.to_string(),
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    let ck = job.checkpoint.clone();
    job.state = JobState::Done {
        outcome: outcome.clone(),
        terminated,
    };
    inner.publish_snapshot(id, &ck, terminated)?;
    if terminated {
        inner.store.remove(id)?;
    } else {
        inner.store.save(id, &ck, None)?;
    }
    drop(st);
    inner.announce(&Json::obj([
        ("op", Json::str("job-done")),
        ("job", Json::Int(id as i64)),
        ("worker", Json::str(&worker)),
        ("outcome", Json::str(&outcome)),
        ("terminated", Json::Bool(terminated)),
        ("applications", Json::Int(ck.stats.applications as i64)),
    ]));
    Ok(ack())
}

/// A draining worker hands its lease back early, with its freshest
/// checkpoint, so the job requeues immediately instead of waiting for
/// the lease clock.
fn worker_release(inner: &Inner, msg: &Json) -> Result<Json, String> {
    let (worker, id, epoch) = msg_lease_key(msg)?;
    // Same pre-parse extension as `checkpoint`/`done`: the release may
    // carry a large final checkpoint.
    if !touch_lease(inner, &worker, id, epoch) {
        return Ok(fenced(id));
    }
    let mut st = inner.lock();
    let Some(job) = st.jobs.get_mut(&id) else {
        return Ok(fenced(id));
    };
    if !holds_lease(job, &worker, epoch) {
        return Ok(fenced(id));
    }
    if let Some(v) = msg.get("checkpoint") {
        let ck = Checkpoint::from_json(v)?;
        inner.store.save(id, &ck, None)?;
        inner.publish_snapshot(id, &ck, false)?;
        job.checkpoint = ck;
    }
    job.state = JobState::Queued;
    let apps = job.checkpoint.stats.applications;
    drop(st);
    inner.announce(&Json::obj([
        ("op", Json::str("released")),
        ("job", Json::Int(id as i64)),
        ("worker", Json::str(&worker)),
        ("applications", Json::Int(apps as i64)),
    ]));
    Ok(ack())
}

/// A relayed job event — announced for observability, nothing else.
fn worker_event(inner: &Inner, msg: &Json) -> Result<Json, String> {
    // A streamed event is also proof of life: extend the lease so a
    // long burst of event forwarding can never starve the heartbeat.
    if let Ok((worker, id, epoch)) = msg_lease_key(msg) {
        let _ = touch_lease(inner, &worker, id, epoch);
    }
    inner.announce(msg);
    Ok(ack())
}

fn worker_bye(inner: &Inner, msg: &Json) -> Result<Json, String> {
    let name = msg.require_str("worker")?.to_string();
    let mut st = inner.lock();
    st.workers.remove(&name);
    drop(st);
    inner.announce(&Json::obj([
        ("op", Json::str("worker-left")),
        ("worker", Json::str(&name)),
    ]));
    Ok(Json::obj([("op", Json::str("goodbye"))]))
}

fn response(op: &str, fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![
        ("type".to_string(), Json::str("response")),
        ("op".to_string(), Json::str(op)),
    ];
    obj.extend(fields);
    Json::Obj(obj)
}

/// Client ops in the service wire vocabulary, served against the
/// cluster job table.
fn handle_client(inner: &Inner, req: Request) -> Result<Json, String> {
    match req {
        Request::Submit { .. } => client_submit(inner, req),
        Request::Resume {
            checkpoint,
            max_applications,
            max_wall_ms,
        } => client_resume(inner, &checkpoint, max_applications, max_wall_ms),
        Request::Query {
            job,
            kb,
            source,
            query,
            config,
            node_limit,
            timeout_ms,
        } => client_query(
            inner,
            job,
            kb.as_deref(),
            source.as_deref(),
            &query,
            &config,
            node_limit,
            timeout_ms,
        ),
        Request::Status { job } => client_status(inner, job),
        Request::Wait { job, timeout_ms } => client_wait(inner, job, timeout_ms),
        Request::Checkpoint { job } => {
            let st = inner.lock();
            let jb = st
                .jobs
                .get(&job)
                .ok_or_else(|| format!("unknown job {job}"))?;
            Ok(response(
                "checkpoint",
                vec![
                    ("job".to_string(), Json::Int(job as i64)),
                    ("checkpoint".to_string(), jb.checkpoint.to_json()),
                ],
            ))
        }
        Request::Cancel { job } => client_cancel(inner, job),
        Request::List => client_list(inner),
        Request::Drain => {
            let mut st = inner.lock();
            st.draining = true;
            let queued = st
                .jobs
                .values()
                .filter(|j| matches!(j.state, JobState::Queued))
                .count();
            let leased = st
                .jobs
                .values()
                .filter(|j| matches!(j.state, JobState::Leased { .. }))
                .count();
            Ok(response(
                "drain",
                vec![
                    ("queued".to_string(), Json::Int(queued as i64)),
                    ("leased".to_string(), Json::Int(leased as i64)),
                ],
            ))
        }
        Request::Shutdown => {
            inner.shutdown();
            Ok(response("shutdown", Vec::new()))
        }
    }
}

/// The cluster submit path: same spec construction, admission gate and
/// structured rejections as `treechase serve`, then enqueue-as-
/// checkpoint instead of enqueue-in-process.
fn client_submit(inner: &Inner, req: Request) -> Result<Json, String> {
    let Request::Submit {
        name,
        source,
        kb,
        config,
        tw_sample_interval,
        progress_every,
        checkpoint_every,
        priority,
        submitter,
        auto_strategy,
        auto_budgets,
    } = req
    else {
        unreachable!("client_submit called with a non-submit request");
    };
    let mut spec = match (&source, &kb) {
        (Some(src), None) => JobSpec::from_text(name.unwrap_or_default(), src, *config)?,
        (None, Some(kb_name)) => {
            let base = named_kb(kb_name)?;
            let mut spec = JobSpec::from_kb(name.unwrap_or_else(|| kb_name.clone()), base, *config);
            if spec.name.is_empty() {
                spec.name = kb_name.clone();
            }
            spec
        }
        _ => return Err("submit takes exactly one of `source` / `kb`".to_string()),
    };
    if let Some(every) = tw_sample_interval {
        spec = spec.with_tw_samples(every);
    }
    if let Some(every) = progress_every {
        spec = spec.with_progress_every(every);
    }
    if let Some(every) = checkpoint_every {
        spec = spec.with_checkpoint_every(every);
    }
    spec = spec.with_priority(priority);
    spec.submitter = submitter;
    spec.auto_strategy = auto_strategy;
    spec.auto_budgets = auto_budgets;

    {
        let st = inner.lock();
        if st.draining {
            return Ok(rejection_to_json(
                "submit",
                &Rejection {
                    reason: RejectReason::Draining,
                    message: "coordinator is draining".to_string(),
                    retry_after: None,
                },
            ));
        }
        if let Some(cap) = inner.cfg.max_queue {
            let queued = st
                .jobs
                .values()
                .filter(|j| matches!(j.state, JobState::Queued))
                .count();
            if queued >= cap {
                return Ok(rejection_to_json(
                    "submit",
                    &Rejection {
                        reason: RejectReason::QueueFull,
                        message: format!("queue at capacity ({queued}/{cap})"),
                        retry_after: Some(inner.cfg.lease),
                    },
                ));
            }
        }
    }
    // The gate runs the static analyzer + bounded probe; never under
    // the state lock.
    let admission = match apply_admission_gate(&mut spec, &inner.cfg.service) {
        Ok(adm) => adm,
        Err(rej) => return Ok(rejection_to_json("submit", &rej)),
    };
    if spec.name.is_empty() {
        spec.name = format!("job-{}", inner.lock().next_id);
    }
    let rules = spec.kb.rules.clone();
    let id = inner.enqueue(&spec)?;
    let mut fields = vec![("job".to_string(), Json::Int(id as i64))];
    if let Some(gate) = &admission.gate {
        fields.push(("analysis".to_string(), analysis_to_json(gate, &rules)));
        fields.push((
            "strategy_applied".to_string(),
            Json::Bool(admission.strategy_applied),
        ));
        fields.push((
            "budgets_tightened".to_string(),
            Json::Bool(admission.budgets_tightened),
        ));
    }
    Ok(response("submit", fields))
}

fn client_resume(
    inner: &Inner,
    checkpoint: &Checkpoint,
    max_applications: Option<usize>,
    max_wall_ms: Option<u64>,
) -> Result<Json, String> {
    if inner.lock().draining {
        return Ok(rejection_to_json(
            "resume",
            &Rejection {
                reason: RejectReason::Draining,
                message: "coordinator is draining".to_string(),
                retry_after: None,
            },
        ));
    }
    let mut spec = checkpoint.into_spec()?;
    if let Some(n) = max_applications {
        spec.config.max_applications = n;
    }
    if let Some(ms) = max_wall_ms {
        spec.config.max_wall = Some(Duration::from_millis(ms));
        spec.config.consumed_wall = Duration::ZERO;
    }
    let id = inner.enqueue(&spec)?;
    Ok(response(
        "resume",
        vec![
            ("job".to_string(), Json::Int(id as i64)),
            ("exact".to_string(), Json::Bool(checkpoint.exact())),
        ],
    ))
}

#[allow(clippy::too_many_arguments)]
fn client_query(
    inner: &Inner,
    job: Option<JobId>,
    kb: Option<&str>,
    source: Option<&str>,
    query: &str,
    config: &chase_engine::ChaseConfig,
    node_limit: Option<usize>,
    timeout_ms: Option<u64>,
) -> Result<Json, String> {
    if inner.lock().draining {
        return Ok(rejection_to_json(
            "query",
            &Rejection {
                reason: RejectReason::Draining,
                message: "coordinator is draining".to_string(),
                retry_after: None,
            },
        ));
    }
    let mut budget = SearchBudget::unlimited();
    if let Some(n) = node_limit {
        budget = budget.with_node_limit(n);
    }
    let timeout = timeout_ms
        .map(Duration::from_millis)
        .or(inner.cfg.service.op_deadline);
    if let Some(t) = timeout {
        budget = budget.with_deadline(Instant::now() + t);
    }
    let reply = if let Some(id) = job {
        if !inner.lock().jobs.contains_key(&id) {
            return Err(format!("unknown job {id}"));
        }
        let view = inner
            .snapshots
            .view(id)
            .ok_or_else(|| format!("no snapshot for job {id} yet"))?;
        let outcome = answer_view(&view, query, &budget).map_err(|e| e.to_string())?;
        inner
            .snapshots
            .add_answers_served(outcome.answers.len() as u64);
        QueryReply {
            outcome,
            job: Some(id),
            sequence: Some(view.sequence),
            applications: Some(view.applications),
            snapshot_age_ms: Some(view.captured.elapsed().as_millis() as u64),
            cache: inner.snapshots.stats(),
        }
    } else {
        let base = match (kb, source) {
            (Some(kb_name), None) => named_kb(kb_name)?,
            (None, Some(src)) => JobSpec::from_text(String::new(), src, config.clone())?.kb,
            _ => return Err("query takes exactly one of `job` / `kb` / `source`".to_string()),
        };
        let outcome = answer_kb(&base, query, config, &budget).map_err(|e| e.to_string())?;
        inner
            .snapshots
            .add_answers_served(outcome.answers.len() as u64);
        QueryReply {
            outcome,
            job: None,
            sequence: None,
            applications: None,
            snapshot_age_ms: None,
            cache: inner.snapshots.stats(),
        }
    };
    Ok(query_reply_to_json(&reply))
}

/// The wire `status` label for a cluster job state, reusing the
/// service spelling where the lifecycles coincide.
fn wire_status(state: &JobState) -> &'static str {
    match state {
        JobState::Queued => status_name(&JobStatus::Queued),
        JobState::Leased { .. } => status_name(&JobStatus::Running),
        JobState::Done { .. } => status_name(&JobStatus::Finished),
        JobState::Failed { .. } => status_name(&JobStatus::Failed),
        JobState::Cancelled => status_name(&JobStatus::Cancelled),
    }
}

fn client_status(inner: &Inner, job: JobId) -> Result<Json, String> {
    let st = inner.lock();
    let jb = st
        .jobs
        .get(&job)
        .ok_or_else(|| format!("unknown job {job}"))?;
    let mut fields = vec![
        ("job".to_string(), Json::Int(job as i64)),
        ("status".to_string(), Json::str(wire_status(&jb.state))),
        ("state".to_string(), Json::str(jb.state.label())),
        ("epoch".to_string(), Json::Int(jb.epoch as i64)),
        ("reschedules".to_string(), Json::Int(jb.reschedules as i64)),
        (
            "applications".to_string(),
            Json::Int(jb.checkpoint.stats.applications as i64),
        ),
    ];
    match &jb.state {
        JobState::Leased { worker, .. } => {
            fields.push(("worker".to_string(), Json::str(worker)));
        }
        JobState::Done {
            outcome,
            terminated,
        } => {
            fields.push(("outcome".to_string(), Json::str(outcome)));
            fields.push(("terminated".to_string(), Json::Bool(*terminated)));
        }
        JobState::Failed { message } => {
            fields.push(("message".to_string(), Json::str(message)));
        }
        JobState::Queued | JobState::Cancelled => {}
    }
    if !jb.queries.is_empty() {
        fields.push((
            "queries".to_string(),
            Json::Arr(
                jb.queries
                    .iter()
                    .map(|(name, verdict)| {
                        Json::obj([("name", Json::str(name)), ("verdict", Json::str(verdict))])
                    })
                    .collect(),
            ),
        ));
    }
    Ok(response("status", fields))
}

fn client_wait(inner: &Inner, job: JobId, timeout_ms: Option<u64>) -> Result<Json, String> {
    let deadline = timeout_ms
        .map(Duration::from_millis)
        .or(inner.cfg.service.op_deadline)
        .map(|t| Instant::now() + t);
    loop {
        {
            let st = inner.lock();
            let jb = st
                .jobs
                .get(&job)
                .ok_or_else(|| format!("unknown job {job}"))?;
            if jb.state.is_terminal() {
                drop(st);
                let mut status = client_status(inner, job)?;
                if let Json::Obj(fields) = &mut status {
                    for f in fields.iter_mut() {
                        if f.0 == "op" {
                            f.1 = Json::str("wait");
                        }
                    }
                    fields.push(("timed_out".to_string(), Json::Bool(false)));
                }
                return Ok(status);
            }
        }
        let expired = deadline.is_some_and(|d| Instant::now() >= d);
        if expired || inner.shutdown.load(Ordering::Acquire) {
            let mut status = client_status(inner, job)?;
            if let Json::Obj(fields) = &mut status {
                for f in fields.iter_mut() {
                    if f.0 == "op" {
                        f.1 = Json::str("wait");
                    }
                }
                fields.push(("timed_out".to_string(), Json::Bool(true)));
            }
            return Ok(status);
        }
        thread::sleep(Duration::from_millis(25));
    }
}

/// Cancel: a queued job is dropped outright; a leased job flips to
/// `Cancelled`, which fails the fencing check — the holder learns at
/// its next heartbeat and aborts locally. Terminal jobs are left as
/// they finished.
fn client_cancel(inner: &Inner, job: JobId) -> Result<Json, String> {
    let mut st = inner.lock();
    let Some(jb) = st.jobs.get_mut(&job) else {
        return Err(format!("unknown job {job}"));
    };
    let cancelled = match &jb.state {
        JobState::Queued | JobState::Leased { .. } => {
            jb.state = JobState::Cancelled;
            inner.store.remove(job)?;
            inner.snapshots.evict(job);
            true
        }
        _ => false,
    };
    drop(st);
    Ok(response(
        "cancel",
        vec![
            ("job".to_string(), Json::Int(job as i64)),
            ("cancelled".to_string(), Json::Bool(cancelled)),
        ],
    ))
}

fn client_list(inner: &Inner) -> Result<Json, String> {
    let st = inner.lock();
    let now = Instant::now();
    let jobs = st
        .jobs
        .iter()
        .map(|(&id, j)| {
            Json::obj([
                ("job", Json::Int(id as i64)),
                ("name", Json::str(&j.name)),
                ("status", Json::str(wire_status(&j.state))),
                ("state", Json::str(j.state.label())),
                ("reschedules", Json::Int(j.reschedules as i64)),
                (
                    "applications",
                    Json::Int(j.checkpoint.stats.applications as i64),
                ),
            ])
        })
        .collect();
    let workers = st
        .workers
        .iter()
        .map(|(name, seen)| {
            Json::obj([
                ("name", Json::str(name)),
                (
                    "seen_ms_ago",
                    Json::Int(now.duration_since(*seen).as_millis() as i64),
                ),
            ])
        })
        .collect();
    Ok(response(
        "list",
        vec![
            ("jobs".to_string(), Json::Arr(jobs)),
            ("workers".to_string(), Json::Arr(workers)),
        ],
    ))
}
