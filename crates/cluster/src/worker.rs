//! The worker: pulls leased jobs and runs them through the existing
//! service runner.
//!
//! A worker is deliberately thin — all chase semantics (budget
//! accounting, checkpoint exactness, query verdicts, crash retries)
//! live in the embedded single-threaded
//! [`Service`]; the worker only moves frames:
//!
//! - it registers with `hello` and obeys the coordinator's lease,
//!   heartbeat and checkpoint cadences from the `welcome` reply;
//! - each lease arrives as a [`Checkpoint`] and is resubmitted locally
//!   via [`Checkpoint::into_spec`], so the slice continues with the
//!   derivation-total budget invariants (remaining applications
//!   re-derived, prefix wall time charged);
//! - between heartbeats it forwards buffered job events and ships the
//!   freshest local checkpoint whenever the application count moved —
//!   shipped progress doubles as the heartbeat;
//! - a `fenced` reply (lease expired and rescheduled, or job
//!   cancelled) aborts the local run immediately: the coordinator has
//!   already given the job to someone else, and anything this worker
//!   produces past that point must not count;
//! - on `stop` (the CLI wires SIGTERM here) it drains the local
//!   service — the running slice checkpoints and halts — and hands the
//!   lease back with a `release` carrying that final checkpoint, so
//!   the job requeues with its progress instead of waiting out the
//!   lease clock.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use chase_engine::ChaseOutcome;
use treechase_service::protocol::{event_to_json, outcome_name, stats_to_json, verdict_name};
use treechase_service::{Checkpoint, JobStatus, Json, Service, ServiceConfig, WaitResult};

use crate::wire::roundtrip;

/// Connection settings for [`run_worker`].
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Worker name sent in `hello` (must be unique per cluster; the
    /// coordinator fences on `(worker, epoch)` pairs).
    pub name: String,
    /// Print one JSONL line per lease/completion to stdout.
    pub announce: bool,
}

/// What the coordinator's `welcome` told us to do.
struct Cadence {
    heartbeat: Duration,
    checkpoint_every: usize,
}

/// Runs the worker loop until `stop` returns true (the CLI polls its
/// SIGTERM flag through this) or the connection fails.
pub fn run_worker(cfg: &WorkerConfig, stop: &dyn Fn() -> bool) -> Result<(), String> {
    let mut conn = connect_with_retry(&cfg.connect, stop)?;
    conn.set_read_timeout(Some(Duration::from_millis(250)))
        .map_err(|e| format!("read timeout: {e}"))?;
    let hello = Json::obj([("op", Json::str("hello")), ("worker", Json::str(&cfg.name))]);
    let welcome = roundtrip(&mut conn, &hello)?;
    if welcome.get("op").and_then(Json::as_str) != Some("welcome") {
        return Err(format!("unexpected hello reply: {welcome}"));
    }
    let cadence = Cadence {
        heartbeat: Duration::from_millis(welcome.require_u64("heartbeat_ms")?),
        checkpoint_every: welcome.require_u64("checkpoint_every")? as usize,
    };
    let pull = Json::obj([("op", Json::str("pull")), ("worker", Json::str(&cfg.name))]);
    while !stop() {
        let reply = roundtrip(&mut conn, &pull)?;
        match reply.get("op").and_then(Json::as_str) {
            Some("lease") => run_lease(&mut conn, cfg, &cadence, &reply, stop)?,
            Some("idle") => {
                let retry = Duration::from_millis(reply.opt_u64("retry_ms")?.unwrap_or(200));
                sleep_until(retry, stop);
            }
            other => return Err(format!("unexpected pull reply op {other:?}")),
        }
    }
    let bye = Json::obj([("op", Json::str("bye")), ("worker", Json::str(&cfg.name))]);
    // Best effort: the coordinator may already be gone.
    let _ = roundtrip(&mut conn, &bye);
    Ok(())
}

/// Connects with bounded retries — in tests and CI the worker process
/// often races the coordinator's bind.
fn connect_with_retry(addr: &str, stop: &dyn Fn() -> bool) -> Result<TcpStream, String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if stop() || Instant::now() >= deadline {
                    return Err(format!("connect {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Sleeps in small slices so a stop request lands promptly.
fn sleep_until(total: Duration, stop: &dyn Fn() -> bool) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !stop() {
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// True iff the coordinator fenced us off this lease.
fn is_fenced(reply: &Json) -> bool {
    reply.get("op").and_then(Json::as_str) == Some("fenced")
}

/// Executes one leased job to completion, fencing, or drain.
fn run_lease(
    conn: &mut TcpStream,
    cfg: &WorkerConfig,
    cadence: &Cadence,
    lease: &Json,
    stop: &dyn Fn() -> bool,
) -> Result<(), String> {
    let job = lease.require_u64("job")?;
    let epoch = lease.require_u64("epoch")?;
    let ck = Checkpoint::from_json(lease.require("checkpoint")?)?;
    if cfg.announce {
        println!(
            "{}",
            Json::obj([
                ("op", Json::str("worker-lease")),
                ("worker", Json::str(&cfg.name)),
                ("job", Json::Int(job as i64)),
                ("epoch", Json::Int(epoch as i64)),
                ("applications", Json::Int(ck.stats.applications as i64),),
            ])
        );
    }
    // Every lease travels as a checkpoint; a spec that does not parse
    // is a permanent failure, not a reschedulable one.
    let mut spec = match ck.into_spec() {
        Ok(spec) => spec,
        Err(e) => {
            let done = done_failed(cfg, job, epoch, &format!("checkpoint does not parse: {e}"));
            roundtrip(conn, &done)?;
            return Ok(());
        }
    };
    spec.checkpoint_every = Some(cadence.checkpoint_every);
    let spec_for_capture = spec.clone();
    let svc = Service::with_config(
        1,
        ServiceConfig {
            checkpoint_every: Some(cadence.checkpoint_every),
            ..ServiceConfig::default()
        },
    )?;
    let events = svc.events();
    let local = match svc.try_submit(spec) {
        Ok(id) => id,
        Err(rej) => {
            let done = done_failed(cfg, job, epoch, &rej.message);
            roundtrip(conn, &done)?;
            return Ok(());
        }
    };
    // Heartbeats ride a dedicated side-channel connection on their own
    // thread: the main loop below can stall for a whole lease on big
    // payloads — serializing a large checkpoint, a slow roundtrip, or
    // the local service's state lock — and the lease must stay alive
    // through all of it. The side channel also learns about fences
    // first, which the main loop checks every tick.
    let hb = Heartbeater::spawn(cfg, cadence, job, epoch);
    let mut shipped_apps = ck.stats.applications;
    let out = run_lease_loop(
        conn,
        cfg,
        cadence,
        job,
        epoch,
        &svc,
        &spec_for_capture,
        local,
        &events,
        &mut shipped_apps,
        &hb,
        stop,
    );
    hb.stop();
    out
}

/// The heartbeat side channel: its own socket, its own thread, so no
/// amount of main-loop latency can silently expire a live lease.
struct Heartbeater {
    stop: Arc<AtomicBool>,
    fenced: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Heartbeater {
    fn spawn(cfg: &WorkerConfig, cadence: &Cadence, job: u64, epoch: u64) -> Heartbeater {
        let stop = Arc::new(AtomicBool::new(false));
        let fenced = Arc::new(AtomicBool::new(false));
        let connect = cfg.connect.clone();
        let name = cfg.name.clone();
        let interval = cadence.heartbeat;
        let handle = {
            let stop = Arc::clone(&stop);
            let fenced = Arc::clone(&fenced);
            thread::spawn(move || {
                let Ok(mut conn) = TcpStream::connect(&connect) else {
                    return;
                };
                let _ = conn.set_read_timeout(Some(Duration::from_millis(250)));
                let msg = Json::obj([
                    ("op", Json::str("heartbeat")),
                    ("worker", Json::str(&name)),
                    ("job", Json::Int(job as i64)),
                    ("epoch", Json::Int(epoch as i64)),
                ]);
                while !stop.load(Ordering::Acquire) {
                    match roundtrip(&mut conn, &msg) {
                        Ok(reply) if is_fenced(&reply) => {
                            fenced.store(true, Ordering::Release);
                            return;
                        }
                        Ok(_) => {}
                        // A broken side channel is not a fence: the
                        // main loop's own sends still extend the lease.
                        Err(_) => return,
                    }
                    let deadline = Instant::now() + interval;
                    while Instant::now() < deadline && !stop.load(Ordering::Acquire) {
                        thread::sleep(Duration::from_millis(25));
                    }
                }
            })
        };
        Heartbeater {
            stop,
            fenced,
            handle: Some(handle),
        }
    }

    fn fenced(&self) -> bool {
        self.fenced.load(Ordering::Acquire)
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_lease_loop(
    conn: &mut TcpStream,
    cfg: &WorkerConfig,
    cadence: &Cadence,
    job: u64,
    epoch: u64,
    svc: &Service,
    spec_for_capture: &treechase_service::JobSpec,
    local: treechase_service::JobId,
    events: &treechase_service::EventReceiver,
    shipped_apps: &mut usize,
    hb: &Heartbeater,
    stop: &dyn Fn() -> bool,
) -> Result<(), String> {
    loop {
        if hb.fenced() {
            abort_local(svc, local);
            return Ok(());
        }
        match svc.wait_timeout(local, Some(cadence.heartbeat)) {
            WaitResult::TimedOut(_) => {
                forward_events(conn, cfg, job, epoch, events)?;
                if stop() {
                    // Drain: the running slice checkpoints and halts;
                    // hand the lease back with that progress.
                    svc.drain(None);
                    let mut release = vec![
                        ("op".to_string(), Json::str("release")),
                        ("worker".to_string(), Json::str(&cfg.name)),
                        ("job".to_string(), Json::Int(job as i64)),
                        ("epoch".to_string(), Json::Int(epoch as i64)),
                    ];
                    if let Some(cur) = svc.checkpoint_of(local) {
                        release.push(("checkpoint".to_string(), cur.to_json()));
                    }
                    roundtrip(conn, &Json::Obj(release))?;
                    return Ok(());
                }
                // Ship progress when there is any — a landed checkpoint
                // extends the lease like a heartbeat would; otherwise
                // heartbeat explicitly.
                let reply = match svc.checkpoint_of(local) {
                    Some(cur) if cur.stats.applications > *shipped_apps => {
                        let apps = cur.stats.applications;
                        let msg = Json::obj([
                            ("op", Json::str("checkpoint")),
                            ("worker", Json::str(&cfg.name)),
                            ("job", Json::Int(job as i64)),
                            ("epoch", Json::Int(epoch as i64)),
                            ("checkpoint", cur.to_json()),
                        ]);
                        let reply = roundtrip(conn, &msg)?;
                        *shipped_apps = apps;
                        reply
                    }
                    _ => {
                        let msg = Json::obj([
                            ("op", Json::str("heartbeat")),
                            ("worker", Json::str(&cfg.name)),
                            ("job", Json::Int(job as i64)),
                            ("epoch", Json::Int(epoch as i64)),
                        ]);
                        roundtrip(conn, &msg)?
                    }
                };
                if is_fenced(&reply) {
                    abort_local(svc, local);
                    return Ok(());
                }
            }
            WaitResult::Terminal(status) => {
                forward_events(conn, cfg, job, epoch, events)?;
                let done = match status {
                    JobStatus::Finished => {
                        done_report(cfg, svc, spec_for_capture, job, epoch, local)
                    }
                    other => Some(done_failed(
                        cfg,
                        job,
                        epoch,
                        &format!("local job ended {other:?} without a result"),
                    )),
                };
                let done = done
                    .unwrap_or_else(|| done_failed(cfg, job, epoch, "finished job has no result"));
                let reply = roundtrip(conn, &done)?;
                // A fenced done means the lease was rescheduled while we
                // finished: the other replay's report wins, ours is
                // discarded — exactly the no-double-count guarantee.
                let _ = reply;
                return Ok(());
            }
            WaitResult::Unknown => return Err(format!("local job {local} disappeared")),
        }
    }
}

/// Forwards buffered local job events upstream (observability only).
fn forward_events(
    conn: &mut TcpStream,
    cfg: &WorkerConfig,
    job: u64,
    epoch: u64,
    events: &treechase_service::EventReceiver,
) -> Result<(), String> {
    while let Some(ev) = events.try_recv() {
        let msg = Json::obj([
            ("op", Json::str("event")),
            ("worker", Json::str(&cfg.name)),
            ("job", Json::Int(job as i64)),
            ("epoch", Json::Int(epoch as i64)),
            ("event", event_to_json(&ev)),
        ]);
        roundtrip(conn, &msg)?;
    }
    Ok(())
}

/// Cancels the local run after a fence — whatever it would still
/// derive no longer counts for anyone.
fn abort_local(svc: &Service, local: treechase_service::JobId) {
    svc.cancel(local);
    svc.wait_timeout(local, Some(Duration::from_secs(5)));
}

fn done_failed(cfg: &WorkerConfig, job: u64, epoch: u64, message: &str) -> Json {
    Json::obj([
        ("op", Json::str("done")),
        ("worker", Json::str(&cfg.name)),
        ("job", Json::Int(job as i64)),
        ("epoch", Json::Int(epoch as i64)),
        ("status", Json::str("failed")),
        ("message", Json::str(message)),
    ])
}

/// Builds the `done` report from the finished local job: outcome,
/// accumulated stats, named-query verdicts, and the final checkpoint —
/// for a terminated run captured from the final instance (the
/// coordinator serves `complete` queries from it), for a budget stop
/// the runner's own resume checkpoint.
fn done_report(
    cfg: &WorkerConfig,
    svc: &Service,
    spec: &treechase_service::JobSpec,
    job: u64,
    epoch: u64,
    local: treechase_service::JobId,
) -> Option<Json> {
    svc.with_result(local, |r| {
        let terminated = r.outcome == ChaseOutcome::Terminated;
        let final_ck = r.checkpoint.clone().unwrap_or_else(|| {
            Checkpoint::capture(spec, &r.final_vocab, &r.final_instance, r.stats)
        });
        let queries = r
            .queries
            .iter()
            .map(|(name, verdict)| {
                Json::obj([
                    ("name", Json::str(name)),
                    ("verdict", Json::str(verdict_name(*verdict))),
                ])
            })
            .collect();
        if cfg.announce {
            println!(
                "{}",
                Json::obj([
                    ("op", Json::str("worker-done")),
                    ("worker", Json::str(&cfg.name)),
                    ("job", Json::Int(job as i64)),
                    ("outcome", Json::str(outcome_name(r.outcome))),
                    ("applications", Json::Int(r.stats.applications as i64),),
                ])
            );
        }
        Json::obj([
            ("op", Json::str("done")),
            ("worker", Json::str(&cfg.name)),
            ("job", Json::Int(job as i64)),
            ("epoch", Json::Int(epoch as i64)),
            ("status", Json::str("ok")),
            ("outcome", Json::str(outcome_name(r.outcome))),
            ("terminated", Json::Bool(terminated)),
            ("stats", stats_to_json(&r.stats)),
            ("queries", Json::Arr(queries)),
            ("checkpoint", final_ck.to_json()),
        ])
    })
}
