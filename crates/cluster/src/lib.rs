//! `treechase-cluster`: a coordinator/worker chase cluster over leased
//! TCP jobs.
//!
//! One process is the wrong unit of execution for the chases this repo
//! cares about: the core chase of the paper's title may run unboundedly
//! long, and even terminating chases can outlast any single machine's
//! patience. This crate splits the service into two roles:
//!
//! - a [`coordinator::Coordinator`] owns the job table, grants
//!   time-bounded *leases* over a hand-rolled length-prefixed TCP
//!   protocol ([`wire`]), monitors worker heartbeats, and reschedules
//!   expired leases from the last durable checkpoint in its
//!   [`CheckpointStore`](treechase_service::CheckpointStore);
//! - a [`worker`] registers, pulls leased jobs, runs them through the
//!   existing service runner with the checkpoint budget-exactness
//!   invariants (derivation-total budgets, re-derived remaining
//!   applications), streams step events and periodic checkpoints back,
//!   and drains cleanly on SIGTERM.
//!
//! Every job travels as a [`Checkpoint`](treechase_service::Checkpoint)
//! — fresh submits are checkpointed at their base facts — so dispatch,
//! reschedule and resume are the same code path, and a job rescheduled
//! after a worker loss replays exactly the suffix after its last
//! durable checkpoint. Lease *epochs* fence zombies: a worker whose
//! lease expired has its late checkpoints and results rejected instead
//! of corrupting the re-run.
//!
//! The client surface reuses the existing wire ops (`submit`, `query`,
//! `status`, …) framed over the same socket, including the admission
//! gate and structured rejections of the single-process service.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod wire;
pub mod worker;

pub use coordinator::{ClusterConfig, Coordinator, ShutdownHandle};
pub use wire::{read_frame, write_frame, FrameRead};
pub use worker::{run_worker, WorkerConfig};
