//! Length-prefixed JSON framing over TCP.
//!
//! Every message is one JSON object preceded by a 4-byte big-endian
//! length. The payloads reuse the service wire vocabulary (`op` field,
//! checkpoint/stats/config serializers), so a frame body is exactly
//! what `treechase serve` would read from a line — framing exists only
//! because TCP is a byte stream and workers ship multi-kilobyte
//! checkpoints that must not shear.

use std::io::{ErrorKind, Read as _, Write as _};
use std::net::TcpStream;

use treechase_service::{parse_json, Json};

/// Hard ceiling on one frame's payload, guarding both sides against a
/// corrupt or hostile length header.
pub const MAX_FRAME: usize = 64 << 20;

/// What one read attempt produced.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame.
    Frame(Json),
    /// The peer closed the connection cleanly (EOF before a header).
    Eof,
    /// The socket's read timeout expired before a header arrived; the
    /// connection is still healthy.
    Timeout,
}

/// Writes one framed message.
pub fn write_frame(stream: &mut TcpStream, msg: &Json) -> Result<(), String> {
    let body = msg.to_string();
    if body.len() > MAX_FRAME {
        return Err(format!("frame too large: {} bytes", body.len()));
    }
    let len = body.len() as u32;
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(body.as_bytes());
    stream
        .write_all(&buf)
        .map_err(|e| format!("write frame: {e}"))
}

/// Reads one framed message.
///
/// A timeout (or EOF) is only tolerated *between* frames: once the
/// length header has landed, a short or torn payload is an error —
/// resynchronizing on a byte stream after half a frame is hopeless.
pub fn read_frame(stream: &mut TcpStream) -> Result<FrameRead, String> {
    let mut hdr = [0u8; 4];
    let mut got = 0;
    while got < hdr.len() {
        match stream.read(&mut hdr[got..]) {
            Ok(0) if got == 0 => return Ok(FrameRead::Eof),
            Ok(0) => return Err("connection closed mid-header".to_string()),
            Ok(n) => got += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if got == 0 {
                    return Ok(FrameRead::Timeout);
                }
                return Err("read timeout mid-header".to_string());
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("read frame header: {e}")),
        }
    }
    let len = u32::from_be_bytes(hdr) as usize;
    if len > MAX_FRAME {
        return Err(format!("frame length {len} exceeds limit {MAX_FRAME}"));
    }
    let mut body = vec![0u8; len];
    stream
        .read_exact(&mut body)
        .map_err(|e| format!("read frame body ({len} bytes): {e}"))?;
    let text = String::from_utf8(body).map_err(|e| format!("frame not UTF-8: {e}"))?;
    let v = parse_json(&text)?;
    Ok(FrameRead::Frame(v))
}

/// Sends `msg` and reads the single framed reply — the synchronous
/// request/response shape every cluster conversation uses.
pub fn roundtrip(stream: &mut TcpStream, msg: &Json) -> Result<Json, String> {
    write_frame(stream, msg)?;
    loop {
        match read_frame(stream)? {
            FrameRead::Frame(v) => return Ok(v),
            FrameRead::Timeout => {}
            FrameRead::Eof => return Err("connection closed awaiting reply".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    #[test]
    fn frames_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            loop {
                match read_frame(&mut conn).unwrap() {
                    FrameRead::Frame(v) => write_frame(&mut conn, &v).unwrap(),
                    FrameRead::Eof => break,
                    FrameRead::Timeout => {}
                }
            }
        });
        let mut conn = TcpStream::connect(addr).unwrap();
        let msg = Json::obj([
            ("op", Json::str("hello")),
            ("payload", Json::Str("x".repeat(100_000))),
        ]);
        let back = roundtrip(&mut conn, &msg).unwrap();
        assert_eq!(back.to_string(), msg.to_string());
        drop(conn);
        echo.join().unwrap();
    }

    #[test]
    fn idle_timeout_is_not_an_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (mut conn, _) = listener.accept().unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        assert!(matches!(read_frame(&mut conn).unwrap(), FrameRead::Timeout));
    }

    #[test]
    fn oversized_length_header_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut conn, _) = listener.accept().unwrap();
        client.write_all(&u32::MAX.to_be_bytes()).unwrap();
        assert!(read_frame(&mut conn).unwrap_err().contains("exceeds limit"));
    }
}
