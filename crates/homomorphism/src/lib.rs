//! # chase-homomorphism
//!
//! Homomorphism machinery for atomsets: the backtracking matcher, trigger
//! satisfaction, endomorphism/retraction search, core computation and
//! isomorphism testing.
//!
//! This crate implements the homomorphism-theoretic toolbox of Section 2 of
//! *Bounded Treewidth and the Infinite Core Chase* (PODS 2023):
//!
//! * a **homomorphism** from `A` to `B` is a substitution `π` with
//!   `π(A) ⊆ B` — found by [`find_homomorphism`] / enumerated by
//!   [`for_each_homomorphism`];
//! * a **retraction** of `A` is an endomorphism that is the identity on the
//!   terms of its image — searched directly by
//!   [`find_retraction_eliminating`] using fixpoint propagation;
//! * the **core** of a finite atomset is its unique (up to isomorphism)
//!   retract that is a core — computed by [`core_of`];
//! * **isomorphism** is a bijective homomorphism with homomorphic inverse —
//!   decided by [`isomorphism`].
//!
//! ## Why searching only retractions is complete
//!
//! To decide whether a variable `x` can be folded away we search directly
//! for a *retraction* avoiding `x` rather than an arbitrary endomorphism.
//! This loses nothing: if any endomorphism `h` of a finite `A` avoids `x`,
//! then some power `h^k` has a stable image `I ⊆ h(A)` (so `x ∉ I`) on which
//! it acts as a permutation, and a further power is the identity on `I` —
//! a retraction avoiding `x`. The direct search enforces the fixpoint
//! condition *during* backtracking (binding `v ↦ u` forces `u ↦ u`), which
//! both prunes the search and returns a ready-to-use simplification for the
//! core chase (Definition 1 requires simplifications to be retractions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod core_impl;
mod incremental;
mod iso;
mod matcher;

pub use budget::{MatchStats, SearchBudget, SearchOutcome};
pub use core_impl::{
    core_of, core_of_budgeted, find_proper_retraction, find_retraction_eliminating,
    find_retraction_eliminating_budgeted, find_retraction_eliminating_frozen,
    find_retraction_eliminating_frozen_budgeted, is_core, CoreResult, FoldProbe,
};
pub use incremental::{incremental_core, IncrementalCoreResult};
pub use iso::{hom_equivalent, isomorphism};
pub use matcher::{
    all_homomorphisms, find_homomorphism, find_homomorphism_extending, for_each_homomorphism,
    for_each_homomorphism_budgeted, maps_to, MatchConfig,
};
