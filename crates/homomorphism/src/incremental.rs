//! Incremental core maintenance: re-coring an instance that was a core
//! before a batch of atoms was added, without re-probing every variable.
//!
//! ## The dirty-region invariant
//!
//! Let `I` be a core and `J = I ∪ A` for a batch of added atoms `A` (the
//! head images of one or more trigger applications). Two facts make an
//! incremental recomputation sound and fast:
//!
//! 1. **Only the dirty region can fold.** If `h` is a proper retraction
//!    of `J` with moved set `M`, then some atom containing a variable of
//!    `M` either lies in `A` or is mapped by `h` onto an atom of `A` —
//!    otherwise restricting `h` to `I` would contradict `I` being a core.
//!    Either way that atom *matches onto* an atom of `A` pointwise, so at
//!    least one eliminable variable occurs in an atom unifiable onto `A`.
//!    Seeding the candidate set with the variables of all such atoms
//!    (plus the fresh nulls) therefore finds a fold whenever one exists;
//!    when a fold lands, the same argument applies to its changed image
//!    atoms, which is the transitive expansion below.
//! 2. **Eliminability only shrinks.** If `x` survives a fold `r` (a
//!    retraction of the current instance) and is eliminable afterwards
//!    via `h`, then `h ∘ r` eliminates `x` before the fold too. So a
//!    probe that *conclusively* fails never needs to be repeated — the
//!    `failed` set below is sound, and each variable is probed at most
//!    once per maintenance phase.
//!
//! ## Parallel probing
//!
//! Candidates in a batch are probed concurrently with
//! [`std::thread::scope`]: the first probe to find a retraction raises a
//! shared atomic flag (first-hit-wins) that truncates its siblings
//! through their [`SearchBudget`]. Only the winning retraction is
//! applied, so the *result* is deterministic up to isomorphism (the core
//! is unique up to isomorphism) regardless of thread interleaving;
//! counters such as nodes explored may vary between runs.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use chase_atoms::{Atom, AtomId, AtomSet, IdBits, Substitution, Term, VarId};

use crate::budget::{MatchStats, SearchBudget, SearchOutcome};
use crate::core_impl::FoldProbe;

/// The result of one incremental maintenance phase.
#[derive(Clone, Debug)]
pub struct IncrementalCoreResult {
    /// The retract reached — the core of the input unless `stats` says
    /// the phase was truncated by its budget.
    pub core: AtomSet,
    /// A retraction of the input witnessing `core`.
    pub retraction: Substitution,
    /// Matcher counters for the phase (candidates probed, nodes explored,
    /// truncation flag).
    pub stats: MatchStats,
}

/// Can `beta` be mapped onto `alpha` by some per-atom variable
/// assignment? (Constants must coincide; repeated variables must receive
/// one image.) This is the cheap syntactic test behind the dirty region:
/// any atom an endomorphism maps onto `alpha` necessarily passes it.
fn unifiable_onto(beta: &Atom, alpha: &Atom) -> bool {
    if beta.pred() != alpha.pred() || beta.arity() != alpha.arity() {
        return false;
    }
    let mut map: HashMap<VarId, Term> = HashMap::new();
    for (&b, &a) in beta.args().iter().zip(alpha.args()) {
        match b {
            Term::Const(_) => {
                if b != a {
                    return false;
                }
            }
            Term::Var(v) => match map.get(&v) {
                Some(&img) => {
                    if img != a {
                        return false;
                    }
                }
                None => {
                    map.insert(v, a);
                }
            },
        }
    }
    true
}

fn atom_vars(atom: &Atom, out: &mut BTreeSet<VarId>) {
    for &t in atom.args() {
        if let Term::Var(v) = t {
            out.insert(v);
        }
    }
}

/// The variables of every atom of `instance` unifiable onto some atom of
/// `anchors` (including the anchors' own variables — each atom unifies
/// onto itself).
fn dirty_vars(instance: &AtomSet, anchors: &[Atom]) -> BTreeSet<VarId> {
    let mut dirty = BTreeSet::new();
    for alpha in anchors {
        atom_vars(alpha, &mut dirty);
        for beta in instance.with_pred(alpha.pred()) {
            if unifiable_onto(beta, alpha) {
                atom_vars(beta, &mut dirty);
            }
        }
    }
    dirty
}

/// Tier-0 fold probe: a one-variable retraction `{x ↦ t}` that maps every
/// atom containing `x` onto an existing atom. Most real folds are of this
/// shape — a fresh null collapsing onto older structure — and verifying
/// one needs no backtracking search: candidate images of `x` come from
/// the atoms its first occurrence could land on, and each is confirmed by
/// substitution plus indexed membership lookups, linear in
/// `|star(x)| × |candidates|`. A miss here says nothing (folds that
/// co-move several variables escape it), so callers fall through to the
/// full retraction search.
fn single_var_fold(instance: &AtomSet, x: VarId, stats: &mut MatchStats) -> Option<Substitution> {
    let star: Vec<&Atom> = instance.with_term(Term::Var(x)).collect();
    let first = star.first()?;
    // `first ↦ gamma` with every non-x position unchanged: exactly the
    // atoms whose non-x positions carry `first`'s own terms — a single
    // positional-index intersection instead of a predicate scan.
    let bound: Vec<(usize, Term)> = first
        .args()
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t != Term::Var(x))
        .map(|(pos, &t)| (pos, t))
        .collect();
    let mut scratch = IdBits::new();
    let mut cands: Vec<AtomId> = Vec::new();
    instance.matching_ids(
        first.pred(),
        first.arity(),
        &bound,
        &mut scratch,
        &mut cands,
    );
    'cand: for id in cands {
        let gamma = instance.get(id).expect("matching_ids returned dead id");
        stats.nodes += 1;
        // The image of x must be consistent across repeated occurrences.
        let mut image: Option<Term> = None;
        for (&b, &g) in first.args().iter().zip(gamma.args()) {
            if b == Term::Var(x) {
                match image {
                    Some(t) if t != g => continue 'cand,
                    _ => image = Some(g),
                }
            }
        }
        let t = image.expect("first mentions x");
        if t == Term::Var(x) {
            continue;
        }
        let r = Substitution::from_pairs([(x, t)]);
        if star
            .iter()
            .all(|beta| instance.contains(&r.apply_atom(beta)))
        {
            return Some(r);
        }
    }
    None
}

/// The moved-closure fold prober.
///
/// A partial substitution `p` extended by the identity is a retraction of
/// `J` iff (a) every term in its image is a fixpoint and (b) every atom
/// containing a *moved* variable maps into `J` — atoms touching only
/// unbound variables map to themselves and need no work. So a probe for
/// variable `x` never has to assign the untouched part of the instance:
/// it binds `x`, then confirms exactly the atoms its moved variables
/// drag in, transitively. This is both
///
/// * **sound** — a completed search *is* a retraction eliminating `x`
///   (all dragged-in atoms confirmed, image fixpoints pinned, `x`
///   forbidden from the image), and
/// * **complete** — if a retraction `r` of `J` eliminates `x`, then
///   restricting `r` to the moved variables var-connected to `x` through
///   atoms containing moved variables (identity elsewhere) is still a
///   retraction eliminating `x`: any atom's moved variables are either
///   all inside that component or all outside, so the restriction stays
///   a homomorphism. The search explores exactly such restrictions.
///
/// Against the general matcher this drops the per-probe `O(|J|)` setup
/// and identity-completion work, making probe cost a function of the
/// fold's locality rather than the instance size — the point of
/// maintaining the core incrementally.
struct FoldSearch<'a> {
    instance: &'a AtomSet,
    budget: &'a SearchBudget,
    /// The variable being eliminated: must move, may not appear in the
    /// image.
    x: VarId,
    /// Partial assignment. Ordered so [`FoldSearch::select_pending`]
    /// walks movers in a deterministic order across runs and platforms.
    bind: BTreeMap<VarId, Term>,
    /// Scratch bitset for positional-posting intersection, reused across
    /// nodes ([`AtomSet::matching_ids`] leaves it clean).
    scratch: IdBits,
    /// Reused id buffer for candidate enumeration.
    cand_buf: Vec<AtomId>,
    nodes: usize,
    truncated: bool,
}

impl<'a> FoldSearch<'a> {
    /// Binds `v ↦ t`, pinning `t` as a fixpoint when it is a variable.
    /// Records fresh bindings in `trail` for the caller to undo.
    fn try_bind(&mut self, v: VarId, t: Term, trail: &mut Vec<VarId>) -> bool {
        if t == Term::Var(self.x) {
            return false; // x may not occur in the image
        }
        if let Some(&existing) = self.bind.get(&v) {
            return existing == t;
        }
        self.bind.insert(v, t);
        trail.push(v);
        if let Term::Var(u) = t {
            if u != v && !self.try_bind(u, Term::Var(u), trail) {
                return false;
            }
        }
        true
    }

    fn undo(&mut self, trail: &[VarId]) {
        for &v in trail {
            self.bind.remove(&v);
        }
    }

    fn image(&self, t: Term) -> Option<Term> {
        match t {
            Term::Const(_) => Some(t),
            Term::Var(v) => self.bind.get(&v).copied(),
        }
    }

    /// Fully binds `beta ↦ gamma` positionally.
    fn unify(&mut self, beta: &Atom, gamma: &Atom, trail: &mut Vec<VarId>) -> bool {
        for (&b, &g) in beta.args().iter().zip(gamma.args()) {
            match b {
                Term::Const(_) => {
                    if b != g {
                        return false;
                    }
                }
                Term::Var(v) => {
                    if !self.try_bind(v, g, trail) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Fills [`FoldSearch::cand_buf`] with the exact candidate images for
    /// a partially-determined atom: the intersection of the instance's
    /// positional postings over `beta`'s determined positions — the same
    /// [`AtomSet::matching_ids`] API the general matcher enumerates
    /// through, so the prober cannot drift from its semantics.
    fn fill_candidates(&mut self, beta: &Atom) {
        let instance = self.instance;
        let mut bound: Vec<(usize, Term)> = Vec::with_capacity(beta.arity());
        for (pos, &t) in beta.args().iter().enumerate() {
            if let Some(img) = self.image(t) {
                bound.push((pos, img));
            }
        }
        instance.matching_ids(
            beta.pred(),
            beta.arity(),
            &bound,
            &mut self.scratch,
            &mut self.cand_buf,
        );
    }

    /// Exact candidate count for `beta` under the current binding,
    /// without materialising the list when ≤ 1 position is determined
    /// (the common case while ranking pending atoms).
    fn candidate_count(&mut self, beta: &Atom) -> usize {
        let instance = self.instance;
        let mut bound: Vec<(usize, Term)> = Vec::with_capacity(beta.arity());
        for (pos, &t) in beta.args().iter().enumerate() {
            if let Some(img) = self.image(t) {
                bound.push((pos, img));
            }
        }
        if bound.len() >= 2 {
            instance.matching_ids(
                beta.pred(),
                beta.arity(),
                &bound,
                &mut self.scratch,
                &mut self.cand_buf,
            );
            self.cand_buf.len()
        } else {
            instance.matching_count(beta.pred(), beta.arity(), &bound)
        }
    }

    /// Finds an atom dragged in by a moved variable that is not yet
    /// satisfied. `Err(())` signals a dead branch (a fully bound atom
    /// whose image is missing from the instance).
    fn select_pending(&mut self) -> Result<Option<&'a Atom>, ()> {
        let instance = self.instance;
        let movers: Vec<(VarId, Term)> = self.bind.iter().map(|(&v, &t)| (v, t)).collect();
        let mut best: Option<(&'a Atom, usize)> = None;
        for (v, t) in movers {
            if t == Term::Var(v) {
                continue; // pinned fixpoint: its atoms ride on movers
            }
            for beta in instance.with_term(Term::Var(v)) {
                let mut determined = true;
                for &arg in beta.args() {
                    if self.image(arg).is_none() {
                        determined = false;
                        break;
                    }
                }
                if determined {
                    let img = Atom::new(
                        beta.pred(),
                        beta.args()
                            .iter()
                            .map(|&a| self.image(a).expect("determined"))
                            .collect::<Vec<_>>(),
                    );
                    if instance.contains(&img) {
                        continue; // satisfied
                    }
                    return Err(()); // fully bound but unmapped: dead end
                }
                let est = self.candidate_count(beta);
                if est == 0 {
                    return Err(());
                }
                if best.is_none_or(|(_, b)| est < b) {
                    best = Some((beta, est));
                }
            }
        }
        Ok(best.map(|(beta, _)| beta))
    }

    /// Depth-first completion of the current partial fold.
    fn solve(&mut self) -> bool {
        let pending = match self.select_pending() {
            Err(()) => return false,
            Ok(None) => return true,
            Ok(Some(beta)) => beta,
        };
        self.fill_candidates(pending);
        let cands: Vec<&'a Atom> = self
            .cand_buf
            .iter()
            .map(|&id| {
                self.instance
                    .get(id)
                    .expect("matching_ids returned dead id")
            })
            .collect();
        for gamma in cands {
            self.nodes += 1;
            if self.budget.exhausted_at(self.nodes) {
                self.truncated = true;
                return false;
            }
            let mut trail = Vec::new();
            if self.unify(pending, gamma, &mut trail) && self.solve() {
                return true;
            }
            self.undo(&trail);
            if self.truncated {
                return false;
            }
        }
        false
    }
}

/// Probes whether `x` can be folded away from `instance`, searching only
/// the moved closure of `x` (see [`FoldSearch`]). Returns the same shape
/// as the general probe: a truncated miss is inconclusive.
fn probe_fold(instance: &AtomSet, x: VarId, budget: &SearchBudget) -> FoldProbe {
    if budget.interrupted() {
        return FoldProbe {
            retraction: None,
            outcome: SearchOutcome {
                truncated: true,
                nodes: 0,
            },
        };
    }
    let mut search = FoldSearch {
        instance,
        budget,
        x,
        bind: BTreeMap::new(),
        scratch: IdBits::new(),
        cand_buf: Vec::new(),
        nodes: 0,
        truncated: false,
    };
    // Root the search at the most constrained atom containing x.
    let star: Vec<&Atom> = instance.with_term(Term::Var(x)).collect();
    let Some(&beta0) = star
        .iter()
        .min_by_key(|beta| instance.pred_count(beta.pred()))
    else {
        return FoldProbe {
            retraction: None,
            outcome: SearchOutcome::default(),
        };
    };
    let mut retraction = None;
    // Root candidates through the positional index: the empty bind still
    // pins beta0's constant positions, so this is already narrower than a
    // predicate scan.
    search.fill_candidates(beta0);
    let roots: Vec<&Atom> = search
        .cand_buf
        .iter()
        .map(|&id| instance.get(id).expect("matching_ids returned dead id"))
        .collect();
    for gamma in roots {
        search.nodes += 1;
        if search.budget.exhausted_at(search.nodes) {
            search.truncated = true;
            break;
        }
        let mut trail = Vec::new();
        // Unifying beta0 ↦ gamma binds x; gamma's x-position being x
        // itself is rejected inside try_bind (x may not stay).
        if search.unify(beta0, gamma, &mut trail) && search.solve() {
            retraction = Some(
                Substitution::from_pairs(search.bind.iter().map(|(&v, &t)| (v, t))).normalized(),
            );
            break;
        }
        search.undo(&trail);
        if search.truncated {
            break;
        }
    }
    FoldProbe {
        retraction,
        outcome: SearchOutcome {
            truncated: search.truncated,
            nodes: search.nodes,
        },
    }
}

/// What a worker concluded about the candidates it probed.
struct WorkerReport {
    stats: MatchStats,
    /// Probed exhaustively, no retraction: never probe again this phase.
    failed: Vec<VarId>,
    /// Not conclusively probed (lost the first-hit race or was cut by the
    /// winner's flag): back on the worklist.
    retry: Vec<VarId>,
}

/// Probes `batch` for eliminability, in parallel when `threads > 1`.
/// Returns the first-found fold (if any) and the per-worker reports.
fn probe_batch(
    current: &AtomSet,
    batch: &[VarId],
    budget: &SearchBudget,
    threads: usize,
) -> (Option<Substitution>, Vec<WorkerReport>) {
    let winner: Mutex<Option<Substitution>> = Mutex::new(None);
    let stop = Arc::new(AtomicBool::new(false));
    let probe_budget = budget.clone().with_cancel(Arc::clone(&stop));
    let workers = threads.max(1).min(batch.len().max(1));
    let run_worker = |chunk: &[VarId]| -> WorkerReport {
        let mut report = WorkerReport {
            stats: MatchStats::default(),
            failed: Vec::new(),
            retry: Vec::new(),
        };
        for (i, &x) in chunk.iter().enumerate() {
            if stop.load(Ordering::Acquire) {
                report.retry.extend_from_slice(&chunk[i..]);
                break;
            }
            // Tier 0: try the cheap one-variable fold before paying for a
            // full retraction search.
            if let Some(r) = single_var_fold(current, x, &mut report.stats) {
                report.stats.candidates += 1;
                let mut w = winner.lock().expect("winner lock poisoned");
                if w.is_none() {
                    *w = Some(r);
                }
                drop(w);
                stop.store(true, Ordering::Release);
                report.retry.push(x);
                continue;
            }
            let probe = probe_fold(current, x, &probe_budget);
            report.stats.absorb(probe.outcome);
            match probe.retraction {
                Some(r) => {
                    let mut w = winner.lock().expect("winner lock poisoned");
                    if w.is_none() {
                        *w = Some(r);
                    }
                    stop.store(true, Ordering::Release);
                    // Whether this probe won or lost the race, only one
                    // fold is applied per batch; x may still be foldable
                    // against the updated instance, so it goes back on
                    // the worklist.
                    report.retry.push(x);
                }
                None if !probe.outcome.truncated => report.failed.push(x),
                None => {
                    // Truncated miss: inconclusive. Retry only if the cut
                    // came from a sibling's win — a caller-budget cut is
                    // surfaced via the truncation flag instead (avoiding
                    // a livelock under a caller node limit).
                    if stop.load(Ordering::Acquire) && !budget.interrupted() {
                        report.stats.truncated = false;
                        report.retry.push(x);
                    }
                }
            }
        }
        report
    };
    let reports = if workers <= 1 {
        vec![run_worker(batch)]
    } else {
        // Round-robin split keeps low-numbered (old, rarely foldable)
        // and high-numbered (fresh, often foldable) variables spread
        // across workers.
        let chunks: Vec<Vec<VarId>> = (0..workers)
            .map(|w| batch.iter().copied().skip(w).step_by(workers).collect())
            .collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| s.spawn(|| run_worker(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("probe worker panicked"))
                .collect()
        })
    };
    (winner.into_inner().expect("winner lock poisoned"), reports)
}

/// Re-cores `instance = known-core ∪ added` by probing only the dirty
/// region, expanding it transitively as folds land.
///
/// * `instance` — the full current instance;
/// * `added` — the atoms added since the instance was last a core (the
///   head images of the applications in between; over-approximating is
///   harmless, it only enlarges the candidate set);
/// * `fresh` — the nulls minted by those applications;
/// * `budget` — deadline/cancel polled between and *inside* probes; on a
///   cut the result is a sound retract flagged `truncated`, not a core;
/// * `threads` — max concurrent probes (1 = sequential, deterministic).
pub fn incremental_core(
    instance: &AtomSet,
    added: &[Atom],
    fresh: &[VarId],
    budget: &SearchBudget,
    threads: usize,
) -> IncrementalCoreResult {
    let mut current = instance.clone();
    let mut total = Substitution::new();
    let mut stats = MatchStats::default();
    let mut failed: HashSet<VarId> = HashSet::new();

    let mut worklist = dirty_vars(&current, added);
    worklist.extend(fresh.iter().copied());

    loop {
        if budget.interrupted() {
            stats.truncated = true;
            break;
        }
        let batch: Vec<VarId> = worklist
            .iter()
            .copied()
            .filter(|&x| !failed.contains(&x) && current.mentions(Term::Var(x)))
            .collect();
        worklist.clear();
        if batch.is_empty() {
            break;
        }
        let (fold, reports) = probe_batch(&current, &batch, budget, threads);
        for report in reports {
            stats.merge(report.stats);
            failed.extend(report.failed);
            worklist.extend(report.retry);
        }
        if let Some(r) = fold {
            // Transitive expansion: the fold's changed images are the new
            // anchors — exactly the `A` of the invariant, one level up.
            let changed: Vec<Atom> = current
                .iter()
                .filter_map(|beta| {
                    let gamma = r.apply_atom(beta);
                    (gamma != *beta).then_some(gamma)
                })
                .collect();
            // In place: a fold moves O(1) atoms out of a large instance,
            // so rebuilding the whole set (and its positional indexes)
            // per retraction would dominate. Removals may auto-compact
            // the arena; no AtomIds are held across this point.
            current.apply_in_place(&r);
            total = total.then(&r);
            worklist.extend(dirty_vars(&current, &changed));
        }
    }
    debug_assert!(total.is_retraction_of(instance));
    debug_assert_eq!(total.apply_set(instance), current);
    debug_assert!(
        stats.truncated || crate::core_impl::is_core(&current),
        "dirty-region maintenance must reach the core when not truncated"
    );
    IncrementalCoreResult {
        core: current,
        retraction: total,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_impl::{core_of, is_core};
    use crate::iso::isomorphism;
    use chase_atoms::{ConstId, PredId};

    fn p(i: u32) -> PredId {
        PredId::from_raw(i)
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn vid(i: u32) -> VarId {
        VarId::from_raw(i)
    }

    fn c(i: u32) -> Term {
        Term::Const(ConstId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(p(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn unifiable_onto_respects_constants_and_repeats() {
        let alpha = atom(0, &[c(0), c(1)]);
        assert!(unifiable_onto(&atom(0, &[v(5), c(1)]), &alpha));
        assert!(unifiable_onto(&atom(0, &[v(5), v(6)]), &alpha));
        assert!(!unifiable_onto(&atom(0, &[c(2), c(1)]), &alpha));
        // Repeated variable cannot take two images.
        assert!(!unifiable_onto(&atom(0, &[v(5), v(5)]), &alpha));
        assert!(unifiable_onto(
            &atom(0, &[v(5), v(5)]),
            &atom(0, &[c(0), c(0)])
        ));
        assert!(!unifiable_onto(&atom(1, &[c(0), c(1)]), &alpha));
    }

    #[test]
    fn fresh_null_folds_back_onto_existing_structure() {
        // Core {r(a,b)}; add r(a,z) with fresh null z — z folds onto b.
        let core = set(&[atom(0, &[c(0), c(1)])]);
        assert!(is_core(&core));
        let added = vec![atom(0, &[c(0), v(7)])];
        let mut j = core.clone();
        j.insert(added[0].clone());
        let res = incremental_core(&j, &added, &[vid(7)], &SearchBudget::default(), 1);
        assert_eq!(res.core, core);
        assert!(res.retraction.is_retraction_of(&j));
        assert!(!res.stats.truncated);
        assert!(res.stats.candidates >= 1);
    }

    #[test]
    fn old_variable_folds_when_new_atoms_enable_it() {
        // Core I = {p(a,x)} (x cannot fold). Adding the ground atom
        // p(a,b) makes the *old* variable x eliminable — the dirty region
        // must pick it up even though x is neither fresh nor in the new
        // atom (p(a,x) is unifiable onto p(a,b)).
        let i = set(&[atom(0, &[c(0), v(3)])]);
        assert!(is_core(&i));
        let added = vec![atom(0, &[c(0), c(1)])];
        let mut j = i.clone();
        j.insert(added[0].clone());
        let res = incremental_core(&j, &added, &[], &SearchBudget::default(), 1);
        assert_eq!(res.core, set(&[atom(0, &[c(0), c(1)])]));
        assert!(is_core(&res.core));
    }

    #[test]
    fn co_movement_folds_variables_outside_the_seed() {
        // I = {q(x,w), q(z,w'), p(w,a), p(w',b)} is a core. Adding
        // p(w',a) lets w fold (w↦w'), which forces x↦z along — x is
        // nowhere near the added atom, but the fold carries it.
        let i = set(&[
            atom(1, &[v(0), v(1)]), // q(x, w)
            atom(1, &[v(2), v(3)]), // q(z, w')
            atom(0, &[v(1), c(0)]), // p(w, a)
            atom(0, &[v(3), c(1)]), // p(w', b)
        ]);
        assert!(is_core(&i));
        let added = vec![atom(0, &[v(3), c(0)])]; // p(w', a)
        let mut j = i.clone();
        j.insert(added[0].clone());
        let res = incremental_core(&j, &added, &[], &SearchBudget::default(), 1);
        let full = core_of(&j);
        assert!(isomorphism(&res.core, &full.core).is_some());
        assert!(is_core(&res.core));
        assert!(!j.is_subset_of(&res.core), "something folded");
    }

    #[test]
    fn disjoint_edge_folds_onto_added_loop() {
        // I = {e(x1,x2)} core; adding e(y,y) (fresh null y) makes x1,x2
        // fold onto y — candidates found via unifiable-onto, not
        // membership in the new atom.
        let i = set(&[atom(0, &[v(0), v(1)])]);
        let added = vec![atom(0, &[v(9), v(9)])];
        let mut j = i.clone();
        j.insert(added[0].clone());
        let res = incremental_core(&j, &added, &[vid(9)], &SearchBudget::default(), 1);
        assert_eq!(res.core, set(&[atom(0, &[v(9), v(9)])]));
    }

    #[test]
    fn parallel_probing_matches_sequential_up_to_iso() {
        // Many interchangeable fresh nulls: parallel and sequential
        // maintenance must land on isomorphic cores.
        let mut j = set(&[atom(0, &[c(0), c(1)])]);
        let mut added = Vec::new();
        let mut fresh = Vec::new();
        for k in 0..8u32 {
            let a = atom(0, &[c(0), v(10 + k)]);
            j.insert(a.clone());
            added.push(a);
            fresh.push(vid(10 + k));
        }
        let seq = incremental_core(&j, &added, &fresh, &SearchBudget::default(), 1);
        let par = incremental_core(&j, &added, &fresh, &SearchBudget::default(), 4);
        assert!(isomorphism(&seq.core, &par.core).is_some());
        assert!(is_core(&par.core));
        assert_eq!(par.core, set(&[atom(0, &[c(0), c(1)])]));
    }

    #[test]
    fn truncated_budget_returns_sound_retract() {
        let mut j = set(&[atom(0, &[c(0), c(1)])]);
        let mut added = Vec::new();
        for k in 0..4u32 {
            let a = atom(0, &[c(0), v(10 + k)]);
            j.insert(a.clone());
            added.push(a);
        }
        let expired = SearchBudget::default()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let res = incremental_core(&j, &added, &[], &expired, 1);
        assert!(res.stats.truncated);
        assert_eq!(res.core, j, "no time to fold anything");
        assert!(res.retraction.is_retraction_of(&j));
    }

    #[test]
    fn empty_addition_is_a_no_op() {
        let core = set(&[atom(0, &[v(0), v(1)])]);
        let res = incremental_core(&core, &[], &[], &SearchBudget::default(), 4);
        assert_eq!(res.core, core);
        assert!(res.retraction.is_empty());
    }
}
