//! Isomorphism and homomorphic equivalence of atomsets.

use std::ops::ControlFlow;

use chase_atoms::{AtomSet, Substitution};

use crate::matcher::{for_each_homomorphism, maps_to, MatchConfig};

/// Finds an isomorphism from `a` to `b`, if one exists.
///
/// Per the paper, an isomorphism is a bijective homomorphism whose inverse
/// is also a homomorphism. Substitutions fix constants, so an isomorphism
/// maps variables to variables bijectively, and the constants occurring in
/// `a` and `b` must coincide.
///
/// Soundness of the search: an injective variable-to-variable homomorphism
/// `h: a → b` with `|a| = |b|` (atom counts) and `|terms(a)| = |terms(b)|`
/// is automatically surjective on atoms (`h(a) ⊆ b` with equal finite
/// cardinality forces `h(a) = b`), hence its inverse maps `b` back into
/// `a`.
pub fn isomorphism(a: &AtomSet, b: &AtomSet) -> Option<Substitution> {
    if a.len() != b.len() {
        return None;
    }
    if a.terms().len() != b.terms().len() {
        return None;
    }
    if a.constants() != b.constants() {
        return None;
    }
    // Per-predicate atom counts must agree.
    let preds = a.preds();
    if preds != b.preds() {
        return None;
    }
    for &p in &preds {
        if a.pred_count(p) != b.pred_count(p) {
            return None;
        }
    }
    let cfg = MatchConfig {
        injective_vars: true,
        ..MatchConfig::default()
    };
    let mut found = None;
    for_each_homomorphism(a, b, &Substitution::new(), &cfg, |sub| {
        found = Some(sub);
        ControlFlow::Break(())
    });
    let iso = found?;
    debug_assert!(iso.is_homomorphism(a, b));
    debug_assert!(iso.inverse().is_some_and(|inv| inv.is_homomorphism(b, a)));
    Some(iso)
}

/// Are `a` and `b` homomorphically equivalent (each maps into the other)?
pub fn hom_equivalent(a: &AtomSet, b: &AtomSet) -> bool {
    maps_to(a, b) && maps_to(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, ConstId, PredId, Term, VarId};

    fn p(i: u32) -> PredId {
        PredId::from_raw(i)
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn c(i: u32) -> Term {
        Term::Const(ConstId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(p(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn renamed_paths_are_isomorphic() {
        let a = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]);
        let b = set(&[atom(0, &[v(10), v(11)]), atom(0, &[v(11), v(12)])]);
        let iso = isomorphism(&a, &b).unwrap();
        assert_eq!(iso.apply_set(&a), b);
    }

    #[test]
    fn different_shapes_are_not_isomorphic() {
        // Path 0→1→2 vs fork 0→1, 0→2.
        let path = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]);
        let fork = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(0), v(2)])]);
        assert!(isomorphism(&path, &fork).is_none());
    }

    #[test]
    fn constants_must_coincide() {
        let a = set(&[atom(0, &[c(0), v(0)])]);
        let b = set(&[atom(0, &[c(1), v(0)])]);
        assert!(isomorphism(&a, &b).is_none());
        assert!(isomorphism(&a, &a).is_some());
    }

    #[test]
    fn var_cannot_map_to_constant_in_iso() {
        let a = set(&[atom(0, &[v(0)])]);
        let b = set(&[atom(0, &[c(0)])]);
        // Same atom/term counts, but iso would need v0 ↦ constant.
        assert!(isomorphism(&a, &b).is_none());
        // Though a hom-maps to b.
        assert!(maps_to(&a, &b));
    }

    #[test]
    fn hom_equivalent_but_not_isomorphic() {
        // {r(0,1), r(1,1)} ≡hom {r(2,2)} but not isomorphic.
        let a = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(1)])]);
        let b = set(&[atom(0, &[v(2), v(2)])]);
        assert!(hom_equivalent(&a, &b));
        assert!(isomorphism(&a, &b).is_none());
    }

    #[test]
    fn pred_multiset_mismatch_rejected_fast() {
        let a = set(&[atom(0, &[v(0)]), atom(1, &[v(0)])]);
        let b = set(&[atom(0, &[v(1)]), atom(0, &[v(2)])]);
        assert!(isomorphism(&a, &b).is_none());
    }

    #[test]
    fn cycle_isomorphism_respects_direction() {
        let fwd = set(&[
            atom(0, &[v(0), v(1)]),
            atom(0, &[v(1), v(2)]),
            atom(0, &[v(2), v(0)]),
        ]);
        let relabeled = set(&[
            atom(0, &[v(7), v(5)]),
            atom(0, &[v(5), v(6)]),
            atom(0, &[v(6), v(7)]),
        ]);
        assert!(isomorphism(&fwd, &relabeled).is_some());
    }
}
