//! Retraction search and core computation.
//!
//! A finite atomset `A` is a **core** if its only retraction is the
//! identity. Every finite atomset has a retract that is a core, unique up
//! to isomorphism (the paper, Section 2). We compute it by repeatedly
//! *folding away* single variables: a variable `x` can be folded iff some
//! retraction of `A` avoids `x` (see the crate docs for why restricting the
//! search to retractions is complete).

use std::ops::ControlFlow;

use chase_atoms::{AtomSet, Substitution, Term, VarId};

use crate::budget::{MatchStats, SearchBudget, SearchOutcome};
use crate::matcher::{for_each_homomorphism_budgeted, MatchConfig};

/// The result of [`core_of`]: the core together with the retraction that
/// witnesses it.
#[derive(Clone, Debug)]
pub struct CoreResult {
    /// The core retract of the input atomset.
    pub core: AtomSet,
    /// A retraction `σ` of the input with `σ(input) = core` and `σ`
    /// restricted to `terms(core)` the identity.
    pub retraction: Substitution,
}

/// The result of one budgeted fold probe: a witnessing retraction if one
/// was found, plus the search outcome. A probe with `retraction == None`
/// and `outcome.truncated == true` is **inconclusive** — the variable may
/// or may not be eliminable.
#[derive(Clone, Debug)]
pub struct FoldProbe {
    /// A retraction of the probed atomset avoiding the probed variable.
    pub retraction: Option<Substitution>,
    /// Work done and whether the budget cut the search short.
    pub outcome: SearchOutcome,
}

/// Searches for a retraction of `a` whose image avoids the variable `x`.
///
/// Returns `None` iff *no endomorphism* of `a` avoids `x` (not merely no
/// retraction — see the completeness argument in the crate docs).
pub fn find_retraction_eliminating(a: &AtomSet, x: VarId) -> Option<Substitution> {
    find_retraction_eliminating_budgeted(a, x, &SearchBudget::default()).retraction
}

/// [`find_retraction_eliminating`] under a [`SearchBudget`]: the deadline
/// and cancel flags are polled inside the backtracking loop, so a single
/// expensive probe stops within a poll interval of the budget.
pub fn find_retraction_eliminating_budgeted(
    a: &AtomSet,
    x: VarId,
    budget: &SearchBudget,
) -> FoldProbe {
    if !a.mentions(Term::Var(x)) {
        return FoldProbe {
            retraction: None,
            outcome: SearchOutcome::default(),
        };
    }
    let cfg = MatchConfig {
        retraction: true,
        forbidden_images: [Term::Var(x)].into_iter().collect(),
        must_move: [x].into_iter().collect(),
        ..MatchConfig::default()
    };
    let mut found = None;
    let outcome = for_each_homomorphism_budgeted(a, a, &Substitution::new(), &cfg, budget, |sub| {
        found = Some(sub.normalized());
        ControlFlow::Break(())
    });
    FoldProbe {
        retraction: found,
        outcome,
    }
}

/// Like [`find_retraction_eliminating`], but every variable in `frozen`
/// is pinned to itself — only the remaining variables may move.
///
/// This is the simplification step of the *frugal* chase (Konstantinidis
/// & Ambite, PVLDB 2014; the paper's [15]): after a rule application only
/// the freshly minted nulls are candidates for folding, so the engine
/// never pays for a full core computation.
pub fn find_retraction_eliminating_frozen(
    a: &AtomSet,
    x: VarId,
    frozen: impl IntoIterator<Item = VarId>,
) -> Option<Substitution> {
    find_retraction_eliminating_frozen_budgeted(a, x, frozen, &SearchBudget::default()).retraction
}

/// [`find_retraction_eliminating_frozen`] under a [`SearchBudget`].
pub fn find_retraction_eliminating_frozen_budgeted(
    a: &AtomSet,
    x: VarId,
    frozen: impl IntoIterator<Item = VarId>,
    budget: &SearchBudget,
) -> FoldProbe {
    if !a.mentions(Term::Var(x)) {
        return FoldProbe {
            retraction: None,
            outcome: SearchOutcome::default(),
        };
    }
    let seed = Substitution::from_pairs(
        frozen
            .into_iter()
            .filter(|&v| v != x)
            .map(|v| (v, Term::Var(v))),
    );
    let cfg = MatchConfig {
        retraction: true,
        forbidden_images: [Term::Var(x)].into_iter().collect(),
        must_move: [x].into_iter().collect(),
        ..MatchConfig::default()
    };
    let mut found = None;
    let outcome = for_each_homomorphism_budgeted(a, a, &seed, &cfg, budget, |sub| {
        found = Some(sub.normalized());
        ControlFlow::Break(())
    });
    FoldProbe {
        retraction: found,
        outcome,
    }
}

/// Finds a proper (non-identity) retraction of `a`, if one exists.
///
/// Any proper retraction moves at least one variable out of the image, so
/// it suffices to try to eliminate each variable in turn.
pub fn find_proper_retraction(a: &AtomSet) -> Option<Substitution> {
    for x in a.vars() {
        if let Some(r) = find_retraction_eliminating(a, x) {
            return Some(r);
        }
    }
    None
}

/// Is `a` a core (its only retraction is the identity)?
pub fn is_core(a: &AtomSet) -> bool {
    find_proper_retraction(a).is_none()
}

/// Computes the core of `a` and a witnessing retraction.
///
/// Strategy: repeatedly fold single variables until none can be
/// eliminated. Each successful fold applies a retraction and composes it
/// into the running total; because retractions compose (and the image only
/// shrinks), the total is itself a retraction of the original input.
pub fn core_of(a: &AtomSet) -> CoreResult {
    let (res, _) = core_of_budgeted(a, &SearchBudget::default());
    res
}

/// [`core_of`] under a [`SearchBudget`]: the budget is polled between
/// folds *and* inside each retraction search. When it trips, the
/// computation stops early and returns the (sound but possibly non-core)
/// retract reached so far, with `truncated` set in the stats.
pub fn core_of_budgeted(a: &AtomSet, budget: &SearchBudget) -> (CoreResult, MatchStats) {
    let mut current = a.clone();
    let mut total = Substitution::new();
    let mut agg = MatchStats::default();
    'fold: loop {
        let mut progress = false;
        // Snapshot the variable set; folds may remove several at once.
        let vars: Vec<VarId> = current.vars().into_iter().collect();
        for x in vars {
            if agg.truncated || budget.interrupted() {
                agg.truncated = true;
                break 'fold;
            }
            if !current.mentions(Term::Var(x)) {
                continue; // already folded away by an earlier retraction
            }
            let probe = find_retraction_eliminating_budgeted(&current, x, budget);
            agg.absorb(probe.outcome);
            if let Some(r) = probe.retraction {
                current.apply_in_place(&r);
                total = total.then(&r);
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    debug_assert!(total.is_retraction_of(a));
    debug_assert_eq!(total.apply_set(a), current);
    (
        CoreResult {
            core: current,
            retraction: total,
        },
        agg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::isomorphism;
    use chase_atoms::{Atom, ConstId, PredId};

    fn p(i: u32) -> PredId {
        PredId::from_raw(i)
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn vid(i: u32) -> VarId {
        VarId::from_raw(i)
    }

    fn c(i: u32) -> Term {
        Term::Const(ConstId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(p(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn loop_with_pendant_edge_folds_to_loop() {
        // {r(0,1), r(1,1)} — core is {r(1,1)}.
        let a = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(1)])]);
        let res = core_of(&a);
        assert_eq!(res.core, set(&[atom(0, &[v(1), v(1)])]));
        assert!(res.retraction.is_retraction_of(&a));
        assert!(is_core(&res.core));
        assert!(!is_core(&a));
    }

    #[test]
    fn long_path_into_loop_folds_entirely() {
        // path 0→1→2→3 plus loop on 3: core is the loop alone.
        let a = set(&[
            atom(0, &[v(0), v(1)]),
            atom(0, &[v(1), v(2)]),
            atom(0, &[v(2), v(3)]),
            atom(0, &[v(3), v(3)]),
        ]);
        let res = core_of(&a);
        assert_eq!(res.core, set(&[atom(0, &[v(3), v(3)])]));
    }

    #[test]
    fn ground_atoms_are_their_own_core() {
        let a = set(&[atom(0, &[c(0), c(1)]), atom(0, &[c(1), c(0)])]);
        let res = core_of(&a);
        assert_eq!(res.core, a);
        assert!(res.retraction.is_empty());
        assert!(is_core(&a));
    }

    #[test]
    fn directed_path_is_a_core() {
        // A directed 3-path with distinct variables has no proper
        // retraction (no loops, no shortcuts).
        let a = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]);
        assert!(is_core(&a));
        let res = core_of(&a);
        assert_eq!(res.core, a);
    }

    #[test]
    fn parallel_redundant_paths_fold() {
        // Two parallel 2-paths from a to b (through vars 0 and 1) — one is
        // redundant; the core keeps exactly one middle vertex.
        let a = set(&[
            atom(0, &[c(0), v(0)]),
            atom(0, &[v(0), c(1)]),
            atom(0, &[c(0), v(1)]),
            atom(0, &[v(1), c(1)]),
        ]);
        let res = core_of(&a);
        assert_eq!(res.core.len(), 2);
        assert_eq!(res.core.vars().len(), 1);
        assert!(is_core(&res.core));
    }

    #[test]
    fn core_is_idempotent_up_to_iso() {
        let a = set(&[
            atom(0, &[v(0), v(1)]),
            atom(0, &[v(1), v(2)]),
            atom(0, &[v(2), v(2)]),
            atom(1, &[v(0)]),
        ]);
        let once = core_of(&a);
        let twice = core_of(&once.core);
        assert!(isomorphism(&once.core, &twice.core).is_some());
        assert_eq!(once.core, twice.core, "already-core input is unchanged");
    }

    #[test]
    fn cycle_pair_folds_to_single_cycle() {
        // Two disjoint directed 2-cycles over variables fold to one.
        let a = set(&[
            atom(0, &[v(0), v(1)]),
            atom(0, &[v(1), v(0)]),
            atom(0, &[v(2), v(3)]),
            atom(0, &[v(3), v(2)]),
        ]);
        let res = core_of(&a);
        assert_eq!(res.core.len(), 2);
        assert_eq!(res.core.vars().len(), 2);
    }

    #[test]
    fn odd_cycle_is_core() {
        // Directed 3-cycle (no loops): it is a core.
        let a = set(&[
            atom(0, &[v(0), v(1)]),
            atom(0, &[v(1), v(2)]),
            atom(0, &[v(2), v(0)]),
        ]);
        assert!(is_core(&a));
    }

    #[test]
    fn eliminating_unmentioned_variable_fails_fast() {
        let a = set(&[atom(0, &[v(0)])]);
        assert!(find_retraction_eliminating(&a, vid(99)).is_none());
    }

    #[test]
    fn constants_anchor_folding() {
        // {r(a, 0), r(a, a)}: 0 folds onto the constant a.
        let a = set(&[atom(0, &[c(0), v(0)]), atom(0, &[c(0), c(0)])]);
        let res = core_of(&a);
        assert_eq!(res.core, set(&[atom(0, &[c(0), c(0)])]));
        assert_eq!(res.retraction.get(vid(0)), Some(c(0)));
    }

    #[test]
    fn frozen_retraction_only_moves_unfrozen_vars() {
        // {r(0,1), r(0,2)}: 1 and 2 are interchangeable. Freezing 1 and 0
        // still lets 2 fold onto 1; freezing 2 and 0 lets 1 fold onto 2.
        let a = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(0), v(2)])]);
        let fold2 = find_retraction_eliminating_frozen(&a, vid(2), [vid(0), vid(1)])
            .expect("2 folds onto 1");
        assert_eq!(fold2.get(vid(2)), Some(v(1)));
        assert!(fold2.is_retraction_of(&a));

        // Freezing everything except 0 blocks folding 1.
        assert!(
            find_retraction_eliminating_frozen(&a, vid(1), [vid(0)]).is_some(),
            "1 can fold onto 2 when 2 is free"
        );
        // But 1 cannot fold if its only fold target is itself... freeze 2:
        // 1 must map to 2 — allowed, since only frozen vars are pinned.
        let fold1 = find_retraction_eliminating_frozen(&a, vid(1), [vid(0), vid(2)])
            .expect("1 folds onto the frozen-but-stationary 2");
        assert_eq!(fold1.get(vid(1)), Some(v(2)));
    }

    #[test]
    fn frozen_retraction_respects_impossible_cases() {
        // Path r(0,1), r(1,2): a core; nothing folds, frozen or not.
        let a = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]);
        for x in [0u32, 1, 2] {
            assert!(find_retraction_eliminating_frozen(&a, vid(x), []).is_none());
        }
    }

    #[test]
    fn retraction_witness_maps_input_onto_core() {
        let a = set(&[
            atom(0, &[v(0), v(1)]),
            atom(0, &[v(1), v(2)]),
            atom(0, &[v(2), v(2)]),
        ]);
        let res = core_of(&a);
        assert_eq!(res.retraction.apply_set(&a), res.core);
        assert!(res
            .retraction
            .is_identity_on(res.core.terms().into_iter().collect::<Vec<_>>()));
    }
}
