//! Cooperative budgets for backtracking searches.
//!
//! A [`SearchBudget`] bounds a single matcher invocation three ways: a
//! node limit (candidate trials), a wall-clock deadline and any number of
//! shared cancellation flags. The matcher polls the cheap node counter on
//! every trial and the deadline/flags every [`POLL_MASK`]` + 1` trials, so
//! even a search that would run for minutes reacts to a cancel or an
//! expired deadline within microseconds.
//!
//! Budgets make searches *inconclusive* rather than wrong: a truncated
//! search that found a homomorphism still returns a certificate, while a
//! truncated miss is reported through [`SearchOutcome::truncated`] and
//! must never be read as a refutation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Check the deadline and cancel flags once per this many + 1 trials.
const POLL_MASK: usize = 0xFF;

/// Limits shared by every search a caller spawns: node budget, deadline
/// and cooperative cancellation.
#[derive(Clone, Debug, Default)]
pub struct SearchBudget {
    /// Abort after this many candidate trials (`None` = unbounded).
    pub node_limit: Option<usize>,
    /// Abort once the wall clock passes this instant.
    pub deadline: Option<Instant>,
    /// Abort when any of these shared flags is raised. Multiple flags let
    /// an engine-level cancel token and a local first-hit-wins flag cut
    /// the same search.
    pub cancel: Vec<Arc<AtomicBool>>,
}

impl SearchBudget {
    /// An unbounded budget (the default).
    pub fn unlimited() -> Self {
        SearchBudget::default()
    }

    /// Sets the node limit.
    pub fn with_node_limit(mut self, n: usize) -> Self {
        self.node_limit = Some(n);
        self
    }

    /// Lowers the node limit to `n` if the current one is absent or
    /// larger — the degraded-mode shrink: never loosens an existing
    /// limit.
    pub fn tighten_node_limit(mut self, n: usize) -> Self {
        self.node_limit = Some(self.node_limit.map_or(n, |cur| cur.min(n)));
        self
    }

    /// Sets the deadline.
    pub fn with_deadline(mut self, d: Instant) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Adds a cancellation flag.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel.push(flag);
        self
    }

    /// Is the deadline past or any cancel flag raised? (Ignores the node
    /// limit, which is per-search state.) This is the between-searches
    /// poll for loops that issue many budgeted searches.
    pub fn interrupted(&self) -> bool {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        self.cancel.iter().any(|f| f.load(Ordering::Acquire))
    }

    /// The in-search poll: node limit on every trial, deadline/flags every
    /// [`POLL_MASK`]` + 1` trials.
    pub(crate) fn exhausted_at(&self, nodes: usize) -> bool {
        if let Some(limit) = self.node_limit {
            if nodes > limit {
                return true;
            }
        }
        if nodes & POLL_MASK == 0 && (self.deadline.is_some() || !self.cancel.is_empty()) {
            return self.interrupted();
        }
        false
    }
}

/// What a budgeted search reports besides its hits: whether it was cut
/// short and how much work it did.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchOutcome {
    /// The search stopped because a budget ran out (node limit, deadline
    /// or cancel), *not* because the space was exhausted or the callback
    /// asked to stop. A truncated miss is inconclusive.
    pub truncated: bool,
    /// Candidate trials performed.
    pub nodes: usize,
}

/// Aggregated matcher counters for one core-maintenance phase: how many
/// search nodes were explored across how many fold-candidate probes, and
/// whether any search was budget-truncated.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Candidate trials across all searches of the phase.
    pub nodes: usize,
    /// Fold candidates probed for eliminability.
    pub candidates: usize,
    /// At least one search was cut short by the budget, so the phase's
    /// result may be an under-approximation (a non-core retract).
    pub truncated: bool,
}

impl MatchStats {
    /// Folds one probe's outcome into the aggregate.
    pub fn absorb(&mut self, outcome: SearchOutcome) {
        self.nodes += outcome.nodes;
        self.candidates += 1;
        self.truncated |= outcome.truncated;
    }

    /// Merges another aggregate (e.g. a parallel worker's share).
    pub fn merge(&mut self, other: MatchStats) {
        self.nodes += other.nodes;
        self.candidates += other.candidates;
        self.truncated |= other.truncated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = SearchBudget::unlimited();
        assert!(!b.interrupted());
        assert!(!b.exhausted_at(0));
        assert!(!b.exhausted_at(1 << 30));
    }

    #[test]
    fn node_limit_cuts_at_the_limit() {
        let b = SearchBudget::unlimited().with_node_limit(10);
        assert!(!b.exhausted_at(10));
        assert!(b.exhausted_at(11));
    }

    #[test]
    fn tighten_never_loosens() {
        let b = SearchBudget::unlimited().tighten_node_limit(100);
        assert_eq!(b.node_limit, Some(100));
        let b = b.tighten_node_limit(10);
        assert_eq!(b.node_limit, Some(10));
        let b = b.tighten_node_limit(1_000);
        assert_eq!(b.node_limit, Some(10), "a wider limit is ignored");
    }

    #[test]
    fn expired_deadline_interrupts() {
        let past = Instant::now() - Duration::from_millis(1);
        let b = SearchBudget::unlimited().with_deadline(past);
        assert!(b.interrupted());
        assert!(b.exhausted_at(0), "deadline is polled at trial 0");
    }

    #[test]
    fn cancel_flag_interrupts_all_clones() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = SearchBudget::unlimited().with_cancel(Arc::clone(&flag));
        let c = b.clone();
        assert!(!b.interrupted() && !c.interrupted());
        flag.store(true, Ordering::Release);
        assert!(b.interrupted() && c.interrupted());
    }

    #[test]
    fn stats_absorb_and_merge_accumulate() {
        let mut m = MatchStats::default();
        m.absorb(SearchOutcome {
            truncated: false,
            nodes: 5,
        });
        m.absorb(SearchOutcome {
            truncated: true,
            nodes: 7,
        });
        assert_eq!(m.nodes, 12);
        assert_eq!(m.candidates, 2);
        assert!(m.truncated);
        let mut n = MatchStats::default();
        n.merge(m);
        assert_eq!(n, m);
    }
}
