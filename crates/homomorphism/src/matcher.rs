//! The backtracking homomorphism matcher.
//!
//! The matcher finds substitutions `π` with `π(pattern) ⊆ target`,
//! optionally extending a seed assignment and optionally subject to the
//! constraints in [`MatchConfig`] (injectivity, retraction fixpoints,
//! forbidden images, must-move variables).
//!
//! Search strategy: at each step pick the unmatched pattern atom with the
//! fewest candidate target atoms under the current partial assignment
//! (most-constrained-first). Candidates are the *exact* intersection of
//! the target's positional `(pred, arity, position, term)` postings
//! ([`AtomSet::matching_ids`]), computed via bitset pruning — so the
//! selector ranks atoms by their true candidate count and the enumeration
//! visits exactly that set. This is the classic CSP ordering used by CQ
//! evaluators; it makes the crafted instances in this workspace (grids,
//! staircases, elevator columns) match in near-linear time.
//!
//! The pre-index behaviour — selection by a per-term occurrence *estimate*
//! that ignores predicates, enumeration by scanning one term or predicate
//! index and filtering — is kept behind [`MatchConfig::naive_scan`] as the
//! differential-testing and benchmarking baseline.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::ops::ControlFlow;

use chase_atoms::{Atom, AtomId, AtomSet, IdBits, Substitution, Term, VarId};

use crate::budget::{SearchBudget, SearchOutcome};

/// Constraints layered on top of plain homomorphism search.
#[derive(Clone, Default, Debug)]
pub struct MatchConfig {
    /// Require variables to map to *variables*, injectively. Used for
    /// isomorphism search.
    pub injective_vars: bool,
    /// Retraction mode: pattern and target are the same atomset and every
    /// term in the image must be a fixpoint (binding `v ↦ u` forces
    /// `u ↦ u`).
    pub retraction: bool,
    /// Terms that must not occur as the image of any variable.
    pub forbidden_images: BTreeSet<Term>,
    /// Variables that must not be mapped to themselves.
    pub must_move: BTreeSet<VarId>,
    /// Abort the search after this many candidate trials (`None` =
    /// unbounded). A budgeted search that finds a homomorphism is still a
    /// certificate; a budgeted *miss* is inconclusive — callers that need
    /// refutations must leave this unset.
    pub node_limit: Option<usize>,
    /// Use the pre-index scan-and-filter candidate enumeration instead of
    /// the positional indexes. The enumerated homomorphism set is
    /// identical; only trial counts and speed differ. This is the
    /// baseline side of the differential property tests and the
    /// match-phase benchmark.
    pub naive_scan: bool,
}

struct Search<'a> {
    pattern: Vec<&'a Atom>,
    target: &'a AtomSet,
    cfg: &'a MatchConfig,
    budget: &'a SearchBudget,
    /// Partial assignment. Ordered so both the search trajectory and the
    /// emitted substitutions are deterministic across runs and platforms.
    bind: BTreeMap<VarId, Term>,
    used_images: HashSet<Term>,
    /// Scratch bitset for posting intersection, reused across every node
    /// of the search ([`AtomSet::matching_ids`] leaves it clean).
    scratch: IdBits,
    matched: Vec<bool>,
    n_matched: usize,
    nodes: usize,
    truncated: bool,
}

impl<'a> Search<'a> {
    fn new(
        pattern: &'a AtomSet,
        target: &'a AtomSet,
        seed: &Substitution,
        cfg: &'a MatchConfig,
        budget: &'a SearchBudget,
    ) -> Option<Self> {
        let pattern_atoms: Vec<&Atom> = pattern.iter().collect();
        let mut s = Search {
            matched: vec![false; pattern_atoms.len()],
            pattern: pattern_atoms,
            target,
            cfg,
            budget,
            bind: BTreeMap::new(),
            used_images: HashSet::new(),
            scratch: IdBits::new(),
            n_matched: 0,
            nodes: 0,
            truncated: false,
        };
        for (v, t) in seed.iter() {
            let mut trail = Vec::new();
            if !s.try_bind(v, t, &mut trail) {
                return None;
            }
        }
        Some(s)
    }

    /// Attempts to bind `v ↦ t` under the active constraints, recording
    /// every new binding in `trail`. On failure the caller must undo the
    /// trail (bindings already pushed stay recorded there).
    fn try_bind(&mut self, v: VarId, t: Term, trail: &mut Vec<VarId>) -> bool {
        if let Some(&existing) = self.bind.get(&v) {
            return existing == t;
        }
        if self.cfg.forbidden_images.contains(&t) {
            return false;
        }
        if t == Term::Var(v) {
            if self.cfg.must_move.contains(&v) {
                return false;
            }
        } else if self.cfg.injective_vars && (!t.is_var() || self.used_images.contains(&t)) {
            return false;
        }
        self.bind.insert(v, t);
        if self.cfg.injective_vars {
            self.used_images.insert(t);
        }
        trail.push(v);
        if self.cfg.retraction {
            // Image terms must be fixpoints: binding v ↦ u forces u ↦ u.
            if let Term::Var(u) = t {
                if u != v && !self.try_bind(u, Term::Var(u), trail) {
                    return false;
                }
            }
        }
        true
    }

    fn undo(&mut self, trail: &[VarId]) {
        for &v in trail {
            if let Some(t) = self.bind.remove(&v) {
                if self.cfg.injective_vars {
                    self.used_images.remove(&t);
                }
            }
        }
    }

    /// Image of a pattern term under the current partial assignment, if
    /// determined.
    fn image(&self, t: Term) -> Option<Term> {
        match t {
            Term::Const(_) => Some(t),
            Term::Var(v) => self.bind.get(&v).copied(),
        }
    }

    /// Root-level fast path for the positional-index strategy: a pattern
    /// atom whose arguments are all determined (constants, or variables
    /// bound by the seed) either has its image already in the target —
    /// matched without entering the backtracking search — or refutes the
    /// whole search conclusively. The constraint flags (`injective_vars`,
    /// `retraction`, `forbidden_images`, `must_move`) restrict only *new*
    /// variable bindings, which determined atoms never create, so the
    /// shortcut is mode-independent. Resolved atoms are hash probes, not
    /// backtracking nodes, so they do not count against `nodes` budgets.
    fn resolve_determined(&mut self) -> bool {
        for i in 0..self.pattern.len() {
            let atom = self.pattern[i];
            let mut img: Vec<Term> = Vec::with_capacity(atom.arity());
            for &t in atom.args() {
                let Some(u) = self.image(t) else {
                    img.clear();
                    break;
                };
                img.push(u);
            }
            if img.len() < atom.arity() {
                continue;
            }
            if !self.target.contains(&Atom::new(atom.pred(), img)) {
                return false;
            }
            self.matched[i] = true;
            self.n_matched += 1;
        }
        true
    }

    /// Picks the unmatched pattern atom with the fewest candidates and
    /// returns its exact candidate set.
    ///
    /// Selection and enumeration are one pass: every unmatched atom's
    /// true candidate set is computed from the positional postings
    /// ([`AtomSet::matching_ids`]) and the smallest one is memoized as
    /// the winner — the count that ranks an atom is *exactly* the set the
    /// search will try, so the most-constrained-first ordering can no
    /// longer be misled by cross-predicate term occurrences.
    fn select_indexed(&mut self) -> (usize, Vec<&'a Atom>) {
        let target = self.target;
        let mut best_idx = usize::MAX;
        let mut best_count = usize::MAX;
        // Ids for the current best atom — only valid when `best_listed`:
        // atoms with ≤ 1 determined position are counted exactly through
        // two O(1) index lookups without materialising anything, and the
        // winner's list is (re)built once at the end.
        let mut best: Vec<AtomId> = Vec::new();
        let mut best_listed = false;
        let mut tmp: Vec<AtomId> = Vec::new();
        let mut bound: Vec<(usize, Term)> = Vec::new();
        for i in 0..self.pattern.len() {
            if self.matched[i] {
                continue;
            }
            let atom = self.pattern[i];
            bound.clear();
            for (pos, &t) in atom.args().iter().enumerate() {
                if let Some(img) = self.image(t) {
                    bound.push((pos, img));
                }
            }
            let (count, listed) = if bound.len() >= 2 {
                target.matching_ids(
                    atom.pred(),
                    atom.arity(),
                    &bound,
                    &mut self.scratch,
                    &mut tmp,
                );
                (tmp.len(), true)
            } else {
                (
                    target.matching_count(atom.pred(), atom.arity(), &bound),
                    false,
                )
            };
            if best_idx == usize::MAX || count < best_count {
                best_idx = i;
                best_count = count;
                best_listed = listed;
                if listed {
                    std::mem::swap(&mut best, &mut tmp);
                }
                if count == 0 {
                    break;
                }
            }
        }
        if !best_listed {
            if best_count == 0 {
                best.clear();
            } else {
                let atom = self.pattern[best_idx];
                bound.clear();
                for (pos, &t) in atom.args().iter().enumerate() {
                    if let Some(img) = self.image(t) {
                        bound.push((pos, img));
                    }
                }
                target.matching_ids(
                    atom.pred(),
                    atom.arity(),
                    &bound,
                    &mut self.scratch,
                    &mut best,
                );
            }
        }
        let atoms = best
            .iter()
            .map(|&id| target.get(id).expect("matching_ids returned dead id"))
            .collect();
        (best_idx, atoms)
    }

    /// Pre-index candidate *estimate*: the smaller of the predicate count
    /// and any determined term's occurrence count — across all
    /// predicates, which is the historical inexactness `naive_scan`
    /// preserves for comparison.
    fn naive_estimate(&self, atom: &Atom) -> usize {
        let mut best = self.target.pred_count(atom.pred());
        for &t in atom.args() {
            if let Some(img) = self.image(t) {
                best = best.min(self.target.term_count(img));
            }
        }
        best
    }

    /// Pre-index selection: rank unmatched atoms by [`Search::naive_estimate`].
    fn select_naive(&self) -> usize {
        let mut best_idx = usize::MAX;
        let mut best_est = usize::MAX;
        for (i, atom) in self.pattern.iter().enumerate() {
            if self.matched[i] {
                continue;
            }
            let est = self.naive_estimate(atom);
            if est < best_est {
                best_est = est;
                best_idx = i;
                if est == 0 {
                    break;
                }
            }
        }
        best_idx
    }

    /// Pre-index candidate enumeration: same predicate/arity, narrowed
    /// through the most selective determined-term occurrence index, then
    /// filtered.
    fn candidates_naive(&self, atom: &Atom) -> Vec<&'a Atom> {
        let mut anchor: Option<Term> = None;
        let mut anchor_count = usize::MAX;
        for &t in atom.args() {
            if let Some(img) = self.image(t) {
                let c = self.target.term_count(img);
                if c < anchor_count {
                    anchor_count = c;
                    anchor = Some(img);
                }
            }
        }
        match anchor {
            Some(term) => self
                .target
                .with_term(term)
                .filter(|c| c.pred() == atom.pred() && c.arity() == atom.arity())
                .collect(),
            None => self
                .target
                .with_pred(atom.pred())
                .filter(|c| c.arity() == atom.arity())
                .collect(),
        }
    }

    fn try_unify(&mut self, pattern: &Atom, cand: &Atom, trail: &mut Vec<VarId>) -> bool {
        for (&pt, &tt) in pattern.args().iter().zip(cand.args()) {
            match pt {
                Term::Const(_) => {
                    if pt != tt {
                        return false;
                    }
                }
                Term::Var(v) => {
                    if !self.try_bind(v, tt, trail) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn run(
        &mut self,
        on_found: &mut dyn FnMut(Substitution) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if self.n_matched == self.pattern.len() {
            let sub = Substitution::from_pairs(self.bind.iter().map(|(&v, &t)| (v, t)));
            return on_found(sub);
        }
        let (idx, cands) = if self.cfg.naive_scan {
            let idx = self.select_naive();
            (idx, self.candidates_naive(self.pattern[idx]))
        } else {
            self.select_indexed()
        };
        let pattern_atom = self.pattern[idx];
        self.matched[idx] = true;
        self.n_matched += 1;
        for cand in cands {
            self.nodes += 1;
            // A budget-exhausted break sets `truncated`, distinguishing it
            // from a callback-requested stop (which is a conclusive hit).
            let over_cfg_limit = self.cfg.node_limit.is_some_and(|l| self.nodes > l);
            if over_cfg_limit || self.budget.exhausted_at(self.nodes) {
                self.truncated = true;
                self.matched[idx] = false;
                self.n_matched -= 1;
                return ControlFlow::Break(());
            }
            let mut trail = Vec::new();
            let ok = self.try_unify(pattern_atom, cand, &mut trail);
            if ok {
                if let ControlFlow::Break(()) = self.run(on_found) {
                    self.undo(&trail);
                    self.matched[idx] = false;
                    self.n_matched -= 1;
                    return ControlFlow::Break(());
                }
            }
            self.undo(&trail);
        }
        self.matched[idx] = false;
        self.n_matched -= 1;
        ControlFlow::Continue(())
    }
}

/// Enumerates homomorphisms `π` extending `seed` with
/// `π(pattern) ⊆ target`, subject to `cfg`, invoking `on_found` for each.
///
/// Return [`ControlFlow::Break`] from the callback to stop early. Each
/// reported substitution binds exactly the variables of `pattern` plus the
/// seed domain (plus fixpoint propagations in retraction mode).
///
/// The returned [`SearchOutcome`] says whether the search was cut short by
/// [`MatchConfig::node_limit`]: a truncated enumeration that reported no
/// hit is **inconclusive**, not a refutation. Callers that need a
/// refutation must check `truncated` (or leave the limit unset).
pub fn for_each_homomorphism(
    pattern: &AtomSet,
    target: &AtomSet,
    seed: &Substitution,
    cfg: &MatchConfig,
    on_found: impl FnMut(Substitution) -> ControlFlow<()>,
) -> SearchOutcome {
    for_each_homomorphism_budgeted(
        pattern,
        target,
        seed,
        cfg,
        &SearchBudget::default(),
        on_found,
    )
}

/// [`for_each_homomorphism`] with an explicit [`SearchBudget`] layered on
/// top of `cfg.node_limit` (whichever bound trips first wins). This is the
/// engine's entry point for cooperatively cancellable retraction searches:
/// the budget's deadline and cancel flags are polled *inside* the
/// backtracking loop.
pub fn for_each_homomorphism_budgeted(
    pattern: &AtomSet,
    target: &AtomSet,
    seed: &Substitution,
    cfg: &MatchConfig,
    budget: &SearchBudget,
    mut on_found: impl FnMut(Substitution) -> ControlFlow<()>,
) -> SearchOutcome {
    if budget.interrupted() {
        // An already-tripped budget makes even an empty search inconclusive.
        return SearchOutcome {
            truncated: true,
            nodes: 0,
        };
    }
    let Some(mut search) = Search::new(pattern, target, seed, cfg, budget) else {
        // A contradictory seed refutes conclusively without any trials.
        return SearchOutcome::default();
    };
    if !cfg.naive_scan && !search.resolve_determined() {
        // A determined atom with no image in the target refutes
        // conclusively; `nodes` keeps the lookups that got here.
        return SearchOutcome {
            truncated: false,
            nodes: search.nodes,
        };
    }
    let _ = search.run(&mut on_found);
    SearchOutcome {
        truncated: search.truncated,
        nodes: search.nodes,
    }
}

/// Finds one homomorphism from `pattern` to `target`, if any.
pub fn find_homomorphism(pattern: &AtomSet, target: &AtomSet) -> Option<Substitution> {
    find_homomorphism_extending(pattern, target, &Substitution::new())
}

/// Finds one homomorphism from `pattern` to `target` extending `seed`.
///
/// This is exactly the paper's *trigger satisfaction* check: a trigger
/// `(B → H, π)` is satisfied in `I` iff `π` extends to a homomorphism from
/// `B ∪ H` to `I`.
pub fn find_homomorphism_extending(
    pattern: &AtomSet,
    target: &AtomSet,
    seed: &Substitution,
) -> Option<Substitution> {
    let mut found = None;
    for_each_homomorphism(pattern, target, seed, &MatchConfig::default(), |sub| {
        found = Some(sub);
        ControlFlow::Break(())
    });
    found
}

/// Does `a` homomorphically map to `b` (i.e. `b ⊨ a` as existentially
/// closed conjunctions)?
pub fn maps_to(a: &AtomSet, b: &AtomSet) -> bool {
    find_homomorphism(a, b).is_some()
}

/// Collects *all* homomorphisms from `pattern` to `target`. Intended for
/// tests and small instances — the number of homomorphisms can be
/// exponential.
pub fn all_homomorphisms(pattern: &AtomSet, target: &AtomSet) -> Vec<Substitution> {
    let mut out = Vec::new();
    for_each_homomorphism(
        pattern,
        target,
        &Substitution::new(),
        &MatchConfig::default(),
        |sub| {
            out.push(sub);
            ControlFlow::Continue(())
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{ConstId, PredId};

    fn p(i: u32) -> PredId {
        PredId::from_raw(i)
    }

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn c(i: u32) -> Term {
        Term::Const(ConstId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(p(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn finds_simple_homomorphism() {
        // pattern: r(X, Y) ; target: r(a, b)
        let pattern = set(&[atom(0, &[v(0), v(1)])]);
        let target = set(&[atom(0, &[c(0), c(1)])]);
        let h = find_homomorphism(&pattern, &target).unwrap();
        assert_eq!(h.apply_term(v(0)), c(0));
        assert_eq!(h.apply_term(v(1)), c(1));
        assert!(h.is_homomorphism(&pattern, &target));
    }

    #[test]
    fn respects_shared_variables() {
        // pattern: r(X, X) does not map to r(a, b) but maps to r(a, a).
        let pattern = set(&[atom(0, &[v(0), v(0)])]);
        assert!(!maps_to(&pattern, &set(&[atom(0, &[c(0), c(1)])])));
        assert!(maps_to(&pattern, &set(&[atom(0, &[c(0), c(0)])])));
    }

    #[test]
    fn constants_must_match_exactly() {
        let pattern = set(&[atom(0, &[c(0), v(0)])]);
        assert!(maps_to(&pattern, &set(&[atom(0, &[c(0), c(1)])])));
        assert!(!maps_to(&pattern, &set(&[atom(0, &[c(1), c(1)])])));
    }

    #[test]
    fn path_into_cycle() {
        // path X0-X1-X2-X3 maps into a 2-cycle a-b.
        let pattern = set(&[
            atom(0, &[v(0), v(1)]),
            atom(0, &[v(1), v(2)]),
            atom(0, &[v(2), v(3)]),
        ]);
        let target = set(&[atom(0, &[c(0), c(1)]), atom(0, &[c(1), c(0)])]);
        assert!(maps_to(&pattern, &target));
        // And the 2-cycle does not map into the path.
        assert!(!maps_to(&target, &pattern));
    }

    #[test]
    fn seed_extension_restricts_search() {
        // r(X, Y) into {r(a,b), r(b,a)} with X seeded to b ⇒ Y must be a.
        let pattern = set(&[atom(0, &[v(0), v(1)])]);
        let target = set(&[atom(0, &[c(0), c(1)]), atom(0, &[c(1), c(0)])]);
        let seed = Substitution::from_pairs([(VarId::from_raw(0), c(1))]);
        let h = find_homomorphism_extending(&pattern, &target, &seed).unwrap();
        assert_eq!(h.apply_term(v(1)), c(0));

        let bad_seed = Substitution::from_pairs([(VarId::from_raw(0), c(7))]);
        assert!(find_homomorphism_extending(&pattern, &target, &bad_seed).is_none());
    }

    #[test]
    fn counts_all_homomorphisms() {
        // r(X, Y) into a 2-clique-with-loops has 4 homomorphisms... use
        // target {r(a,a), r(a,b), r(b,a), r(b,b)}: 4 homs.
        let pattern = set(&[atom(0, &[v(0), v(1)])]);
        let target = set(&[
            atom(0, &[c(0), c(0)]),
            atom(0, &[c(0), c(1)]),
            atom(0, &[c(1), c(0)]),
            atom(0, &[c(1), c(1)]),
        ]);
        assert_eq!(all_homomorphisms(&pattern, &target).len(), 4);
    }

    #[test]
    fn empty_pattern_has_empty_homomorphism() {
        let target = set(&[atom(0, &[c(0)])]);
        let h = find_homomorphism(&AtomSet::new(), &target).unwrap();
        assert!(h.is_empty());
    }

    #[test]
    fn injective_mode_requires_distinct_var_images() {
        // r(X, Y) injectively into r(a, a): X,Y would both map to constant a
        // — forbidden in injective mode (vars must map to vars).
        let pattern = set(&[atom(0, &[v(0), v(1)])]);
        let target = set(&[atom(0, &[c(0), c(0)])]);
        let cfg = MatchConfig {
            injective_vars: true,
            ..MatchConfig::default()
        };
        let mut found = 0;
        for_each_homomorphism(&pattern, &target, &Substitution::new(), &cfg, |_| {
            found += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(found, 0);

        // Injectively into r(Z, W): exactly one assignment.
        let target2 = set(&[atom(0, &[v(10), v(11)])]);
        let mut subs = Vec::new();
        for_each_homomorphism(&pattern, &target2, &Substitution::new(), &cfg, |s| {
            subs.push(s);
            ControlFlow::Continue(())
        });
        assert_eq!(subs.len(), 1);
    }

    #[test]
    fn retraction_mode_enforces_fixpoints() {
        // a: {r(0,1), r(1,1)}. Retractions eliminating 0 exist (0↦1);
        // the search must NOT return the non-retraction 0↦1, 1↦0.
        let a = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(1)])]);
        let cfg = MatchConfig {
            retraction: true,
            forbidden_images: [v(0)].into_iter().collect(),
            must_move: [VarId::from_raw(0)].into_iter().collect(),
            ..MatchConfig::default()
        };
        let mut results = Vec::new();
        for_each_homomorphism(&a, &a, &Substitution::new(), &cfg, |s| {
            results.push(s);
            ControlFlow::Continue(())
        });
        assert!(!results.is_empty());
        for r in &results {
            assert!(
                r.is_retraction_of(&a),
                "search returned non-retraction {r:?}"
            );
            assert_ne!(r.apply_term(v(0)), v(0));
        }
    }

    #[test]
    fn must_move_blocks_identity() {
        // a: {r(0,0)}; any endomorphism must map 0 to 0, so must_move {0}
        // yields nothing.
        let a = set(&[atom(0, &[v(0), v(0)])]);
        let cfg = MatchConfig {
            retraction: true,
            must_move: [VarId::from_raw(0)].into_iter().collect(),
            ..MatchConfig::default()
        };
        let mut found = false;
        for_each_homomorphism(&a, &a, &Substitution::new(), &cfg, |_| {
            found = true;
            ControlFlow::Break(())
        });
        assert!(!found);
    }

    #[test]
    fn exhaustive_miss_is_not_truncated() {
        // r(X, X) does not map to r(a, b); with no limit the miss is a
        // conclusive refutation.
        let pattern = set(&[atom(0, &[v(0), v(0)])]);
        let target = set(&[atom(0, &[c(0), c(1)])]);
        let out = for_each_homomorphism(
            &pattern,
            &target,
            &Substitution::new(),
            &MatchConfig::default(),
            |_| ControlFlow::Continue(()),
        );
        assert!(!out.truncated);
        assert!(out.nodes >= 1);
    }

    #[test]
    fn budgeted_miss_is_truncated_not_refuted() {
        // A large pattern with a 1-node budget: the search cannot finish,
        // and must say so instead of reporting a refutation.
        let n = 6u32;
        let idx = |i: u32, j: u32| v(i * n + j);
        let mut atoms = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i + 1 < n {
                    atoms.push(atom(0, &[idx(i, j), idx(i + 1, j)]));
                }
                if j + 1 < n {
                    atoms.push(atom(1, &[idx(i, j), idx(i, j + 1)]));
                }
            }
        }
        let grid = set(&atoms);
        let cfg = MatchConfig {
            node_limit: Some(1),
            ..MatchConfig::default()
        };
        let mut found = false;
        let out = for_each_homomorphism(&grid, &grid, &Substitution::new(), &cfg, |_| {
            found = true;
            ControlFlow::Break(())
        });
        assert!(!found);
        assert!(out.truncated, "a budgeted miss must be inconclusive");
    }

    #[test]
    fn callback_break_is_not_truncated() {
        // Found-and-stopped must be distinguishable from budget-exhausted.
        let pattern = set(&[atom(0, &[v(0), v(1)])]);
        let target = set(&[atom(0, &[c(0), c(1)])]);
        let out = for_each_homomorphism(
            &pattern,
            &target,
            &Substitution::new(),
            &MatchConfig::default(),
            |_| ControlFlow::Break(()),
        );
        assert!(!out.truncated);
    }

    #[test]
    fn budget_deadline_truncates_search() {
        use crate::budget::SearchBudget;
        let pattern = set(&[atom(0, &[v(0), v(1)])]);
        let target = set(&[atom(0, &[c(0), c(1)])]);
        let expired = SearchBudget::unlimited()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let mut found = false;
        let out = for_each_homomorphism_budgeted(
            &pattern,
            &target,
            &Substitution::new(),
            &MatchConfig::default(),
            &expired,
            |_| {
                found = true;
                ControlFlow::Break(())
            },
        );
        assert!(!found);
        assert!(out.truncated);
    }

    #[test]
    fn grid_pattern_matches_itself_quickly() {
        // 8×8 grid pattern onto itself — a smoke test that the
        // most-constrained-first ordering keeps this tractable.
        let n = 8u32;
        let idx = |i: u32, j: u32| v(i * n + j);
        let mut atoms = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i + 1 < n {
                    atoms.push(atom(0, &[idx(i, j), idx(i + 1, j)]));
                }
                if j + 1 < n {
                    atoms.push(atom(1, &[idx(i, j), idx(i, j + 1)]));
                }
            }
        }
        let grid = set(&atoms);
        assert!(maps_to(&grid, &grid));
    }
}
