//! B2 — core computation: folding redundancy-laden instances (the inner
//! loop of the core chase).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use chase_atoms::{Atom, AtomSet, Term, Vocabulary};
use chase_homomorphism::{core_of, is_core};
use chase_kbs::Staircase;

/// A path of length `n` feeding into a loop — folds down to the loop.
fn path_into_loop(vocab: &mut Vocabulary, n: usize) -> AtomSet {
    let r = vocab.pred("r", 2);
    let mut vars: Vec<Term> = Vec::new();
    for _ in 0..=n {
        vars.push(Term::Var(vocab.fresh_var()));
    }
    let mut set = AtomSet::new();
    for i in 0..n {
        set.insert(Atom::new(r, vec![vars[i], vars[i + 1]]));
    }
    set.insert(Atom::new(r, vec![vars[n], vars[n]]));
    set
}

fn bench_fold_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/path-into-loop");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [4usize, 8, 16] {
        let mut vocab = Vocabulary::new();
        let set = path_into_loop(&mut vocab, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, s| {
            b.iter(|| core_of(s).core.len())
        });
    }
    group.finish();
}

fn bench_staircase_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/staircase-step");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for k in [2u32, 4, 6] {
        let mut s = Staircase::new();
        let step = s.step_rect(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &step, |b, st| {
            b.iter(|| core_of(st).core.len())
        });
    }
    group.finish();
}

fn bench_is_core_on_cores(c: &mut Criterion) {
    // The expensive *negative* case: proving nothing folds.
    let mut group = c.benchmark_group("core/is-core-on-core");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for k in [2u32, 4, 6] {
        let mut s = Staircase::new();
        let col = s.column(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &col, |b, cset| {
            b.iter(|| is_core(cset))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fold_paths,
    bench_staircase_steps,
    bench_is_core_on_cores
);
criterion_main!(benches);
