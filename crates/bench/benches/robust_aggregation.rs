//! B5 — robust aggregation overhead: building the robust sequence
//! (Definition 15) over recorded core chases, compared with the natural
//! aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use chase_engine::aggregation::natural_aggregation;
use chase_engine::robust::RobustSequence;
use chase_kbs::Staircase;

fn bench_robust_sequence(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust/build-sequence");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for steps in [2u32, 4, 6] {
        let mut s = Staircase::new();
        let d = s.scripted_core_chase(steps);
        group.bench_with_input(BenchmarkId::from_parameter(steps), &d, |b, d| {
            b.iter(|| RobustSequence::build(d).len())
        });
    }
    group.finish();
}

fn bench_natural_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust/natural-aggregation");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for steps in [2u32, 4, 6] {
        let mut s = Staircase::new();
        let d = s.scripted_core_chase(steps);
        group.bench_with_input(BenchmarkId::from_parameter(steps), &d, |b, d| {
            b.iter(|| natural_aggregation(d).len())
        });
    }
    group.finish();
}

fn bench_aggregation_prefix(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust/aggregation-prefix");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let mut s = Staircase::new();
    let d = s.scripted_core_chase(6);
    let rs = RobustSequence::build(&d);
    for margin in [5usize, 15] {
        group.bench_with_input(BenchmarkId::from_parameter(margin), &rs, |b, rs| {
            b.iter(|| rs.aggregation_prefix(margin).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_robust_sequence,
    bench_natural_aggregation,
    bench_aggregation_prefix
);
criterion_main!(benches);
