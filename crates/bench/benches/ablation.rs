//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * **core interval** — how often the core chase retracts to a core
//!   (Definition 1 allows any finite spacing). Interval 1 keeps instances
//!   minimal but pays a core computation per application; larger
//!   intervals trade instance size for fewer retractions.
//! * **semi-naive trigger discovery** — the monotonic variants only scan
//!   the delta; the Frugal variant on datalog is an exact full-rescan
//!   baseline (it never folds without fresh nulls), isolating the
//!   discovery strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use chase_core::KnowledgeBase;
use chase_engine::{ChaseConfig, ChaseVariant, RecordLevel, SchedulerKind};

fn bench_core_interval(c: &mut Criterion) {
    let kb = KnowledgeBase::staircase();
    let mut group = c.benchmark_group("ablation/core-interval");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for interval in [1usize, 4, 16] {
        let cfg = ChaseConfig::variant(ChaseVariant::Core)
            .with_scheduler(SchedulerKind::DatalogFirst)
            .with_core_interval(interval)
            .with_max_applications(25)
            .with_record(RecordLevel::FinalOnly);
        group.bench_with_input(BenchmarkId::from_parameter(interval), &cfg, |b, cfg| {
            b.iter(|| kb.chase(cfg).stats.retractions)
        });
    }
    group.finish();
}

fn bench_semi_naive_vs_full_rescan(c: &mut Criterion) {
    // Datalog closure of a long chain: Restricted uses delta discovery,
    // Frugal re-scans every round (and never folds on datalog), so the
    // difference isolates the discovery strategy.
    let mut facts = String::new();
    for i in 0..14 {
        facts.push_str(&format!("r(k{i}, k{}).\n", i + 1));
    }
    let kb = KnowledgeBase::from_text(&format!(
        "{facts}T: r(X, Y), r(Y, Z) -> r(X, Z)."
    ))
    .expect("kb parses");
    let mut group = c.benchmark_group("ablation/trigger-discovery");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for (name, variant) in [
        ("semi-naive", ChaseVariant::Restricted),
        ("full-rescan", ChaseVariant::Frugal),
    ] {
        let cfg = ChaseConfig::variant(variant).with_record(RecordLevel::FinalOnly);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let res = kb.chase(cfg);
                assert!(res.outcome.terminated());
                res.final_instance.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_core_interval, bench_semi_naive_vs_full_rescan);
criterion_main!(benches);
