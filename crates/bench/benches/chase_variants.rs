//! B3 — chase variant throughput on the paper's KBs: applications per
//! second of the oblivious / semi-oblivious / restricted / core chases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use chase_core::KnowledgeBase;
use chase_engine::{ChaseConfig, ChaseVariant, RecordLevel, SchedulerKind};

fn bench_variants(c: &mut Criterion) {
    let cases = [
        ("staircase", KnowledgeBase::staircase(), 30usize),
        ("elevator", KnowledgeBase::elevator(), 30usize),
        (
            "datalog",
            KnowledgeBase::from_text(
                "r(a,b). r(b,c). r(c,d). r(d,e). T: r(X,Y), r(Y,Z) -> r(X,Z).",
            )
            .unwrap(),
            1_000,
        ),
    ];
    for (name, kb, budget) in cases {
        let mut group = c.benchmark_group(format!("chase/{name}"));
        group.warm_up_time(Duration::from_millis(300));
        group.measurement_time(Duration::from_secs(3));
        group.sample_size(10);
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
            ChaseVariant::Core,
        ] {
            let cfg = ChaseConfig::variant(variant)
                .with_scheduler(SchedulerKind::DatalogFirst)
                .with_max_applications(budget)
                .with_max_atoms(5_000)
                .with_record(RecordLevel::FinalOnly);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{variant:?}")),
                &cfg,
                |b, cfg| b.iter(|| kb.chase(cfg).stats.applications),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
