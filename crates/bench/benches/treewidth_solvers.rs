//! B4 — treewidth solvers: heuristics vs exact branch-and-bound on
//! grids, paths and the paper's structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use chase_atoms::Vocabulary;
use chase_kbs::grids::labeled_grid;
use chase_kbs::{Elevator, Staircase};
use chase_treewidth::{
    exact_treewidth, min_degree_decomposition, min_fill_decomposition, treewidth_bounds,
};

fn bench_heuristics_on_grids(c: &mut Criterion) {
    let mut group = c.benchmark_group("tw/heuristics-grid");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [4usize, 8, 12] {
        let mut vocab = Vocabulary::new();
        let (grid, _) = labeled_grid(&mut vocab, n);
        group.bench_with_input(BenchmarkId::new("min-degree", n), &grid, |b, g| {
            b.iter(|| min_degree_decomposition(g).width())
        });
        group.bench_with_input(BenchmarkId::new("min-fill", n), &grid, |b, g| {
            b.iter(|| min_fill_decomposition(g).width())
        });
    }
    group.finish();
}

fn bench_exact_on_grids(c: &mut Criterion) {
    let mut group = c.benchmark_group("tw/exact-grid");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for n in [3usize, 4] {
        let mut vocab = Vocabulary::new();
        let (grid, _) = labeled_grid(&mut vocab, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &grid, |b, g| {
            b.iter(|| exact_treewidth(g))
        });
    }
    group.finish();
}

fn bench_bounds_on_paper_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("tw/paper-structures");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let mut s = Staircase::new();
    let step = s.step_rect(5);
    group.bench_with_input(BenchmarkId::new("staircase-step", 5), &step, |b, st| {
        b.iter(|| treewidth_bounds(st))
    });
    let mut e = Elevator::new();
    let cabin = e.cabin(4);
    group.bench_with_input(BenchmarkId::new("elevator-cabin", 4), &cabin, |b, cb| {
        b.iter(|| treewidth_bounds(cb))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_heuristics_on_grids,
    bench_exact_on_grids,
    bench_bounds_on_paper_structures
);
criterion_main!(benches);
