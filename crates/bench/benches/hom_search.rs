//! B1 — homomorphism search scaling: pattern size and target size sweeps
//! on grids (worst-case-ish structure) and random instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use chase_atoms::Vocabulary;
use chase_homomorphism::{find_homomorphism, maps_to};
use chase_kbs::grids::labeled_grid;
use chase_kbs::random::{random_instance, InstanceConfig};

fn bench_grid_self_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom/grid-self-match");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [4usize, 6, 8] {
        let mut vocab = Vocabulary::new();
        let (grid, _) = labeled_grid(&mut vocab, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &grid, |b, g| {
            b.iter(|| find_homomorphism(g, g).is_some())
        });
    }
    group.finish();
}

fn bench_path_into_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom/path-into-grid");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let mut vocab = Vocabulary::new();
    let (grid, lab) = labeled_grid(&mut vocab, 8);
    for len in [4usize, 8, 12] {
        // An h-path pattern of the given length.
        let h = vocab.lookup_pred("h").unwrap();
        let mut pattern = chase_atoms::AtomSet::new();
        for i in 0..len.min(7) {
            pattern.insert(chase_atoms::Atom::new(
                h,
                vec![lab.terms[i][0], lab.terms[i + 1][0]],
            ));
        }
        group.bench_with_input(BenchmarkId::from_parameter(len), &pattern, |b, p| {
            b.iter(|| maps_to(p, &grid))
        });
    }
    group.finish();
}

fn bench_random_instance_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom/random");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for atoms in [50usize, 200, 800] {
        let mut vocab = Vocabulary::new();
        let cfg = InstanceConfig {
            atoms,
            terms: atoms / 3,
            ..InstanceConfig::default()
        };
        let target = random_instance(&mut vocab, &cfg, 7);
        let pattern = random_instance(
            &mut vocab,
            &InstanceConfig {
                atoms: 4,
                terms: 5,
                const_percent: 0,
                ..InstanceConfig::default()
            },
            8,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(atoms),
            &(pattern, target),
            |b, (p, t)| b.iter(|| maps_to(p, t)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_grid_self_match,
    bench_path_into_grid,
    bench_random_instance_match
);
criterion_main!(benches);
