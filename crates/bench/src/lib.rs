//! # chase-bench
//!
//! Experiment harness shared by the `e1`–`e6` binaries (one per paper
//! figure/table, see `DESIGN.md` §4) and the Criterion benchmarks.
//!
//! Each experiment prints a human-readable report to stdout and appends a
//! machine-readable JSON line per claim to `results/<experiment>.jsonl`
//! (relative to the workspace root), which `EXPERIMENTS.md` summarizes.

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use treechase_service::json::Json;

/// One checked claim of an experiment.
#[derive(Clone, Debug)]
pub struct Claim {
    /// Experiment id (`e1` … `e6`).
    pub experiment: String,
    /// Short claim id (stable across runs).
    pub claim: String,
    /// What the paper asserts.
    pub paper: String,
    /// What we measured.
    pub measured: String,
    /// Did the measurement confirm the claim?
    pub ok: bool,
}

impl Claim {
    /// Serializes the claim as one JSONL record.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("experiment", Json::str(&self.experiment)),
            ("claim", Json::str(&self.claim)),
            ("paper", Json::str(&self.paper)),
            ("measured", Json::str(&self.measured)),
            ("ok", Json::Bool(self.ok)),
        ])
    }
}

/// Collects claims, pretty-prints them, and persists a JSONL record.
pub struct Report {
    experiment: &'static str,
    claims: Vec<Claim>,
}

impl Report {
    /// Starts a report for the given experiment id.
    pub fn new(experiment: &'static str) -> Self {
        println!("== {experiment} ==");
        Report {
            experiment,
            claims: Vec::new(),
        }
    }

    /// Records and prints one claim.
    pub fn claim(&mut self, claim: &str, paper: impl Display, measured: impl Display, ok: bool) {
        let c = Claim {
            experiment: self.experiment.to_string(),
            claim: claim.to_string(),
            paper: paper.to_string(),
            measured: measured.to_string(),
            ok,
        };
        println!(
            "  [{}] {:<38} paper: {:<34} measured: {}",
            if ok { "ok" } else { "!!" },
            c.claim,
            c.paper,
            c.measured
        );
        self.claims.push(c);
    }

    /// Prints a free-form data row (kept out of the JSONL).
    pub fn row(&self, text: impl Display) {
        println!("    {text}");
    }

    /// Writes the JSONL file and returns whether all claims held.
    pub fn finish(self) -> bool {
        let all_ok = self.claims.iter().all(|c| c.ok);
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.jsonl", self.experiment));
            if let Ok(mut f) = fs::File::create(&path) {
                for c in &self.claims {
                    let _ = writeln!(f, "{}", c.to_json());
                }
            }
        }
        println!(
            "== {}: {}/{} claims confirmed ==\n",
            self.experiment,
            self.claims.iter().filter(|c| c.ok).count(),
            self.claims.len()
        );
        all_ok
    }
}

/// The `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = …/crates/bench
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.join("results")
}

/// Exit with a conventional status after finishing a report.
pub fn exit_with(ok: bool) -> ! {
    std::process::exit(if ok { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_tracks_ok_status() {
        let mut r = Report::new("e0-test");
        r.claim("always", "x", "x", true);
        r.claim("broken", "x", "y", false);
        assert!(!r.finish());
        let path = results_dir().join("e0-test.jsonl");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        let _ = std::fs::remove_file(path);
    }
}
