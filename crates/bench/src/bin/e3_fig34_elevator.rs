//! **E3 — Figures 3–4 / Section 7**: the inflating elevator.
//!
//! Regenerates and checks:
//!
//! 1. Proposition 6 direction — the restricted chase output and `I^v`
//!    prefixes map into each other (the chase builds `I^v` up to
//!    homomorphism).
//! 2. Proposition 7 — the spine `I^v*` is a sub-model of `I^v` with
//!    treewidth 1 (certified decomposition + modelhood of the prefix under
//!    all bottom triggers).
//! 3. Proposition 8.1/8.2 — the cabins `I^v_n` are cores containing
//!    `(⌊n/3⌋+1)²` grids, so `tw(I^v_n) ≥ ⌊n/3⌋ + 1`.
//! 4. Proposition 8.4 / Corollary 1 shape — the *actual* core chase's
//!    instances develop certified grids of growing side (injective
//!    Definition 5 search), so no core chase sequence is treewidth
//!    bounded. The long trajectory runs through the `treechase-service`
//!    job runner in resumable budget slices: each slice checkpoints at
//!    exhaustion and the next resumes from it, so the probe scales to
//!    arbitrarily deep prefixes without one monolithic run.

use chase_bench::{exit_with, Report};
use chase_core::KnowledgeBase;
use chase_engine::{run_chase, ChaseConfig, ChaseVariant, SchedulerKind};
use chase_homomorphism::{is_core, maps_to};
use chase_kbs::grids::best_grid_lower_bound;
use chase_kbs::queries::elevator_queries;
use chase_kbs::Elevator;
use chase_treewidth::{contains_grid, treewidth, treewidth_bounds};
use treechase_service::{JobSpec, Service};

fn main() {
    let mut report = Report::new("e3-fig34-elevator");

    // (1) Restricted chase ≈ I^v.
    let mut e = Elevator::new();
    let mut vocab = e.vocab.clone();
    let cfg = ChaseConfig::variant(ChaseVariant::Restricted)
        .with_scheduler(SchedulerKind::DatalogFirst)
        .with_max_applications(300);
    let restricted = run_chase(&mut vocab, &e.facts, &e.rules, &cfg);
    let small = e.universal_prefix(1);
    let big = e.universal_prefix(12);
    report.claim(
        "prop6/prefix-into-chase",
        "I^v columns ≤1 appear in the restricted chase",
        maps_to(&small, &restricted.final_instance),
        maps_to(&small, &restricted.final_instance),
    );
    // The chase→I^v direction is a single large-pattern homomorphism
    // (NP-hard in pattern size); check it on a 140-application element —
    // the derivation is monotonic, so that element subsumes all earlier
    // ones.
    let mut vocab2 = e.vocab.clone();
    let mid = run_chase(
        &mut vocab2,
        &e.facts,
        &e.rules,
        &ChaseConfig::variant(ChaseVariant::Restricted)
            .with_scheduler(SchedulerKind::DatalogFirst)
            .with_max_applications(140),
    );
    let into_iv = maps_to(&mid.final_instance, &big);
    report.claim(
        "prop6/chase-into-Iv",
        "the restricted chase stays within I^v",
        format!("{} atoms embed: {into_iv}", mid.final_instance.len()),
        into_iv,
    );

    // (2) Spine: universal model of treewidth 1.
    let spine = e.spine_prefix(10);
    report.claim(
        "prop7/spine-tw-1",
        "tw(I^v*) = 1",
        treewidth(&spine),
        treewidth(&spine) == 1,
    );
    report.claim(
        "prop7/spine-inside-Iv",
        "I^v* ⊆ I^v (identity hom ⇒ universality)",
        spine.is_subset_of(&big),
        spine.is_subset_of(&big),
    );
    report.claim(
        "prop7/facts-map-into-spine",
        "F_v maps into I^v*",
        maps_to(&e.facts, &spine),
        maps_to(&e.facts, &spine),
    );

    // (3) Cabins are cores with growing grid lower bounds. The core
    // check is a full refutation search (no budget possible), so it runs
    // on the small cabins only; the grid/treewidth claims scale further.
    for n in [2u32, 3, 4, 6] {
        let cabin = e.cabin(n);
        let lab = e.cabin_grid_labeling(n);
        let side = n / 3 + 1;
        let has_grid = contains_grid(&cabin, &lab);
        let core = n > 3 || is_core(&cabin);
        let b = treewidth_bounds(&cabin);
        report.row(format!(
            "cabin n={n}: {} atoms, grid {side}×{side}: {has_grid}, core: {core}, tw ∈ [{}, {}]",
            cabin.len(),
            b.lower,
            b.upper
        ));
        if n <= 3 {
            report.claim(
                &format!("prop8.1/cabin-{n}-core"),
                "I^v_n is a core",
                core,
                core,
            );
        }
        report.claim(
            &format!("prop8.2/cabin-{n}-grid"),
            format!("contains {side}×{side} grid ⇒ tw ≥ {side}"),
            has_grid,
            has_grid && b.upper as u32 >= side,
        );
    }

    // (4) Core chase treewidth grows without bound. The chase runs as
    // service jobs in three 40-application slices chained by
    // checkpoints; the certified grid side is probed at every slice
    // boundary, so the trajectory stays resumable however deep it goes.
    let svc = Service::start(1);
    // The cabin-embedding check below needs a prefix of depth ≥ 70, so
    // the first slice runs 80 applications; resumed slices extend the
    // trajectory 20 applications at a time to the original 120.
    let first_budget = 80usize;
    let resume_budget = 20usize;
    let slices = 3usize;
    let slice_cfg = ChaseConfig::variant(ChaseVariant::Core)
        .with_scheduler(SchedulerKind::DatalogFirst)
        .with_max_applications(first_budget);
    let mut spec = JobSpec::from_kb(
        "e3-core",
        KnowledgeBase::new(e.vocab.clone(), e.facts.clone(), e.rules.clone()),
        slice_cfg,
    );
    let hp0 = e.vocab.lookup_pred("h").expect("h interned");
    let vp0 = e.vocab.lookup_pred("v").expect("v interned");
    let g0 = best_grid_lower_bound(&e.facts, 4, hp0, vp0);
    // (applications, certified side, search-truncated): a truncated entry
    // means larger grids were *not refuted*, only not found in budget.
    let mut grid_track: Vec<(usize, usize, bool)> = vec![(0, g0.side, g0.truncated)];
    let mut first_slice_instance = None;
    let mut last_outcome = None;
    let mut last_stats = None;
    for s in 0..slices {
        // Predicate ids must come from this slice's vocabulary: resumed
        // slices re-intern symbols when the checkpoint text reparses.
        let hp = spec.kb.vocab.lookup_pred("h").expect("h interned");
        let vp = spec.kb.vocab.lookup_pred("v").expect("v interned");
        let res = svc
            .take_result(svc.submit(spec.clone()))
            .expect("slice result");
        let g = best_grid_lower_bound(&res.final_instance, 4, hp, vp);
        grid_track.push((res.stats.applications, g.side, g.truncated));
        if s == 0 {
            first_slice_instance = Some(res.final_instance.clone());
        }
        last_outcome = Some(res.outcome);
        last_stats = Some(res.stats);
        if s + 1 < slices {
            let ck = res.checkpoint.expect("slice is resumable");
            spec = ck.into_spec().expect("checkpoint reparses");
            spec.config.max_applications = resume_budget;
        }
    }
    let core_outcome = last_outcome.expect("at least one slice ran");
    report.claim(
        "cor1/core-chase-diverges",
        "the core chase does not terminate",
        format!("{core_outcome:?} after {slices} resumed slices"),
        !core_outcome.terminated(),
    );
    report.row(format!(
        "certified grid side at slice boundaries (applications, side, inconclusive): {grid_track:?}"
    ));
    let cs = last_stats.expect("at least one slice ran");
    report.row(format!(
        "core-phase counters (final slice, accumulated): {} core steps in {}us, {} match nodes over {} fold candidates, {} truncations",
        cs.core_steps, cs.core_time_us, cs.match_nodes, cs.fold_candidates, cs.core_truncations
    ));
    // The paper's claim is asymptotic (treewidth grows beyond every
    // bound); at this budget we certify the *onset* of that growth: the
    // certified grid side strictly increases along the prefix, so the
    // instances left treewidth 1 behind and keep climbing (each +1 in
    // side needs a quadratically larger cabin, Prop. 8.3's f grows
    // slowly).
    let first = grid_track.first().map_or(0, |&(_, g, _)| g);
    let max_side = grid_track.iter().map(|&(_, g, _)| g).max().unwrap_or(0);
    report.claim(
        "cor1/grid-growth-onset",
        "certified grid side strictly grows along the core chase",
        format!("{first} → {max_side}"),
        max_side > first && max_side >= 2,
    );
    // Prop 8.3 mechanism: the cabin I^v_1 embeds injectively into the
    // chase (larger cabins need deeper prefixes than this budget). The
    // probe uses the first slice's instance, which still shares the
    // elevator's original vocabulary.
    let cabin1 = e.cabin(1);
    let first_instance = first_slice_instance.expect("first slice ran");
    let emb_cfg = chase_homomorphism::MatchConfig {
        injective_vars: true,
        node_limit: Some(3_000_000),
        ..chase_homomorphism::MatchConfig::default()
    };
    let mut embeds = false;
    let emb_outcome = chase_homomorphism::for_each_homomorphism(
        &cabin1,
        &first_instance,
        &chase_atoms::Substitution::new(),
        &emb_cfg,
        |_| {
            embeds = true;
            std::ops::ControlFlow::Break(())
        },
    );
    // A budgeted miss is *inconclusive*, not a refutation — the old code
    // logged it as `false`.
    let emb_measured = if embeds {
        "embeds".to_string()
    } else if emb_outcome.truncated {
        format!(
            "inconclusive (node budget truncated after {} nodes)",
            emb_outcome.nodes
        )
    } else {
        "refuted".to_string()
    };
    report.claim(
        "prop8.3/cabin-1-embeds",
        "I^v_1 is isomorphic to a subset of a core-chase element",
        emb_measured,
        embeds,
    );

    // Ground-truth queries against the two universal models.
    let mut vq = e.vocab.clone();
    let mut all_agree = true;
    for gt in elevator_queries(&mut vq) {
        let in_iv = maps_to(&gt.query, &big);
        let in_spine = maps_to(&gt.query, &spine);
        let ok = in_iv == gt.entailed && in_spine == gt.entailed;
        all_agree &= ok;
        report.row(format!(
            "query {:<18} entailed={} I^v={} I^v*={}",
            gt.name, gt.entailed, in_iv, in_spine
        ));
    }
    report.claim(
        "prop7/universal-models-agree",
        "I^v and I^v* satisfy the same CQs",
        all_agree,
        all_agree,
    );

    exit_with(report.finish());
}
