//! **E3 — Figures 3–4 / Section 7**: the inflating elevator.
//!
//! Regenerates and checks:
//!
//! 1. Proposition 6 direction — the restricted chase output and `I^v`
//!    prefixes map into each other (the chase builds `I^v` up to
//!    homomorphism).
//! 2. Proposition 7 — the spine `I^v*` is a sub-model of `I^v` with
//!    treewidth 1 (certified decomposition + modelhood of the prefix under
//!    all bottom triggers).
//! 3. Proposition 8.1/8.2 — the cabins `I^v_n` are cores containing
//!    `(⌊n/3⌋+1)²` grids, so `tw(I^v_n) ≥ ⌊n/3⌋ + 1`.
//! 4. Proposition 8.4 / Corollary 1 shape — the *actual* core chase's
//!    instances develop certified grids of growing side (injective
//!    Definition 5 search), so no core chase sequence is treewidth
//!    bounded.

use chase_bench::{exit_with, Report};
use chase_engine::{run_chase, ChaseConfig, ChaseVariant, SchedulerKind};
use chase_homomorphism::{is_core, maps_to};
use chase_kbs::grids::best_grid_lower_bound;
use chase_kbs::queries::elevator_queries;
use chase_kbs::Elevator;
use chase_treewidth::{contains_grid, treewidth, treewidth_bounds};

fn main() {
    let mut report = Report::new("e3-fig34-elevator");

    // (1) Restricted chase ≈ I^v.
    let mut e = Elevator::new();
    let mut vocab = e.vocab.clone();
    let cfg = ChaseConfig::variant(ChaseVariant::Restricted)
        .with_scheduler(SchedulerKind::DatalogFirst)
        .with_max_applications(300);
    let restricted = run_chase(&mut vocab, &e.facts, &e.rules, &cfg);
    let small = e.universal_prefix(1);
    let big = e.universal_prefix(12);
    report.claim(
        "prop6/prefix-into-chase",
        "I^v columns ≤1 appear in the restricted chase",
        maps_to(&small, &restricted.final_instance),
        maps_to(&small, &restricted.final_instance),
    );
    // The chase→I^v direction is a single large-pattern homomorphism
    // (NP-hard in pattern size); check it on a 140-application element —
    // the derivation is monotonic, so that element subsumes all earlier
    // ones.
    let mut vocab2 = e.vocab.clone();
    let mid = run_chase(
        &mut vocab2,
        &e.facts,
        &e.rules,
        &ChaseConfig::variant(ChaseVariant::Restricted)
            .with_scheduler(SchedulerKind::DatalogFirst)
            .with_max_applications(140),
    );
    let into_iv = maps_to(&mid.final_instance, &big);
    report.claim(
        "prop6/chase-into-Iv",
        "the restricted chase stays within I^v",
        format!("{} atoms embed: {into_iv}", mid.final_instance.len()),
        into_iv,
    );

    // (2) Spine: universal model of treewidth 1.
    let spine = e.spine_prefix(10);
    report.claim(
        "prop7/spine-tw-1",
        "tw(I^v*) = 1",
        treewidth(&spine),
        treewidth(&spine) == 1,
    );
    report.claim(
        "prop7/spine-inside-Iv",
        "I^v* ⊆ I^v (identity hom ⇒ universality)",
        spine.is_subset_of(&big),
        spine.is_subset_of(&big),
    );
    report.claim(
        "prop7/facts-map-into-spine",
        "F_v maps into I^v*",
        maps_to(&e.facts, &spine),
        maps_to(&e.facts, &spine),
    );

    // (3) Cabins are cores with growing grid lower bounds. The core
    // check is a full refutation search (no budget possible), so it runs
    // on the small cabins only; the grid/treewidth claims scale further.
    for n in [2u32, 3, 4, 6] {
        let cabin = e.cabin(n);
        let lab = e.cabin_grid_labeling(n);
        let side = n / 3 + 1;
        let has_grid = contains_grid(&cabin, &lab);
        let core = n > 3 || is_core(&cabin);
        let b = treewidth_bounds(&cabin);
        report.row(format!(
            "cabin n={n}: {} atoms, grid {side}×{side}: {has_grid}, core: {core}, tw ∈ [{}, {}]",
            cabin.len(),
            b.lower,
            b.upper
        ));
        if n <= 3 {
            report.claim(
                &format!("prop8.1/cabin-{n}-core"),
                "I^v_n is a core",
                core,
                core,
            );
        }
        report.claim(
            &format!("prop8.2/cabin-{n}-grid"),
            format!("contains {side}×{side} grid ⇒ tw ≥ {side}"),
            has_grid,
            has_grid && b.upper as u32 >= side,
        );
    }

    // (4) Core chase treewidth grows without bound.
    let mut vocab = e.vocab.clone();
    let cfg = ChaseConfig::variant(ChaseVariant::Core)
        .with_scheduler(SchedulerKind::DatalogFirst)
        .with_max_applications(120);
    let core_run = run_chase(&mut vocab, &e.facts, &e.rules, &cfg);
    report.claim(
        "cor1/core-chase-diverges",
        "the core chase does not terminate",
        format!("{:?}", core_run.outcome),
        !core_run.outcome.terminated(),
    );
    let d = core_run.derivation.expect("full record");
    let hp = e.vocab.lookup_pred("h").expect("h interned");
    let vp = e.vocab.lookup_pred("v").expect("v interned");
    let mut grid_track: Vec<(usize, usize)> = Vec::new();
    let stride = (d.len() / 8).max(1);
    for i in (0..d.len()).step_by(stride) {
        let g = best_grid_lower_bound(d.instance(i), 4, hp, vp);
        grid_track.push((i, g));
    }
    report.row(format!(
        "certified grid side along the core chase: {grid_track:?}"
    ));
    // The paper's claim is asymptotic (treewidth grows beyond every
    // bound); at this budget we certify the *onset* of that growth: the
    // certified grid side strictly increases along the prefix, so the
    // instances left treewidth 1 behind and keep climbing (each +1 in
    // side needs a quadratically larger cabin, Prop. 8.3's f grows
    // slowly).
    let first = grid_track.first().map(|&(_, g)| g).unwrap_or(0);
    let max_side = grid_track.iter().map(|&(_, g)| g).max().unwrap_or(0);
    report.claim(
        "cor1/grid-growth-onset",
        "certified grid side strictly grows along the core chase",
        format!("{first} → {max_side}"),
        max_side > first && max_side >= 2,
    );
    // Prop 8.3 mechanism: the cabin I^v_1 embeds injectively into the
    // chase (larger cabins need deeper prefixes than this budget).
    let cabin1 = e.cabin(1);
    let emb_cfg = chase_homomorphism::MatchConfig {
        injective_vars: true,
        node_limit: Some(3_000_000),
        ..chase_homomorphism::MatchConfig::default()
    };
    let mut embeds = false;
    chase_homomorphism::for_each_homomorphism(
        &cabin1,
        d.last_instance(),
        &chase_atoms::Substitution::new(),
        &emb_cfg,
        |_| {
            embeds = true;
            std::ops::ControlFlow::Break(())
        },
    );
    report.claim(
        "prop8.3/cabin-1-embeds",
        "I^v_1 is isomorphic to a subset of a core-chase element",
        embeds,
        embeds,
    );

    // Ground-truth queries against the two universal models.
    let mut vq = e.vocab.clone();
    let mut all_agree = true;
    for gt in elevator_queries(&mut vq) {
        let in_iv = maps_to(&gt.query, &big);
        let in_spine = maps_to(&gt.query, &spine);
        let ok = in_iv == gt.entailed && in_spine == gt.entailed;
        all_agree &= ok;
        report.row(format!(
            "query {:<18} entailed={} I^v={} I^v*={}",
            gt.name, gt.entailed, in_iv, in_spine
        ));
    }
    report.claim(
        "prop7/universal-models-agree",
        "I^v and I^v* satisfy the same CQs",
        all_agree,
        all_agree,
    );

    exit_with(report.finish());
}
