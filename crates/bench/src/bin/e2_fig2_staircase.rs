//! **E2 — Figure 2 / Section 6**: the steepening staircase.
//!
//! Regenerates and checks, on growing prefixes:
//!
//! 1. Proposition 3 — the canonical restricted chase builds `I^h`
//!    (natural aggregation = `P_k`).
//! 2. Proposition 4 — the canonical core chase is a valid derivation,
//!    every element a subset of some `S_k`, uniformly treewidth-bounded
//!    by 2 (certified decompositions).
//! 3. Proposition 5 mechanism — the natural aggregation contains `n × n`
//!    grids for every `n`, so `tw(D*) ≥ n` (Fact 2).
//! 4. Section 8 worked example — the robust aggregation of the core
//!    chase converges to the infinite column `Ĩ^h` (treewidth 1), which
//!    satisfies exactly the entailed CQs.
//! 5. Service slicing — the *actual* core chase on `K_h`, run through
//!    the `treechase-service` job runner, checkpoints at budget
//!    exhaustion and resumes to a result isomorphic to an uninterrupted
//!    run (long trajectories are resumable).

use chase_bench::{exit_with, Report};
use chase_core::KnowledgeBase;
use chase_engine::aggregation::natural_aggregation;
use chase_engine::boundedness::treewidth_profile;
use chase_engine::robust::RobustSequence;
use chase_engine::{ChaseConfig, ChaseVariant};
use chase_homomorphism::{hom_equivalent, is_core, isomorphism, maps_to};
use chase_kbs::queries::staircase_queries;
use chase_kbs::Staircase;
use chase_treewidth::{contains_grid, treewidth};
use treechase_service::{JobSpec, Service};

fn main() {
    let mut report = Report::new("e2-fig2-staircase");
    let steps = 5u32;

    // (1) Restricted chase ⇒ I^h.
    let mut s = Staircase::new();
    let dr = s.scripted_restricted_chase(steps);
    report.claim(
        "prop3/derivation-valid",
        "D_r is a restricted chase prefix",
        format!("{:?}", dr.validate()),
        dr.validate().is_ok() && dr.is_monotonic(),
    );
    let aggregation = natural_aggregation(&dr);
    let prefix = s.universal_prefix(steps);
    report.claim(
        "prop3/aggregation-is-Ih",
        "D*_r = I^h (prefix)",
        format!("{} atoms", aggregation.len()),
        aggregation == prefix,
    );

    // (2) Core chase uniformly tw-bounded by 2.
    let dc = s.scripted_core_chase(steps);
    report.claim(
        "prop4/derivation-valid",
        "D_c is a core chase prefix",
        format!("{:?}", dc.validate()),
        dc.validate().is_ok(),
    );
    let profile = treewidth_profile(&dc);
    let max_ub = profile.iter().map(|b| b.upper).max().unwrap_or(0);
    report.row(format!(
        "core-chase tw profile (upper bounds): {:?}",
        profile.iter().map(|b| b.upper).collect::<Vec<_>>()
    ));
    report.claim(
        "prop4/uniform-tw-bound",
        "tw(F_i) ≤ 2 for all i",
        format!("max certified upper bound {max_ub}"),
        max_ub <= 2,
    );
    let columns_are_cores = (1..=steps).all(|k| is_core(&s.column(k)));
    report.claim(
        "prop4/columns-are-cores",
        "each C_k is a core",
        columns_are_cores,
        columns_are_cores,
    );
    report.claim(
        "prop4/final-is-column",
        "D_c ends at C_k",
        "C_steps",
        dc.last_instance() == &s.column(steps),
    );

    // (3) D* contains n × n grids.
    for n in 1..=2u32 {
        let mut s2 = Staircase::new();
        let agg = natural_aggregation(&s2.scripted_restricted_chase(2 * n + 1));
        let lab = s2.grid_labeling(n);
        let has = contains_grid(&agg, &lab);
        report.claim(
            &format!("prop5/grid-{n}x{n}"),
            format!("D* contains an {n}×{n} grid ⇒ tw ≥ {n}"),
            has,
            has,
        );
    }

    // (4) Robust aggregation = infinite column.
    let rs = RobustSequence::build(&dc);
    report.claim(
        "sec8/robust-invariants",
        "G_i ≅ F_i, τ_i homomorphisms",
        format!("{:?}", rs.verify_invariants(&dc)),
        rs.verify_invariants(&dc).is_ok(),
    );
    // The aggregation prefix (atoms persisting through the trailing
    // column-build) must be hom-equivalent to the infinite column of the
    // same height, and of treewidth 1.
    let margin = (2 * (steps - 1) + 3) as usize; // one full step of the schedule
    let dsq = rs.aggregation_prefix(margin);
    let column_height = steps - 1;
    let itilde = s.infinite_column_prefix(column_height);
    report.row(format!(
        "robust aggregation prefix: {} atoms; Ĩ^h height {column_height}: {} atoms",
        dsq.len(),
        itilde.len()
    ));
    report.claim(
        "sec8/robust-agg-is-infinite-column",
        "D^⊛ ≡hom Ĩ^h (prefix)",
        format!("{} vs {} atoms", dsq.len(), itilde.len()),
        hom_equivalent(&dsq, &itilde),
    );
    report.claim(
        "sec8/robust-agg-treewidth-1",
        "tw(D^⊛) = 1",
        treewidth(&dsq),
        treewidth(&dsq) == 1,
    );

    // Ĩ^h is finitely universal: it satisfies exactly the entailed CQs.
    let mut vocab = s.vocab.clone();
    let ih = s.universal_prefix(8);
    let itall = s.infinite_column_prefix(10);
    let mut all_agree = true;
    for gt in staircase_queries(&mut vocab) {
        let in_ih = maps_to(&gt.query, &ih);
        let in_col = maps_to(&gt.query, &itall);
        let ok = in_ih == gt.entailed && in_col == gt.entailed;
        all_agree &= ok;
        report.row(format!(
            "query {:<18} entailed={} I^h={} Ĩ^h={}",
            gt.name, gt.entailed, in_ih, in_col
        ));
    }
    report.claim(
        "prop9/queries-agree",
        "Ĩ^h satisfies exactly the entailed CQs",
        all_agree,
        all_agree,
    );

    // (5) Service slicing: interrupted-and-resumed ≅ uninterrupted.
    let svc = Service::start(2);
    let kb = KnowledgeBase::staircase();
    let (total, cut) = (60usize, 30usize);
    let core_cfg = |budget| ChaseConfig::variant(ChaseVariant::Core).with_max_applications(budget);
    let full_id = svc.submit(JobSpec::from_kb("e2-full", kb.clone(), core_cfg(total)));
    let cut_id = svc.submit(JobSpec::from_kb("e2-cut", kb, core_cfg(cut)));
    let full = svc.take_result(full_id).expect("uninterrupted run");
    let cut_res = svc.take_result(cut_id).expect("interrupted run");
    let ck = cut_res
        .checkpoint
        .expect("budget exhaustion yields a checkpoint");
    report.claim(
        "service/checkpoint-exact",
        "core-chase checkpoints are resume-exact",
        ck.exact(),
        ck.exact() && ck.stats.applications == cut,
    );
    let mut resumed_spec = ck.into_spec().expect("checkpoint reparses");
    resumed_spec.config.max_applications = total - cut;
    let resumed = svc
        .take_result(svc.submit(resumed_spec))
        .expect("resumed run");
    report.row(format!(
        "uninterrupted: {} atoms after {} apps; resumed: {} atoms after {} apps (accumulated)",
        full.final_instance.len(),
        full.stats.applications,
        resumed.final_instance.len(),
        resumed.stats.applications
    ));
    report.row(format!(
        "core-phase counters (uninterrupted run): {} core steps in {}us, {} match nodes over {} fold candidates, {} truncations",
        full.stats.core_steps,
        full.stats.core_time_us,
        full.stats.match_nodes,
        full.stats.fold_candidates,
        full.stats.core_truncations
    ));
    report.claim(
        "service/resume-isomorphic",
        "cut@30 + resume@30 ≅ uninterrupted@60",
        isomorphism(&resumed.final_instance, &full.final_instance).is_some(),
        resumed.stats.applications == total
            && isomorphism(&resumed.final_instance, &full.final_instance).is_some(),
    );

    exit_with(report.finish());
}
