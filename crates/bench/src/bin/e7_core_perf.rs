//! **E7 — core maintenance performance**: from-scratch recompute vs the
//! dirty-region incremental maintainer.
//!
//! Runs the staircase `K_h` core chase under a fixed application budget
//! twice — once with `CoreMaintenance::FullRecompute` (the old
//! behaviour: `core_of` after every application) and once with
//! `CoreMaintenance::Incremental` (fold candidates seeded from the dirty
//! region, probed in parallel) — and checks that:
//!
//! 1. both trajectories land on isomorphic final instances (cores are
//!    unique up to isomorphism, so the maintainer must not change the
//!    result);
//! 2. the incremental maintainer spends at least 2× less time in the
//!    core phase at the largest budget (the PR's headline speedup).
//!
//! Besides the usual `results/e7-core-perf.jsonl` claims, the per-budget
//! measurements are written to `BENCH_core.json` at the workspace root
//! so the numbers ride along with the repository.
//!
//! `--smoke` shrinks the budgets for CI: it still cross-checks
//! isomorphism but reports the speedup informationally only (tiny runs
//! are noise-dominated).

use std::time::Instant;

use chase_bench::{exit_with, results_dir, Report};
use chase_core::KnowledgeBase;
use chase_engine::{ChaseConfig, ChaseStats, ChaseVariant, CoreMaintenance};
use chase_homomorphism::isomorphism;
use treechase_service::json::Json;

struct Measurement {
    budget: usize,
    full: ChaseStats,
    full_wall_us: u64,
    inc: ChaseStats,
    inc_wall_us: u64,
    isomorphic: bool,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.full.core_time_us as f64 / self.inc.core_time_us.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("application_budget", Json::Int(self.budget as i64)),
            ("full_core_us", Json::Int(self.full.core_time_us as i64)),
            ("full_wall_us", Json::Int(self.full_wall_us as i64)),
            ("full_match_nodes", Json::Int(self.full.match_nodes as i64)),
            (
                "full_fold_candidates",
                Json::Int(self.full.fold_candidates as i64),
            ),
            (
                "incremental_core_us",
                Json::Int(self.inc.core_time_us as i64),
            ),
            ("incremental_wall_us", Json::Int(self.inc_wall_us as i64)),
            (
                "incremental_match_nodes",
                Json::Int(self.inc.match_nodes as i64),
            ),
            (
                "incremental_fold_candidates",
                Json::Int(self.inc.fold_candidates as i64),
            ),
            ("core_phase_speedup", Json::Float(self.speedup())),
            ("isomorphic", Json::Bool(self.isomorphic)),
        ])
    }
}

fn measure(kb: &KnowledgeBase, budget: usize) -> Measurement {
    let cfg = |m| {
        ChaseConfig::variant(ChaseVariant::Core)
            .with_core_maintenance(m)
            .with_max_applications(budget)
    };
    let t0 = Instant::now();
    let full = kb.chase(&cfg(CoreMaintenance::FullRecompute));
    let full_wall_us = t0.elapsed().as_micros() as u64;
    let t1 = Instant::now();
    let inc = kb.chase(&cfg(CoreMaintenance::Incremental));
    let inc_wall_us = t1.elapsed().as_micros() as u64;
    Measurement {
        budget,
        full: full.stats,
        full_wall_us,
        inc: inc.stats,
        inc_wall_us,
        isomorphic: isomorphism(&full.final_instance, &inc.final_instance).is_some(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut report = Report::new("e7-core-perf");
    let budgets: &[usize] = if smoke { &[10, 20] } else { &[30, 60, 90] };

    let kb = KnowledgeBase::staircase();
    let mut rows = Vec::new();
    for &budget in budgets {
        let m = measure(&kb, budget);
        report.row(format!(
            "budget {:>3}: core phase {:>9}us full vs {:>7}us incremental ({:.1}x); \
             match nodes {} vs {}; fold candidates {} vs {}",
            m.budget,
            m.full.core_time_us,
            m.inc.core_time_us,
            m.speedup(),
            m.full.match_nodes,
            m.inc.match_nodes,
            m.full.fold_candidates,
            m.inc.fold_candidates,
        ));
        rows.push(m);
    }

    let all_iso = rows.iter().all(|m| m.isomorphic);
    report.claim(
        "core/maintainer-preserves-result",
        "incremental ≅ full recompute (cores unique up to iso)",
        all_iso,
        all_iso,
    );
    let no_truncation = rows
        .iter()
        .all(|m| m.full.core_truncations == 0 && m.inc.core_truncations == 0);
    report.claim(
        "core/no-spurious-truncation",
        "unbudgeted runs never report truncated core phases",
        no_truncation,
        no_truncation,
    );

    let last = rows.last().expect("at least one budget");
    if smoke {
        // Tiny runs are timer-noise-dominated; require only that the
        // incremental path does not blow up, and report the speedup.
        report.claim(
            "core/incremental-not-pathological",
            "incremental core phase ≤ 4× full (smoke sizes)",
            format!("{:.2}x speedup at budget {}", last.speedup(), last.budget),
            last.speedup() >= 0.25,
        );
    } else {
        report.claim(
            "core/incremental-2x-speedup",
            "core phase ≥ 2× faster at the largest budget",
            format!("{:.2}x speedup at budget {}", last.speedup(), last.budget),
            last.speedup() >= 2.0,
        );
    }

    // Persist the measurements next to the repository sources. Smoke
    // runs skip the write so CI never clobbers the committed full-run
    // numbers with noise-dominated tiny budgets.
    if !smoke {
        let bench = Json::obj([
            ("experiment", Json::str("e7-core-perf")),
            ("kb", Json::str("staircase")),
            ("smoke", Json::Bool(smoke)),
            (
                "measurements",
                Json::Arr(rows.iter().map(Measurement::to_json).collect()),
            ),
        ]);
        let mut root = results_dir();
        root.pop();
        let path = root.join("BENCH_core.json");
        if let Err(e) = std::fs::write(&path, format!("{bench}\n")) {
            report.row(format!("could not write {}: {e}", path.display()));
        }
    }

    exit_with(report.finish());
}
