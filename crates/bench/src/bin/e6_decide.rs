//! **E6 — Theorems 1–2**: the twin semi-decision procedure.
//!
//! Runs the two-worker decision procedure over the full ground-truth
//! query suites of both headline KBs (and a terminating datalog KB) and
//! compares against the analytic universal models. Positive answers must
//! be *certified*; negatives on non-terminating KBs are heuristic (the
//! full MSO-over-bounded-treewidth refuter is non-implementable — see
//! DESIGN.md) and must still agree with ground truth.

use chase_bench::{exit_with, Report};
use chase_core::{decide, DecideConfig, DecideOutcome, KnowledgeBase};
use chase_kbs::queries::{elevator_queries, staircase_queries};

fn main() {
    let mut report = Report::new("e6-decide");
    // Budgets: positives certify within ~30 applications on both KBs;
    // negatives must burn the whole budget in every worker, so keep it
    // modest (the answer quality is unchanged — negatives on the
    // divergent KBs are heuristic at any finite budget).
    let cfg = DecideConfig {
        max_applications: 150,
        max_atoms: 20_000,
        core_max_applications: 30,
    };

    // Steepening staircase.
    let kb = KnowledgeBase::staircase();
    let mut vocab = kb.vocab.clone();
    let mut agree = 0usize;
    let mut total = 0usize;
    let mut positives_certified = true;
    for gt in staircase_queries(&mut vocab) {
        let out = decide(&kb, &gt.query, &cfg);
        let answer = match &out {
            DecideOutcome::Entailed { .. } => true,
            DecideOutcome::NotEntailed { .. } => false,
            DecideOutcome::Exhausted { heuristic_entailed } => *heuristic_entailed,
        };
        if gt.entailed && !matches!(out, DecideOutcome::Entailed { .. }) {
            positives_certified = false;
        }
        total += 1;
        if answer == gt.entailed {
            agree += 1;
        }
        report.row(format!(
            "K_h ⊨ {:<18} truth={} decided={answer} via {:?}",
            gt.name, gt.entailed, out
        ));
    }
    report.claim(
        "thm2/staircase-agreement",
        "twin procedure agrees with ground truth",
        format!("{agree}/{total}"),
        agree == total,
    );
    report.claim(
        "thm1/staircase-positives-certified",
        "every entailed CQ found by semi-procedure 1",
        positives_certified,
        positives_certified,
    );

    // Inflating elevator.
    let kb = KnowledgeBase::elevator();
    let mut vocab = kb.vocab.clone();
    let mut agree = 0usize;
    let mut total = 0usize;
    let mut positives_certified = true;
    for gt in elevator_queries(&mut vocab) {
        let out = decide(&kb, &gt.query, &cfg);
        let answer = match &out {
            DecideOutcome::Entailed { .. } => true,
            DecideOutcome::NotEntailed { .. } => false,
            DecideOutcome::Exhausted { heuristic_entailed } => *heuristic_entailed,
        };
        if gt.entailed && !matches!(out, DecideOutcome::Entailed { .. }) {
            positives_certified = false;
        }
        total += 1;
        if answer == gt.entailed {
            agree += 1;
        }
        report.row(format!(
            "K_v ⊨ {:<18} truth={} decided={answer} via {:?}",
            gt.name, gt.entailed, out
        ));
    }
    report.claim(
        "thm2/elevator-agreement",
        "twin procedure agrees with ground truth",
        format!("{agree}/{total}"),
        agree == total,
    );
    report.claim(
        "thm1/elevator-positives-certified",
        "every entailed CQ found by semi-procedure 1",
        positives_certified,
        positives_certified,
    );

    // Terminating KB: both directions certified.
    let mut kb =
        KnowledgeBase::from_text("r(a, b). r(b, c). r(c, d). T: r(X, Y), r(Y, Z) -> r(X, Z).")
            .expect("kb parses");
    let pos = kb.parse_query("r(a, d)").unwrap();
    let neg = kb.parse_query("r(d, a)").unwrap();
    let pos_out = decide(&kb, &pos, &cfg);
    let neg_out = decide(&kb, &neg, &cfg);
    report.claim(
        "thm1/terminating-positive-certified",
        "Entailed",
        format!("{pos_out:?}"),
        matches!(pos_out, DecideOutcome::Entailed { .. }),
    );
    report.claim(
        "thm1/terminating-negative-certified",
        "NotEntailed (finite universal model)",
        format!("{neg_out:?}"),
        matches!(neg_out, DecideOutcome::NotEntailed { .. }),
    );

    exit_with(report.finish());
}
