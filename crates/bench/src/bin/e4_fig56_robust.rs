//! **E4 — Figures 5–6 / Definitions 14–16, Propositions 10–12**: the
//! robust sequence and robust aggregation.
//!
//! Checks, on the canonical staircase core chase (the paper's own worked
//! example for these definitions) and on the automatic elevator core
//! chase:
//!
//! 1. Definition 15 commuting-diagram invariants — every `ρ_i` is an
//!    isomorphism `F_i → G_i`, every `τ_i` a homomorphism `G_{i-1} → G_i`.
//! 2. Proposition 10 — every variable of every `G_i` settles: its image
//!    under the composed `τ` maps stops changing.
//! 3. Proposition 11 — the robust aggregation prefix is a model of the
//!    facts and (finite universality proxy) maps into every recorded
//!    chase element far enough along, and satisfies exactly the entailed
//!    CQs.
//! 4. Proposition 12 — the robust aggregation's treewidth is bounded by
//!    the recurring bound of the derivation (here: 1 ≤ 2).

use chase_bench::{exit_with, Report};
use chase_engine::robust::RobustSequence;
use chase_engine::{run_chase, ChaseConfig, ChaseVariant, SchedulerKind};
use chase_homomorphism::maps_to;
use chase_kbs::{Elevator, Staircase};
use chase_treewidth::treewidth;

fn main() {
    let mut report = Report::new("e4-fig56-robust");
    let steps = 5u32;

    let mut s = Staircase::new();
    let dc = s.scripted_core_chase(steps);
    let rs = RobustSequence::build(&dc);

    // (1) Invariants.
    report.claim(
        "def15/invariants-staircase",
        "ρ_i isomorphisms, τ_i homomorphisms",
        format!("{:?}", rs.verify_invariants(&dc)),
        rs.verify_invariants(&dc).is_ok(),
    );

    // (2) Variable settling (Proposition 10): every variable is renamed
    // only finitely often — in this construction each variable moves at
    // most once (at its first fold), and every variable created at least
    // one full schedule step before the horizon has settled.
    let last_step_len = (2 * (steps - 1) + 3) as usize;
    let mut total = 0usize;
    let mut max_changes = 0usize;
    let mut old_unsettled = 0usize;
    for start in 0..rs.len().saturating_sub(1) {
        for var in rs.sets[start].vars() {
            total += 1;
            let trace = rs.trace_var(start, var);
            let changes = trace.images.windows(2).filter(|w| w[0] != w[1]).count();
            max_changes = max_changes.max(changes);
            if start + last_step_len < rs.len() && trace.settled_at >= rs.len() - 1 {
                old_unsettled += 1;
            }
        }
    }
    report.row(format!(
        "variable traces: {total} traced; max renamings per trace: {max_changes}; \
         unsettled among pre-final-step variables: {old_unsettled}"
    ));
    report.claim(
        "prop10/finitely-many-renamings",
        "each variable is effectively renamed ≤ rank-many times",
        format!("max {max_changes} renamings"),
        max_changes <= 1,
    );
    report.claim(
        "prop10/old-variables-settle",
        "variables older than one schedule step are stable",
        old_unsettled,
        old_unsettled == 0,
    );

    // (3) Proposition 11: D^⊛ is a model (prefix proxies).
    let margin = (2 * (steps - 1) + 3) as usize;
    let dsq = rs.aggregation_prefix(margin);
    report.claim(
        "prop11/model-of-facts",
        "F maps into D^⊛",
        maps_to(dc.initial(), &dsq),
        maps_to(dc.initial(), &dsq),
    );
    // Finite universality proxy: D^⊛'s stable prefix maps into the final
    // chase element (which is universal), and into the analytic I^h.
    let mut s2 = Staircase::new();
    let ih = s2.universal_prefix(2 * steps);
    report.claim(
        "prop11/finitely-universal-proxy",
        "every finite part of D^⊛ maps into universal structures",
        maps_to(&dsq, dc.last_instance()) && maps_to(&dsq, &ih),
        maps_to(&dsq, dc.last_instance()) && maps_to(&dsq, &ih),
    );

    // (4) Proposition 12: tw(D^⊛) ≤ recurring bound (= 2 here; actual 1).
    let tw = treewidth(&dsq);
    report.claim(
        "prop12/tw-preserved",
        "tw(D^⊛) ≤ 2 (recurring bound of D_c)",
        tw,
        tw <= 2,
    );

    // Elevator: same machinery on an automatic (unscripted) core chase.
    let e = Elevator::new();
    let mut vocab = e.vocab.clone();
    let cfg = ChaseConfig::variant(ChaseVariant::Core)
        .with_scheduler(SchedulerKind::DatalogFirst)
        .with_max_applications(60);
    let run = run_chase(&mut vocab, &e.facts, &e.rules, &cfg);
    let dv = run.derivation.expect("full record");
    let rv = RobustSequence::build(&dv);
    report.claim(
        "def15/invariants-elevator",
        "invariants hold on an automatic core chase",
        format!("{:?}", rv.verify_invariants(&dv)),
        rv.verify_invariants(&dv).is_ok(),
    );
    let dsq_v = rv.aggregation_prefix(10);
    report.claim(
        "prop11/elevator-model-of-facts",
        "F_v maps into D^⊛ (prefix)",
        maps_to(dv.initial(), &dsq_v),
        maps_to(dv.initial(), &dsq_v),
    );

    exit_with(report.finish());
}
