//! **E5 — Table 1**: the rule-application schedule that produces step
//! `S_k` from column `C_k`.
//!
//! Replays the schedule (one `R1h` on the top loop, `k`× `R2h` top-down,
//! one `R3h`, `k+1`× `R4h` bottom-up) for a sweep of `k` and verifies
//! application-by-application that each produces *exactly* the atoms the
//! table lists, ending at `S_k` (and, after the fold, at `C_{k+1}`).

use chase_atoms::DisplayWith;
use chase_bench::{exit_with, Report};
use chase_kbs::Staircase;

fn main() {
    let mut report = Report::new("e5-table1-schedule");
    let k_max = 6u32;

    let mut s = Staircase::new();
    let d = s.scripted_restricted_chase(k_max);
    report.claim(
        "table1/derivation-valid",
        "the scheduled derivation satisfies Definition 1",
        format!("{:?}", d.validate()),
        d.validate().is_ok(),
    );

    let mut idx = 1usize;
    let mut all_exact = true;
    for k in 0..k_max {
        let schedule = s.schedule(k);
        report.row(format!(
            "step k={k}: {} applications (expected {})",
            schedule.len(),
            2 * k + 3
        ));
        let len_ok = schedule.len() as u32 == 2 * k + 3;
        all_exact &= len_ok;
        for app in &schedule {
            let before = d.instance(idx - 1);
            let after = d.instance(idx);
            let produced: Vec<_> = after
                .iter()
                .filter(|a| !before.contains(a))
                .cloned()
                .collect();
            let expected_ok = produced.len() == app.expected_new.len()
                && app.expected_new.iter().all(|a| after.contains(a));
            if k <= 1 {
                let rule_name = d.rules().get(app.rule).name().to_string();
                let atoms: Vec<String> = produced
                    .iter()
                    .map(|a| format!("{}", a.with(&s.vocab)))
                    .collect();
                report.row(format!("  {rule_name:<4} ⇒ {}", atoms.join(", ")));
            }
            all_exact &= expected_ok;
            idx += 1;
        }
        // After finishing step k the chase has built S_k ⊆ current.
        let srect = s.step_rect(k);
        all_exact &= srect.is_subset_of(d.instance(idx - 1));
    }
    report.claim(
        "table1/applications-exact",
        "every application produces exactly the listed atoms",
        all_exact,
        all_exact,
    );

    // The core-chase variant of the same schedule ends at C_{k_max}.
    let mut s2 = Staircase::new();
    let dc = s2.scripted_core_chase(k_max);
    report.claim(
        "table1/core-variant-folds",
        "the folded schedule ends at C_k",
        format!("{} atoms", dc.last_instance().len()),
        dc.last_instance() == &s2.column(k_max),
    );

    exit_with(report.finish());
}
