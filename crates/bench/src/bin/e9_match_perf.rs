//! **E9 — match-phase performance**: naive predicate scans vs the
//! positional-index + bitset candidate pruner.
//!
//! Runs three tracked KBs — the paper's staircase `K_h` and elevator
//! `K_v`, plus a synthetic labeled grid with diagonal/transitive rules —
//! under fixed application budgets, once with
//! [`MatchStrategy::NaiveScan`] (the pre-index behaviour: term-count
//! estimates over every predicate plus an anchored-term scan filter) and
//! once with [`MatchStrategy::Indexed`] (per-`(predicate, position,
//! term)` posting lists intersected through a bitset), and checks that:
//!
//! 1. both strategies land on byte-identical final instances — candidate
//!    pruning must never change which homomorphisms exist;
//! 2. the indexed matcher never explores more backtracking nodes
//!    (`match_trials`) than the naive scan — positional filtering is
//!    strictly more precise than anchored-term filtering;
//! 3. at the largest budget the indexed match phase is ≥ 2× faster on
//!    at least one tracked KB (the PR's headline speedup; full runs
//!    only — smoke sizes are timer-noise-dominated).
//!
//! Full runs persist `BENCH_match.json` (per-row match-phase counters)
//! and `BENCH_e2e.json` (end-to-end wall times) at the workspace root.
//!
//! The CI regression gate rides on the smoke profile: `--smoke` shrinks
//! the budgets and, when a committed `BENCH_match_baseline.json` exists
//! at the workspace root, compares the *deterministic* counters — the
//! indexed `match_trials` and the final atom count per row — against the
//! baseline, failing on a > 20 % trial regression or any change in the
//! chased result. `--write-baseline` regenerates that baseline from the
//! smoke budgets.

use std::fmt::Write as _;
use std::time::Instant;

use chase_bench::{exit_with, results_dir, Report};
use chase_core::KnowledgeBase;
use chase_engine::{
    ChaseConfig, ChaseResult, ChaseStats, ChaseVariant, MatchStrategy, RecordLevel,
};
use treechase_service::json::{parse_json, Json};

/// Budget-bounded restricted chase under the given match strategy.
fn cfg(strategy: MatchStrategy, budget: usize) -> ChaseConfig {
    ChaseConfig::variant(ChaseVariant::Restricted)
        .with_match_strategy(strategy)
        .with_max_applications(budget)
        .with_record(RecordLevel::FinalOnly)
}

/// An `n × n` labeled grid with diagonal and transitive-closure rules:
/// dense joins over two base predicates, the matcher-stress workload.
fn grid_kb(n: usize) -> KnowledgeBase {
    let mut src = String::new();
    for i in 0..n {
        for j in 0..n {
            if j + 1 < n {
                let _ = writeln!(src, "h(c{i}_{j}, c{i}_{next}).", next = j + 1);
            }
            if i + 1 < n {
                let _ = writeln!(src, "v(c{i}_{j}, c{next}_{j}).", next = i + 1);
            }
        }
    }
    src.push_str("Diag: h(X, Y), v(Y, Z) -> d(X, Z).\n");
    src.push_str("Trans: d(X, Y), d(Y, Z) -> d(X, Z).\n");
    KnowledgeBase::from_text(&src).expect("generated grid KB parses")
}

/// `n` independent chain generators whose source constants each carry
/// `k` unrelated `q` facts. The satisfaction check for `E`'s head seeds
/// `X ↦ sᵢ` and must enumerate candidates for `e(sᵢ, Z)`: the naive
/// matcher anchors on the *term* occurrence index of `sᵢ` — wading
/// through all `k` noise atoms on every check — while the positional
/// index reads the `(e, 0, sᵢ)` posting directly. Term frequency grows
/// with `k`; the posting does not.
fn fanout_kb(n: usize, k: usize) -> KnowledgeBase {
    let mut src = String::new();
    for i in 0..n {
        let _ = writeln!(src, "p(s{i}).");
        for j in 0..k {
            let _ = writeln!(src, "q(s{i}, u{i}_{j}).");
        }
    }
    src.push_str("E: p(X) -> e(X, Z), p(Z).\n");
    KnowledgeBase::from_text(&src).expect("generated fanout KB parses")
}

struct Measurement {
    kb: &'static str,
    budget: usize,
    naive: ChaseStats,
    naive_wall_us: u64,
    indexed: ChaseStats,
    indexed_wall_us: u64,
    final_atoms: usize,
    identical: bool,
}

impl Measurement {
    fn match_speedup(&self) -> f64 {
        self.naive.match_time_us as f64 / self.indexed.match_time_us.max(1) as f64
    }

    fn e2e_speedup(&self) -> f64 {
        self.naive_wall_us as f64 / self.indexed_wall_us.max(1) as f64
    }

    fn to_match_json(&self) -> Json {
        Json::obj([
            ("kb", Json::str(self.kb)),
            ("application_budget", Json::Int(self.budget as i64)),
            ("naive_match_us", Json::Int(self.naive.match_time_us as i64)),
            (
                "naive_match_trials",
                Json::Int(self.naive.match_trials as i64),
            ),
            (
                "naive_match_searches",
                Json::Int(self.naive.match_searches as i64),
            ),
            (
                "indexed_match_us",
                Json::Int(self.indexed.match_time_us as i64),
            ),
            (
                "indexed_match_trials",
                Json::Int(self.indexed.match_trials as i64),
            ),
            (
                "indexed_match_searches",
                Json::Int(self.indexed.match_searches as i64),
            ),
            (
                "peak_index_postings",
                Json::Int(self.indexed.peak_index_postings as i64),
            ),
            ("match_phase_speedup", Json::Float(self.match_speedup())),
            ("final_atoms", Json::Int(self.final_atoms as i64)),
            ("identical", Json::Bool(self.identical)),
        ])
    }

    fn to_e2e_json(&self) -> Json {
        Json::obj([
            ("kb", Json::str(self.kb)),
            ("application_budget", Json::Int(self.budget as i64)),
            ("naive_wall_us", Json::Int(self.naive_wall_us as i64)),
            ("indexed_wall_us", Json::Int(self.indexed_wall_us as i64)),
            ("e2e_speedup", Json::Float(self.e2e_speedup())),
        ])
    }
}

/// Runs the chase `reps` times and keeps the fastest match phase: the
/// trajectory is deterministic per strategy, so repetitions differ only
/// in allocator/page-cache warmup noise and the minimum is the signal.
fn timed(
    kb: &KnowledgeBase,
    strategy: MatchStrategy,
    budget: usize,
    reps: usize,
) -> (ChaseResult, u64) {
    let mut best: Option<(ChaseResult, u64)> = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let res = kb.chase(&cfg(strategy, budget));
        let wall = t.elapsed().as_micros() as u64;
        if best
            .as_ref()
            .is_none_or(|(b, _)| res.stats.match_time_us < b.stats.match_time_us)
        {
            best = Some((res, wall));
        }
    }
    best.expect("reps >= 1")
}

fn measure(name: &'static str, kb: &KnowledgeBase, budget: usize, reps: usize) -> Measurement {
    let (naive, naive_wall_us) = timed(kb, MatchStrategy::NaiveScan, budget, reps);
    let (indexed, indexed_wall_us) = timed(kb, MatchStrategy::Indexed, budget, reps);
    Measurement {
        kb: name,
        budget,
        final_atoms: indexed.final_instance.len(),
        identical: naive.final_instance == indexed.final_instance,
        naive: naive.stats,
        naive_wall_us,
        indexed: indexed.stats,
        indexed_wall_us,
    }
}

/// Compare smoke-profile measurements against the committed baseline.
/// Gates only on deterministic counters: `match_trials` is a pure
/// function of (KB, budget, strategy), so a > 20 % increase means the
/// candidate pruner genuinely regressed, not that CI hardware was slow.
fn gate(report: &mut Report, rows: &[Measurement], baseline: &Json) -> bool {
    let Some(entries) = baseline.get("measurements").and_then(Json::as_arr) else {
        report.row("baseline file has no `measurements` array");
        return false;
    };
    let mut ok = true;
    for row in rows {
        let found = entries.iter().find(|e| {
            e.get("kb").and_then(Json::as_str) == Some(row.kb)
                && e.get("application_budget").and_then(Json::as_u64) == Some(row.budget as u64)
        });
        let Some(entry) = found else {
            report.row(format!(
                "gate: no baseline entry for {} @ budget {} — re-run --write-baseline",
                row.kb, row.budget
            ));
            ok = false;
            continue;
        };
        let base_trials = entry
            .get("indexed_match_trials")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let base_atoms = entry.get("final_atoms").and_then(Json::as_u64).unwrap_or(0);
        let trial_limit = base_trials + base_trials.div_ceil(5); // +20 %
        let trials_ok = row.indexed.match_trials as u64 <= trial_limit;
        let atoms_ok = row.final_atoms as u64 == base_atoms;
        report.row(format!(
            "gate {} @ {:>4}: trials {} (baseline {}, limit {}) {}; atoms {} (baseline {}) {}",
            row.kb,
            row.budget,
            row.indexed.match_trials,
            base_trials,
            trial_limit,
            if trials_ok { "ok" } else { "REGRESSED" },
            row.final_atoms,
            base_atoms,
            if atoms_ok { "ok" } else { "CHANGED" },
        ));
        ok &= trials_ok && atoms_ok;
    }
    ok
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let mut report = Report::new("e9-match-perf");

    // (name, KB, smoke budget, full budgets). The staircase and elevator
    // chases are budget-bound (they do not terminate); the grid
    // saturates, so its budget just needs to exceed the fixpoint.
    let small = smoke || write_baseline;
    let grid_n = if small { 6 } else { 16 };
    let (fan_n, fan_k) = if small { (20, 30) } else { (12, 12000) };
    let tracked: [(&'static str, KnowledgeBase, usize, &[usize]); 4] = [
        ("staircase", KnowledgeBase::staircase(), 60, &[120, 240]),
        ("elevator", KnowledgeBase::elevator(), 60, &[120, 240]),
        ("grid", grid_kb(grid_n), 400, &[1000, 4000]),
        ("fanout", fanout_kb(fan_n, fan_k), 100, &[60, 120]),
    ];

    let mut rows = Vec::new();
    for (name, kb, smoke_budget, full_budgets) in &tracked {
        let budgets: &[usize] = if smoke || write_baseline {
            std::slice::from_ref(smoke_budget)
        } else {
            full_budgets
        };
        for &budget in budgets {
            let m = measure(name, kb, budget, if small { 1 } else { 3 });
            report.row(format!(
                "{name:>9} @ {:>5}: match {:>8}us naive vs {:>7}us indexed ({:.1}x); \
                 trials {} vs {}; postings peak {}; {} atoms",
                m.budget,
                m.naive.match_time_us,
                m.indexed.match_time_us,
                m.match_speedup(),
                m.naive.match_trials,
                m.indexed.match_trials,
                m.indexed.peak_index_postings,
                m.final_atoms,
            ));
            rows.push(m);
        }
    }

    let all_identical = rows.iter().all(|m| m.identical);
    report.claim(
        "match/pruning-preserves-result",
        "indexed and naive strategies chase to identical instances",
        all_identical,
        all_identical,
    );

    let never_more_trials = rows
        .iter()
        .all(|m| m.indexed.match_trials <= m.naive.match_trials);
    report.claim(
        "match/indexed-never-more-trials",
        "positional pruning explores ≤ backtracking nodes of the naive scan",
        never_more_trials,
        never_more_trials,
    );

    let best = rows
        .iter()
        .map(|m| (m.match_speedup(), m.kb, m.budget))
        .fold((0.0_f64, "", 0), |acc, x| if x.0 > acc.0 { x } else { acc });
    if smoke || write_baseline {
        // Tiny budgets are timer-noise-dominated: report the speedup but
        // only require the indexed path not to be pathological.
        report.claim(
            "match/indexed-not-pathological",
            "indexed match phase ≤ 4× naive (smoke sizes)",
            format!("best {:.2}x ({} @ {})", best.0, best.1, best.2),
            rows.iter().all(|m| m.match_speedup() >= 0.25),
        );
    } else {
        report.claim(
            "match/indexed-2x-speedup",
            "match phase ≥ 2× faster on ≥ 1 tracked KB at full budgets",
            format!("best {:.2}x ({} @ {})", best.0, best.1, best.2),
            best.0 >= 2.0,
        );
    }

    let mut root = results_dir();
    root.pop();

    if smoke && !write_baseline {
        let path = root.join("BENCH_match_baseline.json");
        match std::fs::read_to_string(&path) {
            Ok(src) => match parse_json(&src) {
                Ok(baseline) => {
                    let ok = gate(&mut report, &rows, &baseline);
                    report.claim(
                        "match/no-trial-regression",
                        "indexed match_trials within 20 % of committed baseline",
                        ok,
                        ok,
                    );
                }
                Err(e) => {
                    report.claim(
                        "match/no-trial-regression",
                        "committed baseline parses",
                        format!("parse error: {e}"),
                        false,
                    );
                }
            },
            // A missing baseline is not a regression — first run on a
            // fresh checkout; the claim would block bootstrapping.
            Err(_) => report.row(format!("no baseline at {} — gate skipped", path.display())),
        }
    }

    let rows_json = |f: fn(&Measurement) -> Json| Json::Arr(rows.iter().map(f).collect());
    if write_baseline {
        let bench = Json::obj([
            ("experiment", Json::str("e9-match-perf")),
            ("profile", Json::str("smoke-baseline")),
            ("measurements", rows_json(Measurement::to_match_json)),
        ]);
        let path = root.join("BENCH_match_baseline.json");
        if let Err(e) = std::fs::write(&path, format!("{bench}\n")) {
            report.row(format!("could not write {}: {e}", path.display()));
        }
    } else if !smoke {
        for (file, json) in [
            ("BENCH_match.json", rows_json(Measurement::to_match_json)),
            ("BENCH_e2e.json", rows_json(Measurement::to_e2e_json)),
        ] {
            let bench = Json::obj([
                ("experiment", Json::str("e9-match-perf")),
                ("smoke", Json::Bool(false)),
                ("measurements", json),
            ]);
            let path = root.join(file);
            if let Err(e) = std::fs::write(&path, format!("{bench}\n")) {
                report.row(format!("could not write {}: {e}", path.display()));
            }
        }
    }

    exit_with(report.finish());
}
