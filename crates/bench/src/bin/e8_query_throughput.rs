//! **E8 — query throughput over materialization snapshots**: how fast
//! the service answers CQs against a *live* chase job, as a function of
//! the snapshot refresh interval.
//!
//! Runs the inflating elevator `K_v` (restricted variant, so the
//! instance grows without terminating) as a service job under a fixed
//! wall budget, and hammers it with `query_job` reads from the caller
//! thread while the worker chases. For each
//! [`ServiceConfig::snapshot_every`] setting the run checks that:
//!
//! 1. every reply is tagged `sound-prefix` — a live job never claims a
//!    complete answer set;
//! 2. the writer makes progress *under* read load: the snapshot horizon
//!    observed by the readers strictly advances;
//! 3. throughput is positive at every refresh interval (readers are
//!    never starved by the writer).
//!
//! The per-interval measurements (queries/sec, snapshots published,
//! cache counters, horizon span) go to `BENCH_query.json` at the
//! workspace root. `--smoke` shrinks the wall budgets for CI and skips
//! the write so committed full-run numbers are never clobbered.

use std::time::{Duration, Instant};

use chase_bench::{exit_with, results_dir, Report};
use chase_core::KnowledgeBase;
use chase_engine::{ChaseConfig, ChaseVariant};
use chase_query::Completeness;
use treechase_service::{JobSpec, JobStatus, Json, QueryError, Service, ServiceConfig};

struct Measurement {
    snapshot_every: usize,
    queries: u64,
    wall_us: u64,
    published: u64,
    hits: u64,
    misses: u64,
    answers_served: u64,
    first_horizon: u64,
    last_horizon: u64,
    all_sound_prefix: bool,
}

impl Measurement {
    fn qps(&self) -> f64 {
        self.queries as f64 / (self.wall_us.max(1) as f64 / 1_000_000.0)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("snapshot_every", Json::Int(self.snapshot_every as i64)),
            ("queries", Json::Int(self.queries as i64)),
            ("wall_us", Json::Int(self.wall_us as i64)),
            ("queries_per_sec", Json::Float(self.qps())),
            ("snapshots_published", Json::Int(self.published as i64)),
            ("cache_hits", Json::Int(self.hits as i64)),
            ("cache_misses", Json::Int(self.misses as i64)),
            ("answers_served", Json::Int(self.answers_served as i64)),
            ("first_horizon", Json::Int(self.first_horizon as i64)),
            ("last_horizon", Json::Int(self.last_horizon as i64)),
        ])
    }
}

fn measure(snapshot_every: usize, wall: Duration) -> Measurement {
    let svc = Service::with_config(
        1,
        ServiceConfig {
            snapshot_every,
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    let id = svc.submit(JobSpec::from_kb(
        "elevator-live",
        KnowledgeBase::elevator(),
        ChaseConfig::variant(ChaseVariant::Restricted)
            .with_max_applications(usize::MAX / 2)
            .with_max_wall(wall),
    ));

    let mut queries = 0u64;
    let mut first_horizon = None;
    let mut last_horizon = 0u64;
    let mut all_sound_prefix = true;
    let t0 = Instant::now();
    while matches!(svc.status(id), Some(JobStatus::Queued | JobStatus::Running)) {
        match svc.query_job(id, "?- h(X, Y), v(Y, Z)", None, None) {
            Ok(reply) => {
                queries += 1;
                if !matches!(reply.outcome.completeness, Completeness::SoundPrefix { .. }) {
                    all_sound_prefix = false;
                }
                if let Some(h) = reply.applications {
                    first_horizon.get_or_insert(h);
                    last_horizon = h;
                }
            }
            Err(QueryError::NoSnapshot(_)) => {}
            Err(e) => panic!("reader failed: {e}"),
        }
    }
    let wall_us = t0.elapsed().as_micros() as u64;
    svc.wait(id);
    let stats = svc.cache_stats();
    Measurement {
        snapshot_every,
        queries,
        wall_us,
        published: stats.published,
        hits: stats.hits,
        misses: stats.misses,
        answers_served: stats.answers_served,
        first_horizon: first_horizon.unwrap_or(0),
        last_horizon,
        all_sound_prefix,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut report = Report::new("e8-query-throughput");
    let intervals: &[usize] = if smoke { &[16, 64] } else { &[8, 32, 128] };
    let wall = if smoke {
        Duration::from_millis(400)
    } else {
        Duration::from_millis(2_000)
    };

    let mut rows = Vec::new();
    for &every in intervals {
        let m = measure(every, wall);
        report.row(format!(
            "snapshot_every {:>4}: {:>8.0} queries/s ({} queries, {} snapshots \
             published, horizon {} -> {})",
            m.snapshot_every,
            m.qps(),
            m.queries,
            m.published,
            m.first_horizon,
            m.last_horizon,
        ));
        rows.push(m);
    }

    let all_sound = rows.iter().all(|m| m.all_sound_prefix);
    report.claim(
        "query/live-replies-sound-prefix",
        "answers over a live job are sound, never claimed complete",
        all_sound,
        all_sound,
    );
    let writer_progressed = rows.iter().all(|m| m.last_horizon > m.first_horizon);
    report.claim(
        "query/readers-dont-stall-writer",
        "snapshot horizon advances under continuous read load",
        writer_progressed,
        writer_progressed,
    );
    let throughput_positive = rows.iter().all(|m| m.queries > 0);
    report.claim(
        "query/throughput-positive",
        "readers are served at every refresh interval",
        format!(
            "min {:.0} queries/s",
            rows.iter().map(Measurement::qps).fold(f64::MAX, f64::min)
        ),
        throughput_positive,
    );

    if !smoke {
        let bench = Json::obj([
            ("experiment", Json::str("e8-query-throughput")),
            ("kb", Json::str("elevator")),
            ("smoke", Json::Bool(smoke)),
            (
                "measurements",
                Json::Arr(rows.iter().map(Measurement::to_json).collect()),
            ),
        ]);
        let mut root = results_dir();
        root.pop();
        let path = root.join("BENCH_query.json");
        if let Err(e) = std::fs::write(&path, format!("{bench}\n")) {
            report.row(format!("could not write {}: {e}", path.display()));
        }
    }

    exit_with(report.finish());
}
