//! **E1 — Figure 1**: the Venn diagram of decidable classes.
//!
//! Reproduces the membership matrix of the paper's witness rulesets in
//! the classes {fes (terminating core chase), bts (treewidth-bounded
//! restricted chase), core-bts (treewidth-bounded core chase)}:
//!
//! * datalog transitivity — inside everything;
//! * `{r(X,Y) → ∃Z. r(Y,Z)}` — bts ∖ fes (Proposition 13);
//! * `{r(X,Y) ∧ r(Y,Z) → ∃V. …}` — fes ∖ bts (Proposition 13);
//! * the grid grower — outside all treewidth classes;
//! * the steepening staircase — core-bts (tw ≤ 2) and bts, not fes, *no*
//!   tw-finite universal model (Sections 6);
//! * the inflating elevator — tw-finite universal model, but *not*
//!   core-bts (Section 7, Corollary 1).

use chase_bench::{exit_with, Report};
use chase_core::classes::probe_classes;
use chase_core::KnowledgeBase;
use chase_kbs::witnesses;

fn main() {
    let mut report = Report::new("e1-fig1-venn");
    let budget = 80;

    report.row(format!(
        "{:<24} {:>6} {:>12} {:>10} {:>14}",
        "ruleset", "fes?", "rc-tw(max)", "cc-tw(max)", "cc-tw(recur)"
    ));

    for w in witnesses::all_witnesses() {
        let kb = KnowledgeBase::new(w.vocab.clone(), w.facts.clone(), w.rules.clone());
        let probe = probe_classes(&kb, budget);
        report.row(format!(
            "{:<24} {:>6} {:>12} {:>10} {:>14}",
            w.name,
            probe.core_chase_terminated,
            probe.restricted_uniform_bound(),
            probe.core_uniform_bound(),
            probe
                .core_recurring_bound()
                .map_or("-".to_string(), |b| b.to_string()),
        ));
        report.claim(
            &format!("{}/fes", w.name),
            w.expect_fes,
            probe.core_chase_terminated,
            probe.core_chase_terminated == w.expect_fes,
        );
        // bts/core-bts evidence: expected members stay at a low flat
        // bound; expected non-members climb past it within budget.
        let low = 2;
        let rc_flat = probe.restricted_chase_terminated || probe.restricted_uniform_bound() <= low;
        let cc_flat =
            probe.core_chase_terminated || probe.core_recurring_bound().is_some_and(|b| b <= low);
        report.claim(
            &format!("{}/bts-evidence", w.name),
            w.expect_bts,
            rc_flat,
            rc_flat == w.expect_bts,
        );
        report.claim(
            &format!("{}/core-bts-evidence", w.name),
            w.expect_core_bts,
            cc_flat,
            cc_flat == w.expect_core_bts,
        );
    }

    // The two headline KBs.
    let staircase = KnowledgeBase::staircase();
    let p_h = probe_classes(&staircase, budget);
    report.row(format!(
        "{:<24} {:>6} {:>12} {:>10} {:>14}",
        "steepening-staircase",
        p_h.core_chase_terminated,
        p_h.restricted_uniform_bound(),
        p_h.core_uniform_bound(),
        p_h.core_recurring_bound()
            .map_or("-".to_string(), |b| b.to_string()),
    ));
    report.claim(
        "staircase/not-fes",
        "core chase diverges",
        p_h.core_chase_terminated,
        !p_h.core_chase_terminated,
    );
    report.claim(
        "staircase/core-bts",
        "recurring cc bound ≤ 2 (Prop. 4)",
        format!("{:?}", p_h.core_recurring_bound()),
        p_h.core_recurring_bound().is_some_and(|b| b <= 2),
    );

    let elevator = KnowledgeBase::elevator();
    let p_v = probe_classes(&elevator, budget);
    report.row(format!(
        "{:<24} {:>6} {:>12} {:>10} {:>14}",
        "inflating-elevator",
        p_v.core_chase_terminated,
        p_v.restricted_uniform_bound(),
        p_v.core_uniform_bound(),
        p_v.core_recurring_bound()
            .map_or("-".to_string(), |b| b.to_string()),
    ));
    report.claim(
        "elevator/not-fes",
        "core chase diverges",
        p_v.core_chase_terminated,
        !p_v.core_chase_terminated,
    );
    report.claim(
        "elevator/not-core-bts-evidence",
        "cc treewidth grows (Cor. 1)",
        p_v.core_uniform_bound(),
        p_v.core_uniform_bound() >= 3,
    );

    exit_with(report.finish());
}
