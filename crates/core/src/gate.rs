//! The admission-time analysis gate: static certificates + dynamic
//! width probes fused into one verdict and one chase plan.
//!
//! [`analyze_kb`] runs the static analyzer ([`chase_analysis::analyze_with_budget`])
//! over the ruleset, probes the KB's chase behaviour
//! ([`crate::classes::probe_classes`]), converts the probe's treewidth
//! profiles into [`DynamicEvidence`] via a plateau heuristic, upgrades
//! the report's verdicts with that evidence, and derives a stratified
//! [`ChasePlan`]. The result is everything a service needs at submit
//! time: is any decidability route open, and which strategy should the
//! job run under.
//!
//! The plateau heuristic compares the maximum certified treewidth upper
//! bound over the trailing half of a chase prefix against the leading
//! half: a profile that has stopped climbing is evidence (not proof) of
//! a width-bounded chase, a profile still climbing is divergence
//! evidence, and a profile too short to split is **no signal at all**
//! ([`WidthObservation::Unobserved`]) — a small probe budget must never
//! mint a refutation. On the paper's two headline KBs the heuristic
//! lands them in distinct plan shapes: the steepening staircase's
//! restricted profile climbs while its core profile plateaus
//! (`core-bounded-loop`), the inflating elevator's restricted profile
//! plateaus (`bounded-width-loop`).

use chase_analysis::{
    analyze_with_budget, stratified_plan_probed, ChasePlan, DynamicEvidence, RulesetReport,
    WidthObservation,
};
use chase_engine::RuleSet;
use chase_homomorphism::SearchBudget;

use crate::classes::{probe_classes_budgeted, ClassProbe};
use crate::kb::KnowledgeBase;

/// Default application budget for the admission-time dynamic probe —
/// chosen to separate the paper's two headline KBs: at 120 applications
/// the staircase's restricted profile has climbed from 2 to 7 while its
/// core profile sits flat at 2, and the elevator's restricted profile
/// sits flat at 3 (its slow inflation only shows up at much larger
/// horizons, where the probe would also get expensive).
pub const DEFAULT_PROBE_APPLICATIONS: usize = 120;

/// Everything the admission gate learned about one KB.
#[derive(Clone, Debug)]
pub struct AnalysisGate {
    /// The static report, upgraded with dynamic evidence.
    pub report: RulesetReport,
    /// The stratified chase plan derived from the dependency graph and
    /// the evidence.
    pub plan: ChasePlan,
    /// The dynamic evidence extracted from the probe.
    pub evidence: DynamicEvidence,
    /// The raw probe (treewidth profiles, termination flags).
    pub probe: ClassProbe,
}

impl AnalysisGate {
    /// Is at least one decidability route (fes / bts / core-bts) still
    /// open? Strict admission sheds jobs for which this is `false`.
    pub fn admissible(&self) -> bool {
        !self.report.refutes_every_route()
    }
}

/// Minimum profile length before the plateau heuristic speaks: shorter
/// prefixes have not left the fact base's influence yet.
const MIN_PROFILE: usize = 16;

/// Reads a width profile into a [`WidthObservation`]. Three outcomes,
/// kept deliberately distinct: a profile shorter than [`MIN_PROFILE`]
/// is [`WidthObservation::Unobserved`] — *no signal*, never a
/// divergence claim — while only a long-enough profile whose trailing
/// half exceeds its leading half counts as
/// [`WidthObservation::Climbing`].
fn plateau(profile: &[usize], terminated: bool) -> WidthObservation {
    if terminated {
        // A terminated chase is trivially width-bounded by its maximum.
        return WidthObservation::Plateau(profile.iter().copied().max().unwrap_or(0));
    }
    if profile.len() < MIN_PROFILE {
        return WidthObservation::Unobserved;
    }
    let mid = profile.len() / 2;
    let leading = profile[..mid].iter().copied().max().unwrap_or(0);
    let trailing = profile[mid..].iter().copied().max().unwrap_or(0);
    if trailing <= leading {
        WidthObservation::Plateau(trailing)
    } else {
        WidthObservation::Climbing
    }
}

/// Converts a raw class probe into the evidence shape the analyzer's
/// verdict lattice understands.
pub fn evidence_from_probe(probe: &ClassProbe) -> DynamicEvidence {
    DynamicEvidence {
        restricted_terminated: probe.restricted_chase_terminated,
        restricted_width: plateau(&probe.restricted_profile, probe.restricted_chase_terminated),
        core_terminated: probe.core_chase_terminated,
        core_width: plateau(&probe.core_profile, probe.core_chase_terminated),
    }
}

/// Runs the full admission-time analysis: static certificates under
/// `budget`, a dynamic probe of `probe_applications` chase steps, and
/// the fused report + plan.
///
/// `budget`'s deadline and cancel flags are threaded into every dynamic
/// sub-test — the MFA Skolem chase *and* both probe chases — so a
/// service can bound the whole analysis by wall clock.
///
/// The plan's cyclic unguarded strata are shaped by **per-component**
/// evidence: when such a stratum is a strict subset of the ruleset, the
/// KB restricted to its rules is probed separately, so a KB containing
/// both an elevator-like and a staircase-like component gets distinct
/// shapes for them instead of whichever evidence the whole-KB probe
/// happened to produce. A stratum covering the whole ruleset reuses the
/// whole-KB probe — the common case pays for exactly one probe.
pub fn analyze_kb(
    kb: &KnowledgeBase,
    budget: &SearchBudget,
    probe_applications: usize,
) -> AnalysisGate {
    let mut report = analyze_with_budget(&kb.rules, budget);
    let probe = probe_classes_budgeted(kb, probe_applications, budget);
    let evidence = evidence_from_probe(&probe);
    report.attach_evidence(&evidence);
    let plan = stratified_plan_probed(&kb.rules, |scc| {
        if scc.len() == kb.rules.len() {
            return evidence.clone();
        }
        let sub_rules: RuleSet = scc.iter().map(|&r| kb.rules.get(r).clone()).collect();
        let sub = KnowledgeBase::new(kb.vocab.clone(), kb.facts.clone(), sub_rules);
        evidence_from_probe(&probe_classes_budgeted(&sub, probe_applications, budget))
    });
    AnalysisGate {
        report,
        plan,
        evidence,
        probe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_analysis::StratumShape;

    fn budget() -> SearchBudget {
        SearchBudget::unlimited().with_node_limit(2_000)
    }

    // 80 probe applications already separate the two paper KBs and keep
    // these tests affordable in debug builds; the production default is
    // a little larger for margin.
    const TEST_PROBE: usize = 80;

    #[test]
    fn staircase_gets_core_bounded_plan() {
        let kb = KnowledgeBase::staircase();
        let gate = analyze_kb(&kb, &budget(), TEST_PROBE);
        // Not weakly acyclic, and the restricted profile keeps climbing
        // while the core profile plateaus: core-bounded evidence.
        assert!(!gate.report.weakly_acyclic);
        assert_eq!(gate.evidence.restricted_width, WidthObservation::Climbing);
        assert!(gate.evidence.core_width.plateau().is_some());
        assert!(gate.report.certified_core_bts());
        assert!(gate
            .plan
            .strata
            .iter()
            .any(|s| s.shape == StratumShape::CoreBoundedLoop));
        assert!(gate.admissible());
    }

    #[test]
    fn elevator_gets_bounded_width_plan() {
        let kb = KnowledgeBase::elevator();
        let gate = analyze_kb(&kb, &budget(), TEST_PROBE);
        // The elevator has a treewidth-1 universal model; the probe sees
        // a plateauing restricted profile, so bts stays certified-or-open
        // and the plan picks a restricted-width shape — distinct from
        // the staircase's core-bounded shape.
        assert!(gate.evidence.restricted_width.plateau().is_some());
        assert!(!gate.report.bts.is_refuted());
        assert!(gate
            .plan
            .strata
            .iter()
            .any(|s| s.shape == StratumShape::BoundedWidthLoop));
        assert!(gate.admissible());
    }

    #[test]
    fn terminating_kb_is_admissible_with_terminating_plan() {
        let kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X).")
            .unwrap();
        let gate = analyze_kb(&kb, &budget(), 60);
        assert!(gate.report.certified_fes());
        assert!(gate.admissible());
        assert!(gate.plan.strata.iter().all(|s| !s.shape.needs_core()));
    }
}
