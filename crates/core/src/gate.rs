//! The admission-time analysis gate: static certificates + dynamic
//! width probes fused into one verdict and one chase plan.
//!
//! [`analyze_kb`] runs the static analyzer ([`chase_analysis::analyze_with_budget`])
//! over the ruleset, probes the KB's chase behaviour
//! ([`crate::classes::probe_classes`]), converts the probe's treewidth
//! profiles into [`DynamicEvidence`] via a plateau heuristic, upgrades
//! the report's verdicts with that evidence, and derives a stratified
//! [`ChasePlan`]. The result is everything a service needs at submit
//! time: is any decidability route open, and which strategy should the
//! job run under.
//!
//! The plateau heuristic compares the maximum certified treewidth upper
//! bound over the trailing half of a chase prefix against the leading
//! half: a profile that has stopped climbing is evidence (not proof) of
//! a width-bounded chase, a profile still climbing is divergence
//! evidence, and a profile too short to split is **no signal at all**
//! ([`WidthObservation::Unobserved`]) — a small probe budget must never
//! mint a refutation. On the paper's two headline KBs the heuristic
//! lands them in distinct plan shapes: the steepening staircase's
//! restricted profile climbs while its core profile plateaus
//! (`core-bounded-loop`), the inflating elevator's restricted profile
//! plateaus (`bounded-width-loop`).

use chase_analysis::{
    analyze_with_budget, cost_model, stratified_plan_probed, BudgetEnvelope, ChasePlan, CostClass,
    DynamicEvidence, KBoundedOutcome, RulesetReport, RulesetShape, WidthObservation,
};
use chase_engine::RuleSet;
use chase_homomorphism::SearchBudget;

use crate::classes::{probe_classes_budgeted, ClassProbe};
use crate::kb::KnowledgeBase;

/// Default application budget for the admission-time dynamic probe —
/// chosen to separate the paper's two headline KBs: at 120 applications
/// the staircase's restricted profile has climbed from 2 to 7 while its
/// core profile sits flat at 2, and the elevator's restricted profile
/// sits flat at 3 (its slow inflation only shows up at much larger
/// horizons, where the probe would also get expensive).
pub const DEFAULT_PROBE_APPLICATIONS: usize = 120;

/// Tunables of the dynamic width probe and its plateau heuristic —
/// the constants that used to be scattered magic numbers, gathered so
/// callers (and the `analyze --probe-apps` flag) can vary them
/// coherently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Chase applications granted to each probe run.
    pub applications: usize,
    /// Minimum profile length before the plateau heuristic speaks:
    /// shorter prefixes have not left the fact base's influence yet and
    /// read as [`WidthObservation::Unobserved`].
    pub min_profile: usize,
    /// Percentage of the profile forming the *leading* window; the
    /// trailing window is the rest. The default 50/50 split compares
    /// the two halves.
    pub split_percent: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self {
            applications: DEFAULT_PROBE_APPLICATIONS,
            min_profile: 16,
            split_percent: 50,
        }
    }
}

impl ProbeConfig {
    /// A default-shaped config with a different probe horizon.
    pub fn with_applications(applications: usize) -> Self {
        Self {
            applications,
            ..Self::default()
        }
    }

    /// Reads a width profile into a [`WidthObservation`]. Three
    /// outcomes, kept deliberately distinct: a profile shorter than
    /// `min_profile` is [`WidthObservation::Unobserved`] — *no signal*,
    /// never a divergence claim — while only a long-enough profile
    /// whose trailing window exceeds its leading window counts as
    /// [`WidthObservation::Climbing`].
    pub fn plateau(&self, profile: &[usize], terminated: bool) -> WidthObservation {
        if terminated {
            // A terminated chase is trivially width-bounded by its max.
            return WidthObservation::Plateau(profile.iter().copied().max().unwrap_or(0));
        }
        if profile.len() < self.min_profile.max(2) {
            return WidthObservation::Unobserved;
        }
        let mid = (profile.len() * self.split_percent / 100).clamp(1, profile.len() - 1);
        let leading = profile[..mid].iter().copied().max().unwrap_or(0);
        let trailing = profile[mid..].iter().copied().max().unwrap_or(0);
        if trailing <= leading {
            WidthObservation::Plateau(trailing)
        } else {
            WidthObservation::Climbing
        }
    }
}

/// Everything the admission gate learned about one KB.
#[derive(Clone, Debug)]
pub struct AnalysisGate {
    /// The static report, upgraded with dynamic evidence.
    pub report: RulesetReport,
    /// The stratified chase plan derived from the dependency graph and
    /// the evidence. Carries a hard application ceiling when a
    /// k-boundedness certificate priced one.
    pub plan: ChasePlan,
    /// The dynamic evidence extracted from the probe.
    pub evidence: DynamicEvidence,
    /// The raw probe (treewidth profiles, termination flags).
    pub probe: ClassProbe,
    /// The complexity tier the certificates place the ruleset in.
    pub cost_class: CostClass,
    /// The certificate-priced budget envelope for admitted jobs.
    pub envelope: BudgetEnvelope,
    /// Which certificate (or refutation) priced the envelope — the
    /// provenance string surfaced on the wire.
    pub provenance: String,
}

impl AnalysisGate {
    /// Is at least one decidability route (fes / bts / core-bts) still
    /// open? Strict admission sheds jobs for which this is `false`.
    pub fn admissible(&self) -> bool {
        !self.report.refutes_every_route()
    }
}

/// Places the (evidence-upgraded) report in a complexity tier and names
/// the certificate responsible — the provenance that accompanies the
/// envelope onto the wire.
fn classify_cost(report: &RulesetReport) -> (CostClass, String) {
    if report.datalog {
        return (CostClass::Polynomial, "datalog".to_string());
    }
    if let KBoundedOutcome::Bounded { k, .. } = report.kbounded {
        // The quantitative round bound prices the job even when a
        // cheaper certificate decided the verdict.
        return (CostClass::BoundedRounds(k), "k-bounded".to_string());
    }
    if let Some(c) = report.terminating.certificate() {
        return (CostClass::Terminating, c.name().to_string());
    }
    if let Some(c) = report.bts.certificate().or(report.core_bts.certificate()) {
        return (CostClass::BoundedWidth, c.name().to_string());
    }
    let provenance = report
        .terminating
        .refutation()
        .map_or("inconclusive", |r| r.name());
    (CostClass::Open, provenance.to_string())
}

/// Converts a raw class probe into the evidence shape the analyzer's
/// verdict lattice understands, under the default [`ProbeConfig`].
pub fn evidence_from_probe(probe: &ClassProbe) -> DynamicEvidence {
    evidence_from_probe_with(probe, &ProbeConfig::default())
}

/// Converts a raw class probe into evidence under an explicit
/// [`ProbeConfig`].
pub fn evidence_from_probe_with(probe: &ClassProbe, cfg: &ProbeConfig) -> DynamicEvidence {
    DynamicEvidence {
        restricted_terminated: probe.restricted_chase_terminated,
        restricted_width: cfg.plateau(&probe.restricted_profile, probe.restricted_chase_terminated),
        core_terminated: probe.core_chase_terminated,
        core_width: cfg.plateau(&probe.core_profile, probe.core_chase_terminated),
    }
}

/// Runs the full admission-time analysis: static certificates under
/// `budget`, a dynamic probe of `probe_applications` chase steps, and
/// the fused report + plan.
///
/// `budget`'s deadline and cancel flags are threaded into every dynamic
/// sub-test — the MFA Skolem chase *and* both probe chases — so a
/// service can bound the whole analysis by wall clock.
///
/// The plan's cyclic unguarded strata are shaped by **per-component**
/// evidence: when such a stratum is a strict subset of the ruleset, the
/// KB restricted to its rules is probed separately, so a KB containing
/// both an elevator-like and a staircase-like component gets distinct
/// shapes for them instead of whichever evidence the whole-KB probe
/// happened to produce. A stratum covering the whole ruleset reuses the
/// whole-KB probe — the common case pays for exactly one probe.
pub fn analyze_kb(
    kb: &KnowledgeBase,
    budget: &SearchBudget,
    probe_applications: usize,
) -> AnalysisGate {
    analyze_kb_with(
        kb,
        budget,
        &ProbeConfig::with_applications(probe_applications),
    )
}

/// Like [`analyze_kb`], with full control over the probe tunables.
pub fn analyze_kb_with(
    kb: &KnowledgeBase,
    budget: &SearchBudget,
    probe: &ProbeConfig,
) -> AnalysisGate {
    let mut report = analyze_with_budget(&kb.rules, budget);
    let raw_probe = probe_classes_budgeted(kb, probe.applications, budget);
    let evidence = evidence_from_probe_with(&raw_probe, probe);
    report.attach_evidence(&evidence);
    let mut plan = stratified_plan_probed(&kb.rules, |scc| {
        if scc.len() == kb.rules.len() {
            return evidence.clone();
        }
        let sub_rules: RuleSet = scc.iter().map(|&r| kb.rules.get(r).clone()).collect();
        let sub = KnowledgeBase::new(kb.vocab.clone(), kb.facts.clone(), sub_rules);
        evidence_from_probe_with(
            &probe_classes_budgeted(&sub, probe.applications, budget),
            probe,
        )
    });
    let (cost_class, provenance) = classify_cost(&report);
    let envelope = cost_model(cost_class, &RulesetShape::of(&kb.rules));
    if matches!(cost_class, CostClass::BoundedRounds(_)) {
        // A k-boundedness certificate turns the envelope's application
        // allowance into a *hard* plan-level ceiling: the chase of any
        // instance saturates within k rounds, so running past the
        // priced allowance is never useful work.
        plan = plan.with_max_apps(envelope.max_apps);
    }
    AnalysisGate {
        report,
        plan,
        evidence,
        probe: raw_probe,
        cost_class,
        envelope,
        provenance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_analysis::StratumShape;

    fn budget() -> SearchBudget {
        SearchBudget::unlimited().with_node_limit(2_000)
    }

    // 80 probe applications already separate the two paper KBs and keep
    // these tests affordable in debug builds; the production default is
    // a little larger for margin.
    const TEST_PROBE: usize = 80;

    #[test]
    fn staircase_gets_core_bounded_plan() {
        let kb = KnowledgeBase::staircase();
        let gate = analyze_kb(&kb, &budget(), TEST_PROBE);
        // Not weakly acyclic, and the restricted profile keeps climbing
        // while the core profile plateaus: core-bounded evidence.
        assert!(!gate.report.weakly_acyclic);
        assert_eq!(gate.evidence.restricted_width, WidthObservation::Climbing);
        assert!(gate.evidence.core_width.plateau().is_some());
        assert!(gate.report.certified_core_bts());
        assert!(gate
            .plan
            .strata
            .iter()
            .any(|s| s.shape == StratumShape::CoreBoundedLoop));
        assert!(gate.admissible());
    }

    #[test]
    fn elevator_gets_bounded_width_plan() {
        let kb = KnowledgeBase::elevator();
        let gate = analyze_kb(&kb, &budget(), TEST_PROBE);
        // The elevator has a treewidth-1 universal model; the probe sees
        // a plateauing restricted profile, so bts stays certified-or-open
        // and the plan picks a restricted-width shape — distinct from
        // the staircase's core-bounded shape.
        assert!(gate.evidence.restricted_width.plateau().is_some());
        assert!(!gate.report.bts.is_refuted());
        assert!(gate
            .plan
            .strata
            .iter()
            .any(|s| s.shape == StratumShape::BoundedWidthLoop));
        assert!(gate.admissible());
    }

    #[test]
    fn terminating_kb_is_admissible_with_terminating_plan() {
        let kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X).")
            .unwrap();
        let gate = analyze_kb(&kb, &budget(), 60);
        assert!(gate.report.certified_fes());
        assert!(gate.admissible());
        assert!(gate.plan.strata.iter().all(|s| !s.shape.needs_core()));
        // The pipeline is k-bounded; the certificate prices the job and
        // the envelope becomes a hard plan-level application ceiling.
        assert!(matches!(gate.cost_class, CostClass::BoundedRounds(_)));
        assert_eq!(gate.provenance, "k-bounded");
        assert_eq!(gate.plan.max_apps, Some(gate.envelope.max_apps));
    }

    #[test]
    fn refuted_kb_gets_the_open_envelope() {
        // Unguarded, cyclic, diverging, and probed under a horizon too
        // short for width evidence: no certificate anywhere, so the
        // envelope collapses to the legacy tight caps with the MFA
        // refutation as provenance.
        let kb = KnowledgeBase::from_text(
            "h(a, b). v(a, a). F: h(X, Y), v(X, X2) -> h(X2, Y2), v(Y, Y2).",
        )
        .unwrap();
        let gate = analyze_kb(&kb, &budget(), 10);
        assert_eq!(gate.cost_class, CostClass::Open);
        assert_eq!(gate.envelope.max_apps, 1_000);
        assert_eq!(gate.provenance, "mfa-cycle");
    }

    #[test]
    fn datalog_kb_is_priced_polynomial() {
        let kb = KnowledgeBase::from_text("e(a, b). T: e(X, Y), e(Y, Z) -> e(X, Z).").unwrap();
        let gate = analyze_kb(&kb, &budget(), 40);
        assert_eq!(gate.cost_class, CostClass::Polynomial);
        assert_eq!(gate.provenance, "datalog");
        assert!(gate.envelope.max_apps >= 2_000);
        // Saturation is not round-bounded, so no hard plan ceiling.
        assert_eq!(gate.plan.max_apps, None);
    }

    #[test]
    fn probe_config_tunes_the_plateau_heuristic() {
        let cfg = ProbeConfig::default();
        // Too short to judge under the default minimum.
        assert_eq!(cfg.plateau(&[1, 2, 3], false), WidthObservation::Unobserved);
        let relaxed = ProbeConfig {
            min_profile: 2,
            ..ProbeConfig::default()
        };
        assert_eq!(
            relaxed.plateau(&[1, 2, 3], false),
            WidthObservation::Climbing
        );
        assert_eq!(
            relaxed.plateau(&[3, 3, 3, 2], false),
            WidthObservation::Plateau(3)
        );
        // A later split point moves the same profile from climbing to
        // plateaued: the trailing window no longer sees the early rise.
        let late_split = ProbeConfig {
            min_profile: 2,
            split_percent: 80,
            ..ProbeConfig::default()
        };
        assert_eq!(
            late_split.plateau(&[1, 2, 3, 3, 3], false),
            WidthObservation::Plateau(3)
        );
        // Termination trumps everything.
        assert_eq!(cfg.plateau(&[5, 9], true), WidthObservation::Plateau(9));
    }
}
