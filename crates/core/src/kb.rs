//! Knowledge bases: the `(F, Σ)` pairs of the paper, with convenience
//! constructors and chase access.

use chase_atoms::{AtomSet, Vocabulary};
use chase_engine::{run_chase, ChaseConfig, ChaseResult, RuleSet};
use chase_parser::{parse_atoms_with, parse_program, ParseError, Program};

/// A knowledge base `K = (F, Σ)` together with its vocabulary.
#[derive(Clone, Debug)]
pub struct KnowledgeBase {
    /// Symbol tables.
    pub vocab: Vocabulary,
    /// The fact base `F` (a finite instance).
    pub facts: AtomSet,
    /// The rule set `Σ`.
    pub rules: RuleSet,
}

impl KnowledgeBase {
    /// Builds a KB from parts.
    pub fn new(vocab: Vocabulary, facts: AtomSet, rules: RuleSet) -> Self {
        KnowledgeBase {
            vocab,
            facts,
            rules,
        }
    }

    /// Parses a KB from the `chase-parser` text syntax. Queries in the
    /// source are ignored here (use [`KnowledgeBase::from_program`] to
    /// keep them).
    pub fn from_text(src: &str) -> Result<Self, ParseError> {
        Ok(Self::from_program(parse_program(src)?).0)
    }

    /// Converts a parsed [`Program`], returning the KB and its queries.
    pub fn from_program(prog: Program) -> (Self, Vec<(String, AtomSet)>) {
        (
            KnowledgeBase {
                vocab: prog.vocab,
                facts: prog.facts,
                rules: prog.rules,
            },
            prog.queries,
        )
    }

    /// The paper's steepening staircase KB `K_h` (Section 6).
    pub fn staircase() -> Self {
        let s = chase_kbs::Staircase::new();
        KnowledgeBase {
            vocab: s.vocab,
            facts: s.facts,
            rules: s.rules,
        }
    }

    /// The paper's inflating elevator KB `K_v` (Section 7).
    pub fn elevator() -> Self {
        let e = chase_kbs::Elevator::new();
        KnowledgeBase {
            vocab: e.vocab,
            facts: e.facts,
            rules: e.rules,
        }
    }

    /// Parses a CQ against this KB's vocabulary (fresh variable scope).
    pub fn parse_query(&mut self, src: &str) -> Result<AtomSet, ParseError> {
        parse_atoms_with(&mut self.vocab, "q", src)
    }

    /// Runs a chase on this KB (the vocabulary is cloned, so the KB is
    /// reusable afterwards).
    pub fn chase(&self, cfg: &ChaseConfig) -> ChaseResult {
        let mut vocab = self.vocab.clone();
        run_chase(&mut vocab, &self.facts, &self.rules, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::ChaseVariant;

    #[test]
    fn from_text_and_chase() {
        let kb =
            KnowledgeBase::from_text("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).").unwrap();
        let res = kb.chase(&ChaseConfig::variant(ChaseVariant::Core));
        assert!(res.outcome.terminated());
        assert_eq!(res.final_instance.len(), 3);
    }

    #[test]
    fn paper_kbs_construct() {
        let kh = KnowledgeBase::staircase();
        assert_eq!(kh.rules.len(), 4);
        assert_eq!(kh.facts.len(), 2);
        let kv = KnowledgeBase::elevator();
        assert_eq!(kv.rules.len(), 7);
        assert_eq!(kv.facts.len(), 4);
    }

    #[test]
    fn parse_query_against_kb() {
        let mut kb = KnowledgeBase::from_text("r(a, b).").unwrap();
        let q = kb.parse_query("r(X, Y)").unwrap();
        assert_eq!(q.len(), 1);
    }
}
