//! Budgeted CQ entailment through the chase.
//!
//! Soundness of the two certified answers:
//!
//! * **Entailed** — every chase element `F_i` is *universal* for the KB
//!   (Proposition 1.1): it maps homomorphically into every model. If the
//!   query maps into some `F_i` (equivalently, into the natural
//!   aggregation of the recorded prefix), it maps into every model.
//! * **Not entailed (certified)** — if the restricted/core chase
//!   terminates, its final instance is a (finite) universal *model*; a
//!   query that fails to map into it is not entailed.
//!
//! When the budget runs out without either certificate the result is
//! [`Entailment::Unknown`] with the horizon reached — Theorem 2 tells us
//! a complete procedure exists for recurringly treewidth-bounded KBs, but
//! any implementation must still choose finite budgets.

use std::ops::ControlFlow;

use chase_atoms::AtomSet;
use chase_engine::{run_chase_observed, ChaseConfig, ChaseOutcome, ChaseVariant};
use chase_homomorphism::maps_to;

use crate::kb::KnowledgeBase;

/// The result of a budgeted entailment check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entailment {
    /// `K ⊨ Q`, witnessed at the given rule-application count.
    Entailed {
        /// Number of rule applications performed when the witness
        /// homomorphism appeared.
        applications: usize,
    },
    /// `K ⊭ Q`, certified by a terminating chase (finite universal
    /// model).
    NotEntailed {
        /// Size (in atoms) of the finite universal model.
        universal_model_atoms: usize,
    },
    /// Budget exhausted without a certificate.
    Unknown {
        /// Rule applications performed before giving up.
        applications: usize,
    },
}

impl Entailment {
    /// Is this a definite positive answer?
    pub fn is_entailed(&self) -> bool {
        matches!(self, Entailment::Entailed { .. })
    }

    /// Is this a definite negative answer?
    pub fn is_not_entailed(&self) -> bool {
        matches!(self, Entailment::NotEntailed { .. })
    }
}

/// Decides `K ⊨ Q` with the given chase configuration (the variant
/// matters: the core chase terminates strictly more often, the restricted
/// chase is cheaper per step).
///
/// The query is checked against the facts first, then after every rule
/// application, so the positive side stops as early as possible.
pub fn entail(kb: &KnowledgeBase, query: &AtomSet, cfg: &ChaseConfig) -> Entailment {
    if maps_to(query, &kb.facts) {
        return Entailment::Entailed { applications: 0 };
    }
    let mut vocab = kb.vocab.clone();
    let mut hit_at = None;
    let res = run_chase_observed(&mut vocab, &kb.facts, &kb.rules, cfg, |inst, stats| {
        if maps_to(query, inst) {
            hit_at = Some(stats.applications);
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    if let Some(applications) = hit_at {
        return Entailment::Entailed { applications };
    }
    match res.outcome {
        ChaseOutcome::Terminated
            if matches!(cfg.variant, ChaseVariant::Restricted | ChaseVariant::Core) =>
        {
            Entailment::NotEntailed {
                universal_model_atoms: res.final_instance.len(),
            }
        }
        // An oblivious-variant fixpoint is also a universal model, but we
        // only applied unsatisfied-trigger reasoning to the restricted
        // family; the oblivious fixpoint satisfies all triggers too, so it
        // is equally certifying.
        ChaseOutcome::Terminated => Entailment::NotEntailed {
            universal_model_atoms: res.final_instance.len(),
        },
        _ => Entailment::Unknown {
            applications: res.stats.applications,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::from_text("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).").unwrap()
    }

    #[test]
    fn entailed_by_facts() {
        let mut k = kb();
        let q = k.parse_query("r(a, b)").unwrap();
        assert_eq!(
            entail(&k, &q, &ChaseConfig::variant(ChaseVariant::Core)),
            Entailment::Entailed { applications: 0 }
        );
    }

    #[test]
    fn entailed_by_closure() {
        let mut k = kb();
        let q = k.parse_query("r(a, c)").unwrap();
        assert!(entail(&k, &q, &ChaseConfig::variant(ChaseVariant::Core)).is_entailed());
    }

    #[test]
    fn refuted_on_termination() {
        let mut k = kb();
        let q = k.parse_query("r(c, a)").unwrap();
        let res = entail(&k, &q, &ChaseConfig::variant(ChaseVariant::Core));
        assert!(res.is_not_entailed(), "{res:?}");
    }

    #[test]
    fn unknown_on_budget() {
        let mut k = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> r(Y, Z).").unwrap();
        let q = k.parse_query("r(X, a)").unwrap(); // never derivable
        let cfg = ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(5);
        assert_eq!(
            entail(&k, &q, &cfg),
            Entailment::Unknown { applications: 5 }
        );
    }

    #[test]
    fn entailed_in_nonterminating_kb() {
        // Chain KB entails arbitrarily long r-paths.
        let mut k = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> r(Y, Z).").unwrap();
        let q = k.parse_query("r(A, B), r(B, C), r(C, D), r(D, E)").unwrap();
        let cfg = ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(50);
        assert!(entail(&k, &q, &cfg).is_entailed());
    }
}
