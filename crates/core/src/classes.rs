//! Empirical probes for the decidable classes of Figure 1.
//!
//! The classes are properties of *all* fact bases and *infinite*
//! sequences, so membership is only semi-decidable in general; these
//! probes report certified finite-horizon evidence:
//!
//! * **fes probe** — does the core chase terminate within budget on the
//!   given facts? (Termination certifies a finite universal model;
//!   non-termination within budget is evidence, not proof, of divergence.)
//! * **bts probe** — the certified treewidth profile of a fair restricted
//!   chase prefix (uniform bound = max of certified upper bounds).
//! * **core-bts probe** — the same for the core chase, plus the
//!   *recurring* bound proxy (the minimum over the profile's tail, per
//!   Section 5's recurring μ-boundedness).

use chase_engine::{
    boundedness::treewidth_profile, run_chase, ChaseConfig, ChaseVariant, SchedulerKind,
};
use chase_homomorphism::SearchBudget;
use chase_treewidth::measure::{recurring_bound_from, uniform_bound};

use crate::kb::KnowledgeBase;

/// Evidence gathered about one KB's class memberships.
#[derive(Clone, Debug)]
pub struct ClassProbe {
    /// Did the core chase terminate (fes evidence)?
    pub core_chase_terminated: bool,
    /// Did the restricted chase terminate (any terminating chase is
    /// trivially treewidth-bounded)?
    pub restricted_chase_terminated: bool,
    /// Applications performed by the core chase worker.
    pub core_applications: usize,
    /// Certified per-step treewidth upper bounds of the restricted chase.
    pub restricted_profile: Vec<usize>,
    /// Certified per-step treewidth upper bounds of the core chase.
    pub core_profile: Vec<usize>,
}

impl ClassProbe {
    /// The uniform treewidth bound observed on the restricted chase
    /// prefix (bts evidence when it stays flat as budgets grow).
    pub fn restricted_uniform_bound(&self) -> usize {
        uniform_bound(&self.restricted_profile)
    }

    /// The uniform treewidth bound observed on the core chase prefix.
    pub fn core_uniform_bound(&self) -> usize {
        uniform_bound(&self.core_profile)
    }

    /// The recurring-bound proxy on the core chase: the minimum certified
    /// upper bound over the trailing half of the profile.
    pub fn core_recurring_bound(&self) -> Option<usize> {
        recurring_bound_from(&self.core_profile, self.core_profile.len() / 2)
    }
}

/// Probes a KB's class memberships with the given application budget
/// and no wall-clock or cancellation control.
pub fn probe_classes(kb: &KnowledgeBase, budget: usize) -> ClassProbe {
    probe_classes_budgeted(kb, budget, &SearchBudget::unlimited())
}

/// [`probe_classes`] under a shared [`SearchBudget`]: the budget's
/// deadline and cancel flags are threaded into both probe chases (and
/// their retraction searches), so an admission-time caller can cut a
/// probe that outlives its welcome — a probe interrupted mid-chase just
/// reports a short profile and a non-terminated outcome, which the
/// evidence heuristics treat as "no signal".
pub fn probe_classes_budgeted(
    kb: &KnowledgeBase,
    budget: usize,
    search: &SearchBudget,
) -> ClassProbe {
    // Only the *interruption* half of the budget is forwarded: its node
    // limit is sized for the MFA test's homomorphism searches, and
    // letting it truncate the probes' retraction searches would skew
    // the width profiles the evidence is read from.
    let mut interrupt = SearchBudget::unlimited();
    interrupt.deadline = search.deadline;
    interrupt.cancel = search.cancel.clone();
    let base = |variant| {
        ChaseConfig::variant(variant)
            .with_scheduler(SchedulerKind::DatalogFirst)
            .with_max_applications(budget)
            .with_max_atoms(100_000)
            .with_search_budget(interrupt.clone())
    };
    let mut vocab = kb.vocab.clone();
    let core = run_chase(&mut vocab, &kb.facts, &kb.rules, &base(ChaseVariant::Core));
    let mut vocab = kb.vocab.clone();
    let restricted = run_chase(
        &mut vocab,
        &kb.facts,
        &kb.rules,
        &base(ChaseVariant::Restricted),
    );
    ClassProbe {
        core_chase_terminated: core.outcome.terminated(),
        restricted_chase_terminated: restricted.outcome.terminated(),
        core_applications: core.stats.applications,
        restricted_profile: treewidth_profile(restricted.derivation.as_ref().expect("full record"))
            .iter()
            .map(|b| b.upper)
            .collect(),
        core_profile: treewidth_profile(core.derivation.as_ref().expect("full record"))
            .iter()
            .map(|b| b.upper)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_kbs::witnesses;

    #[test]
    fn probes_match_witness_expectations() {
        for w in witnesses::all_witnesses() {
            let kb = KnowledgeBase::new(w.vocab.clone(), w.facts.clone(), w.rules.clone());
            let probe = probe_classes(&kb, 60);
            assert_eq!(
                probe.core_chase_terminated, w.expect_fes,
                "fes probe for {}",
                w.name
            );
        }
    }

    #[test]
    fn bts_witness_keeps_flat_profile() {
        let w = chase_kbs::witnesses::bts_not_fes();
        let kb = KnowledgeBase::new(w.vocab, w.facts, w.rules);
        let probe = probe_classes(&kb, 30);
        assert!(!probe.core_chase_terminated);
        assert!(probe.restricted_uniform_bound() <= 1);
        assert!(probe.core_uniform_bound() <= 1);
        assert_eq!(probe.core_recurring_bound(), Some(1));
    }

    #[test]
    fn grid_grower_profile_climbs() {
        let w = chase_kbs::witnesses::grid_grower();
        let kb = KnowledgeBase::new(w.vocab, w.facts, w.rules);
        let probe = probe_classes(&kb, 60);
        assert!(!probe.core_chase_terminated);
        assert!(probe.restricted_uniform_bound() >= 2);
    }
}
