//! Convenience re-exports: `use chase_core::prelude::*;` pulls in the
//! whole working vocabulary of the library.

pub use chase_atoms::{
    Atom, AtomSet, ConstId, DisplayWith, PredId, Substitution, Term, VarId, Vocabulary,
};
pub use chase_engine::{
    aggregation::natural_aggregation, boundedness::treewidth_profile, run_chase,
    run_chase_observed, ChaseConfig, ChaseOutcome, ChaseResult, ChaseVariant, Derivation,
    RecordLevel, RobustSequence, Rule, RuleSet, SchedulerKind, Trigger,
};
pub use chase_homomorphism::{
    core_of, find_homomorphism, hom_equivalent, is_core, isomorphism, maps_to,
};
pub use chase_parser::{parse_program, Program};
pub use chase_treewidth::{
    contains_grid, treewidth, treewidth_bounds, GridLabeling, TreeDecomposition, TwBounds,
};

pub use crate::classes::{probe_classes, probe_classes_budgeted, ClassProbe};
pub use crate::cq::{
    certain_answers, certain_answers_budgeted, collect_answer_tuples, cq_contained_in,
    cq_equivalent, entail_ucq, minimize_cq, AnswerQuery, AnswerTuples, CertainAnswers, Ucq,
};
pub use crate::decide::{decide, DecideConfig, DecideOutcome};
pub use crate::entail::{entail, Entailment};
pub use crate::kb::KnowledgeBase;
