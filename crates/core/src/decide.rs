//! The Theorem 1 twin semi-decision procedure.
//!
//! The paper proves decidability of CQ entailment for KBs with a
//! recurringly treewidth-bounded core chase by *racing two
//! semi-decision procedures*:
//!
//! 1. a procedure guaranteed to detect `K ⊨ Q` in finite time
//!    (completeness of first-order logic — here: a fair chase whose
//!    elements are universal, checked against the query after every
//!    application), and
//! 2. a procedure guaranteed to detect `K ⊭ Q` (the paper: satisfiability
//!    of `F ∧ Σ ∧ ¬Q` over structures of treewidth `k`, for growing `k`,
//!    via Courcelle-style MSO decidability — here, the implementable
//!    fragment: chase termination yields a finite universal model that
//!    refutes the query).
//!
//! This module implements that architecture literally with two parallel
//! chase workers (core + restricted — they terminate in incomparable
//! situations, so racing both widens the certified-No reach), sharing an
//! early-stop flag. The full MSO-over-bounded-treewidth decision
//! procedure is non-implementable at astronomically large constants; the
//! substitution is documented in `DESIGN.md` and the outcome type is
//! explicit about certification.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use chase_atoms::AtomSet;
use chase_engine::{run_chase_observed, ChaseConfig, ChaseOutcome, ChaseVariant};
use chase_homomorphism::maps_to;

use crate::kb::KnowledgeBase;

/// Budgets for the twin procedure.
#[derive(Clone, Debug)]
pub struct DecideConfig {
    /// Rule-application budget for the restricted worker (and the
    /// heuristic fallback probe).
    pub max_applications: usize,
    /// Atom budget per worker.
    pub max_atoms: usize,
    /// Rule-application budget for the core worker. The core worker's
    /// role is *termination detection* (its per-step core computation is
    /// expensive and, on a divergent KB, pure overhead), so this is
    /// usually much smaller than `max_applications`.
    pub core_max_applications: usize,
}

impl Default for DecideConfig {
    fn default() -> Self {
        DecideConfig {
            max_applications: 2_000,
            max_atoms: 200_000,
            core_max_applications: 300,
        }
    }
}

/// Outcome of the twin procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecideOutcome {
    /// `K ⊨ Q` — certified by a homomorphism into a universal chase
    /// element.
    Entailed {
        /// Which worker found it.
        by: ChaseVariant,
        /// Applications performed by that worker.
        applications: usize,
    },
    /// `K ⊭ Q` — certified by a terminating chase (finite universal
    /// model not satisfying the query).
    NotEntailed {
        /// Which worker terminated.
        by: ChaseVariant,
        /// Atoms of the finite universal model.
        universal_model_atoms: usize,
    },
    /// Both workers exhausted their budgets without a certificate. The
    /// boolean reports the *heuristic* answer (did the query map into the
    /// deepest universal prefix seen?) — `false` strongly suggests
    /// non-entailment but is not a proof.
    Exhausted {
        /// Heuristic evidence: query present in some chase element.
        heuristic_entailed: bool,
    },
}

/// Races the two semi-decision procedures of Theorem 1.
pub fn decide(kb: &KnowledgeBase, query: &AtomSet, cfg: &DecideConfig) -> DecideOutcome {
    if maps_to(query, &kb.facts) {
        return DecideOutcome::Entailed {
            by: ChaseVariant::Core,
            applications: 0,
        };
    }

    let stop = AtomicBool::new(false);
    let verdict: Mutex<Option<DecideOutcome>> = Mutex::new(None);

    let worker = |variant: ChaseVariant| {
        let budget = if variant == ChaseVariant::Core {
            cfg.core_max_applications
        } else {
            cfg.max_applications
        };
        let chase_cfg = ChaseConfig::variant(variant)
            .with_max_applications(budget)
            .with_max_atoms(cfg.max_atoms)
            .with_record(chase_engine::RecordLevel::FinalOnly);
        let mut vocab = kb.vocab.clone();
        let mut hit = None;
        let res = run_chase_observed(
            &mut vocab,
            &kb.facts,
            &kb.rules,
            &chase_cfg,
            |inst, stats| {
                if stop.load(Ordering::Relaxed) {
                    return ControlFlow::Break(());
                }
                if maps_to(query, inst) {
                    hit = Some(stats.applications);
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            },
        );
        let outcome = if let Some(applications) = hit {
            Some(DecideOutcome::Entailed {
                by: variant,
                applications,
            })
        } else {
            match res.outcome {
                ChaseOutcome::Terminated => Some(DecideOutcome::NotEntailed {
                    by: variant,
                    universal_model_atoms: res.final_instance.len(),
                }),
                _ => None,
            }
        };
        if let Some(out) = outcome {
            let mut slot = verdict.lock().expect("verdict lock poisoned");
            if slot.is_none() {
                *slot = Some(out);
                stop.store(true, Ordering::Relaxed);
            }
        }
    };

    std::thread::scope(|s| {
        s.spawn(|| worker(ChaseVariant::Core));
        s.spawn(|| worker(ChaseVariant::Restricted));
    });

    if let Some(out) = verdict.into_inner().expect("verdict lock poisoned") {
        return out;
    }
    // No certificate: fall back to a heuristic deep probe on the cheaper
    // restricted chase.
    let mut vocab = kb.vocab.clone();
    let mut seen = false;
    let chase_cfg = ChaseConfig::variant(ChaseVariant::Restricted)
        .with_max_applications(cfg.max_applications)
        .with_max_atoms(cfg.max_atoms)
        .with_record(chase_engine::RecordLevel::FinalOnly);
    let _ = run_chase_observed(&mut vocab, &kb.facts, &kb.rules, &chase_cfg, |inst, _| {
        if maps_to(query, inst) {
            seen = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    DecideOutcome::Exhausted {
        heuristic_entailed: seen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decides_positive_on_nonterminating_kb() {
        let mut kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> r(Y, Z).").unwrap();
        let q = kb.parse_query("r(A, B), r(B, C), r(C, D)").unwrap();
        let out = decide(&kb, &q, &DecideConfig::default());
        assert!(matches!(out, DecideOutcome::Entailed { .. }), "{out:?}");
    }

    #[test]
    fn decides_negative_on_terminating_kb() {
        let mut kb =
            KnowledgeBase::from_text("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).").unwrap();
        let q = kb.parse_query("r(c, X)").unwrap();
        let out = decide(&kb, &q, &DecideConfig::default());
        assert!(matches!(out, DecideOutcome::NotEntailed { .. }), "{out:?}");
    }

    #[test]
    fn core_worker_certifies_no_where_restricted_diverges() {
        // r(X,Y) → ∃Z. r(X,Z): the restricted chase from r(a,b) applies
        // once (r(a,N)), then again on the new atom… while the core chase
        // folds every new null back and terminates.
        let mut kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> r(X, Z).").unwrap();
        let q = kb.parse_query("r(X, a)").unwrap();
        let out = decide(&kb, &q, &DecideConfig::default());
        assert!(
            matches!(
                out,
                DecideOutcome::NotEntailed {
                    by: ChaseVariant::Core,
                    ..
                } | DecideOutcome::NotEntailed {
                    by: ChaseVariant::Restricted,
                    ..
                }
            ),
            "{out:?}"
        );
    }

    #[test]
    fn exhausts_on_hard_negative() {
        let mut kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> r(Y, Z).").unwrap();
        let q = kb.parse_query("r(X, X)").unwrap(); // never entailed
        let out = decide(
            &kb,
            &q,
            &DecideConfig {
                max_applications: 10,
                max_atoms: 1_000,
                core_max_applications: 10,
            },
        );
        assert_eq!(
            out,
            DecideOutcome::Exhausted {
                heuristic_entailed: false
            }
        );
    }

    #[test]
    fn facts_shortcut() {
        let mut kb = KnowledgeBase::from_text("r(a, a).").unwrap();
        let q = kb.parse_query("r(X, X)").unwrap();
        assert!(matches!(
            decide(&kb, &q, &DecideConfig::default()),
            DecideOutcome::Entailed {
                applications: 0,
                ..
            }
        ));
    }
}
