//! # chase-core
//!
//! The public facade of the `treechase` workspace — the paper's primary
//! contribution packaged as a usable library:
//!
//! * [`KnowledgeBase`] — a `(F, Σ)` pair with parsing, chasing and query
//!   answering;
//! * [`entail`] — budgeted CQ entailment over any chase variant, with
//!   certified positive answers (via universality of chase elements,
//!   Proposition 1) and certified negative answers on termination (via
//!   the finite-universal-model property of the core chase);
//! * [`decide`] — the Theorem 1 twin semi-decision procedure: two fair
//!   chase processes race in parallel, one hunting for a query
//!   homomorphism (detecting `K ⊨ Q`), one hunting for a terminating
//!   universal model (detecting `K ⊭ Q`);
//! * [`classes`] — empirical probes for the decidable classes of
//!   Figure 1: fes (core-chase termination), bts (treewidth-bounded
//!   restricted chase), core-bts (treewidth-bounded core chase);
//! * [`gate`] — the admission-time analysis gate fusing the static
//!   analyzer's certificates with the dynamic probes into a verdict
//!   lattice and a stratified chase plan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod cq;
pub mod decide;
pub mod entail;
pub mod gate;
mod kb;
pub mod prelude;

pub use cq::{
    certain_answers, certain_answers_budgeted, collect_answer_tuples, cq_contained_in,
    cq_equivalent, entail_ucq, minimize_cq, AnswerQuery, AnswerTuples, CertainAnswers, Ucq,
};
pub use decide::{decide, DecideConfig, DecideOutcome};
pub use entail::{entail, Entailment};
pub use gate::{
    analyze_kb, analyze_kb_with, AnalysisGate, ProbeConfig, DEFAULT_PROBE_APPLICATIONS,
};
pub use kb::KnowledgeBase;
