//! Conjunctive-query operations built on the homomorphism/core
//! machinery: containment, equivalence, minimization (via cores), and
//! certain answers for queries with answer variables.
//!
//! These are the classical applications of the paper's Section 2 toolbox:
//! CQ containment is homomorphism existence (Chandra–Merlin), and the
//! unique minimal equivalent CQ is the *core* of the query.

use std::collections::BTreeSet;

use chase_atoms::{AtomSet, ConstId, Substitution, Term, VarId};
use chase_engine::{run_chase_observed, ChaseConfig, ChaseOutcome, RecordLevel};
use chase_homomorphism::{
    core_of, find_homomorphism, for_each_homomorphism_budgeted, MatchConfig, SearchBudget,
};

use crate::kb::KnowledgeBase;

/// A union of conjunctive queries (UCQ): entailed iff some disjunct is.
#[derive(Clone, Debug, Default)]
pub struct Ucq {
    /// The disjuncts.
    pub disjuncts: Vec<AtomSet>,
}

impl Ucq {
    /// Builds a UCQ from disjuncts.
    pub fn new(disjuncts: Vec<AtomSet>) -> Self {
        Ucq { disjuncts }
    }

    /// Removes disjuncts subsumed by others (`q ⊑ q'` makes `q`
    /// redundant… careful with direction: a disjunct `q` is redundant if
    /// some *other* disjunct `q'` is more general, i.e. `q ⊑ q'`), and
    /// minimizes each survivor to its core.
    pub fn minimized(&self) -> Ucq {
        let cores: Vec<AtomSet> = self.disjuncts.iter().map(minimize_cq).collect();
        let mut keep: Vec<AtomSet> = Vec::new();
        'outer: for (i, q) in cores.iter().enumerate() {
            for (j, other) in cores.iter().enumerate() {
                if i != j && cq_contained_in(q, other) {
                    // q ⊑ other: whenever q holds, other holds, so q is
                    // redundant — unless they are equivalent, in which
                    // case keep the first occurrence only.
                    if !cq_contained_in(other, q) || j < i {
                        continue 'outer;
                    }
                }
            }
            keep.push(q.clone());
        }
        Ucq { disjuncts: keep }
    }
}

/// Decides `K ⊨ Q₁ ∨ … ∨ Q_n` with the given chase configuration: the
/// chase runs once, checking every disjunct after each application.
pub fn entail_ucq(
    kb: &KnowledgeBase,
    ucq: &Ucq,
    cfg: &chase_engine::ChaseConfig,
) -> crate::entail::Entailment {
    use crate::entail::Entailment;
    if ucq.disjuncts.iter().any(|q| maps_to_facts(kb, q)) {
        return Entailment::Entailed { applications: 0 };
    }
    let mut vocab = kb.vocab.clone();
    let mut hit_at = None;
    let res = run_chase_observed(&mut vocab, &kb.facts, &kb.rules, cfg, |inst, stats| {
        if ucq
            .disjuncts
            .iter()
            .any(|q| chase_homomorphism::maps_to(q, inst))
        {
            hit_at = Some(stats.applications);
            std::ops::ControlFlow::Break(())
        } else {
            std::ops::ControlFlow::Continue(())
        }
    });
    if let Some(applications) = hit_at {
        return Entailment::Entailed { applications };
    }
    match res.outcome {
        ChaseOutcome::Terminated => Entailment::NotEntailed {
            universal_model_atoms: res.final_instance.len(),
        },
        _ => Entailment::Unknown {
            applications: res.stats.applications,
        },
    }
}

fn maps_to_facts(kb: &KnowledgeBase, q: &AtomSet) -> bool {
    chase_homomorphism::maps_to(q, &kb.facts)
}

/// Is `q1 ⊑ q2` (every KB entailing `q1` entails `q2`)?
///
/// By Chandra–Merlin this holds iff `q2` maps homomorphically into `q1`.
pub fn cq_contained_in(q1: &AtomSet, q2: &AtomSet) -> bool {
    find_homomorphism(q2, q1).is_some()
}

/// Are the two Boolean CQs equivalent?
pub fn cq_equivalent(q1: &AtomSet, q2: &AtomSet) -> bool {
    cq_contained_in(q1, q2) && cq_contained_in(q2, q1)
}

/// The unique (up to isomorphism) minimal CQ equivalent to `q`: its core.
pub fn minimize_cq(q: &AtomSet) -> AtomSet {
    core_of(q).core
}

/// A conjunctive query with distinguished answer variables.
#[derive(Clone, Debug)]
pub struct AnswerQuery {
    /// The query atoms.
    pub atoms: AtomSet,
    /// The answer (distinguished) variables, in output order.
    pub answer_vars: Vec<VarId>,
}

impl AnswerQuery {
    /// Builds an answer query; every answer variable must occur in the
    /// atoms.
    pub fn new(atoms: AtomSet, answer_vars: Vec<VarId>) -> Result<Self, String> {
        let vars = atoms.vars();
        for v in &answer_vars {
            if !vars.contains(v) {
                return Err(format!("answer variable {v:?} does not occur in the query"));
            }
        }
        Ok(AnswerQuery { atoms, answer_vars })
    }
}

/// The result of a certain-answer computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertainAnswers {
    /// The answer tuples (constants only), sorted and deduplicated.
    pub answers: Vec<Vec<ConstId>>,
    /// Whether the set is *complete* (the chase terminated, so the final
    /// instance is a universal model). When `false` the set is a sound
    /// under-approximation computed from a universal chase prefix.
    pub complete: bool,
    /// Whether the search budget clipped the chase or the homomorphism
    /// enumeration. A truncated run is never complete; its answers remain
    /// sound (inconclusive-never-refutation).
    pub truncated: bool,
}

/// Computes the certain answers of `query` over `kb`.
///
/// Soundness: an answer tuple of constants found in any chase element is
/// certain, because chase elements map into every model fixing constants.
/// Completeness requires chase termination (then the final instance is a
/// universal model and answers are exactly the constant-tuples in it).
pub fn certain_answers(
    kb: &KnowledgeBase,
    query: &AnswerQuery,
    cfg: &ChaseConfig,
) -> CertainAnswers {
    certain_answers_budgeted(kb, query, cfg, &SearchBudget::unlimited())
}

/// Like [`certain_answers`], but both the chase *and* the homomorphism
/// enumeration honor `budget` (deadline, node limit, cancel token), so a
/// query can never outlive its operation deadline. When the budget fires,
/// the result is flagged [`CertainAnswers::truncated`] and `complete`
/// stays `false`: the answers found so far are still sound.
pub fn certain_answers_budgeted(
    kb: &KnowledgeBase,
    query: &AnswerQuery,
    cfg: &ChaseConfig,
    budget: &SearchBudget,
) -> CertainAnswers {
    let mut vocab = kb.vocab.clone();
    let run_cfg = cfg
        .clone()
        .with_record(RecordLevel::FinalOnly)
        .with_search_budget(budget.clone());
    let res = run_chase_observed(&mut vocab, &kb.facts, &kb.rules, &run_cfg, |_, _| {
        std::ops::ControlFlow::Continue(())
    });
    // An interrupted external budget stops the chase with `Cancelled`.
    let chase_truncated = res.outcome == ChaseOutcome::Cancelled && budget.interrupted();
    let answers = collect_answer_tuples(query, &res.final_instance, budget);
    let truncated = chase_truncated || answers.truncated;
    CertainAnswers {
        answers: answers.tuples,
        complete: res.outcome == ChaseOutcome::Terminated && !truncated,
        truncated,
    }
}

/// Constant-only answer tuples found by one budgeted enumeration.
pub struct AnswerTuples {
    /// The tuples, sorted and deduplicated.
    pub tuples: Vec<Vec<ConstId>>,
    /// Whether the budget clipped the enumeration (a miss is then
    /// inconclusive, never a refutation).
    pub truncated: bool,
}

/// Enumerates constant-only answer tuples of `query` over `instance`
/// under `budget`. Shared by [`certain_answers_budgeted`] and the
/// snapshot-serving query engine in `chase-query`.
pub fn collect_answer_tuples(
    query: &AnswerQuery,
    instance: &AtomSet,
    budget: &SearchBudget,
) -> AnswerTuples {
    let mut answers: BTreeSet<Vec<ConstId>> = BTreeSet::new();
    let outcome = for_each_homomorphism_budgeted(
        &query.atoms,
        instance,
        &Substitution::new(),
        &MatchConfig::default(),
        budget,
        |sub| {
            let tuple: Option<Vec<ConstId>> = query
                .answer_vars
                .iter()
                .map(|&v| match sub.apply_term(Term::Var(v)) {
                    Term::Const(c) => Some(c),
                    Term::Var(_) => None, // nulls are not certain answers
                })
                .collect();
            if let Some(t) = tuple {
                answers.insert(t);
            }
            std::ops::ControlFlow::Continue(())
        },
    );
    AnswerTuples {
        tuples: answers.into_iter().collect(),
        truncated: outcome.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, PredId};
    use chase_engine::ChaseVariant;
    use chase_homomorphism::isomorphism;

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn containment_is_reverse_homomorphism() {
        // q1 = r(X,Y), r(Y,Z) (a 2-path); q2 = r(A,B). q1 ⊑ q2.
        let q1 = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]);
        let q2 = set(&[atom(0, &[v(10), v(11)])]);
        assert!(cq_contained_in(&q1, &q2));
        assert!(!cq_contained_in(&q2, &q1));
        assert!(!cq_equivalent(&q1, &q2));
    }

    #[test]
    fn minimization_removes_redundant_atoms() {
        // r(X,Y) ∧ r(X,Z) is equivalent to r(X,Y).
        let q = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(0), v(2)])]);
        let m = minimize_cq(&q);
        assert_eq!(m.len(), 1);
        assert!(cq_equivalent(&q, &m));
        // Idempotent up to isomorphism.
        assert!(isomorphism(&m, &minimize_cq(&m)).is_some());
    }

    #[test]
    fn minimization_keeps_non_redundant_queries() {
        let q = set(&[atom(0, &[v(0), v(1)]), atom(1, &[v(1), v(2)])]);
        assert_eq!(minimize_cq(&q), q);
    }

    #[test]
    fn certain_answers_on_terminating_kb() {
        let mut kb =
            KnowledgeBase::from_text("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).").unwrap();
        let q_atoms = kb.parse_query("r(a, X)").unwrap();
        let x = *q_atoms.vars().iter().next().unwrap();
        let query = AnswerQuery::new(q_atoms, vec![x]).unwrap();
        let res = certain_answers(&kb, &query, &ChaseConfig::variant(ChaseVariant::Core));
        assert!(res.complete);
        let names: Vec<&str> = res
            .answers
            .iter()
            .map(|t| kb.vocab.const_name(t[0]).unwrap())
            .collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn nulls_are_not_certain_answers() {
        // r(a, b) plus r(X,Y) → ∃Z. s(Y, Z): s's second position holds a
        // null; asking for it must yield no certain answer.
        let mut kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> s(Y, Z).").unwrap();
        let q_atoms = kb.parse_query("s(b, W)").unwrap();
        let w = *q_atoms.vars().iter().next().unwrap();
        let query = AnswerQuery::new(q_atoms, vec![w]).unwrap();
        let res = certain_answers(&kb, &query, &ChaseConfig::variant(ChaseVariant::Core));
        assert!(res.complete);
        assert!(res.answers.is_empty());
    }

    #[test]
    fn answer_vars_must_occur() {
        let q = set(&[atom(0, &[v(0), v(1)])]);
        assert!(AnswerQuery::new(q, vec![VarId::from_raw(99)]).is_err());
    }

    #[test]
    fn incomplete_answers_flagged_on_budget() {
        let mut kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> r(Y, Z).").unwrap();
        let q_atoms = kb.parse_query("r(a, X)").unwrap();
        let x = *q_atoms.vars().iter().next().unwrap();
        let query = AnswerQuery::new(q_atoms, vec![x]).unwrap();
        let cfg = ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(5);
        let res = certain_answers(&kb, &query, &cfg);
        assert!(!res.complete);
        assert_eq!(res.answers.len(), 1, "r(a,b) still found");
    }
}

#[cfg(test)]
mod ucq_tests {
    use super::*;
    use chase_engine::{ChaseConfig, ChaseVariant};

    #[test]
    fn ucq_entailed_if_any_disjunct_is() {
        let mut kb =
            KnowledgeBase::from_text("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).").unwrap();
        let q_yes = kb.parse_query("r(a, c)").unwrap();
        let q_no = kb.parse_query("r(c, a)").unwrap();
        let ucq = Ucq::new(vec![q_no.clone(), q_yes]);
        let cfg = ChaseConfig::variant(ChaseVariant::Core);
        assert!(entail_ucq(&kb, &ucq, &cfg).is_entailed());
        let ucq_no = Ucq::new(vec![q_no]);
        assert!(entail_ucq(&kb, &ucq_no, &cfg).is_not_entailed());
    }

    #[test]
    fn ucq_minimization_drops_subsumed_disjuncts() {
        let mut kb = KnowledgeBase::from_text("r(a, b).").unwrap();
        // r(X,Y) ∨ (r(X,Y) ∧ r(Y,Z)): the longer disjunct is subsumed
        // (it is contained in the shorter one).
        let short = kb.parse_query("r(X, Y)").unwrap();
        let long = kb.parse_query("r(X, Y), r(Y, Z)").unwrap();
        let ucq = Ucq::new(vec![long, short.clone()]);
        let min = ucq.minimized();
        assert_eq!(min.disjuncts.len(), 1);
        assert!(cq_equivalent(&min.disjuncts[0], &short));
    }

    #[test]
    fn ucq_minimization_keeps_equivalent_once() {
        let mut kb = KnowledgeBase::from_text("r(a, b).").unwrap();
        let q1 = kb.parse_query("r(X, Y)").unwrap();
        let q2 = kb.parse_query("r(A, B), r(A, C)").unwrap(); // core = r(A,B)
        let ucq = Ucq::new(vec![q1, q2]);
        let min = ucq.minimized();
        assert_eq!(min.disjuncts.len(), 1);
    }

    #[test]
    fn empty_ucq_never_entailed() {
        let kb = KnowledgeBase::from_text("r(a, b).").unwrap();
        let cfg = ChaseConfig::variant(ChaseVariant::Core);
        assert!(entail_ucq(&kb, &Ucq::default(), &cfg).is_not_entailed());
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use chase_engine::{ChaseConfig, ChaseVariant};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn query_of(kb: &mut KnowledgeBase, src: &str) -> AnswerQuery {
        let atoms = kb.parse_query(src).unwrap();
        let mut vars: Vec<VarId> = atoms.vars().iter().copied().collect();
        vars.sort();
        AnswerQuery::new(atoms, vars).unwrap()
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted() {
        let mut kb =
            KnowledgeBase::from_text("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).").unwrap();
        let query = query_of(&mut kb, "r(a, X)");
        let cfg = ChaseConfig::variant(ChaseVariant::Core);
        let plain = certain_answers(&kb, &query, &cfg);
        let budgeted = certain_answers_budgeted(&kb, &query, &cfg, &SearchBudget::unlimited());
        assert_eq!(plain, budgeted);
        assert!(plain.complete);
        assert!(!plain.truncated);
    }

    #[test]
    fn expired_deadline_truncates_nonterminating_chase() {
        // r(X,Y) → ∃Z. r(Y,Z) never terminates under the restricted
        // chase; an already-expired deadline must stop it immediately
        // and flag the result truncated, not complete.
        let mut kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> r(Y, Z).").unwrap();
        let query = query_of(&mut kb, "r(a, X)");
        let cfg = ChaseConfig::variant(ChaseVariant::Restricted);
        let budget = SearchBudget::unlimited().with_deadline(Instant::now());
        let started = Instant::now();
        let res = certain_answers_budgeted(&kb, &query, &cfg, &budget);
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(res.truncated);
        assert!(!res.complete);
    }

    #[test]
    fn cancel_flag_truncates() {
        let mut kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> r(Y, Z).").unwrap();
        let query = query_of(&mut kb, "r(a, X)");
        let cfg = ChaseConfig::variant(ChaseVariant::Restricted);
        let flag = Arc::new(AtomicBool::new(true));
        flag.store(true, Ordering::SeqCst);
        let budget = SearchBudget::unlimited().with_cancel(flag);
        let res = certain_answers_budgeted(&kb, &query, &cfg, &budget);
        assert!(res.truncated);
        assert!(!res.complete);
    }

    #[test]
    fn truncated_answers_stay_sound() {
        // Bound the chase by applications (sound prefix), then clip the
        // match with a node budget: whatever comes back must be a subset
        // of the true certain answers.
        let mut kb =
            KnowledgeBase::from_text("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).").unwrap();
        let query = query_of(&mut kb, "r(X, Y)");
        let cfg = ChaseConfig::variant(ChaseVariant::Core);
        let full = certain_answers(&kb, &query, &cfg);
        assert!(full.complete);
        for limit in [0usize, 1, 2, 4, 8] {
            let budget = SearchBudget::unlimited().with_node_limit(limit);
            let clipped = certain_answers_budgeted(&kb, &query, &cfg, &budget);
            for t in &clipped.answers {
                assert!(
                    full.answers.contains(t),
                    "unsound tuple under limit {limit}"
                );
            }
            if clipped.answers.len() < full.answers.len() {
                assert!(clipped.truncated, "missing answers must flag truncation");
                assert!(!clipped.complete);
            }
        }
    }
}

#[cfg(test)]
mod ucq_property_tests {
    use super::*;
    use chase_atoms::{Atom, PredId, Vocabulary};
    use chase_engine::prng::SplitMix64;

    /// A random CQ over `preds` binary predicates and `vars` variables.
    #[allow(clippy::cast_possible_truncation)]
    fn random_cq(rng: &mut SplitMix64, preds: usize, vars: usize) -> AtomSet {
        let n_atoms = 1 + rng.gen_range(4);
        (0..n_atoms)
            .map(|_| {
                Atom::new(
                    PredId::from_raw(rng.gen_range(preds) as u32),
                    vec![
                        Term::Var(VarId::from_raw(rng.gen_range(vars) as u32)),
                        Term::Var(VarId::from_raw(rng.gen_range(vars) as u32)),
                    ],
                )
            })
            .collect()
    }

    /// UCQ containment `u1 ⊑ u2`: every disjunct of `u1` is contained in
    /// some disjunct of `u2` (sound and complete for UCQs by the
    /// disjunctive Chandra–Merlin argument).
    fn ucq_contained_in(u1: &Ucq, u2: &Ucq) -> bool {
        u1.disjuncts
            .iter()
            .all(|q| u2.disjuncts.iter().any(|other| cq_contained_in(q, other)))
    }

    fn ucq_equivalent(u1: &Ucq, u2: &Ucq) -> bool {
        ucq_contained_in(u1, u2) && ucq_contained_in(u2, u1)
    }

    /// Pins the subtle containment direction in [`Ucq::minimized`]:
    /// the minimized UCQ must be *equivalent* to the original (dropping a
    /// disjunct is only sound when a more general one survives), minimal
    /// (no survivor contained in another), and idempotent.
    #[test]
    fn minimized_is_equivalent_minimal_and_idempotent() {
        let mut rng = SplitMix64::new(0xC0FFEE);
        for round in 0..200 {
            let n_disjuncts = 1 + rng.gen_range(4);
            let ucq = Ucq::new(
                (0..n_disjuncts)
                    .map(|_| random_cq(&mut rng, 2, 4))
                    .collect(),
            );
            let min = ucq.minimized();
            assert!(
                !min.disjuncts.is_empty(),
                "round {round}: minimization emptied a nonempty UCQ"
            );
            assert!(
                min.disjuncts.len() <= ucq.disjuncts.len(),
                "round {round}: minimization grew the UCQ"
            );
            assert!(
                ucq_equivalent(&ucq, &min),
                "round {round}: minimized() not equivalent to original"
            );
            for (i, q) in min.disjuncts.iter().enumerate() {
                for (j, other) in min.disjuncts.iter().enumerate() {
                    assert!(
                        i == j || !cq_contained_in(q, other),
                        "round {round}: survivors {i} ⊑ {j} — not minimal"
                    );
                }
            }
            let twice = min.minimized();
            assert_eq!(
                twice.disjuncts.len(),
                min.disjuncts.len(),
                "round {round}: minimized() not idempotent"
            );
            assert!(ucq_equivalent(&min, &twice), "round {round}");
        }
    }

    /// Entailment agrees before and after minimization on a concrete KB.
    #[test]
    fn minimized_preserves_entailment() {
        use chase_engine::{ChaseConfig, ChaseVariant};
        let mut rng = SplitMix64::new(0xBEEF);
        // Fixed KB: a small transitive graph.
        let kb = {
            let mut vocab = Vocabulary::new();
            let p0 = vocab.pred("e0", 2);
            let p1 = vocab.pred("e1", 2);
            let a = vocab.constant("a");
            let b = vocab.constant("b");
            let c = vocab.constant("c");
            let facts: AtomSet = [
                Atom::new(p0, vec![Term::Const(a), Term::Const(b)]),
                Atom::new(p0, vec![Term::Const(b), Term::Const(c)]),
                Atom::new(p1, vec![Term::Const(c), Term::Const(a)]),
            ]
            .into_iter()
            .collect();
            KnowledgeBase::new(vocab, facts, chase_engine::RuleSet::new())
        };
        let cfg = ChaseConfig::variant(ChaseVariant::Core);
        for round in 0..50 {
            let n_disjuncts = 1 + rng.gen_range(3);
            let ucq = Ucq::new(
                (0..n_disjuncts)
                    .map(|_| random_cq(&mut rng, 2, 3))
                    .collect(),
            );
            let before = entail_ucq(&kb, &ucq, &cfg).is_entailed();
            let after = entail_ucq(&kb, &ucq.minimized(), &cfg).is_entailed();
            assert_eq!(before, after, "round {round}: entailment changed");
        }
    }
}
