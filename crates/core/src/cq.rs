//! Conjunctive-query operations built on the homomorphism/core
//! machinery: containment, equivalence, minimization (via cores), and
//! certain answers for queries with answer variables.
//!
//! These are the classical applications of the paper's Section 2 toolbox:
//! CQ containment is homomorphism existence (Chandra–Merlin), and the
//! unique minimal equivalent CQ is the *core* of the query.

use std::collections::BTreeSet;

use chase_atoms::{AtomSet, ConstId, Substitution, Term, VarId};
use chase_engine::{run_chase_observed, ChaseConfig, ChaseOutcome, RecordLevel};
use chase_homomorphism::{core_of, find_homomorphism, for_each_homomorphism, MatchConfig};

use crate::kb::KnowledgeBase;

/// A union of conjunctive queries (UCQ): entailed iff some disjunct is.
#[derive(Clone, Debug, Default)]
pub struct Ucq {
    /// The disjuncts.
    pub disjuncts: Vec<AtomSet>,
}

impl Ucq {
    /// Builds a UCQ from disjuncts.
    pub fn new(disjuncts: Vec<AtomSet>) -> Self {
        Ucq { disjuncts }
    }

    /// Removes disjuncts subsumed by others (`q ⊑ q'` makes `q`
    /// redundant… careful with direction: a disjunct `q` is redundant if
    /// some *other* disjunct `q'` is more general, i.e. `q ⊑ q'`), and
    /// minimizes each survivor to its core.
    pub fn minimized(&self) -> Ucq {
        let cores: Vec<AtomSet> = self.disjuncts.iter().map(minimize_cq).collect();
        let mut keep: Vec<AtomSet> = Vec::new();
        'outer: for (i, q) in cores.iter().enumerate() {
            for (j, other) in cores.iter().enumerate() {
                if i != j && cq_contained_in(q, other) {
                    // q ⊑ other: whenever q holds, other holds, so q is
                    // redundant — unless they are equivalent, in which
                    // case keep the first occurrence only.
                    if !cq_contained_in(other, q) || j < i {
                        continue 'outer;
                    }
                }
            }
            keep.push(q.clone());
        }
        Ucq { disjuncts: keep }
    }
}

/// Decides `K ⊨ Q₁ ∨ … ∨ Q_n` with the given chase configuration: the
/// chase runs once, checking every disjunct after each application.
pub fn entail_ucq(
    kb: &KnowledgeBase,
    ucq: &Ucq,
    cfg: &chase_engine::ChaseConfig,
) -> crate::entail::Entailment {
    use crate::entail::Entailment;
    if ucq.disjuncts.iter().any(|q| maps_to_facts(kb, q)) {
        return Entailment::Entailed { applications: 0 };
    }
    let mut vocab = kb.vocab.clone();
    let mut hit_at = None;
    let res = run_chase_observed(&mut vocab, &kb.facts, &kb.rules, cfg, |inst, stats| {
        if ucq
            .disjuncts
            .iter()
            .any(|q| chase_homomorphism::maps_to(q, inst))
        {
            hit_at = Some(stats.applications);
            std::ops::ControlFlow::Break(())
        } else {
            std::ops::ControlFlow::Continue(())
        }
    });
    if let Some(applications) = hit_at {
        return Entailment::Entailed { applications };
    }
    match res.outcome {
        ChaseOutcome::Terminated => Entailment::NotEntailed {
            universal_model_atoms: res.final_instance.len(),
        },
        _ => Entailment::Unknown {
            applications: res.stats.applications,
        },
    }
}

fn maps_to_facts(kb: &KnowledgeBase, q: &AtomSet) -> bool {
    chase_homomorphism::maps_to(q, &kb.facts)
}

/// Is `q1 ⊑ q2` (every KB entailing `q1` entails `q2`)?
///
/// By Chandra–Merlin this holds iff `q2` maps homomorphically into `q1`.
pub fn cq_contained_in(q1: &AtomSet, q2: &AtomSet) -> bool {
    find_homomorphism(q2, q1).is_some()
}

/// Are the two Boolean CQs equivalent?
pub fn cq_equivalent(q1: &AtomSet, q2: &AtomSet) -> bool {
    cq_contained_in(q1, q2) && cq_contained_in(q2, q1)
}

/// The unique (up to isomorphism) minimal CQ equivalent to `q`: its core.
pub fn minimize_cq(q: &AtomSet) -> AtomSet {
    core_of(q).core
}

/// A conjunctive query with distinguished answer variables.
#[derive(Clone, Debug)]
pub struct AnswerQuery {
    /// The query atoms.
    pub atoms: AtomSet,
    /// The answer (distinguished) variables, in output order.
    pub answer_vars: Vec<VarId>,
}

impl AnswerQuery {
    /// Builds an answer query; every answer variable must occur in the
    /// atoms.
    pub fn new(atoms: AtomSet, answer_vars: Vec<VarId>) -> Result<Self, String> {
        let vars = atoms.vars();
        for v in &answer_vars {
            if !vars.contains(v) {
                return Err(format!("answer variable {v:?} does not occur in the query"));
            }
        }
        Ok(AnswerQuery { atoms, answer_vars })
    }
}

/// The result of a certain-answer computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertainAnswers {
    /// The answer tuples (constants only), sorted and deduplicated.
    pub answers: Vec<Vec<ConstId>>,
    /// Whether the set is *complete* (the chase terminated, so the final
    /// instance is a universal model). When `false` the set is a sound
    /// under-approximation computed from a universal chase prefix.
    pub complete: bool,
}

/// Computes the certain answers of `query` over `kb`.
///
/// Soundness: an answer tuple of constants found in any chase element is
/// certain, because chase elements map into every model fixing constants.
/// Completeness requires chase termination (then the final instance is a
/// universal model and answers are exactly the constant-tuples in it).
pub fn certain_answers(
    kb: &KnowledgeBase,
    query: &AnswerQuery,
    cfg: &ChaseConfig,
) -> CertainAnswers {
    let mut vocab = kb.vocab.clone();
    let run_cfg = cfg.clone().with_record(RecordLevel::FinalOnly);
    let res = run_chase_observed(&mut vocab, &kb.facts, &kb.rules, &run_cfg, |_, _| {
        std::ops::ControlFlow::Continue(())
    });
    let complete = res.outcome == ChaseOutcome::Terminated;
    let mut answers: BTreeSet<Vec<ConstId>> = BTreeSet::new();
    for_each_homomorphism(
        &query.atoms,
        &res.final_instance,
        &Substitution::new(),
        &MatchConfig::default(),
        |sub| {
            let tuple: Option<Vec<ConstId>> = query
                .answer_vars
                .iter()
                .map(|&v| match sub.apply_term(Term::Var(v)) {
                    Term::Const(c) => Some(c),
                    Term::Var(_) => None, // nulls are not certain answers
                })
                .collect();
            if let Some(t) = tuple {
                answers.insert(t);
            }
            std::ops::ControlFlow::Continue(())
        },
    );
    CertainAnswers {
        answers: answers.into_iter().collect(),
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, PredId};
    use chase_engine::ChaseVariant;
    use chase_homomorphism::isomorphism;

    fn v(i: u32) -> Term {
        Term::Var(VarId::from_raw(i))
    }

    fn atom(pr: u32, args: &[Term]) -> Atom {
        Atom::new(PredId::from_raw(pr), args.to_vec())
    }

    fn set(atoms: &[Atom]) -> AtomSet {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn containment_is_reverse_homomorphism() {
        // q1 = r(X,Y), r(Y,Z) (a 2-path); q2 = r(A,B). q1 ⊑ q2.
        let q1 = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(1), v(2)])]);
        let q2 = set(&[atom(0, &[v(10), v(11)])]);
        assert!(cq_contained_in(&q1, &q2));
        assert!(!cq_contained_in(&q2, &q1));
        assert!(!cq_equivalent(&q1, &q2));
    }

    #[test]
    fn minimization_removes_redundant_atoms() {
        // r(X,Y) ∧ r(X,Z) is equivalent to r(X,Y).
        let q = set(&[atom(0, &[v(0), v(1)]), atom(0, &[v(0), v(2)])]);
        let m = minimize_cq(&q);
        assert_eq!(m.len(), 1);
        assert!(cq_equivalent(&q, &m));
        // Idempotent up to isomorphism.
        assert!(isomorphism(&m, &minimize_cq(&m)).is_some());
    }

    #[test]
    fn minimization_keeps_non_redundant_queries() {
        let q = set(&[atom(0, &[v(0), v(1)]), atom(1, &[v(1), v(2)])]);
        assert_eq!(minimize_cq(&q), q);
    }

    #[test]
    fn certain_answers_on_terminating_kb() {
        let mut kb =
            KnowledgeBase::from_text("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).").unwrap();
        let q_atoms = kb.parse_query("r(a, X)").unwrap();
        let x = *q_atoms.vars().iter().next().unwrap();
        let query = AnswerQuery::new(q_atoms, vec![x]).unwrap();
        let res = certain_answers(&kb, &query, &ChaseConfig::variant(ChaseVariant::Core));
        assert!(res.complete);
        let names: Vec<&str> = res
            .answers
            .iter()
            .map(|t| kb.vocab.const_name(t[0]).unwrap())
            .collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn nulls_are_not_certain_answers() {
        // r(a, b) plus r(X,Y) → ∃Z. s(Y, Z): s's second position holds a
        // null; asking for it must yield no certain answer.
        let mut kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> s(Y, Z).").unwrap();
        let q_atoms = kb.parse_query("s(b, W)").unwrap();
        let w = *q_atoms.vars().iter().next().unwrap();
        let query = AnswerQuery::new(q_atoms, vec![w]).unwrap();
        let res = certain_answers(&kb, &query, &ChaseConfig::variant(ChaseVariant::Core));
        assert!(res.complete);
        assert!(res.answers.is_empty());
    }

    #[test]
    fn answer_vars_must_occur() {
        let q = set(&[atom(0, &[v(0), v(1)])]);
        assert!(AnswerQuery::new(q, vec![VarId::from_raw(99)]).is_err());
    }

    #[test]
    fn incomplete_answers_flagged_on_budget() {
        let mut kb = KnowledgeBase::from_text("r(a, b). R: r(X, Y) -> r(Y, Z).").unwrap();
        let q_atoms = kb.parse_query("r(a, X)").unwrap();
        let x = *q_atoms.vars().iter().next().unwrap();
        let query = AnswerQuery::new(q_atoms, vec![x]).unwrap();
        let cfg = ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(5);
        let res = certain_answers(&kb, &query, &cfg);
        assert!(!res.complete);
        assert_eq!(res.answers.len(), 1, "r(a,b) still found");
    }
}

#[cfg(test)]
mod ucq_tests {
    use super::*;
    use chase_engine::{ChaseConfig, ChaseVariant};

    #[test]
    fn ucq_entailed_if_any_disjunct_is() {
        let mut kb =
            KnowledgeBase::from_text("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).").unwrap();
        let q_yes = kb.parse_query("r(a, c)").unwrap();
        let q_no = kb.parse_query("r(c, a)").unwrap();
        let ucq = Ucq::new(vec![q_no.clone(), q_yes]);
        let cfg = ChaseConfig::variant(ChaseVariant::Core);
        assert!(entail_ucq(&kb, &ucq, &cfg).is_entailed());
        let ucq_no = Ucq::new(vec![q_no]);
        assert!(entail_ucq(&kb, &ucq_no, &cfg).is_not_entailed());
    }

    #[test]
    fn ucq_minimization_drops_subsumed_disjuncts() {
        let mut kb = KnowledgeBase::from_text("r(a, b).").unwrap();
        // r(X,Y) ∨ (r(X,Y) ∧ r(Y,Z)): the longer disjunct is subsumed
        // (it is contained in the shorter one).
        let short = kb.parse_query("r(X, Y)").unwrap();
        let long = kb.parse_query("r(X, Y), r(Y, Z)").unwrap();
        let ucq = Ucq::new(vec![long, short.clone()]);
        let min = ucq.minimized();
        assert_eq!(min.disjuncts.len(), 1);
        assert!(cq_equivalent(&min.disjuncts[0], &short));
    }

    #[test]
    fn ucq_minimization_keeps_equivalent_once() {
        let mut kb = KnowledgeBase::from_text("r(a, b).").unwrap();
        let q1 = kb.parse_query("r(X, Y)").unwrap();
        let q2 = kb.parse_query("r(A, B), r(A, C)").unwrap(); // core = r(A,B)
        let ucq = Ucq::new(vec![q1, q2]);
        let min = ucq.minimized();
        assert_eq!(min.disjuncts.len(), 1);
    }

    #[test]
    fn empty_ucq_never_entailed() {
        let kb = KnowledgeBase::from_text("r(a, b).").unwrap();
        let cfg = ChaseConfig::variant(ChaseVariant::Core);
        assert!(entail_ucq(&kb, &Ucq::default(), &cfg).is_not_entailed());
    }
}
