//! The query-answering engine: evaluates parsed CQ/UCQ answer queries
//! against snapshot views or directly against a knowledge base, tagging
//! every reply with its completeness status.

use std::collections::BTreeSet;

use chase_atoms::{AtomSet, Vocabulary};
use chase_core::{collect_answer_tuples, AnswerQuery, KnowledgeBase};
use chase_engine::{run_chase_observed, ChaseConfig, ChaseOutcome, RecordLevel};
use chase_homomorphism::SearchBudget;
use chase_parser::{parse_query_with, ParseError, ParsedQuery};

use crate::snapshot::QueryView;

/// How much of the true certain-answer set a reply covers. The lattice
/// is `Complete > SoundPrefix > Truncated`: every level is sound, lower
/// levels promise less about missing tuples.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Completeness {
    /// The chase terminated: the instance is a universal model and the
    /// answers are exactly the certain answers.
    Complete,
    /// The chase is still running (or was budget-stopped): the answers
    /// are a sound subset computed from the robust prefix as of
    /// `horizon` rule applications. Missing tuples may appear later.
    SoundPrefix {
        /// Rule applications performed when the prefix was captured.
        horizon: u64,
    },
    /// The *query's* search budget clipped the homomorphism enumeration
    /// (or the synchronous chase): a missing tuple means nothing at all
    /// (inconclusive-never-refutation).
    Truncated,
}

impl Completeness {
    /// Stable wire label: `complete`, `sound-prefix`, or `truncated`.
    pub fn label(&self) -> &'static str {
        match self {
            Completeness::Complete => "complete",
            Completeness::SoundPrefix { .. } => "sound-prefix",
            Completeness::Truncated => "truncated",
        }
    }

    /// The sound-prefix horizon, when there is one.
    pub fn horizon(&self) -> Option<u64> {
        match self {
            Completeness::SoundPrefix { horizon } => Some(*horizon),
            _ => None,
        }
    }
}

/// The reply to one answer query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Answer variable names, in output order (empty for boolean
    /// queries).
    pub var_names: Vec<String>,
    /// Answer tuples rendered as constant names, sorted and
    /// deduplicated. A boolean query answers with one empty tuple when
    /// entailed and no tuples otherwise.
    pub answers: Vec<Vec<String>>,
    /// How much of the certain-answer set the reply covers.
    pub completeness: Completeness,
}

impl QueryOutcome {
    /// Is the (boolean or answer) query entailed, i.e. has at least one
    /// answer? For [`Completeness::Complete`] replies `false` is a
    /// refutation; otherwise it is inconclusive.
    pub fn entailed(&self) -> bool {
        !self.answers.is_empty()
    }
}

/// Evaluates every disjunct of `parsed` on `instance` under `budget`,
/// unioning the constant-only answer tuples. Over a single instance the
/// union over disjuncts is exactly UCQ evaluation; over a universal
/// model it is exactly the certain answers (UCQs are preserved by
/// homomorphisms).
fn evaluate_disjuncts(
    parsed: &ParsedQuery,
    instance: &AtomSet,
    budget: &SearchBudget,
) -> (BTreeSet<Vec<chase_atoms::ConstId>>, bool) {
    let mut tuples = BTreeSet::new();
    let mut truncated = false;
    for (atoms, answer_vars) in &parsed.disjuncts {
        let query = AnswerQuery {
            atoms: atoms.clone(),
            answer_vars: answer_vars.clone(),
        };
        let found = collect_answer_tuples(&query, instance, budget);
        truncated |= found.truncated;
        tuples.extend(found.tuples);
    }
    (tuples, truncated)
}

fn render_tuples(
    vocab: &Vocabulary,
    tuples: BTreeSet<Vec<chase_atoms::ConstId>>,
) -> Vec<Vec<String>> {
    tuples
        .into_iter()
        .map(|t| {
            t.into_iter()
                .map(|c| vocab.const_name(c).unwrap_or("?").to_owned())
                .collect()
        })
        .collect()
}

/// Answers `query_src` against a snapshot view (the cache read path).
///
/// The query is parsed strictly against a clone of the view's
/// vocabulary, so predicate and constant identifiers line up with the
/// snapshot instance; unknown predicates simply match nothing. The view
/// itself is never mutated — concurrent readers share it by `Arc`.
pub fn answer_view(
    view: &QueryView,
    query_src: &str,
    budget: &SearchBudget,
) -> Result<QueryOutcome, ParseError> {
    let mut vocab = (*view.vocab).clone();
    let parsed = parse_query_with(&mut vocab, "q", query_src)?;
    let (tuples, truncated) = evaluate_disjuncts(&parsed, &view.instance, budget);
    let completeness = if truncated {
        Completeness::Truncated
    } else if view.terminated {
        Completeness::Complete
    } else {
        Completeness::SoundPrefix {
            horizon: view.applications,
        }
    };
    Ok(QueryOutcome {
        var_names: parsed.var_names,
        answers: render_tuples(&vocab, tuples),
        completeness,
    })
}

/// Answers `query_src` against a knowledge base by running a budgeted
/// chase to (attempted) completion and evaluating on the final
/// instance — the synchronous path behind `treechase query <file>` and
/// the `kb`/`source` forms of the `query` wire op.
///
/// Both the chase and the homomorphism enumeration honor `budget`, so
/// the call never outlives its operation deadline.
pub fn answer_kb(
    kb: &KnowledgeBase,
    query_src: &str,
    cfg: &ChaseConfig,
    budget: &SearchBudget,
) -> Result<QueryOutcome, ParseError> {
    let mut vocab = kb.vocab.clone();
    let parsed = parse_query_with(&mut vocab, "q", query_src)?;
    let run_cfg = cfg
        .clone()
        .with_record(RecordLevel::FinalOnly)
        .with_search_budget(budget.clone());
    let res = run_chase_observed(&mut vocab, &kb.facts, &kb.rules, &run_cfg, |_, _| {
        std::ops::ControlFlow::Continue(())
    });
    let (tuples, match_truncated) = evaluate_disjuncts(&parsed, &res.final_instance, budget);
    let chase_truncated = res.outcome == ChaseOutcome::Cancelled && budget.interrupted();
    let completeness = if match_truncated || chase_truncated {
        Completeness::Truncated
    } else if res.outcome == ChaseOutcome::Terminated {
        Completeness::Complete
    } else {
        Completeness::SoundPrefix {
            horizon: res.stats.applications as u64,
        }
    };
    Ok(QueryOutcome {
        var_names: parsed.var_names,
        answers: render_tuples(&vocab, tuples),
        completeness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Snapshot, SnapshotCache};
    use chase_engine::ChaseVariant;

    fn kb(src: &str) -> KnowledgeBase {
        KnowledgeBase::from_text(src).expect("valid KB source")
    }

    #[test]
    fn kb_answers_match_library_certain_answers() {
        let kb = kb("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).");
        let cfg = ChaseConfig::variant(ChaseVariant::Core);
        let out = answer_kb(&kb, "?(X) :- r(a, X)", &cfg, &SearchBudget::unlimited()).unwrap();
        assert_eq!(out.completeness, Completeness::Complete);
        assert_eq!(out.var_names, vec!["X".to_owned()]);
        assert_eq!(
            out.answers,
            vec![vec!["b".to_owned()], vec!["c".to_owned()]]
        );
        // Differential check against the library path.
        let mut kb2 = kb.clone();
        let atoms = kb2.parse_query("r(a, X)").unwrap();
        let x = *atoms.vars().iter().next().unwrap();
        let query = chase_core::AnswerQuery::new(atoms, vec![x]).unwrap();
        let lib = chase_core::certain_answers(&kb2, &query, &cfg);
        assert!(lib.complete);
        assert_eq!(lib.answers.len(), out.answers.len());
    }

    #[test]
    fn boolean_and_ucq_forms() {
        let kb = kb("r(a, b). r(b, c). T: r(X, Y), r(Y, Z) -> r(X, Z).");
        let cfg = ChaseConfig::variant(ChaseVariant::Core);
        let yes = answer_kb(&kb, "?- r(a, c)", &cfg, &SearchBudget::unlimited()).unwrap();
        assert!(yes.entailed());
        assert_eq!(yes.answers, vec![Vec::<String>::new()]);
        let no = answer_kb(&kb, "?- r(c, a)", &cfg, &SearchBudget::unlimited()).unwrap();
        assert!(!no.entailed());
        assert_eq!(no.completeness, Completeness::Complete);
        // UCQ: one bad disjunct, one good.
        let ucq = answer_kb(
            &kb,
            "?(X) :- r(X, a) ; r(X, c)",
            &cfg,
            &SearchBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(ucq.answers.len(), 2, "a and b reach c");
    }

    #[test]
    fn nulls_never_rendered_as_answers() {
        let kb = kb("r(a, b). R: r(X, Y) -> s(Y, Z).");
        let cfg = ChaseConfig::variant(ChaseVariant::Core);
        let out = answer_kb(&kb, "?(W) :- s(b, W)", &cfg, &SearchBudget::unlimited()).unwrap();
        assert_eq!(out.completeness, Completeness::Complete);
        assert!(out.answers.is_empty());
        // …but the boolean projection is entailed.
        let out = answer_kb(&kb, "?- s(b, W)", &cfg, &SearchBudget::unlimited()).unwrap();
        assert!(out.entailed());
    }

    #[test]
    fn snapshot_view_answers_and_tags() {
        let kb = kb("r(a, b). r(b, c).");
        let cache = SnapshotCache::new(3);
        cache.publish(1, Snapshot::live(kb.vocab.clone(), kb.facts.clone(), 4));
        let view = cache.view(1).unwrap();
        let out = answer_view(&view, "?(X, Y) :- r(X, Y)", &SearchBudget::unlimited()).unwrap();
        assert_eq!(out.completeness, Completeness::SoundPrefix { horizon: 4 });
        assert_eq!(out.completeness.label(), "sound-prefix");
        assert_eq!(out.completeness.horizon(), Some(4));
        assert_eq!(out.answers.len(), 2);
        cache.publish(1, Snapshot::terminal(kb.vocab.clone(), kb.facts.clone(), 4));
        let view = cache.view(1).unwrap();
        let out = answer_view(&view, "?(X, Y) :- r(X, Y)", &SearchBudget::unlimited()).unwrap();
        assert_eq!(out.completeness, Completeness::Complete);
    }

    #[test]
    fn unknown_predicate_matches_nothing() {
        let kb = kb("r(a, b).");
        let cache = SnapshotCache::new(1);
        cache.publish(1, Snapshot::terminal(kb.vocab.clone(), kb.facts.clone(), 0));
        let view = cache.view(1).unwrap();
        let out = answer_view(&view, "?(X) :- zzz(X, X)", &SearchBudget::unlimited()).unwrap();
        assert!(out.answers.is_empty());
        assert_eq!(out.completeness, Completeness::Complete);
    }

    #[test]
    fn budget_truncation_tags_truncated() {
        let kb = kb("r(a, b). r(b, c). r(c, d).");
        let cache = SnapshotCache::new(1);
        cache.publish(1, Snapshot::terminal(kb.vocab.clone(), kb.facts.clone(), 0));
        let view = cache.view(1).unwrap();
        let tight = SearchBudget::unlimited().with_node_limit(1);
        let out = answer_view(&view, "?(X, Y) :- r(X, Y)", &tight).unwrap();
        assert_eq!(out.completeness, Completeness::Truncated);
        let full = answer_view(&view, "?(X, Y) :- r(X, Y)", &SearchBudget::unlimited()).unwrap();
        for t in &out.answers {
            assert!(full.answers.contains(t), "truncated answers must be sound");
        }
    }

    #[test]
    fn parse_errors_surface() {
        let kb = kb("r(a, b).");
        let cfg = ChaseConfig::default();
        assert!(answer_kb(&kb, "?(X) :-", &cfg, &SearchBudget::unlimited()).is_err());
        assert!(answer_kb(&kb, "?(a) :- r(a, b)", &cfg, &SearchBudget::unlimited()).is_err());
    }
}
