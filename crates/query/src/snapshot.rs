//! Per-job materialization snapshots and the cache that serves them.
//!
//! The chase worker publishes immutable [`Snapshot`]s of the live
//! instance at derivation-step boundaries; readers grab an `Arc` and
//! evaluate queries without ever blocking the writer. Each job keeps a
//! short *ring* of recent snapshots whose intersection is the liminf
//! proxy for the robust aggregate D^⊛ (paper Defs. 14–16): for a
//! non-terminating chase, atoms present in every trailing snapshot are
//! the stable prefix it is sound to answer from.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use chase_atoms::{AtomSet, Vocabulary};

/// An immutable snapshot of one job's chase instance.
///
/// The vocabulary rides along because the chase mints fresh labeled
/// nulls as it runs — rendering a snapshot's atoms needs the symbol
/// table as of the same instant.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Symbol tables as of the capture.
    pub vocab: Arc<Vocabulary>,
    /// The instance as of the capture.
    pub instance: Arc<AtomSet>,
    /// Rule applications performed when the snapshot was taken (the
    /// *horizon* reported with sound-prefix answers).
    pub applications: u64,
    /// Whether the chase had terminated (the instance is then a
    /// universal model and answers over it are complete).
    pub terminated: bool,
    /// When the snapshot was captured.
    pub captured: Instant,
}

impl Snapshot {
    /// Builds a snapshot of a live (not yet terminated) instance.
    pub fn live(vocab: Vocabulary, instance: AtomSet, applications: u64) -> Self {
        Snapshot {
            vocab: Arc::new(vocab),
            instance: Arc::new(instance),
            applications,
            terminated: false,
            captured: Instant::now(),
        }
    }

    /// Builds a snapshot of a terminated run's final (universal-model)
    /// instance.
    pub fn terminal(vocab: Vocabulary, instance: AtomSet, applications: u64) -> Self {
        Snapshot {
            terminated: true,
            ..Snapshot::live(vocab, instance, applications)
        }
    }
}

/// What a query evaluates against: either the final instance of a
/// terminated job or the robust (ring-intersection) prefix of a live
/// one, plus the metadata needed to tag the reply.
#[derive(Clone, Debug)]
pub struct QueryView {
    /// Symbol tables to parse/render against (latest snapshot's).
    pub vocab: Arc<Vocabulary>,
    /// The instance to evaluate on.
    pub instance: Arc<AtomSet>,
    /// Whether the instance is a universal model (chase terminated).
    pub terminated: bool,
    /// Monotone per-job publication counter of the newest ring entry.
    pub sequence: u64,
    /// Applications horizon of the newest ring entry.
    pub applications: u64,
    /// Capture time of the newest ring entry (readers derive the
    /// snapshot age from it).
    pub captured: Instant,
    /// How many snapshots the intersection spans (1 for terminated
    /// jobs: the final instance is served as-is).
    pub ring_len: usize,
}

/// Cache counters, all monotone.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Views served for jobs with at least one published snapshot.
    pub hits: u64,
    /// View requests for jobs with no snapshot yet.
    pub misses: u64,
    /// Snapshots published (across all jobs).
    pub published: u64,
    /// Answer tuples handed out by the query engine (bumped by callers
    /// via [`SnapshotCache::add_answers_served`]).
    pub answers_served: u64,
    /// Live publishes ignored because a terminal snapshot already
    /// existed for the job (stragglers racing the finisher).
    pub stale_drops: u64,
}

struct JobRing {
    ring: VecDeque<Arc<Snapshot>>,
    /// Intersection of the ring instances, refreshed on publish so the
    /// (frequent) read path never pays for it.
    robust: Arc<AtomSet>,
    next_seq: u64,
    /// Latched once a terminal snapshot lands: a late `live` publish
    /// (e.g. a checkpoint straggling in after the job finished) must not
    /// re-enter the ring and downgrade `complete` replies back to
    /// sound-prefix.
    terminal: bool,
}

/// What survives a [`SnapshotCache::evict`]: enough to keep per-job
/// reply sequences monotone (and the terminal latch honest) if the same
/// job id publishes again.
#[derive(Copy, Clone, Default)]
struct Retired {
    next_seq: u64,
    terminal: bool,
}

struct CacheState {
    jobs: HashMap<u64, JobRing>,
    retired: HashMap<u64, Retired>,
}

/// A concurrent per-job snapshot cache.
///
/// Writers call [`SnapshotCache::publish`] at step boundaries; readers
/// call [`SnapshotCache::view`]. The mutex only guards the ring
/// bookkeeping — instances are shared by `Arc`, so a reader holding a
/// view never blocks a publisher and vice versa.
pub struct SnapshotCache {
    jobs: Mutex<CacheState>,
    ring_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    published: AtomicU64,
    answers_served: AtomicU64,
    stale_drops: AtomicU64,
}

impl SnapshotCache {
    /// Creates a cache keeping up to `ring_capacity` trailing snapshots
    /// per job (the D^⊛ intersection margin + 1; must be ≥ 1).
    ///
    /// # Panics
    /// Panics if `ring_capacity == 0`.
    pub fn new(ring_capacity: usize) -> Self {
        assert!(ring_capacity >= 1, "ring capacity must be at least 1");
        SnapshotCache {
            jobs: Mutex::new(CacheState {
                jobs: HashMap::new(),
                retired: HashMap::new(),
            }),
            ring_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            published: AtomicU64::new(0),
            answers_served: AtomicU64::new(0),
            stale_drops: AtomicU64::new(0),
        }
    }

    /// Publishes a snapshot for `job`, sliding its ring forward and
    /// refreshing the robust intersection. A terminal snapshot clears
    /// the ring — the final instance alone is served from then on, and
    /// later `live` publishes for the job are dropped (counted in
    /// [`CacheStats::stale_drops`]) instead of downgrading `complete`
    /// replies. Per-job sequence numbers stay monotone for the cache's
    /// lifetime, across [`SnapshotCache::evict`] and re-publish.
    pub fn publish(&self, job: u64, snapshot: Snapshot) {
        let snapshot = Arc::new(snapshot);
        let mut st = self.jobs.lock().expect("snapshot cache poisoned");
        let already_terminal = st.jobs.get(&job).map_or_else(
            || st.retired.get(&job).is_some_and(|r| r.terminal),
            |e| e.terminal,
        );
        if already_terminal && !snapshot.terminated {
            drop(st);
            self.stale_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let carried = st.retired.get(&job).copied().unwrap_or_default();
        let entry = st.jobs.entry(job).or_insert_with(|| JobRing {
            ring: VecDeque::new(),
            robust: Arc::new(AtomSet::new()),
            next_seq: carried.next_seq,
            terminal: carried.terminal,
        });
        if snapshot.terminated {
            entry.ring.clear();
            entry.terminal = true;
        }
        entry.ring.push_back(Arc::clone(&snapshot));
        while entry.ring.len() > self.ring_capacity {
            entry.ring.pop_front();
        }
        entry.robust = intersect_ring(&entry.ring);
        entry.next_seq += 1;
        drop(st);
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    /// The view to answer queries for `job` from, or `None` when no
    /// snapshot has been published yet.
    pub fn view(&self, job: u64) -> Option<QueryView> {
        let jobs = self.jobs.lock().expect("snapshot cache poisoned");
        let Some(entry) = jobs.jobs.get(&job) else {
            drop(jobs);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let Some(newest) = entry.ring.back() else {
            drop(jobs);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let view = QueryView {
            vocab: Arc::clone(&newest.vocab),
            instance: if newest.terminated {
                Arc::clone(&newest.instance)
            } else {
                Arc::clone(&entry.robust)
            },
            terminated: newest.terminated,
            sequence: entry.next_seq - 1,
            applications: newest.applications,
            captured: newest.captured,
            ring_len: entry.ring.len(),
        };
        drop(jobs);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(view)
    }

    /// Capture time of `job`'s newest snapshot, without touching the
    /// hit/miss counters (for listings and health reporting).
    pub fn latest_captured(&self, job: u64) -> Option<Instant> {
        let jobs = self.jobs.lock().expect("snapshot cache poisoned");
        jobs.jobs.get(&job)?.ring.back().map(|s| s.captured)
    }

    /// Drops a job's ring (e.g. when the job record is evicted). The
    /// job's sequence counter and terminal latch are retained, so a
    /// later re-publish under the same id continues the sequence instead
    /// of restarting readers at zero.
    pub fn evict(&self, job: u64) {
        let mut st = self.jobs.lock().expect("snapshot cache poisoned");
        if let Some(ring) = st.jobs.remove(&job) {
            st.retired.insert(
                job,
                Retired {
                    next_seq: ring.next_seq,
                    terminal: ring.terminal,
                },
            );
        }
    }

    /// Records `n` answer tuples handed out from this cache's views.
    pub fn add_answers_served(&self, n: u64) {
        self.answers_served.fetch_add(n, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            answers_served: self.answers_served.load(Ordering::Relaxed),
            stale_drops: self.stale_drops.load(Ordering::Relaxed),
        }
    }
}

/// Intersection of the ring instances — the liminf proxy mirroring
/// `RobustSequence::aggregation_prefix`: an atom is in the robust
/// prefix iff it survived in every trailing snapshot.
fn intersect_ring(ring: &VecDeque<Arc<Snapshot>>) -> Arc<AtomSet> {
    let Some(first) = ring.front() else {
        return Arc::new(AtomSet::new());
    };
    if ring.len() == 1 {
        return Arc::clone(&first.instance);
    }
    let atoms: AtomSet = first
        .instance
        .iter()
        .filter(|a| ring.iter().skip(1).all(|s| s.instance.contains(a)))
        .cloned()
        .collect();
    Arc::new(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_atoms::{Atom, Term};

    fn inst(vocab: &mut Vocabulary, names: &[&str]) -> AtomSet {
        names
            .iter()
            .map(|n| {
                let p = vocab.pred("p", 1);
                Atom::new(p, vec![Term::Const(vocab.constant(n))])
            })
            .collect()
    }

    #[test]
    fn view_serves_latest_terminated_instance() {
        let cache = SnapshotCache::new(3);
        assert!(cache.view(7).is_none());
        let mut vocab = Vocabulary::new();
        let i1 = inst(&mut vocab, &["a"]);
        cache.publish(7, Snapshot::live(vocab.clone(), i1, 1));
        let i2 = inst(&mut vocab, &["a", "b"]);
        cache.publish(7, Snapshot::terminal(vocab.clone(), i2.clone(), 2));
        let view = cache.view(7).expect("published");
        assert!(view.terminated);
        assert_eq!(*view.instance, i2);
        assert_eq!(view.ring_len, 1, "terminal snapshot clears the ring");
        assert_eq!(view.applications, 2);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.published, 2);
    }

    #[test]
    fn robust_view_is_ring_intersection() {
        let cache = SnapshotCache::new(2);
        let mut vocab = Vocabulary::new();
        // Simulate core retraction: atom `b` appears then disappears.
        let i1 = inst(&mut vocab, &["a", "b"]);
        let i2 = inst(&mut vocab, &["a", "c"]);
        cache.publish(1, Snapshot::live(vocab.clone(), i1, 1));
        cache.publish(1, Snapshot::live(vocab.clone(), i2, 2));
        let view = cache.view(1).expect("published");
        assert!(!view.terminated);
        assert_eq!(view.ring_len, 2);
        assert_eq!(view.instance.len(), 1, "only `a` survives both");
        // Ring capacity 2: a third publish drops the first snapshot.
        let i3 = inst(&mut vocab, &["a", "c", "d"]);
        cache.publish(1, Snapshot::live(vocab.clone(), i3, 3));
        let view = cache.view(1).expect("published");
        assert_eq!(view.instance.len(), 2, "a and c survive the last two");
        assert_eq!(view.sequence, 2);
    }

    #[test]
    fn sequences_stay_monotone_across_evict_and_republish() {
        let cache = SnapshotCache::new(2);
        let mut vocab = Vocabulary::new();
        let i = inst(&mut vocab, &["a"]);
        cache.publish(5, Snapshot::live(vocab.clone(), i.clone(), 1));
        cache.publish(5, Snapshot::live(vocab.clone(), i.clone(), 2));
        let before = cache.view(5).expect("published").sequence;
        assert_eq!(before, 1);
        cache.evict(5);
        assert!(cache.view(5).is_none(), "evicted");
        // Re-publish under the same job id: readers relying on per-job
        // monotonicity must never see the sequence restart at zero.
        cache.publish(5, Snapshot::live(vocab.clone(), i, 3));
        let after = cache.view(5).expect("republished").sequence;
        assert!(
            after > before,
            "sequence went backwards: {after} <= {before}"
        );
    }

    #[test]
    fn terminal_snapshot_wins_over_late_live_publish() {
        let cache = SnapshotCache::new(3);
        let mut vocab = Vocabulary::new();
        let i_final = inst(&mut vocab, &["a", "b"]);
        cache.publish(9, Snapshot::terminal(vocab.clone(), i_final.clone(), 7));
        let seq = cache.view(9).expect("terminal").sequence;
        // A checkpoint straggling in after the finisher must not
        // downgrade `complete` replies back to sound-prefix.
        let stale = inst(&mut vocab, &["a"]);
        cache.publish(9, Snapshot::live(vocab.clone(), stale.clone(), 5));
        let view = cache.view(9).expect("still served");
        assert!(view.terminated, "late live publish downgraded the view");
        assert_eq!(*view.instance, i_final);
        assert_eq!(view.sequence, seq, "ignored publish must not bump seq");
        assert_eq!(cache.stats().stale_drops, 1);
        assert_eq!(cache.stats().published, 1);
        // The latch survives eviction of the job record.
        cache.evict(9);
        cache.publish(9, Snapshot::live(vocab.clone(), stale, 6));
        assert!(cache.view(9).is_none(), "stale publish revived evicted job");
        assert_eq!(cache.stats().stale_drops, 2);
        // A genuine terminal re-publish (e.g. recovery) is still allowed.
        cache.publish(9, Snapshot::terminal(vocab, i_final, 7));
        let view = cache.view(9).expect("terminal republished");
        assert!(view.terminated);
        assert!(view.sequence > seq);
    }

    #[test]
    fn eviction_and_counters() {
        let cache = SnapshotCache::new(1);
        let mut vocab = Vocabulary::new();
        let i = inst(&mut vocab, &["a"]);
        cache.publish(3, Snapshot::live(vocab, i, 1));
        assert!(cache.view(3).is_some());
        cache.evict(3);
        assert!(cache.view(3).is_none());
        cache.add_answers_served(5);
        assert_eq!(cache.stats().answers_served, 5);
    }
}
