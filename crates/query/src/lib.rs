//! # chase-query
//!
//! The query-serving subsystem: answers conjunctive queries (with
//! answer variables, and unions thereof) over chase instances, with
//! *certain-answer* semantics and honest completeness tagging.
//!
//! The paper's point is decidable CQ entailment over possibly infinite
//! core chases; operationally that means query answering must be
//! decoupled from chase termination (Larroque–Manière): serve the sound
//! answers you can compute from whatever prefix you have, and say
//! exactly how much the reply promises.
//!
//! * [`Snapshot`] / [`SnapshotCache`] — immutable per-job
//!   materialization snapshots published by the chase worker at step
//!   boundaries; a short trailing ring whose intersection is the liminf
//!   proxy for the robust aggregate D^⊛. Readers never block the
//!   writer.
//! * [`answer_view`] — evaluate a query text on a cache view (the hot
//!   read path).
//! * [`answer_kb`] — one-shot budgeted chase + evaluation for ad-hoc
//!   queries against a KB source.
//! * [`Completeness`] — the `complete` / `sound-prefix{horizon}` /
//!   `truncated` reply lattice; every level is sound, lower levels
//!   promise less about missing tuples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod snapshot;

pub use engine::{answer_kb, answer_view, Completeness, QueryOutcome};
pub use snapshot::{CacheStats, QueryView, Snapshot, SnapshotCache};
