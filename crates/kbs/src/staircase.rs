//! The **steepening staircase** knowledge base `K_h` (Section 6,
//! Figure 2): its rules, analytic models, and the scripted canonical
//! restricted / core chases.
//!
//! ## The KB
//!
//! ```text
//! F_h  = { f(X⁰₀), h(X⁰₀, X⁰₀) }
//! R1h: h(X,X) → ∃X′,Y,Y′. h(X,Y) ∧ v(X,X′) ∧ h(X′,Y′) ∧ v(Y,Y′) ∧ c(Y′)
//! R2h: h(X,X) ∧ v(X,X′) ∧ h(X′,X′) ∧ h(X′,Y′) → ∃Y. c(Y′) ∧ h(X,Y) ∧ v(Y,Y′)
//! R3h: f(X) ∧ h(X,X) ∧ h(X,Y) → f(Y) ∧ h(Y,Y)
//! R4h: h(X,X) ∧ v(X,X′) ∧ c(X′) → h(X′,X′)
//! ```
//!
//! ## The analytic universal model `I^h`
//!
//! Terms `X^i_j` for `0 ≤ j ≤ i+1` (column `i`, height `j`), atoms
//!
//! * `f(X^i_0)` — floor marks;
//! * `c(X^i_j)` for `1 ≤ j ≤ i` — ceiling marks;
//! * `h(X^i_j, X^i_j)` for `j ≤ i` — h-loops (reconstructed index
//!   condition: forced by `R3h`/`R4h` and by the fold `S_k → C_{k+1}`
//!   being a retraction; the machine-extracted text garbles it);
//! * `h(X^i_j, X^{i+1}_j)` — horizontal edges;
//! * `v(X^i_j, X^i_{j+1})` for `j ≤ i` — vertical edges.
//!
//! `C_k` is column `k` without its top element; `S_k` is the *step*
//! spanning columns `k` and `k+1` plus `X^k_{k+1}`; `P_k` is the prefix up
//! to column `k`. The scripted core chase builds `S_k` from `C_k` by the
//! Table 1 schedule (one `R1h`, `k`× `R2h` top-down, one `R3h`, `k+1`×
//! `R4h` bottom-up) and then folds `S_k → C_{k+1}` — every element has
//! treewidth ≤ 2 (Proposition 4), while the natural aggregation `I^h`
//! contains arbitrarily large grids (Proposition 5 mechanism) and the
//! robust aggregation is the infinite column `Ĩ^h` (Section 8).

use std::collections::HashMap;

use chase_atoms::{Atom, AtomSet, PredId, Substitution, Term, VarId, Vocabulary};
use chase_engine::{Derivation, RuleId, RuleSet, Trigger};
use chase_parser::parse_program;
use chase_treewidth::GridLabeling;

/// One scheduled rule application of the Table 1 schedule.
#[derive(Clone, Debug)]
pub struct ScheduledApplication {
    /// Which rule is applied.
    pub rule: RuleId,
    /// The body homomorphism (on the rule's universal variables).
    pub pi: Substitution,
    /// Bindings chosen for the existential variables (the canonical grid
    /// nulls).
    pub existentials: Vec<(VarId, Term)>,
    /// The atoms this application must newly produce.
    pub expected_new: Vec<Atom>,
}

/// The steepening staircase KB with its grid-named nulls.
pub struct Staircase {
    /// Symbol tables (grid nulls are named `X{i}_{j}`).
    pub vocab: Vocabulary,
    /// The ruleset `Σ_h = {R1h, R2h, R3h, R4h}`.
    pub rules: RuleSet,
    /// The fact set `F_h`.
    pub facts: AtomSet,
    f: PredId,
    c: PredId,
    h: PredId,
    v: PredId,
    grid: HashMap<(u32, u32), VarId>,
}

impl Staircase {
    /// Builds the KB.
    pub fn new() -> Self {
        let src = "
            R1h: h(X, X) -> h(X, Y), v(X, X'), h(X', Y'), v(Y, Y'), c(Y').
            R2h: h(X, X), v(X, X'), h(X', X'), h(X', Y') -> c(Y'), h(X, Y), v(Y, Y').
            R3h: f(X), h(X, X), h(X, Y) -> f(Y), h(Y, Y).
            R4h: h(X, X), v(X, X'), c(X') -> h(X', X').
        ";
        let prog = parse_program(src).expect("staircase rules parse");
        let mut vocab = prog.vocab;
        let f = vocab.pred("f", 1);
        let c = vocab.pred("c", 1);
        let h = vocab.pred("h", 2);
        let v = vocab.pred("v", 2);
        let mut this = Staircase {
            vocab,
            rules: prog.rules,
            facts: AtomSet::new(),
            f,
            c,
            h,
            v,
            grid: HashMap::new(),
        };
        let x00 = this.x(0, 0);
        this.facts.insert(Atom::new(f, vec![x00]));
        this.facts.insert(Atom::new(h, vec![x00, x00]));
        this
    }

    /// The grid null `X^i_j` (minted on first use, named `X{i}_{j}`).
    pub fn x(&mut self, i: u32, j: u32) -> Term {
        let id = *self.grid.entry((i, j)).or_insert_with(|| {
            let id = self.vocab.fresh_var();
            self.vocab.set_var_name(id, &format!("X{i}_{j}"));
            id
        });
        Term::Var(id)
    }

    /// Looks up a rule variable by its source name within a rule scope
    /// (e.g. `rule_var("R1h", "X'")`).
    fn rule_var(&mut self, rule: &str, var: &str) -> VarId {
        self.vocab.named_var(&format!("{rule}.{var}"))
    }

    fn fa(&mut self, i: u32, j: u32) -> Atom {
        let t = self.x(i, j);
        Atom::new(self.f, vec![t])
    }

    fn ca(&mut self, i: u32, j: u32) -> Atom {
        let t = self.x(i, j);
        Atom::new(self.c, vec![t])
    }

    fn hloop(&mut self, i: u32, j: u32) -> Atom {
        let t = self.x(i, j);
        Atom::new(self.h, vec![t, t])
    }

    fn hedge(&mut self, i: u32, j: u32) -> Atom {
        let a = self.x(i, j);
        let b = self.x(i + 1, j);
        Atom::new(self.h, vec![a, b])
    }

    fn vedge(&mut self, i: u32, j: u32) -> Atom {
        let a = self.x(i, j);
        let b = self.x(i, j + 1);
        Atom::new(self.v, vec![a, b])
    }

    /// The column atoms of column `i` restricted to heights `0..=top`.
    fn column_atoms(&mut self, i: u32, top: u32, out: &mut AtomSet) {
        out.insert(self.fa(i, 0));
        for j in 1..=top.min(i) {
            out.insert(self.ca(i, j));
        }
        for j in 0..=top.min(i) {
            out.insert(self.hloop(i, j));
        }
        for j in 0..top {
            out.insert(self.vedge(i, j));
        }
    }

    /// The prefix `P_k` of `I^h`: everything up to column `k`, where the
    /// last column is truncated at height `k` (the paper's `S_0 = P_1`
    /// identity forces this reading: `P_k` is exactly what the canonical
    /// chase has built after finishing step `k − 1`).
    pub fn universal_prefix(&mut self, k: u32) -> AtomSet {
        let mut out = AtomSet::new();
        for i in 0..=k {
            let top = if i < k { i + 1 } else { k };
            self.column_atoms(i, top, &mut out);
            if i < k {
                for j in 0..=i + 1 {
                    out.insert(self.hedge(i, j));
                }
            }
        }
        out
    }

    /// The column `C_k` (heights `0..=k`, i.e. without the top `X^k_{k+1}`).
    pub fn column(&mut self, k: u32) -> AtomSet {
        let mut out = AtomSet::new();
        self.column_atoms(k, k, &mut out);
        out
    }

    /// The step `S_k`: the sub-instance of `I^h` induced by
    /// `C_k ∪ C_{k+1} ∪ {X^k_{k+1}}`.
    pub fn step_rect(&mut self, k: u32) -> AtomSet {
        let mut out = AtomSet::new();
        self.column_atoms(k, k + 1, &mut out);
        self.column_atoms(k + 1, k + 1, &mut out);
        for j in 0..=k + 1 {
            out.insert(self.hedge(k, j));
        }
        out
    }

    /// A prefix of the infinite column `Ĩ^h` (heights `0..=n`): floor at
    /// 0, ceilings and h-loops everywhere, an infinite v-path. This is the
    /// (isomorphism type of the) robust aggregation of the canonical core
    /// chase, and a finitely universal — but not universal — model.
    pub fn infinite_column_prefix(&mut self, n: u32) -> AtomSet {
        // Reuse grid column indices far out so names don't collide:
        // heights are what matters; use synthetic column u32::MAX - 1.
        const COL: u32 = u32::MAX - 1;
        let mut out = AtomSet::new();
        let t0 = self.x(COL, 0);
        out.insert(Atom::new(self.f, vec![t0]));
        for j in 0..=n {
            let t = self.x(COL, j);
            out.insert(Atom::new(self.h, vec![t, t]));
            if j >= 1 {
                out.insert(Atom::new(self.c, vec![t]));
            }
            if j < n {
                let up = self.x(COL, j + 1);
                out.insert(Atom::new(self.v, vec![t, up]));
            }
        }
        out
    }

    /// The `n × n` grid labeling `T_{n×n}` inside `P_{2n}` used by the
    /// Proposition 5 proof: `terms[a][b] = X^{n+1+a}_b` for
    /// `a, b ∈ 0..n`.
    pub fn grid_labeling(&mut self, n: u32) -> GridLabeling {
        GridLabeling::from_fn(n as usize, |a, b| self.x(n + 1 + a as u32, b as u32))
    }

    /// The fold retraction `S_k → C_{k+1}`: `X^k_j ↦ X^{k+1}_j`.
    pub fn fold_to_next_column(&mut self, k: u32) -> Substitution {
        let mut sigma = Substitution::new();
        for j in 0..=k + 1 {
            let from = self.x(k, j);
            let to = self.x(k + 1, j);
            sigma.bind(from.as_var().expect("grid term is a var"), to);
        }
        sigma
    }

    /// The Table 1 schedule for step `k`: the `2k + 3` rule applications
    /// that build `S_k` from `C_k` (one `R1h`, `k`× `R2h` top-down, one
    /// `R3h`, then `k+1`× `R4h` bottom-up).
    pub fn schedule(&mut self, k: u32) -> Vec<ScheduledApplication> {
        let mut out = Vec::new();
        let (r1, _) = self.rules.by_name("R1h").expect("R1h");
        let (r2, _) = self.rules.by_name("R2h").expect("R2h");
        let (r3, _) = self.rules.by_name("R3h").expect("R3h");
        let (r4, _) = self.rules.by_name("R4h").expect("R4h");

        // R1h on the top loop of C_k.
        {
            let x = self.rule_var("R1h", "X");
            let xp = self.rule_var("R1h", "X'");
            let y = self.rule_var("R1h", "Y");
            let yp = self.rule_var("R1h", "Y'");
            let xkk = self.x(k, k);
            out.push(ScheduledApplication {
                rule: r1,
                pi: Substitution::from_pairs([(x, xkk)]),
                existentials: vec![
                    (xp, self.x(k, k + 1)),
                    (y, self.x(k + 1, k)),
                    (yp, self.x(k + 1, k + 1)),
                ],
                expected_new: vec![
                    self.hedge(k, k),
                    self.vedge(k, k),
                    self.hedge(k, k + 1),
                    self.vedge(k + 1, k),
                    self.ca(k + 1, k + 1),
                ],
            });
        }
        // R2h for j = k, …, 1 (top-down).
        for j in (1..=k).rev() {
            let x = self.rule_var("R2h", "X");
            let xp = self.rule_var("R2h", "X'");
            let yp = self.rule_var("R2h", "Y'");
            let y = self.rule_var("R2h", "Y");
            let pi = Substitution::from_pairs([
                (x, self.x(k, j - 1)),
                (xp, self.x(k, j)),
                (yp, self.x(k + 1, j)),
            ]);
            out.push(ScheduledApplication {
                rule: r2,
                pi,
                existentials: vec![(y, self.x(k + 1, j - 1))],
                expected_new: vec![
                    self.ca(k + 1, j),
                    self.hedge(k, j - 1),
                    self.vedge(k + 1, j - 1),
                ],
            });
        }
        // R3h: floor mark moves right.
        {
            let x = self.rule_var("R3h", "X");
            let y = self.rule_var("R3h", "Y");
            let pi = Substitution::from_pairs([(x, self.x(k, 0)), (y, self.x(k + 1, 0))]);
            out.push(ScheduledApplication {
                rule: r3,
                pi,
                existentials: vec![],
                expected_new: vec![self.fa(k + 1, 0), self.hloop(k + 1, 0)],
            });
        }
        // R4h for j = 1, …, k+1 (bottom-up): loops climb.
        for j in 1..=k + 1 {
            let x = self.rule_var("R4h", "X");
            let xp = self.rule_var("R4h", "X'");
            let pi = Substitution::from_pairs([(x, self.x(k + 1, j - 1)), (xp, self.x(k + 1, j))]);
            out.push(ScheduledApplication {
                rule: r4,
                pi,
                existentials: vec![],
                expected_new: vec![self.hloop(k + 1, j)],
            });
        }
        out
    }

    /// Applies one scheduled application onto the end of `d`, with an
    /// optional simplification.
    fn apply_scheduled(
        &mut self,
        d: &mut Derivation,
        app: &ScheduledApplication,
        sigma: Substitution,
    ) {
        let trigger = Trigger::new(&self.rules, app.rule, &app.pi);
        let mut pi_safe = app.pi.restrict(self.rules.get(app.rule).frontier_vars());
        for &(z, t) in &app.existentials {
            pi_safe.bind(z, t);
        }
        let mut a = d.last_instance().clone();
        for atom in self.rules.get(app.rule).head().iter() {
            a.insert(pi_safe.apply_atom(atom));
        }
        let next = sigma.apply_set(&a);
        d.push_step(trigger, pi_safe, sigma, next);
    }

    /// The canonical **restricted** chase `D_r` through step `steps − 1`
    /// (no simplifications). Its natural aggregation is `P_steps`.
    pub fn scripted_restricted_chase(&mut self, steps: u32) -> Derivation {
        let mut d = Derivation::start(self.rules.clone(), self.facts.clone(), Substitution::new());
        for k in 0..steps {
            for app in self.schedule(k) {
                self.apply_scheduled(&mut d, &app, Substitution::new());
            }
        }
        d
    }

    /// The canonical **core** chase `D_c` through step `steps − 1`: each
    /// step builds `S_k` and folds it onto `C_{k+1}` on its final
    /// application. Every element is a subset of some `S_k`, hence of
    /// treewidth ≤ 2 (Proposition 4).
    pub fn scripted_core_chase(&mut self, steps: u32) -> Derivation {
        let mut d = Derivation::start(self.rules.clone(), self.facts.clone(), Substitution::new());
        for k in 0..steps {
            let schedule = self.schedule(k);
            let last = schedule.len() - 1;
            for (idx, app) in schedule.iter().enumerate() {
                let sigma = if idx == last {
                    self.fold_to_next_column(k)
                } else {
                    Substitution::new()
                };
                self.apply_scheduled(&mut d, app, sigma);
            }
        }
        d
    }
}

impl Default for Staircase {
    fn default() -> Self {
        Staircase::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::aggregation::natural_aggregation;
    use chase_engine::is_model_of_rules;
    use chase_homomorphism::{is_core, maps_to};
    use chase_treewidth::{contains_grid, treewidth, treewidth_bounds};

    #[test]
    fn facts_are_column_zero() {
        let mut s = Staircase::new();
        let c0 = s.column(0);
        assert_eq!(c0, s.facts);
    }

    #[test]
    fn rules_have_expected_shape() {
        let s = Staircase::new();
        assert_eq!(s.rules.len(), 4);
        assert_eq!(s.rules.get(0).existential_vars().len(), 3);
        assert_eq!(s.rules.get(1).existential_vars().len(), 1);
        assert!(s.rules.get(2).is_datalog());
        assert!(s.rules.get(3).is_datalog());
    }

    #[test]
    fn fold_is_a_retraction_onto_next_column() {
        let mut s = Staircase::new();
        for k in 0..4 {
            let step = s.step_rect(k);
            let fold = s.fold_to_next_column(k);
            assert!(fold.is_retraction_of(&step), "k = {k}");
            assert_eq!(fold.apply_set(&step), s.column(k + 1), "k = {k}");
        }
    }

    #[test]
    fn columns_are_cores() {
        let mut s = Staircase::new();
        for k in 0..4 {
            assert!(is_core(&s.column(k)), "C_{k} must be a core");
        }
    }

    #[test]
    fn steps_have_treewidth_two() {
        let mut s = Staircase::new();
        for k in 1..4 {
            assert_eq!(treewidth(&s.step_rect(k)), 2, "tw(S_{k})");
        }
    }

    #[test]
    fn scripted_core_chase_is_valid_and_bounded() {
        let mut s = Staircase::new();
        let d = s.scripted_core_chase(3);
        assert_eq!(d.validate(), Ok(()));
        for f in d.instances() {
            let b = treewidth_bounds(f);
            assert!(b.upper <= 2, "chase element exceeds treewidth 2");
        }
        // Final element is C_3.
        assert_eq!(d.last_instance(), &s.column(3));
    }

    #[test]
    fn scripted_restricted_chase_aggregates_to_prefix() {
        let mut s = Staircase::new();
        let d = s.scripted_restricted_chase(3);
        assert_eq!(d.validate(), Ok(()));
        assert!(d.is_monotonic());
        assert_eq!(natural_aggregation(&d), s.universal_prefix(3));
    }

    #[test]
    fn prefix_contains_growing_grids() {
        let mut s = Staircase::new();
        let n = 3;
        let prefix = s.universal_prefix(2 * n);
        let lab = s.grid_labeling(n);
        assert!(contains_grid(&prefix, &lab));
    }

    #[test]
    fn infinite_column_prefix_has_treewidth_one() {
        let mut s = Staircase::new();
        let col = s.infinite_column_prefix(10);
        assert_eq!(treewidth(&col), 1);
    }

    #[test]
    fn infinite_column_is_a_model_but_columns_are_not() {
        let mut s = Staircase::new();
        let col = s.infinite_column_prefix(12);
        // The infinite column is a model of the rules up to its horizon:
        // triggers near the top need the next level, so check only that
        // the facts map and that a generous prefix satisfies the *bottom*
        // triggers. Full modelhood is an E2 experiment over growing
        // horizons; here we check the facts embed:
        assert!(maps_to(&s.facts, &col));
        // …and that the finite columns C_k are NOT models (R1h unsatisfied
        // at the top loop).
        let c2 = s.column(2);
        assert!(!is_model_of_rules(&s.rules, &c2));
    }

    #[test]
    fn schedule_produces_exactly_expected_atoms() {
        let mut s = Staircase::new();
        let d = s.scripted_restricted_chase(3);
        // Re-walk the schedule and compare per-application diffs.
        let mut idx = 1; // step 0 of the derivation is F_0
        for k in 0..3 {
            for app in s.schedule(k) {
                let before = d.instance(idx - 1);
                let after = d.instance(idx);
                for atom in &app.expected_new {
                    assert!(
                        after.contains(atom) && !before.contains(atom),
                        "k={k} application {idx}: expected new atom missing"
                    );
                }
                assert_eq!(
                    after.len() - before.len(),
                    app.expected_new.len(),
                    "k={k} application {idx}: unexpected extra atoms"
                );
                idx += 1;
            }
        }
        assert_eq!(idx, d.len());
    }

    #[test]
    fn aggregation_of_core_chase_equals_aggregation_of_restricted() {
        // D*_c = D*_r = I^h (on prefixes): the folded core chase loses
        // nothing in aggregation.
        let mut s = Staircase::new();
        let dc = s.scripted_core_chase(3);
        let dr = s.scripted_restricted_chase(3);
        assert_eq!(natural_aggregation(&dc), natural_aggregation(&dr));
    }
}
