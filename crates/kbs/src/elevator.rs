//! The **inflating elevator** knowledge base `K_v` (Section 7,
//! Figures 3–4): its rules and analytic models.
//!
//! ## The KB
//!
//! ```text
//! F_v  = { c(X⁰₀), d(X⁰₀), h(X⁰₀, X¹₀), f(X¹₀) }
//! R1v: c(X) ∧ h(X,Y) → ∃Y′,Y″. v(Y,Y′) ∧ v(Y′,Y″) ∧ c(Y″)
//! R2v: d(X) ∧ f(X) ∧ v(X,X′) → ∃Y′. h(X′,Y′) ∧ f(Y′)
//! R3v: v(X,X′) ∧ h(X,Y) → ∃Y′. v(Y,Y′) ∧ h(X′,Y′)
//! R4v: c(X) → d(X)
//! R5v: v(X,X′) ∧ d(X′) → d(X)
//! R6v: h(X,Y) ∧ d(Y) ∧ f(Y) → f(X) ∧ v(X,X)
//! R7v: c(X) ∧ h(X,Y) ∧ v(Y,Y′) ∧ f(Y′) → h(X,Y′)
//! ```
//!
//! ## The analytic universal model `I^v` (Definition 10)
//!
//! Terms `X^i_j` for `max(0, i−1) ≤ j ≤ 2i` (column `i`, height `j`);
//! atoms, for all valid indices:
//!
//! * `d(X^i_j)` and `f(X^i_j)` everywhere;
//! * `c(X^i_{2i})` at the column tops;
//! * `h(X^i_j, X^{i+1}_j)` for `i ≤ j ≤ 2i` (same-height horizontals);
//! * `h(X^i_{2i}, X^{i+1}_{2i+1})` and `h(X^i_{2i}, X^{i+1}_{2i+2})`
//!   (diagonals produced by `R7v`);
//! * `v(X^i_j, X^i_{j+1})` within columns;
//! * `v(X^i_j, X^i_j)` for `j ≥ i` (v-loops).
//!
//! `I^v*` (Definition 11) is the sub-instance on the tops `X^i_{2i}` — a
//! universal model of treewidth 1. The cabins `I^v_n` (Definition 12) are
//! cores of treewidth ≥ ⌈n/3⌉ + 1 that every core-chase sequence must
//! eventually contain (Proposition 8); this module reconstructs them from
//! the (partly garbled) extracted definition and machine-checks core-ness.

use std::collections::HashMap;

use chase_atoms::{Atom, AtomSet, PredId, Term, VarId, Vocabulary};
use chase_engine::RuleSet;
use chase_parser::parse_program;
use chase_treewidth::GridLabeling;

/// The inflating elevator KB with its grid-named nulls.
pub struct Elevator {
    /// Symbol tables (grid nulls are named `X{i}_{j}`).
    pub vocab: Vocabulary,
    /// The ruleset `Σ_v = {R1v, …, R7v}`.
    pub rules: RuleSet,
    /// The fact set `F_v`.
    pub facts: AtomSet,
    c: PredId,
    d: PredId,
    f: PredId,
    h: PredId,
    v: PredId,
    grid: HashMap<(u32, u32), VarId>,
}

impl Elevator {
    /// Builds the KB.
    pub fn new() -> Self {
        let src = "
            R1v: c(X), h(X, Y) -> v(Y, Y'), v(Y', Y''), c(Y'').
            R2v: d(X), f(X), v(X, X') -> h(X', Y'), f(Y').
            R3v: v(X, X'), h(X, Y) -> v(Y, Y'), h(X', Y').
            R4v: c(X) -> d(X).
            R5v: v(X, X'), d(X') -> d(X).
            R6v: h(X, Y), d(Y), f(Y) -> f(X), v(X, X).
            R7v: c(X), h(X, Y), v(Y, Y'), f(Y') -> h(X, Y').
        ";
        let prog = parse_program(src).expect("elevator rules parse");
        let mut vocab = prog.vocab;
        let c = vocab.pred("c", 1);
        let d = vocab.pred("d", 1);
        let f = vocab.pred("f", 1);
        let h = vocab.pred("h", 2);
        let v = vocab.pred("v", 2);
        let mut this = Elevator {
            vocab,
            rules: prog.rules,
            facts: AtomSet::new(),
            c,
            d,
            f,
            h,
            v,
            grid: HashMap::new(),
        };
        let x00 = this.x(0, 0);
        let x10 = this.x(1, 0);
        this.facts.insert(Atom::new(c, vec![x00]));
        this.facts.insert(Atom::new(d, vec![x00]));
        this.facts.insert(Atom::new(h, vec![x00, x10]));
        this.facts.insert(Atom::new(f, vec![x10]));
        this
    }

    /// The grid null `X^i_j` (minted on first use, named `X{i}_{j}`).
    pub fn x(&mut self, i: u32, j: u32) -> Term {
        let id = *self.grid.entry((i, j)).or_insert_with(|| {
            let id = self.vocab.fresh_var();
            self.vocab.set_var_name(id, &format!("X{i}_{j}"));
            id
        });
        Term::Var(id)
    }

    /// Does term `X^i_j` exist in `I^v`?
    fn exists(i: u32, j: u32) -> bool {
        j + 1 >= i && j <= 2 * i
    }

    fn unary(&mut self, p: PredId, i: u32, j: u32) -> Atom {
        let t = self.x(i, j);
        Atom::new(p, vec![t])
    }

    fn binary(&mut self, p: PredId, a: (u32, u32), b: (u32, u32)) -> Atom {
        let ta = self.x(a.0, a.1);
        let tb = self.x(b.0, b.1);
        Atom::new(p, vec![ta, tb])
    }

    /// The prefix of `I^v` with columns `0..=m`.
    pub fn universal_prefix(&mut self, m: u32) -> AtomSet {
        let mut out = AtomSet::new();
        for i in 0..=m {
            let lo = i.saturating_sub(1);
            for j in lo..=2 * i {
                out.insert(self.unary(self.d, i, j));
                out.insert(self.unary(self.f, i, j));
                if j == 2 * i {
                    out.insert(self.unary(self.c, i, j));
                }
                if j >= i {
                    out.insert(self.binary(self.v, (i, j), (i, j)));
                }
                if j < 2 * i {
                    out.insert(self.binary(self.v, (i, j), (i, j + 1)));
                }
                if i < m && j >= i && Self::exists(i + 1, j) {
                    out.insert(self.binary(self.h, (i, j), (i + 1, j)));
                }
            }
            if i < m {
                out.insert(self.binary(self.h, (i, 2 * i), (i + 1, 2 * i + 1)));
                out.insert(self.binary(self.h, (i, 2 * i), (i + 1, 2 * i + 2)));
            }
        }
        out
    }

    /// The prefix of the spine `I^v*` (Definition 11) with columns
    /// `0..=m`: the sub-instance of `I^v` on the tops `X^i_{2i}` — a
    /// universal model of treewidth 1.
    pub fn spine_prefix(&mut self, m: u32) -> AtomSet {
        let mut out = AtomSet::new();
        for i in 0..=m {
            let j = 2 * i;
            out.insert(self.unary(self.c, i, j));
            out.insert(self.unary(self.d, i, j));
            out.insert(self.unary(self.f, i, j));
            out.insert(self.binary(self.v, (i, j), (i, j)));
            if i < m {
                out.insert(self.binary(self.h, (i, j), (i + 1, 2 * i + 2)));
            }
        }
        out
    }

    /// The cabin `I^v_n` (Definition 12, reconstructed): the sub-instance
    /// of `I^v` induced by the spine tops `X^i_{2i}` for `2i ≤ n` together
    /// with the band `{X^i_j | i ≤ n+1, j ≥ n}`, minus
    ///
    /// * v-loops and `f` at heights `j > n`, and
    /// * height-increasing `h`-atoms `h(X^i_j, X^{i+1}_k)` with `k > j`
    ///   and `k > n`.
    pub fn cabin(&mut self, n: u32) -> AtomSet {
        let mut keep: Vec<(u32, u32)> = Vec::new();
        for i in 0..=n + 1 {
            for j in i.saturating_sub(1)..=2 * i {
                let spine = j == 2 * i && 2 * i <= n;
                let band = j >= n;
                if spine || band {
                    keep.push((i, j));
                }
            }
        }
        let full = self.universal_prefix(n + 1);
        let keep_terms: std::collections::BTreeSet<Term> =
            keep.iter().map(|&(i, j)| self.x(i, j)).collect();
        let induced = full.induced_by_terms(&keep_terms);
        // Reverse map term → height for the atom filters.
        let heights: HashMap<Term, u32> = self
            .grid
            .iter()
            .map(|(&(_, j), &v)| (Term::Var(v), j))
            .collect();
        let mut out = AtomSet::new();
        for atom in induced.iter() {
            let height = |t: Term| -> u32 { heights[&t] };
            let p = atom.pred();
            if p == self.v && atom.args()[0] == atom.args()[1] && height(atom.args()[0]) > n {
                continue;
            }
            if p == self.f && height(atom.args()[0]) > n {
                continue;
            }
            if p == self.h && atom.args()[0] != atom.args()[1] {
                let j0 = height(atom.args()[0]);
                let j1 = height(atom.args()[1]);
                if j1 > j0 && j1 > n {
                    continue;
                }
            }
            out.insert(atom.clone());
        }
        out
    }

    /// The grid labeling inside the cabin used by the Proposition 8.2
    /// proof: terms `X^i_k` with `⌊2n/3⌋ + 1 ≤ i ≤ n + 1` and
    /// `n ≤ k ≤ ⌈4n/3⌉`, witnessing a `(⌊n/3⌋ + 1) × (⌊n/3⌋ + 1)`-grid.
    pub fn cabin_grid_labeling(&mut self, n: u32) -> GridLabeling {
        let side = (n / 3 + 1) as usize;
        let i0 = 2 * n / 3 + 1;
        let k0 = n;
        GridLabeling::from_fn(side, |a, b| self.x(i0 + a as u32, k0 + b as u32))
    }
}

impl Default for Elevator {
    fn default() -> Self {
        Elevator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::{run_chase, ChaseConfig, ChaseVariant, SchedulerKind};
    use chase_homomorphism::{is_core, maps_to};
    use chase_treewidth::{contains_grid, treewidth, treewidth_bounds};

    #[test]
    fn facts_embed_in_models() {
        let mut e = Elevator::new();
        let prefix = e.universal_prefix(4);
        let spine = e.spine_prefix(4);
        assert!(maps_to(&e.facts, &prefix));
        assert!(maps_to(&e.facts, &spine));
    }

    #[test]
    fn spine_is_treewidth_one_and_inside_prefix() {
        let mut e = Elevator::new();
        let spine = e.spine_prefix(6);
        assert_eq!(treewidth(&spine), 1);
        let prefix = e.universal_prefix(6);
        assert!(spine.is_subset_of(&prefix), "I^v* ⊆ I^v");
    }

    #[test]
    fn prefix_contains_growing_grids() {
        // Same-height horizontals plus verticals form grids in the band.
        let mut e = Elevator::new();
        let n = 6;
        let prefix = e.universal_prefix(n + 1);
        let lab = e.cabin_grid_labeling(n);
        assert!(contains_grid(&prefix, &lab));
    }

    #[test]
    fn cabin_contains_its_grid() {
        let mut e = Elevator::new();
        for n in [3u32, 6] {
            let cabin = e.cabin(n);
            let lab = e.cabin_grid_labeling(n);
            assert!(contains_grid(&cabin, &lab), "n = {n}");
            let b = treewidth_bounds(&cabin);
            assert!(
                b.upper as u32 > n / 3,
                "tw(cabin {n}) upper {} below grid bound",
                b.upper
            );
        }
    }

    #[test]
    fn cabins_are_cores() {
        let mut e = Elevator::new();
        for n in [1u32, 2, 3] {
            let cabin = e.cabin(n);
            assert!(is_core(&cabin), "I^v_{n} must be a core");
        }
    }

    #[test]
    fn restricted_chase_approximates_universal_model() {
        let mut e = Elevator::new();
        // Proposition 6, direction 1: a small I^v prefix maps into a deep
        // chase (column 1 completes only after ~200 applications because
        // `f` propagates right-to-left through later columns).
        let mut vocab = e.vocab.clone();
        let deep_cfg = ChaseConfig::variant(ChaseVariant::Restricted)
            .with_scheduler(SchedulerKind::DatalogFirst)
            .with_max_applications(300);
        let deep = run_chase(&mut vocab, &e.facts, &e.rules, &deep_cfg);
        let small = e.universal_prefix(1);
        assert!(
            maps_to(&small, &deep.final_instance),
            "I^v prefix must appear in the restricted chase"
        );
        // Direction 2: the chase stays within I^v. The chase-side pattern
        // of this homomorphism must stay moderate (large patterns with
        // many interchangeable nulls thrash the backtracking search), so
        // check it on a 140-application element; monotonicity makes that
        // subsume all earlier elements.
        let mut vocab = e.vocab.clone();
        let mid_cfg = ChaseConfig::variant(ChaseVariant::Restricted)
            .with_scheduler(SchedulerKind::DatalogFirst)
            .with_max_applications(140);
        let mid = run_chase(&mut vocab, &e.facts, &e.rules, &mid_cfg);
        let big = e.universal_prefix(10);
        assert!(
            maps_to(&mid.final_instance, &big),
            "the restricted chase must stay within I^v"
        );
    }

    #[test]
    fn core_chase_treewidth_grows() {
        // Corollary 1 (shape): the core chase's instances develop growing
        // certified grid structure. We run a modest budget and check the
        // certified upper bound exceeds 1 eventually (the spine alone
        // would stay at 1).
        let e = Elevator::new();
        let mut vocab = e.vocab.clone();
        let cfg = ChaseConfig::variant(ChaseVariant::Core)
            .with_scheduler(SchedulerKind::DatalogFirst)
            .with_max_applications(40);
        let res = run_chase(&mut vocab, &e.facts, &e.rules, &cfg);
        assert!(!res.outcome.terminated(), "K_v must not terminate");
        let d = res.derivation.unwrap();
        let bound = chase_engine::boundedness::certified_uniform_bound(&d);
        assert!(
            bound >= 2,
            "core chase should exceed treewidth 1, got {bound}"
        );
    }
}
