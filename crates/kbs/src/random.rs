//! Seeded random instances and rulesets for benchmarks and property
//! tests.

use chase_atoms::{Atom, AtomSet, Term, Vocabulary};
use chase_engine::prng::SplitMix64;
use chase_engine::{Rule, RuleSet};

/// Configuration for random instance generation.
#[derive(Clone, Debug)]
pub struct InstanceConfig {
    /// Number of atoms to draw.
    pub atoms: usize,
    /// Size of the term pool (mixture of constants and nulls).
    pub terms: usize,
    /// Fraction (0..=100) of pool terms that are constants.
    pub const_percent: u8,
    /// Binary predicates to draw from.
    pub preds: Vec<&'static str>,
}

impl Default for InstanceConfig {
    fn default() -> Self {
        InstanceConfig {
            atoms: 50,
            terms: 20,
            const_percent: 30,
            preds: vec!["r", "s"],
        }
    }
}

/// Draws a random instance over binary predicates.
pub fn random_instance(vocab: &mut Vocabulary, cfg: &InstanceConfig, seed: u64) -> AtomSet {
    let mut rng = SplitMix64::new(seed);
    let preds: Vec<_> = cfg.preds.iter().map(|p| vocab.pred(p, 2)).collect();
    let mut pool: Vec<Term> = Vec::with_capacity(cfg.terms);
    for i in 0..cfg.terms {
        if (i * 100) < cfg.terms * cfg.const_percent as usize {
            pool.push(Term::Const(vocab.constant(&format!("k{i}"))));
        } else {
            pool.push(Term::Var(vocab.fresh_var()));
        }
    }
    let mut out = AtomSet::new();
    while out.len() < cfg.atoms {
        let p = preds[rng.gen_range(preds.len())];
        let a = pool[rng.gen_range(pool.len())];
        let b = pool[rng.gen_range(pool.len())];
        out.insert(Atom::new(p, vec![a, b]));
    }
    out
}

/// Draws a random *linear* existential ruleset (single-body-atom rules),
/// which keeps the chase well-behaved enough for benchmarking.
pub fn random_linear_ruleset(vocab: &mut Vocabulary, rules: usize, seed: u64) -> RuleSet {
    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let preds: Vec<_> = ["r", "s", "t"].iter().map(|p| vocab.pred(p, 2)).collect();
    let mut out = RuleSet::new();
    for idx in 0..rules {
        let x = vocab.fresh_var();
        let y = vocab.fresh_var();
        let z = vocab.fresh_var();
        let bp = preds[rng.gen_range(preds.len())];
        let hp = preds[rng.gen_range(preds.len())];
        let body: AtomSet = [Atom::new(bp, vec![Term::Var(x), Term::Var(y)])]
            .into_iter()
            .collect();
        // Half the rules are datalog-ish (swap), half existential (chain).
        let head: AtomSet = if rng.gen_bool() {
            [Atom::new(hp, vec![Term::Var(y), Term::Var(x)])]
                .into_iter()
                .collect()
        } else {
            [Atom::new(hp, vec![Term::Var(y), Term::Var(z)])]
                .into_iter()
                .collect()
        };
        out.push(Rule::new(format!("rand{idx}"), body, head).expect("nonempty"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_reproducible() {
        let mut v1 = Vocabulary::new();
        let mut v2 = Vocabulary::new();
        let cfg = InstanceConfig::default();
        let a = random_instance(&mut v1, &cfg, 42);
        let b = random_instance(&mut v2, &cfg, 42);
        assert_eq!(a, b);
        let c = random_instance(&mut v2, &cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn instance_respects_config() {
        let mut vocab = Vocabulary::new();
        let cfg = InstanceConfig {
            atoms: 30,
            terms: 10,
            const_percent: 100,
            preds: vec!["e"],
        };
        let a = random_instance(&mut vocab, &cfg, 1);
        assert_eq!(a.len(), 30);
        assert!(a.vars().is_empty());
        assert!(a.terms().len() <= 10);
    }

    #[test]
    fn rulesets_are_reproducible_and_valid() {
        let mut v1 = Vocabulary::new();
        let rs = random_linear_ruleset(&mut v1, 8, 7);
        assert_eq!(rs.len(), 8);
        for (_, r) in rs.iter() {
            assert_eq!(r.body().len(), 1);
            assert_eq!(r.head().len(), 1);
        }
    }
}
