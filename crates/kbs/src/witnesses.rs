//! Witness rulesets separating the decidable classes of Figure 1 and
//! Proposition 13.
//!
//! * [`bts_not_fes`] — `{ r(X,Y) → ∃Z. r(Y,Z) }`: every restricted chase
//!   keeps treewidth ≤ max(tw(F), 1) (bts), but from an acyclic fact base
//!   there is no finite universal model (not fes).
//! * [`fes_not_bts`] — `{ r(X,Y) ∧ r(Y,Z) → ∃V. r(X,X) ∧ r(X,Z) ∧ r(Z,V) }`:
//!   the core chase terminates on every fact base (fes), yet restricted
//!   chase sequences blow up structurally (not bts) — both from the
//!   Proposition 13 proof.
//! * [`datalog_transitivity`] — plain datalog: terminating, inside every
//!   class.
//! * [`grid_grower`] — builds an ever-growing quarter-grid: no
//!   treewidth-bounded chase of any variant, and (by the grid argument)
//!   no treewidth-finite universal model; outside all treewidth classes.

use chase_atoms::{AtomSet, Vocabulary};
use chase_engine::RuleSet;
use chase_parser::parse_program;

/// A named witness KB: vocabulary, facts and rules, plus which classes it
/// is expected to (not) belong to.
pub struct Witness {
    /// Short identifier used in reports.
    pub name: &'static str,
    /// Symbol tables.
    pub vocab: Vocabulary,
    /// The fact base.
    pub facts: AtomSet,
    /// The ruleset.
    pub rules: RuleSet,
    /// Expected: does the core chase terminate on these facts (fes probe)?
    pub expect_fes: bool,
    /// Expected: does some restricted chase stay treewidth-bounded (bts
    /// probe)?
    pub expect_bts: bool,
    /// Expected: does some core chase stay (recurringly) treewidth-bounded
    /// (core-bts probe)?
    pub expect_core_bts: bool,
}

fn witness(
    name: &'static str,
    src: &str,
    expect_fes: bool,
    expect_bts: bool,
    expect_core_bts: bool,
) -> Witness {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("witness `{name}`: {e}"));
    Witness {
        name,
        vocab: prog.vocab,
        facts: prog.facts,
        rules: prog.rules,
        expect_fes,
        expect_bts,
        expect_core_bts,
    }
}

/// `{ r(X,Y) → ∃Z. r(Y,Z) }` from `r(a,b)`: bts but not fes.
pub fn bts_not_fes() -> Witness {
    witness(
        "bts-not-fes",
        "r(a, b). R: r(X, Y) -> r(Y, Z).",
        false,
        true,
        true, // core-bts subsumes bts (Proposition 13)
    )
}

/// `{ r(X,Y) ∧ r(Y,Z) → ∃V. r(X,X) ∧ r(X,Z) ∧ r(Z,V) }` from a 3-path:
/// fes but not bts.
pub fn fes_not_bts() -> Witness {
    witness(
        "fes-not-bts",
        "r(a, b). r(b, c). R: r(X, Y), r(Y, Z) -> r(X, X), r(X, Z), r(Z, V).",
        true,
        false,
        true, // core-bts subsumes fes (Proposition 13)
    )
}

/// Plain datalog transitivity from a 4-path: fes, bts and core-bts.
pub fn datalog_transitivity() -> Witness {
    witness(
        "datalog-transitivity",
        "r(a, b). r(b, c). r(c, d). T: r(X, Y), r(Y, Z) -> r(X, Z).",
        true,
        true,
        true,
    )
}

/// A quarter-grid grower: the top row extends right, the left column
/// extends down, and `Fill` closes every square — the canonical
/// unbounded-treewidth KB. Outside fes, bts and core-bts.
pub fn grid_grower() -> Witness {
    witness(
        "grid-grower",
        "
        top(a). left(a).
        Right: top(X) -> h(X, Y), top(Y).
        Down:  left(X) -> v(X, Y), left(Y).
        Fill:  h(X, Y), v(X, X2) -> h(X2, Y2), v(Y, Y2).
        ",
        false,
        false,
        false,
    )
}

/// All witnesses, in report order. The paper's two headline KBs (the
/// steepening staircase and the inflating elevator) are exposed by their
/// own modules and joined into the Figure 1 report by `chase-core`.
pub fn all_witnesses() -> Vec<Witness> {
    vec![
        datalog_transitivity(),
        bts_not_fes(),
        fes_not_bts(),
        grid_grower(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::{run_chase, ChaseConfig, ChaseVariant};
    use chase_treewidth::treewidth_bounds;

    #[test]
    fn bts_not_fes_core_chase_diverges_with_low_treewidth() {
        let w = bts_not_fes();
        let mut vocab = w.vocab.clone();
        let cfg = ChaseConfig::variant(ChaseVariant::Core).with_max_applications(12);
        let res = run_chase(&mut vocab, &w.facts, &w.rules, &cfg);
        assert!(!res.outcome.terminated());
        let d = res.derivation.unwrap();
        for f in d.instances() {
            assert!(treewidth_bounds(f).upper <= 1);
        }
    }

    #[test]
    fn fes_not_bts_core_chase_terminates() {
        let w = fes_not_bts();
        let mut vocab = w.vocab.clone();
        let cfg = ChaseConfig::variant(ChaseVariant::Core).with_max_applications(500);
        let res = run_chase(&mut vocab, &w.facts, &w.rules, &cfg);
        assert!(res.outcome.terminated(), "fes witness must terminate");
    }

    #[test]
    fn datalog_terminates_everywhere() {
        let w = datalog_transitivity();
        for variant in [
            ChaseVariant::Oblivious,
            ChaseVariant::SemiOblivious,
            ChaseVariant::Restricted,
            ChaseVariant::Core,
        ] {
            let mut vocab = w.vocab.clone();
            let res = run_chase(
                &mut vocab,
                &w.facts,
                &w.rules,
                &ChaseConfig::variant(variant),
            );
            assert!(res.outcome.terminated(), "{variant:?}");
        }
    }

    #[test]
    fn grid_grower_treewidth_climbs() {
        let w = grid_grower();
        let mut vocab = w.vocab.clone();
        let cfg = ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(60);
        let res = run_chase(&mut vocab, &w.facts, &w.rules, &cfg);
        assert!(!res.outcome.terminated());
        let b = treewidth_bounds(&res.final_instance);
        assert!(b.lower >= 2, "grid grower lower bound stuck at {}", b.lower);
    }
}
