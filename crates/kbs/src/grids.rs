//! Grid workloads and an injective grid *search* giving certified
//! Definition 5 lower bounds on arbitrary instances.

use std::ops::ControlFlow;

use chase_atoms::{Atom, AtomSet, PredId, Substitution, Term, VarId, Vocabulary};
use chase_homomorphism::{for_each_homomorphism, MatchConfig};
use chase_treewidth::GridLabeling;

/// Builds a fresh `n × n` grid instance over predicates `h`/`v` with
/// vocabulary-registered nulls; returns the atomset and its labeling.
pub fn labeled_grid(vocab: &mut Vocabulary, n: usize) -> (AtomSet, GridLabeling) {
    let h = vocab.pred("h", 2);
    let v = vocab.pred("v", 2);
    let mut terms = vec![vec![Term::Var(VarId::from_raw(0)); n]; n];
    for (i, row) in terms.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let var = vocab.fresh_var();
            vocab.set_var_name(var, &format!("g{i}_{j}"));
            *cell = Term::Var(var);
        }
    }
    let labeling = GridLabeling {
        terms: terms.clone(),
    };
    let mut set = AtomSet::new();
    for i in 0..n {
        for j in 0..n {
            if i + 1 < n {
                set.insert(Atom::new(h, vec![terms[i][j], terms[i + 1][j]]));
            }
            if j + 1 < n {
                set.insert(Atom::new(v, vec![terms[i][j], terms[i][j + 1]]));
            }
        }
    }
    (set, labeling)
}

/// The three-valued outcome of a budgeted grid search: the search runs
/// under a node limit, so a miss is only a *refutation* when the space
/// was exhausted.
#[derive(Clone, Debug)]
pub enum GridSearch {
    /// A certified grid embedding.
    Found(GridLabeling),
    /// Exhaustive miss: no directional grid of this size exists.
    Absent,
    /// The node budget cut the search before a hit — the grid may or may
    /// not exist. Must never be treated as a refutation.
    Inconclusive,
}

impl GridSearch {
    /// The labeling, if a grid was found.
    pub fn into_found(self) -> Option<GridLabeling> {
        match self {
            GridSearch::Found(lab) => Some(lab),
            _ => None,
        }
    }

    /// Was the search cut short without a hit?
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, GridSearch::Inconclusive)
    }
}

/// A grid-based treewidth lower bound, carrying whether the climb was
/// stopped by the node budget rather than an exhaustive miss.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GridBound {
    /// Largest certified grid side; `tw(a) ≥ side` by Fact 2.
    pub side: usize,
    /// The climb ended on an inconclusive (budget-truncated) search, so
    /// larger grids were not refuted.
    pub truncated: bool,
}

/// Searches for an **injective** embedding of an `n × n` grid pattern
/// (built from `h` column-steps and `v` row-steps) into `a`.
///
/// A hit is a certified `n × n`-grid in the sense of Definition 5 (the
/// `n²` image terms are pairwise distinct and adjacent coordinates
/// co-occur in an atom), hence `tw(a) ≥ n` by Fact 2. An [`GridSearch::Absent`]
/// miss certifies only that no grid uses `h`/`v` atoms *directionally*;
/// it is not a treewidth upper bound.
pub fn find_grid(a: &AtomSet, n: usize, h: PredId, v: PredId) -> GridSearch {
    if n == 0 {
        return GridSearch::Found(GridLabeling { terms: vec![] });
    }
    // Pattern variables: chosen outside the instance's variable space by
    // offsetting beyond its maximum raw id.
    let max_var = a.vars().iter().map(|v| v.raw()).max().unwrap_or(0);
    let var_at = |i: usize, j: usize| -> Term {
        Term::Var(VarId::from_raw(max_var + 1 + (i * n + j) as u32))
    };
    let mut pattern = AtomSet::new();
    for i in 0..n {
        for j in 0..n {
            if i + 1 < n {
                pattern.insert(Atom::new(h, vec![var_at(i, j), var_at(i + 1, j)]));
            }
            if j + 1 < n {
                pattern.insert(Atom::new(v, vec![var_at(i, j), var_at(i, j + 1)]));
            }
        }
    }
    if n == 1 {
        // No adjacency constraints; any term works if the instance is
        // nonempty.
        return match a.terms().into_iter().next() {
            Some(t) => GridSearch::Found(GridLabeling {
                terms: vec![vec![t]],
            }),
            None => GridSearch::Absent,
        };
    }
    let cfg = MatchConfig {
        injective_vars: true,
        node_limit: Some(500_000),
        ..MatchConfig::default()
    };
    let mut found = None;
    let outcome = for_each_homomorphism(&pattern, a, &Substitution::new(), &cfg, |sub| {
        found = Some(sub);
        ControlFlow::Break(())
    });
    match found {
        Some(sub) => GridSearch::Found(GridLabeling::from_fn(n, |i, j| {
            sub.apply_term(var_at(i, j))
        })),
        // A budgeted miss refutes nothing (the bug this enum fixes: it
        // used to read as "no grid").
        None if outcome.truncated => GridSearch::Inconclusive,
        None => GridSearch::Absent,
    }
}

/// The largest `n` (up to `cap`) for which [`find_grid`] succeeds;
/// `tw(a) ≥ side` by Fact 2 (0 when even a single term is absent). The
/// climb stops at the first miss; a budget-truncated miss marks the
/// bound `truncated` instead of silently under-reporting.
pub fn best_grid_lower_bound(a: &AtomSet, cap: usize, h: PredId, v: PredId) -> GridBound {
    let mut bound = GridBound {
        side: 0,
        truncated: false,
    };
    for n in 1..=cap {
        match find_grid(a, n, h, v) {
            GridSearch::Found(_) => bound.side = n,
            GridSearch::Absent => break,
            GridSearch::Inconclusive => {
                bound.truncated = true;
                break;
            }
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_treewidth::contains_grid;

    #[test]
    fn finds_grid_in_labeled_grid() {
        let mut vocab = Vocabulary::new();
        let (set, lab) = labeled_grid(&mut vocab, 4);
        assert!(contains_grid(&set, &lab));
        let h = vocab.pred("h", 2);
        let v = vocab.pred("v", 2);
        let found = find_grid(&set, 4, h, v)
            .into_found()
            .expect("grid must be found");
        assert!(contains_grid(&set, &found));
        assert!(matches!(find_grid(&set, 5, h, v), GridSearch::Absent));
        assert_eq!(
            best_grid_lower_bound(&set, 8, h, v),
            GridBound {
                side: 4,
                truncated: false
            }
        );
    }

    #[test]
    fn injectivity_rejects_collapsed_grids() {
        // A single h/v loop pair satisfies grid adjacencies only
        // non-injectively.
        let mut vocab = Vocabulary::new();
        let h = vocab.pred("h", 2);
        let v = vocab.pred("v", 2);
        let x = Term::Var(vocab.fresh_var());
        let set: AtomSet = [Atom::new(h, vec![x, x]), Atom::new(v, vec![x, x])]
            .into_iter()
            .collect();
        assert!(matches!(find_grid(&set, 2, h, v), GridSearch::Absent));
        assert_eq!(best_grid_lower_bound(&set, 4, h, v).side, 1);
    }

    #[test]
    fn empty_instance_has_no_grid() {
        let mut vocab = Vocabulary::new();
        let h = vocab.pred("h", 2);
        let v = vocab.pred("v", 2);
        assert_eq!(best_grid_lower_bound(&AtomSet::new(), 3, h, v).side, 0);
    }
}
