//! Grid workloads and an injective grid *search* giving certified
//! Definition 5 lower bounds on arbitrary instances.

use std::ops::ControlFlow;

use chase_atoms::{Atom, AtomSet, PredId, Substitution, Term, VarId, Vocabulary};
use chase_homomorphism::{for_each_homomorphism, MatchConfig};
use chase_treewidth::GridLabeling;

/// Builds a fresh `n × n` grid instance over predicates `h`/`v` with
/// vocabulary-registered nulls; returns the atomset and its labeling.
pub fn labeled_grid(vocab: &mut Vocabulary, n: usize) -> (AtomSet, GridLabeling) {
    let h = vocab.pred("h", 2);
    let v = vocab.pred("v", 2);
    let mut terms = vec![vec![Term::Var(VarId::from_raw(0)); n]; n];
    for (i, row) in terms.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let var = vocab.fresh_var();
            vocab.set_var_name(var, &format!("g{i}_{j}"));
            *cell = Term::Var(var);
        }
    }
    let labeling = GridLabeling {
        terms: terms.clone(),
    };
    let mut set = AtomSet::new();
    for i in 0..n {
        for j in 0..n {
            if i + 1 < n {
                set.insert(Atom::new(h, vec![terms[i][j], terms[i + 1][j]]));
            }
            if j + 1 < n {
                set.insert(Atom::new(v, vec![terms[i][j], terms[i][j + 1]]));
            }
        }
    }
    (set, labeling)
}

/// Searches for an **injective** embedding of an `n × n` grid pattern
/// (built from `h` column-steps and `v` row-steps) into `a`.
///
/// A hit is a certified `n × n`-grid in the sense of Definition 5 (the
/// `n²` image terms are pairwise distinct and adjacent coordinates
/// co-occur in an atom), hence `tw(a) ≥ n` by Fact 2. A miss certifies
/// only that no grid uses `h`/`v` atoms *directionally*; it is not a
/// treewidth upper bound.
pub fn find_grid(a: &AtomSet, n: usize, h: PredId, v: PredId) -> Option<GridLabeling> {
    if n == 0 {
        return Some(GridLabeling { terms: vec![] });
    }
    // Pattern variables: chosen outside the instance's variable space by
    // offsetting beyond its maximum raw id.
    let max_var = a.vars().iter().map(|v| v.raw()).max().unwrap_or(0);
    let var_at = |i: usize, j: usize| -> Term {
        Term::Var(VarId::from_raw(max_var + 1 + (i * n + j) as u32))
    };
    let mut pattern = AtomSet::new();
    for i in 0..n {
        for j in 0..n {
            if i + 1 < n {
                pattern.insert(Atom::new(h, vec![var_at(i, j), var_at(i + 1, j)]));
            }
            if j + 1 < n {
                pattern.insert(Atom::new(v, vec![var_at(i, j), var_at(i, j + 1)]));
            }
        }
    }
    if n == 1 {
        // No adjacency constraints; any term works if the instance is
        // nonempty.
        let t = a.terms().into_iter().next()?;
        return Some(GridLabeling {
            terms: vec![vec![t]],
        });
    }
    let cfg = MatchConfig {
        injective_vars: true,
        node_limit: Some(500_000),
        ..MatchConfig::default()
    };
    let mut found = None;
    for_each_homomorphism(&pattern, a, &Substitution::new(), &cfg, |sub| {
        found = Some(sub);
        ControlFlow::Break(())
    });
    let sub = found?;
    Some(GridLabeling::from_fn(n, |i, j| {
        sub.apply_term(var_at(i, j))
    }))
}

/// The largest `n` (up to `cap`) for which [`find_grid`] succeeds;
/// `tw(a) ≥` the returned value by Fact 2 (0 when even a single term is
/// absent).
pub fn best_grid_lower_bound(a: &AtomSet, cap: usize, h: PredId, v: PredId) -> usize {
    let mut best = 0;
    for n in 1..=cap {
        if find_grid(a, n, h, v).is_some() {
            best = n;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_treewidth::contains_grid;

    #[test]
    fn finds_grid_in_labeled_grid() {
        let mut vocab = Vocabulary::new();
        let (set, lab) = labeled_grid(&mut vocab, 4);
        assert!(contains_grid(&set, &lab));
        let h = vocab.pred("h", 2);
        let v = vocab.pred("v", 2);
        let found = find_grid(&set, 4, h, v).expect("grid must be found");
        assert!(contains_grid(&set, &found));
        assert!(find_grid(&set, 5, h, v).is_none());
        assert_eq!(best_grid_lower_bound(&set, 8, h, v), 4);
    }

    #[test]
    fn injectivity_rejects_collapsed_grids() {
        // A single h/v loop pair satisfies grid adjacencies only
        // non-injectively.
        let mut vocab = Vocabulary::new();
        let h = vocab.pred("h", 2);
        let v = vocab.pred("v", 2);
        let x = Term::Var(vocab.fresh_var());
        let set: AtomSet = [Atom::new(h, vec![x, x]), Atom::new(v, vec![x, x])]
            .into_iter()
            .collect();
        assert!(find_grid(&set, 2, h, v).is_none());
        assert_eq!(best_grid_lower_bound(&set, 4, h, v), 1);
    }

    #[test]
    fn empty_instance_has_no_grid() {
        let mut vocab = Vocabulary::new();
        let h = vocab.pred("h", 2);
        let v = vocab.pred("v", 2);
        assert_eq!(best_grid_lower_bound(&AtomSet::new(), 3, h, v), 0);
    }
}
