//! CQ suites with ground-truth entailment status for the paper's KBs.
//!
//! Ground truths follow from the analytic universal models: a CQ is
//! entailed by `K_h` iff it maps into `I^h`, and by `K_v` iff it maps
//! into `I^v` (universal models decide CQ entailment).

use chase_atoms::{AtomSet, Vocabulary};
use chase_parser::parse_atoms_with;

/// A query with its expected entailment status.
pub struct GroundTruthQuery {
    /// Identifier for reports.
    pub name: &'static str,
    /// The Boolean CQ.
    pub query: AtomSet,
    /// Whether the KB entails it.
    pub entailed: bool,
}

fn q(vocab: &mut Vocabulary, name: &'static str, src: &str, entailed: bool) -> GroundTruthQuery {
    GroundTruthQuery {
        name,
        query: parse_atoms_with(vocab, name, src).expect("query parses"),
        entailed,
    }
}

/// The query suite for the steepening staircase `K_h`.
///
/// Positive queries hold in `I^h`; negatives fail in it (and hence in the
/// KB, by universality).
pub fn staircase_queries(vocab: &mut Vocabulary) -> Vec<GroundTruthQuery> {
    vec![
        q(vocab, "floor-loop", "f(X), h(X, X)", true),
        q(vocab, "ceiling-exists", "c(X)", true),
        q(vocab, "square", "h(A, B), v(A, C), h(C, D), v(B, D)", true),
        q(vocab, "v-path-3", "v(A, B), v(B, C), v(C, D)", true),
        q(vocab, "floor-to-ceiling", "f(A), v(A, B), c(B)", true),
        // f and c never co-occur on a term (f at height 0, c at ≥ 1).
        q(vocab, "floor-is-ceiling", "f(X), c(X)", false),
        // v is strictly height-increasing: no v-loops, no 2-cycles.
        q(vocab, "v-loop", "v(X, X)", false),
        q(vocab, "v-2-cycle", "v(X, Y), v(Y, X)", false),
        // c on a floor-successor: c starts at height 1 — true via v.
        q(vocab, "c-above-f", "f(X), v(X, Y), c(Y)", true),
    ]
}

/// The query suite for the inflating elevator `K_v`.
pub fn elevator_queries(vocab: &mut Vocabulary) -> Vec<GroundTruthQuery> {
    vec![
        q(vocab, "ceiling-done", "c(X), d(X)", true),
        q(vocab, "h-path-3", "h(A, B), h(B, C), h(C, D)", true),
        q(vocab, "v-loop-f", "v(X, X), f(X)", true),
        q(vocab, "spine-step", "c(A), h(A, B), v(B, C), c(C)", true),
        q(vocab, "square", "h(A, B), v(A, C), h(C, D), v(B, D)", true),
        // h is strictly column-increasing: no h-loops, no 2-cycles.
        q(vocab, "h-loop", "h(X, X)", false),
        q(vocab, "h-2-cycle", "h(X, Y), h(Y, X)", false),
        // A ceiling strictly below another term of the same column via two
        // v-steps *from* the ceiling exists (tops have v-loops), so use a
        // genuinely false shape instead: a ceiling with an incoming h edge
        // whose source is also a ceiling holds on the spine — also true.
        // False: v from a term into two *distinct* predecessors cannot be
        // expressed; use h into a floor-of-column-0 shape: nothing h-points
        // into X⁰₀ and X⁰₀ is the only c∧h-source with... c(X),h(Y,X),c(Y)
        // holds on the spine. Use "d-less term": everything is d, so a
        // query cannot be false via d. Final pick: an h-edge that goes
        // height-decreasing by ≥ 1 combined with c on the source and
        // target — absent in I^v:
        q(vocab, "c-to-c-direct-v", "c(X), v(X, Y), c(Y)", true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elevator::Elevator;
    use crate::staircase::Staircase;
    use chase_homomorphism::maps_to;

    #[test]
    fn staircase_ground_truths_match_analytic_model() {
        let mut s = Staircase::new();
        let prefix = s.universal_prefix(8);
        let mut vocab = s.vocab.clone();
        for gt in staircase_queries(&mut vocab) {
            assert_eq!(
                maps_to(&gt.query, &prefix),
                gt.entailed,
                "query {} disagreed with I^h prefix",
                gt.name
            );
        }
    }

    #[test]
    fn elevator_ground_truths_match_analytic_model() {
        let mut e = Elevator::new();
        let prefix = e.universal_prefix(8);
        let mut vocab = e.vocab.clone();
        for gt in elevator_queries(&mut vocab) {
            assert_eq!(
                maps_to(&gt.query, &prefix),
                gt.entailed,
                "query {} disagreed with I^v prefix",
                gt.name
            );
        }
    }

    #[test]
    fn entailed_queries_also_hold_in_the_nonuniversal_models() {
        // Finitely universal models satisfy exactly the entailed CQs
        // (Proposition 9): the infinite column / spine must agree on every
        // ground truth.
        let mut s = Staircase::new();
        let column = s.infinite_column_prefix(12);
        let mut vocab = s.vocab.clone();
        for gt in staircase_queries(&mut vocab) {
            assert_eq!(
                maps_to(&gt.query, &column),
                gt.entailed,
                "query {} disagreed with Ĩ^h",
                gt.name
            );
        }
        let mut e = Elevator::new();
        let spine = e.spine_prefix(12);
        let mut vocab = e.vocab.clone();
        for gt in elevator_queries(&mut vocab) {
            // The spine is universal (not merely finitely universal), so
            // it, too, must agree.
            assert_eq!(
                maps_to(&gt.query, &spine),
                gt.entailed,
                "query {} disagreed with I^v*",
                gt.name
            );
        }
    }
}
