//! # chase-kbs
//!
//! The paper's knowledge bases and workload generators:
//!
//! * [`staircase`] — the **steepening staircase** `K_h` (Section 6,
//!   Figure 2): a KB whose core chase is uniformly treewidth-bounded by 2
//!   while *no* universal model has finite treewidth. Includes the
//!   analytic universal model `I^h`, the infinite column `Ĩ^h`, the
//!   columns `C_k` / steps `S_k`, the scripted canonical restricted and
//!   core chases, and the Table 1 rule-application schedule.
//! * [`elevator`] — the **inflating elevator** `K_v` (Section 7,
//!   Figures 3–4): a KB with a universal model of treewidth 1 whose every
//!   core-chase sequence has ever-growing treewidth. Includes `I^v`, the
//!   spine `I^v*`, and the cabin substructures `I^v_n`.
//! * [`witnesses`] — the small rulesets separating the decidable classes
//!   of Figure 1 / Proposition 13 (`bts ∖ fes`, `fes ∖ bts`, plain
//!   datalog, a grid grower outside both).
//! * [`grids`] — grid workloads and an injective grid *search* (certified
//!   Definition 5 lower bounds on arbitrary instances).
//! * [`random`] — seeded random instances and rulesets for benchmarks.
//! * [`queries`] — CQ suites with ground-truth entailment per KB.
//!
//! ### A note on reconstructed indices
//!
//! The machine-extracted paper text garbles a few sub/superscript
//! conditions. This crate uses the unique reconstruction consistent with
//! the rules and proofs; each generator documents its reading (e.g. the
//! staircase's h-loops sit at heights `j ≤ i`, which is forced by rules
//! `R3h`/`R4h` and by the column retraction `S_k → C_{k+1}` being a
//! retraction). Every reconstruction is machine-checked by this crate's
//! tests (models are models, cores are cores, retractions retract).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elevator;
pub mod grids;
pub mod queries;
pub mod random;
pub mod staircase;
pub mod witnesses;

pub use elevator::Elevator;
pub use staircase::Staircase;
