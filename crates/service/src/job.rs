//! Job specifications, lifecycle states and results.

use chase_atoms::{AtomSet, Vocabulary};
use chase_core::KnowledgeBase;
use chase_engine::{ChaseConfig, ChaseOutcome, ChaseStats, Derivation};
use chase_parser::{parse_program, parse_program_trusted};

use crate::checkpoint::Checkpoint;

/// Identifies a job within one service instance (monotonically assigned).
pub type JobId = u64;

/// Lifecycle state of a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Ran to its outcome (fixpoint or budget) without cancellation.
    Finished,
    /// Stopped by a cancel request (before or during execution).
    Cancelled,
    /// The job could not run (e.g. its source failed to parse).
    Failed,
}

impl JobStatus {
    /// Will this status never change again?
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

/// Scheduling priority of a job. Within the queue a higher priority is
/// picked first; ties fall back to FIFO order — so a small high-priority
/// probe overtakes suspended heavyweights without starving anyone (the
/// queue is bounded, and every admitted job is eventually first of its
/// class).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Picked before everything else (probe jobs, interactive queries).
    High,
    /// The default.
    #[default]
    Normal,
    /// Picked only when nothing else is queued (bulk backfill).
    Low,
}

impl Priority {
    /// Wire/CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses the wire/CLI spelling.
    pub fn parse(s: &str) -> Result<Priority, String> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!("unknown priority `{other}` (high|normal|low)")),
        }
    }
}

/// Certified three-valued answer for one named query of a job.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QueryVerdict {
    /// The query maps into a chase element (universality ⇒ `K ⊨ Q`).
    EntailedCertified,
    /// The chase terminated in a universal model not containing the
    /// query (`K ⊭ Q`).
    NotEntailedCertified,
    /// Budget ran out before either certificate appeared.
    Inconclusive,
}

/// Everything needed to run one chase job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Display name (shows up in events and summaries).
    pub name: String,
    /// The knowledge base to chase.
    pub kb: KnowledgeBase,
    /// Named boolean CQs evaluated against the run's final instance.
    pub queries: Vec<(String, AtomSet)>,
    /// Chase configuration (variant, scheduler, budgets).
    pub config: ChaseConfig,
    /// Emit a treewidth sample event every this many applications.
    pub tw_sample_interval: Option<usize>,
    /// Emit a step event every this many applications.
    pub progress_every: usize,
    /// Capture (and, with a state dir, persist) a checkpoint every this
    /// many applications; `None` falls back to the service-level default.
    pub checkpoint_every: Option<usize>,
    /// Scheduling priority (see [`Priority`]).
    pub priority: Priority,
    /// Who submitted the job, for per-submitter admission quotas; `None`
    /// is exempt from quota counting.
    pub submitter: Option<String>,
    /// Let the admission-time analyzer pick the chase variant and a
    /// stratified rule schedule for this job. Wire submits that did not
    /// pin a `variant` set this; programmatic specs default to `false`
    /// (what you configure is what runs).
    pub auto_strategy: bool,
    /// Let the admission-time analyzer tighten the application budget
    /// when it positively refutes termination. Wire submits that did
    /// not pin any budget set this; programmatic specs default to
    /// `false`.
    pub auto_budgets: bool,
    /// Counters carried over from the checkpointed prefix this job
    /// resumes (zero for fresh jobs).
    pub base_stats: ChaseStats,
    /// This job resumes an oblivious/semi-oblivious checkpoint whose
    /// applied-trigger memory could not be serialized: the resumed run
    /// may re-apply triggers the prefix already fired. Surfaced as a
    /// `warning` job event.
    pub resumed_inexact: bool,
}

impl JobSpec {
    /// Builds a job from program text in the `chase-parser` syntax. The
    /// program's named queries ride along.
    pub fn from_text(
        name: impl Into<String>,
        source: &str,
        config: ChaseConfig,
    ) -> Result<Self, String> {
        let prog = parse_program(source).map_err(|e| e.to_string())?;
        let (kb, queries) = KnowledgeBase::from_program(prog);
        Ok(JobSpec {
            name: name.into(),
            kb,
            queries,
            config,
            tw_sample_interval: None,
            progress_every: 1,
            checkpoint_every: None,
            priority: Priority::default(),
            submitter: None,
            auto_strategy: false,
            auto_budgets: false,
            base_stats: ChaseStats::default(),
            resumed_inexact: false,
        })
    }

    /// Like [`JobSpec::from_text`], but for printer-produced checkpoint
    /// programs: the reserved `_N<n>` labeled-null spelling is accepted.
    pub fn from_checkpoint_text(
        name: impl Into<String>,
        source: &str,
        config: ChaseConfig,
    ) -> Result<Self, String> {
        let prog = parse_program_trusted(source).map_err(|e| e.to_string())?;
        let (kb, queries) = KnowledgeBase::from_program(prog);
        Ok(JobSpec {
            name: name.into(),
            kb,
            queries,
            config,
            tw_sample_interval: None,
            progress_every: 1,
            checkpoint_every: None,
            priority: Priority::default(),
            submitter: None,
            auto_strategy: false,
            auto_budgets: false,
            base_stats: ChaseStats::default(),
            resumed_inexact: false,
        })
    }

    /// Builds a job from an in-memory knowledge base (the path used by
    /// the experiment drivers in `chase-bench`).
    pub fn from_kb(name: impl Into<String>, kb: KnowledgeBase, config: ChaseConfig) -> Self {
        JobSpec {
            name: name.into(),
            kb,
            queries: Vec::new(),
            config,
            tw_sample_interval: None,
            progress_every: 1,
            checkpoint_every: None,
            priority: Priority::default(),
            submitter: None,
            auto_strategy: false,
            auto_budgets: false,
            base_stats: ChaseStats::default(),
            resumed_inexact: false,
        }
    }

    /// Sets the treewidth sampling interval.
    pub fn with_tw_samples(mut self, every: usize) -> Self {
        self.tw_sample_interval = Some(every.max(1));
        self
    }

    /// Sets the step-event interval.
    pub fn with_progress_every(mut self, every: usize) -> Self {
        self.progress_every = every.max(1);
        self
    }

    /// Sets the periodic-checkpoint interval for this job.
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = Some(every.max(1));
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Tags the job with its submitter (for admission quotas).
    pub fn with_submitter(mut self, s: impl Into<String>) -> Self {
        self.submitter = Some(s.into());
        self
    }
}

/// The result of a completed (or cancelled) job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Why the chase stopped.
    pub outcome: ChaseOutcome,
    /// Counters accumulated across all resumed slices of this
    /// derivation (not just the final slice).
    pub stats: ChaseStats,
    /// The final instance `F_k`.
    pub final_instance: AtomSet,
    /// The vocabulary as of the end of the run — the chase mints fresh
    /// labeled nulls, so rendering (or re-serializing) the final
    /// instance needs the symbol table of the same instant, not the
    /// spec's.
    pub final_vocab: Vocabulary,
    /// The recorded derivation of the final slice, when the config asked
    /// for full recording.
    pub derivation: Option<Derivation>,
    /// Per-query verdicts against the final instance.
    pub queries: Vec<(String, QueryVerdict)>,
    /// A resume checkpoint, present iff the outcome is resumable.
    pub checkpoint: Option<Checkpoint>,
    /// Wall-clock milliseconds spent executing this slice.
    pub wall_ms: u64,
}

/// Adds two counter sets (checkpoint carry-over + fresh slice).
pub fn add_stats(a: ChaseStats, b: ChaseStats) -> ChaseStats {
    ChaseStats {
        applications: a.applications + b.applications,
        rounds: a.rounds + b.rounds,
        retractions: a.retractions + b.retractions,
        peak_atoms: a.peak_atoms.max(b.peak_atoms),
        core_steps: a.core_steps + b.core_steps,
        match_nodes: a.match_nodes + b.match_nodes,
        fold_candidates: a.fold_candidates + b.fold_candidates,
        core_truncations: a.core_truncations + b.core_truncations,
        core_time_us: a.core_time_us + b.core_time_us,
        wall_us: a.wall_us + b.wall_us,
        nulls_minted: a.nulls_minted + b.nulls_minted,
        peak_trigger_queue: a.peak_trigger_queue.max(b.peak_trigger_queue),
        peak_mem_units: a.peak_mem_units.max(b.peak_mem_units),
        match_time_us: a.match_time_us + b.match_time_us,
        match_searches: a.match_searches + b.match_searches,
        match_trials: a.match_trials + b.match_trials,
        peak_index_postings: a.peak_index_postings.max(b.peak_index_postings),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::ChaseVariant;

    #[test]
    fn spec_from_text_carries_queries() {
        let spec = JobSpec::from_text(
            "t",
            "r(a, b). T: r(X, Y) -> r(Y, X). Q: ?- r(b, a).",
            ChaseConfig::variant(ChaseVariant::Restricted),
        )
        .unwrap();
        assert_eq!(spec.queries.len(), 1);
        assert_eq!(spec.queries[0].0, "Q");
        assert_eq!(spec.kb.facts.len(), 1);
    }

    #[test]
    fn spec_from_bad_text_reports_error() {
        assert!(JobSpec::from_text("t", "r(a,", ChaseConfig::default()).is_err());
    }

    #[test]
    fn stats_addition_accumulates() {
        let a = ChaseStats {
            applications: 5,
            rounds: 2,
            retractions: 1,
            peak_atoms: 10,
            core_steps: 4,
            match_nodes: 100,
            fold_candidates: 9,
            core_truncations: 1,
            core_time_us: 250,
            wall_us: 1_000,
            nulls_minted: 6,
            peak_trigger_queue: 4,
            peak_mem_units: 20,
            match_time_us: 40,
            match_searches: 7,
            match_trials: 300,
            peak_index_postings: 11,
        };
        let b = ChaseStats {
            applications: 3,
            rounds: 1,
            retractions: 0,
            peak_atoms: 7,
            core_steps: 2,
            match_nodes: 50,
            fold_candidates: 4,
            core_truncations: 0,
            core_time_us: 100,
            wall_us: 500,
            nulls_minted: 2,
            peak_trigger_queue: 9,
            peak_mem_units: 15,
            match_time_us: 60,
            match_searches: 3,
            match_trials: 200,
            peak_index_postings: 13,
        };
        let s = add_stats(a, b);
        assert_eq!(s.applications, 8);
        assert_eq!(s.rounds, 3);
        assert_eq!(s.retractions, 1);
        assert_eq!(s.peak_atoms, 10);
        assert_eq!(s.core_steps, 6);
        assert_eq!(s.match_nodes, 150);
        assert_eq!(s.fold_candidates, 13);
        assert_eq!(s.core_truncations, 1);
        assert_eq!(s.core_time_us, 350);
        assert_eq!(s.wall_us, 1_500);
        assert_eq!(s.nulls_minted, 8);
        assert_eq!(s.peak_trigger_queue, 9);
        assert_eq!(s.peak_mem_units, 20);
        assert_eq!(s.match_time_us, 100);
        assert_eq!(s.match_searches, 10);
        assert_eq!(s.match_trials, 500);
        assert_eq!(s.peak_index_postings, 13);
    }
}
