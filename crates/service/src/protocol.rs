//! The JSONL wire protocol: requests, responses and progress events.
//!
//! Every line on the wire is one JSON object. Clients send *requests*
//! (`{"op": ...}`); the service answers each request with exactly one
//! *response* (`{"type":"response"|"error", ...}`) and interleaves
//! asynchronous *events* (`{"type":"event", ...}`) for job progress. The
//! schema is documented in the README section "Running as a service".

use std::time::Duration;

use chase_analysis::{
    BudgetEnvelope, Certificate, KBoundedOutcome, Refutation, RulesetReport, Verdict,
    WidthObservation,
};
use chase_core::AnalysisGate;
use chase_engine::{
    ChaseConfig, ChaseOutcome, ChaseStats, ChaseVariant, CoreMaintenance, FaultPlan, FaultSite,
    RuleSet, SchedulerKind, SuspendReason,
};

use crate::job::{JobId, JobResult, JobStatus, Priority, QueryVerdict};
use crate::json::Json;
use crate::runner::{JobEvent, JobEventKind};

/// A client request, one per input line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Submit a new job from program text or a named built-in KB.
    Submit {
        /// Display name (defaults to `job-<id>`).
        name: Option<String>,
        /// KB source in the `chase-parser` syntax (facts, rules,
        /// queries). Exactly one of `source` / `kb` must be present.
        source: Option<String>,
        /// Name of a built-in knowledge base (see [`named_kb`]).
        kb: Option<String>,
        /// Chase configuration (boxed: it dominates the enum's size).
        config: Box<ChaseConfig>,
        /// Emit a `tw_sample` event every this many applications.
        tw_sample_interval: Option<usize>,
        /// Emit a `step` event every this many applications (default 1).
        progress_every: Option<usize>,
        /// Capture/persist a checkpoint every this many applications
        /// (defaults to the service-level interval).
        checkpoint_every: Option<usize>,
        /// Scheduling priority (defaults to normal).
        priority: Priority,
        /// Submitter tag, counted against the per-submitter quota.
        submitter: Option<String>,
        /// The request did not pin a `variant`: the admission analyzer
        /// may pick the chase variant and a stratified schedule.
        auto_strategy: bool,
        /// The request did not pin any budget (`max_apps` /
        /// `max_wall_ms`): the analyzer may tighten the defaults when
        /// it positively refutes termination.
        auto_budgets: bool,
    },
    /// Resume a job from a previously returned checkpoint object.
    Resume {
        /// The checkpoint, as emitted in a `checkpoint` response field.
        checkpoint: Box<crate::checkpoint::Checkpoint>,
        /// Fresh application budget for the resumed slice (defaults to
        /// the checkpointed config's budget).
        max_applications: Option<usize>,
        /// Fresh wall-clock budget in milliseconds.
        max_wall_ms: Option<u64>,
    },
    /// Request cooperative cancellation of a job.
    Cancel {
        /// The job to cancel.
        job: JobId,
    },
    /// Query the status of one job.
    Status {
        /// The job to inspect.
        job: JobId,
    },
    /// Block until a job reaches a terminal state, then report it.
    Wait {
        /// The job to wait for.
        job: JobId,
        /// Give up after this many milliseconds and report the current
        /// (possibly non-terminal) status with `"timed_out": true`.
        /// `None` falls back to the service's `--op-deadline`.
        timeout_ms: Option<u64>,
    },
    /// Fetch the checkpoint of a budget-exhausted or cancelled job.
    Checkpoint {
        /// The job whose state to serialize.
        job: JobId,
    },
    /// Answer a CQ/UCQ, either from a job's materialization snapshot or
    /// against an ad-hoc knowledge base.
    Query {
        /// Answer from this job's snapshot. Exactly one of `job` /
        /// `kb` / `source` must be present.
        job: Option<JobId>,
        /// Name of a built-in knowledge base (see [`named_kb`]) to run a
        /// synchronous budgeted chase over.
        kb: Option<String>,
        /// KB source text to run a synchronous budgeted chase over.
        source: Option<String>,
        /// The query text (`?(X, Y) :- p(X, Z), q(Z, Y) ; r(X, Y)`,
        /// `?- p(X)`, or a bare atom list).
        query: String,
        /// Chase configuration for the `kb`/`source` forms (ignored on
        /// the `job` path — the snapshot is whatever the job produced).
        config: Box<ChaseConfig>,
        /// Homomorphism-search node budget; exceeding it tags the reply
        /// `truncated`.
        node_limit: Option<usize>,
        /// Per-op deadline in milliseconds (defaults to the service's
        /// `--op-deadline`).
        timeout_ms: Option<u64>,
    },
    /// List all known jobs.
    List,
    /// Gracefully drain: stop admitting, checkpoint running slices,
    /// report, then exit the serve loop with status 0.
    Drain,
    /// Drain running jobs and exit the serve loop.
    Shutdown,
}

/// Resolves a named built-in knowledge base (`submit` with `"kb"`).
pub fn named_kb(name: &str) -> Result<chase_core::KnowledgeBase, String> {
    match name {
        "staircase" => Ok(chase_core::KnowledgeBase::staircase()),
        "elevator" => Ok(chase_core::KnowledgeBase::elevator()),
        other => Err(format!("unknown kb `{other}` (known: staircase, elevator)")),
    }
}

/// Renders a [`ChaseVariant`] for the wire.
pub fn variant_name(v: ChaseVariant) -> &'static str {
    match v {
        ChaseVariant::Oblivious => "oblivious",
        ChaseVariant::SemiOblivious => "semi-oblivious",
        ChaseVariant::Restricted => "restricted",
        ChaseVariant::Frugal => "frugal",
        ChaseVariant::Core => "core",
    }
}

/// Parses a [`ChaseVariant`] from its wire (or CLI) spelling.
pub fn parse_variant(s: &str) -> Result<ChaseVariant, String> {
    match s {
        "oblivious" => Ok(ChaseVariant::Oblivious),
        "semi" | "semi-oblivious" | "skolem" => Ok(ChaseVariant::SemiOblivious),
        "restricted" | "standard" => Ok(ChaseVariant::Restricted),
        "frugal" => Ok(ChaseVariant::Frugal),
        "core" => Ok(ChaseVariant::Core),
        other => Err(format!("unknown variant `{other}`")),
    }
}

/// Renders an outcome for the wire.
pub fn outcome_name(o: ChaseOutcome) -> &'static str {
    match o {
        ChaseOutcome::Terminated => "terminated",
        ChaseOutcome::ApplicationBudgetExhausted => "application-budget-exhausted",
        ChaseOutcome::AtomBudgetExhausted => "atom-budget-exhausted",
        ChaseOutcome::WallBudgetExhausted => "wall-budget-exhausted",
        ChaseOutcome::Stopped => "stopped",
        ChaseOutcome::Cancelled => "cancelled",
        ChaseOutcome::Suspended(SuspendReason::MemoryCeiling) => "suspended-memory-ceiling",
    }
}

/// Serializes a chase configuration (used inside checkpoints).
pub fn config_to_json(cfg: &ChaseConfig) -> Json {
    let (scheduler, seed) = match cfg.scheduler {
        SchedulerKind::Deterministic => ("deterministic", None),
        SchedulerKind::Random(s) => ("random", Some(s)),
        SchedulerKind::DatalogFirst => ("datalog-first", None),
        SchedulerKind::ExistentialLast => ("existential-last", None),
        SchedulerKind::NullAverse => ("null-averse", None),
    };
    Json::obj([
        ("variant", Json::str(variant_name(cfg.variant))),
        ("scheduler", Json::str(scheduler)),
        (
            "scheduler_seed",
            seed.map_or(Json::Null, |s| Json::Int(s as i64)),
        ),
        ("max_applications", Json::Int(cfg.max_applications as i64)),
        ("max_atoms", Json::Int(cfg.max_atoms as i64)),
        (
            "max_wall_ms",
            cfg.max_wall
                .map_or(Json::Null, |d| Json::Int(d.as_millis() as i64)),
        ),
        ("core_interval", Json::Int(cfg.core_interval as i64)),
        (
            "core_maintenance",
            Json::str(match cfg.core_maintenance {
                CoreMaintenance::FullRecompute => "full",
                CoreMaintenance::Incremental => "incremental",
            }),
        ),
        (
            "mem_soft",
            cfg.mem_soft.map_or(Json::Null, |n| Json::Int(n as i64)),
        ),
        (
            "mem_hard",
            cfg.mem_hard.map_or(Json::Null, |n| Json::Int(n as i64)),
        ),
        (
            "strata",
            cfg.strata.as_ref().map_or(Json::Null, |strata| {
                Json::Arr(
                    strata
                        .iter()
                        .map(|s| Json::Arr(s.iter().map(|&r| Json::Int(r as i64)).collect()))
                        .collect(),
                )
            }),
        ),
    ])
}

fn parse_core_maintenance(s: &str) -> Result<CoreMaintenance, String> {
    match s {
        "full" | "full-recompute" => Ok(CoreMaintenance::FullRecompute),
        "incremental" => Ok(CoreMaintenance::Incremental),
        other => Err(format!("unknown core_maintenance `{other}`")),
    }
}

/// Deserializes a chase configuration.
pub fn config_from_json(v: &Json) -> Result<ChaseConfig, String> {
    let mut cfg = ChaseConfig::variant(parse_variant(v.require_str("variant")?)?);
    cfg.scheduler = match v.require_str("scheduler")? {
        "deterministic" => SchedulerKind::Deterministic,
        "random" => SchedulerKind::Random(v.require_u64("scheduler_seed")?),
        "datalog-first" => SchedulerKind::DatalogFirst,
        "existential-last" => SchedulerKind::ExistentialLast,
        "null-averse" => SchedulerKind::NullAverse,
        other => return Err(format!("unknown scheduler `{other}`")),
    };
    cfg.max_applications = v.require_u64("max_applications")? as usize;
    cfg.max_atoms = v.require_u64("max_atoms")? as usize;
    cfg.max_wall = v.opt_u64("max_wall_ms")?.map(Duration::from_millis);
    cfg.core_interval = (v.require_u64("core_interval")? as usize).max(1);
    // Older checkpoints predate the field; they ran the full recompute.
    cfg.core_maintenance = match v.opt_str("core_maintenance")? {
        Some(s) => parse_core_maintenance(s)?,
        None => CoreMaintenance::FullRecompute,
    };
    // Older checkpoints predate the memory ceilings; absent means off.
    cfg.mem_soft = v.opt_u64("mem_soft")?.map(|n| n as usize);
    cfg.mem_hard = v.opt_u64("mem_hard")?.map(|n| n as usize);
    // Older checkpoints predate stratified schedules; absent means none
    // — a resumed job keeps the plan it was admitted under.
    cfg.strata = match v.get("strata") {
        None | Some(Json::Null) => None,
        Some(Json::Arr(strata)) => {
            let mut out = Vec::with_capacity(strata.len());
            for s in strata {
                let ids = s
                    .as_arr()
                    .ok_or_else(|| "`strata` must be an array of rule-id arrays".to_string())?;
                let mut stratum = Vec::with_capacity(ids.len());
                for id in ids {
                    let n = id
                        .as_u64()
                        .ok_or_else(|| "`strata` entries must be rule ids".to_string())?;
                    stratum.push(n as usize);
                }
                out.push(stratum);
            }
            Some(out)
        }
        Some(_) => return Err("`strata` must be an array of rule-id arrays".to_string()),
    };
    Ok(cfg)
}

/// Reads an optional count field that must be ≥ 1 when present.
/// Nonpositive budgets used to be silently clamped (or silently did
/// nothing); they are now structured errors on the reply.
fn opt_positive(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.opt_u64(key)? {
        Some(0) => Err(format!("`{key}` must be positive")),
        other => Ok(other),
    }
}

/// Reads the chase-configuration fields a `submit` request may carry
/// (all optional, defaulting to [`ChaseConfig::default`] with the core
/// variant). Nonpositive budgets and an inverted `mem_soft`/`mem_hard`
/// pair are rejected with a clear message instead of being clamped.
fn submit_config(v: &Json) -> Result<ChaseConfig, String> {
    let mut cfg = ChaseConfig::variant(ChaseVariant::Core);
    if let Some(name) = v.opt_str("variant")? {
        cfg.variant = parse_variant(name)?;
    }
    if let Some(n) = opt_positive(v, "max_apps")? {
        cfg.max_applications = n as usize;
    }
    if let Some(n) = opt_positive(v, "max_atoms")? {
        cfg.max_atoms = n as usize;
    }
    cfg.max_wall = opt_positive(v, "max_wall_ms")?.map(Duration::from_millis);
    if let Some(n) = opt_positive(v, "core_interval")? {
        cfg.core_interval = n as usize;
    }
    if let Some(seed) = v.opt_u64("scheduler_seed")? {
        cfg.scheduler = SchedulerKind::Random(seed);
    }
    if let Some(s) = v.opt_str("core_maintenance")? {
        cfg.core_maintenance = parse_core_maintenance(s)?;
    }
    if let Some(s) = v.opt_str("fault")? {
        cfg.fault = Some(parse_fault_plan(s)?);
    }
    cfg.mem_soft = opt_positive(v, "mem_soft")?.map(|n| n as usize);
    cfg.mem_hard = opt_positive(v, "mem_hard")?.map(|n| n as usize);
    if let (Some(soft), Some(hard)) = (cfg.mem_soft, cfg.mem_hard) {
        if soft > hard {
            return Err(format!(
                "`mem_soft` ({soft}) must not exceed `mem_hard` ({hard})"
            ));
        }
    }
    Ok(cfg)
}

/// Parses a fault-plan spec: comma-separated sites `app:K` / `core:K` /
/// `ckpt:K` / `mem:K` (1-based counts), `slow:K:MS` (sleep `MS`
/// milliseconds at application #K), or `rand:SEED:KILLS:HORIZON` for a
/// seeded plan of application crashes. For crash/overload testing only.
pub fn parse_fault_plan(s: &str) -> Result<FaultPlan, String> {
    let mut sites = Vec::new();
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let fields: Vec<&str> = part.split(':').collect();
        let parse_k = |v: &str| -> Result<usize, String> {
            let k: usize = v.parse().map_err(|e| format!("fault site `{part}`: {e}"))?;
            if k == 0 {
                return Err(format!("fault site `{part}`: counts are 1-based"));
            }
            Ok(k)
        };
        match fields.as_slice() {
            ["app", k] => sites.push(FaultSite::Application(parse_k(k)?)),
            ["core", k] => sites.push(FaultSite::CorePhase(parse_k(k)?)),
            ["ckpt", k] => sites.push(FaultSite::CheckpointWrite(parse_k(k)?)),
            ["mem", k] => sites.push(FaultSite::MemoryPressure(parse_k(k)?)),
            ["slow", k, ms] => {
                let ms: u64 = ms
                    .parse()
                    .map_err(|e| format!("fault site `{part}`: bad milliseconds: {e}"))?;
                sites.push(FaultSite::Slow(parse_k(k)?, ms));
            }
            ["rand", seed, kills, horizon] => {
                let seed: u64 = seed
                    .parse()
                    .map_err(|e| format!("fault site `{part}`: bad seed: {e}"))?;
                let kills: usize = kills
                    .parse()
                    .map_err(|e| format!("fault site `{part}`: bad kill count: {e}"))?;
                let horizon: usize = horizon
                    .parse()
                    .map_err(|e| format!("fault site `{part}`: bad horizon: {e}"))?;
                if kills == 0 {
                    return Err(format!("fault site `{part}`: kill count must be positive"));
                }
                if horizon == 0 {
                    return Err(format!("fault site `{part}`: horizon must be positive"));
                }
                if kills > horizon {
                    return Err(format!(
                        "fault site `{part}`: cannot draw {kills} kills from a horizon of {horizon}"
                    ));
                }
                sites.extend(
                    FaultPlan::seeded(seed, kills, horizon)
                        .sites()
                        .iter()
                        .copied(),
                );
            }
            ["rand", ..] => {
                return Err(format!(
                    "fault site `{part}`: rand takes exactly SEED:KILLS:HORIZON"
                ))
            }
            _ => {
                return Err(format!(
                    "fault site `{part}`: expected app:K, core:K, ckpt:K, mem:K, \
                     slow:K:MS or rand:SEED:KILLS:HORIZON"
                ))
            }
        }
    }
    if sites.is_empty() {
        return Err("fault plan is empty".to_string());
    }
    Ok(FaultPlan::new(sites))
}

/// Parses one request line.
pub fn parse_request(v: &Json) -> Result<Request, String> {
    match v.require_str("op")? {
        "submit" => {
            let source = v.opt_str("source")?.map(str::to_string);
            let kb = v.opt_str("kb")?.map(str::to_string);
            match (&source, &kb) {
                (None, None) => {
                    return Err("submit needs `source` (program text) or `kb` (name)".to_string())
                }
                (Some(_), Some(_)) => {
                    return Err("submit takes `source` or `kb`, not both".to_string())
                }
                _ => {}
            }
            if let Some(name) = &kb {
                // Fail fast on an unknown name, before the job is queued.
                named_kb(name)?;
            }
            // What the client did not pin, the admission analyzer may
            // choose: variant/schedule when no `variant` key, budget
            // tightening when no explicit budget keys.
            let auto_strategy = v.opt_str("variant")?.is_none();
            let auto_budgets =
                v.opt_u64("max_apps")?.is_none() && v.opt_u64("max_wall_ms")?.is_none();
            Ok(Request::Submit {
                name: v.opt_str("name")?.map(str::to_string),
                source,
                kb,
                config: Box::new(submit_config(v)?),
                tw_sample_interval: opt_positive(v, "tw_sample_interval")?.map(|n| n as usize),
                progress_every: opt_positive(v, "progress_every")?.map(|n| n as usize),
                checkpoint_every: opt_positive(v, "checkpoint_every")?.map(|n| n as usize),
                priority: match v.opt_str("priority")? {
                    Some(s) => Priority::parse(s)?,
                    None => Priority::default(),
                },
                submitter: v.opt_str("submitter")?.map(str::to_string),
                auto_strategy,
                auto_budgets,
            })
        }
        "resume" => Ok(Request::Resume {
            checkpoint: Box::new(crate::checkpoint::Checkpoint::from_json(
                v.require("checkpoint")?,
            )?),
            max_applications: opt_positive(v, "max_apps")?.map(|n| n as usize),
            max_wall_ms: opt_positive(v, "max_wall_ms")?,
        }),
        "cancel" => Ok(Request::Cancel {
            job: v.require_u64("job")?,
        }),
        "status" => Ok(Request::Status {
            job: v.require_u64("job")?,
        }),
        "wait" => Ok(Request::Wait {
            job: v.require_u64("job")?,
            timeout_ms: opt_positive(v, "timeout_ms")?,
        }),
        "checkpoint" => Ok(Request::Checkpoint {
            job: v.require_u64("job")?,
        }),
        "query" => {
            let job = v.opt_u64("job")?;
            let kb = v.opt_str("kb")?.map(str::to_string);
            let source = v.opt_str("source")?.map(str::to_string);
            let targets = usize::from(job.is_some())
                + usize::from(kb.is_some())
                + usize::from(source.is_some());
            if targets != 1 {
                return Err(
                    "query needs exactly one of `job` (id), `kb` (name) or `source` (program text)"
                        .to_string(),
                );
            }
            if let Some(name) = &kb {
                named_kb(name)?;
            }
            let query = v
                .opt_str("query")?
                .ok_or_else(|| "query needs a `query` string".to_string())?
                .to_string();
            Ok(Request::Query {
                job,
                kb,
                source,
                query,
                config: Box::new(submit_config(v)?),
                node_limit: opt_positive(v, "node_limit")?.map(|n| n as usize),
                timeout_ms: opt_positive(v, "timeout_ms")?,
            })
        }
        "list" => Ok(Request::List),
        "drain" => Ok(Request::Drain),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Renders a job status for the wire.
pub fn status_name(s: &JobStatus) -> &'static str {
    match s {
        JobStatus::Queued => "queued",
        JobStatus::Running => "running",
        JobStatus::Finished => "finished",
        JobStatus::Cancelled => "cancelled",
        JobStatus::Failed => "failed",
    }
}

/// Serializes run counters.
pub fn stats_to_json(stats: &ChaseStats) -> Json {
    Json::obj([
        ("applications", Json::Int(stats.applications as i64)),
        ("rounds", Json::Int(stats.rounds as i64)),
        ("retractions", Json::Int(stats.retractions as i64)),
        ("peak_atoms", Json::Int(stats.peak_atoms as i64)),
        ("core_steps", Json::Int(stats.core_steps as i64)),
        ("match_nodes", Json::Int(stats.match_nodes as i64)),
        ("fold_candidates", Json::Int(stats.fold_candidates as i64)),
        ("core_truncations", Json::Int(stats.core_truncations as i64)),
        ("core_time_us", Json::Int(stats.core_time_us as i64)),
        ("wall_us", Json::Int(stats.wall_us as i64)),
        ("nulls_minted", Json::Int(stats.nulls_minted as i64)),
        (
            "peak_trigger_queue",
            Json::Int(stats.peak_trigger_queue as i64),
        ),
        ("peak_mem_units", Json::Int(stats.peak_mem_units as i64)),
        ("match_time_us", Json::Int(stats.match_time_us as i64)),
        ("match_searches", Json::Int(stats.match_searches as i64)),
        ("match_trials", Json::Int(stats.match_trials as i64)),
        (
            "peak_index_postings",
            Json::Int(stats.peak_index_postings as i64),
        ),
    ])
}

/// Deserializes run counters. The matcher counters default to zero so
/// checkpoints written before they existed still parse.
pub fn stats_from_json(v: &Json) -> Result<ChaseStats, String> {
    Ok(ChaseStats {
        applications: v.require_u64("applications")? as usize,
        rounds: v.require_u64("rounds")? as usize,
        retractions: v.require_u64("retractions")? as usize,
        peak_atoms: v.require_u64("peak_atoms")? as usize,
        core_steps: v.opt_u64("core_steps")?.unwrap_or(0) as usize,
        match_nodes: v.opt_u64("match_nodes")?.unwrap_or(0) as usize,
        fold_candidates: v.opt_u64("fold_candidates")?.unwrap_or(0) as usize,
        core_truncations: v.opt_u64("core_truncations")?.unwrap_or(0) as usize,
        core_time_us: v.opt_u64("core_time_us")?.unwrap_or(0),
        wall_us: v.opt_u64("wall_us")?.unwrap_or(0),
        nulls_minted: v.opt_u64("nulls_minted")?.unwrap_or(0) as usize,
        peak_trigger_queue: v.opt_u64("peak_trigger_queue")?.unwrap_or(0) as usize,
        peak_mem_units: v.opt_u64("peak_mem_units")?.unwrap_or(0) as usize,
        match_time_us: v.opt_u64("match_time_us")?.unwrap_or(0),
        match_searches: v.opt_u64("match_searches")?.unwrap_or(0) as usize,
        match_trials: v.opt_u64("match_trials")?.unwrap_or(0) as usize,
        peak_index_postings: v.opt_u64("peak_index_postings")?.unwrap_or(0) as usize,
    })
}

/// Serializes one query verdict.
pub fn verdict_name(v: QueryVerdict) -> &'static str {
    match v {
        QueryVerdict::EntailedCertified => "entailed",
        QueryVerdict::NotEntailedCertified => "not-entailed",
        QueryVerdict::Inconclusive => "inconclusive",
    }
}

/// Serializes one progress event as a wire line
/// (`{"type":"event","event":...,"job":...,...}`).
pub fn event_to_json(ev: &JobEvent) -> Json {
    let mut fields = vec![
        ("type".to_string(), Json::str("event")),
        ("job".to_string(), Json::Int(ev.job as i64)),
        ("name".to_string(), Json::str(&ev.name)),
    ];
    let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
    match &ev.kind {
        JobEventKind::Queued => push("event", Json::str("queued")),
        JobEventKind::Started => push("event", Json::str("started")),
        JobEventKind::StepApplied {
            applications,
            atoms,
            rounds,
        } => {
            push("event", Json::str("step"));
            push("applications", Json::Int(*applications as i64));
            push("atoms", Json::Int(*atoms as i64));
            push("rounds", Json::Int(*rounds as i64));
        }
        JobEventKind::CoreRetracted {
            before,
            after,
            match_nodes,
            fold_candidates,
            truncated,
        } => {
            push("event", Json::str("core-retraction"));
            push("before", Json::Int(*before as i64));
            push("after", Json::Int(*after as i64));
            push("match_nodes", Json::Int(*match_nodes as i64));
            push("fold_candidates", Json::Int(*fold_candidates as i64));
            push("truncated", Json::Bool(*truncated));
        }
        JobEventKind::TreewidthSample {
            applications,
            tw_upper,
            tw_lower,
        } => {
            push("event", Json::str("tw-sample"));
            push("applications", Json::Int(*applications as i64));
            push("tw_upper", Json::Int(*tw_upper as i64));
            push("tw_lower", Json::Int(*tw_lower as i64));
        }
        JobEventKind::Finished {
            status,
            outcome,
            applications,
            atoms,
            resumable,
            wall_ms,
        } => {
            push("event", Json::str("finished"));
            push("status", Json::str(status_name(status)));
            push("outcome", Json::str(outcome_name(*outcome)));
            push("applications", Json::Int(*applications as i64));
            push("atoms", Json::Int(*atoms as i64));
            push("resumable", Json::Bool(*resumable));
            push("wall_ms", Json::Int(*wall_ms as i64));
        }
        JobEventKind::Crashed {
            message,
            attempt,
            retrying,
        } => {
            push("event", Json::str("crashed"));
            push("message", Json::str(message));
            push("attempt", Json::Int(*attempt as i64));
            push("retrying", Json::Bool(*retrying));
        }
        JobEventKind::Failed { message } => {
            push("event", Json::str("failed"));
            push("message", Json::str(message));
        }
        JobEventKind::Degraded {
            mem_units,
            soft_limit,
        } => {
            push("event", Json::str("degraded"));
            push("mem_units", Json::Int(*mem_units as i64));
            push("soft_limit", Json::Int(*soft_limit as i64));
        }
        JobEventKind::Warning { message } => {
            push("event", Json::str("warning"));
            push("message", Json::str(message));
        }
    }
    Json::Obj(fields)
}

/// Serializes an admission-control rejection as a wire line
/// (`{"type":"rejected","op":...,"reason":...,"retry_after_ms":...}`).
/// Shedding is a structured reply, never a dropped connection.
pub fn rejection_to_json(op: &str, rej: &crate::runner::Rejection) -> Json {
    Json::obj([
        ("type", Json::str("rejected")),
        ("op", Json::str(op)),
        ("reason", Json::str(rej.reason.name())),
        ("message", Json::str(&rej.message)),
        (
            "retry_after_ms",
            rej.retry_after
                .map_or(Json::Null, |d| Json::Int(d.as_millis() as i64)),
        ),
    ])
}

/// Serializes a query reply
/// (`{"type":"response","op":"query","completeness":...,"answers":...}`).
/// The snapshot metadata fields (`job` / `sequence` / `applications` /
/// `snapshot_age_ms`) are present on the job path and null on the
/// synchronous kb/source path.
pub fn query_reply_to_json(reply: &crate::runner::QueryReply) -> Json {
    let opt_int = |n: Option<u64>| n.map_or(Json::Null, |n| Json::Int(n as i64));
    Json::obj([
        ("type", Json::str("response")),
        ("op", Json::str("query")),
        (
            "completeness",
            Json::str(reply.outcome.completeness.label()),
        ),
        ("horizon", opt_int(reply.outcome.completeness.horizon())),
        ("entailed", Json::Bool(reply.outcome.entailed())),
        (
            "vars",
            Json::Arr(reply.outcome.var_names.iter().map(Json::str).collect()),
        ),
        (
            "answers",
            Json::Arr(
                reply
                    .outcome
                    .answers
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                    .collect(),
            ),
        ),
        ("job", opt_int(reply.job)),
        ("sequence", opt_int(reply.sequence)),
        ("applications", opt_int(reply.applications)),
        ("snapshot_age_ms", opt_int(reply.snapshot_age_ms)),
        (
            "cache",
            Json::obj([
                ("hits", Json::Int(reply.cache.hits as i64)),
                ("misses", Json::Int(reply.cache.misses as i64)),
                ("published", Json::Int(reply.cache.published as i64)),
                (
                    "answers_served",
                    Json::Int(reply.cache.answers_served as i64),
                ),
                ("stale_drops", Json::Int(reply.cache.stale_drops as i64)),
            ]),
        ),
    ])
}

/// Serializes a terminal job's result (the payload of a `wait`
/// response). Includes the checkpoint object when the run is resumable.
pub fn result_to_json(job: JobId, name: &str, res: &JobResult) -> Json {
    Json::obj([
        ("job", Json::Int(job as i64)),
        ("name", Json::str(name)),
        ("outcome", Json::str(outcome_name(res.outcome))),
        ("stats", stats_to_json(&res.stats)),
        ("atoms", Json::Int(res.final_instance.len() as i64)),
        ("wall_ms", Json::Int(res.wall_ms as i64)),
        (
            "queries",
            Json::Arr(
                res.queries
                    .iter()
                    .map(|(qname, v)| {
                        Json::obj([
                            ("name", Json::str(qname)),
                            ("verdict", Json::str(verdict_name(*v))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "checkpoint",
            res.checkpoint
                .as_ref()
                .map_or(Json::Null, |ck| ck.to_json()),
        ),
    ])
}

/// Serializes one four-valued analysis verdict
/// (`{"status":"certified","certificate":"mfa"}`-shaped objects).
/// `likely-refuted` carries the same refutation payload as `refuted`
/// but flags evidence (e.g. an MFA cyclic-term witness) rather than
/// proof.
pub fn analysis_verdict_to_json(v: &Verdict) -> Json {
    match v {
        Verdict::Certified(c) => {
            let mut fields = vec![
                ("status".to_string(), Json::str("certified")),
                ("certificate".to_string(), Json::str(c.name())),
            ];
            if let Certificate::RestrictedWidthProbe(w) | Certificate::CoreWidthProbe(w) = c {
                fields.push(("width".to_string(), Json::Int(*w as i64)));
            }
            if let Certificate::KBounded(k) = c {
                fields.push(("k".to_string(), Json::Int(*k as i64)));
            }
            Json::Obj(fields)
        }
        Verdict::Refuted(r) | Verdict::LikelyRefuted(r) => {
            let status = if matches!(v, Verdict::Refuted(_)) {
                "refuted"
            } else {
                "likely-refuted"
            };
            let mut fields = vec![
                ("status".to_string(), Json::str(status)),
                ("refutation".to_string(), Json::str(r.name())),
            ];
            if let Refutation::MfaCycle { rule, depth } = r {
                fields.push(("rule".to_string(), Json::Int(*rule as i64)));
                fields.push(("depth".to_string(), Json::Int(*depth as i64)));
            }
            if let Refutation::LinearNonTermination { rule } = r {
                fields.push(("rule".to_string(), Json::Int(*rule as i64)));
            }
            Json::Obj(fields)
        }
        Verdict::Inconclusive { budget } => Json::obj([
            ("status", Json::str("inconclusive")),
            ("budget", Json::Int(*budget as i64)),
        ]),
    }
}

/// Serializes the static half of an analysis report.
pub fn report_to_json(report: &RulesetReport) -> Json {
    Json::obj([
        ("datalog", Json::Bool(report.datalog)),
        ("weakly_acyclic", Json::Bool(report.weakly_acyclic)),
        ("jointly_acyclic", Json::Bool(report.jointly_acyclic)),
        ("guarded", Json::Bool(report.guardedness.is_guarded())),
        (
            "frontier_guarded",
            Json::Bool(report.guardedness.is_frontier_guarded()),
        ),
        ("terminating", analysis_verdict_to_json(&report.terminating)),
        ("bts", analysis_verdict_to_json(&report.bts)),
        ("core_bts", analysis_verdict_to_json(&report.core_bts)),
        (
            "linear_rules",
            Json::Arr(
                report
                    .linear_rules
                    .iter()
                    .map(|&r| Json::Int(r as i64))
                    .collect(),
            ),
        ),
        (
            "linear_fragment",
            analysis_verdict_to_json(&report.linear_fragment),
        ),
        ("kbounded", kbounded_to_json(&report.kbounded)),
    ])
}

/// Serializes the k-boundedness outcome
/// (`{"status":"bounded","k":2,"applications":5}`-shaped objects).
pub fn kbounded_to_json(outcome: &KBoundedOutcome) -> Json {
    match outcome {
        KBoundedOutcome::Bounded { k, applications } => Json::obj([
            ("status", Json::str("bounded")),
            ("k", Json::Int(*k as i64)),
            ("applications", Json::Int(*applications as i64)),
        ]),
        KBoundedOutcome::DepthUnbounded { applications } => Json::obj([
            ("status", Json::str("depth-unbounded")),
            ("applications", Json::Int(*applications as i64)),
        ]),
        KBoundedOutcome::BudgetExhausted { applications } => Json::obj([
            ("status", Json::str("budget-exhausted")),
            ("applications", Json::Int(*applications as i64)),
        ]),
    }
}

/// Serializes the full admission-gate analysis: report, plan, dynamic
/// evidence, and the admissibility bit. Attached to accepted `submit`
/// replies and emitted by `treechase analyze --json`.
pub fn analysis_to_json(gate: &AnalysisGate, rules: &RuleSet) -> Json {
    let strata = gate
        .plan
        .strata
        .iter()
        .map(|s| {
            Json::obj([
                ("shape", Json::str(s.shape.name())),
                (
                    "rules",
                    Json::Arr(
                        s.rules
                            .iter()
                            .map(|&r| Json::str(rules.get(r).name()))
                            .collect(),
                    ),
                ),
                ("cyclic", Json::Bool(s.cyclic)),
            ])
        })
        .collect();
    // A width observation serializes as two fields: `*_width` keeps its
    // historical plateau-or-null shape, `*_width_status` spells out the
    // tri-state ("plateau" / "climbing" / "unobserved") so clients can
    // tell divergence evidence from a probe that saw nothing.
    let width = |w: WidthObservation| w.plateau().map_or(Json::Null, |n| Json::Int(n as i64));
    Json::obj([
        ("report", report_to_json(&gate.report)),
        (
            "plan",
            Json::obj([
                (
                    "variant",
                    Json::str(variant_name(gate.plan.recommended_variant())),
                ),
                ("strata", Json::Arr(strata)),
            ]),
        ),
        (
            "evidence",
            Json::obj([
                (
                    "restricted_terminated",
                    Json::Bool(gate.evidence.restricted_terminated),
                ),
                ("restricted_width", width(gate.evidence.restricted_width)),
                (
                    "restricted_width_status",
                    Json::str(gate.evidence.restricted_width.name()),
                ),
                ("core_terminated", Json::Bool(gate.evidence.core_terminated)),
                ("core_width", width(gate.evidence.core_width)),
                (
                    "core_width_status",
                    Json::str(gate.evidence.core_width.name()),
                ),
            ]),
        ),
        (
            "probe",
            Json::obj([
                (
                    "core_applications",
                    Json::Int(gate.probe.core_applications as i64),
                ),
                (
                    "restricted_profile_len",
                    Json::Int(gate.probe.restricted_profile.len() as i64),
                ),
                (
                    "core_profile_len",
                    Json::Int(gate.probe.core_profile.len() as i64),
                ),
            ]),
        ),
        ("admissible", Json::Bool(gate.admissible())),
        ("cost_class", Json::str(gate.cost_class.name())),
        ("provenance", Json::str(&gate.provenance)),
        ("envelope", envelope_to_json(&gate.envelope)),
    ])
}

/// Serializes a certificate-priced budget envelope. Attached to
/// accepted `submit` replies so clients can see exactly which runtime
/// budgets the admission gate derived from the analysis.
pub fn envelope_to_json(envelope: &BudgetEnvelope) -> Json {
    Json::obj([
        ("max_apps", Json::Int(envelope.max_apps as i64)),
        ("mem_soft", Json::Int(envelope.mem_soft as i64)),
        ("mem_hard", Json::Int(envelope.mem_hard as i64)),
        (
            "deadline_ms",
            Json::Int(envelope.deadline.as_millis() as i64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    #[test]
    fn submit_request_parses_with_defaults() {
        let line = r#"{"op":"submit","source":"r(a,b).","variant":"restricted","max_apps":7}"#;
        let req = parse_request(&parse_json(line).unwrap()).unwrap();
        let Request::Submit {
            source,
            config,
            priority,
            submitter,
            ..
        } = req
        else {
            panic!("expected submit");
        };
        assert_eq!(source.as_deref(), Some("r(a,b)."));
        assert_eq!(config.variant, ChaseVariant::Restricted);
        assert_eq!(config.max_applications, 7);
        assert_eq!(config.max_atoms, ChaseConfig::default().max_atoms);
        assert_eq!(priority, Priority::Normal);
        assert_eq!(submitter, None);
    }

    #[test]
    fn submit_accepts_named_kb_priority_and_submitter() {
        let line =
            r#"{"op":"submit","kb":"elevator","priority":"high","submitter":"alice","max_apps":9}"#;
        let req = parse_request(&parse_json(line).unwrap()).unwrap();
        let Request::Submit {
            source,
            kb,
            priority,
            submitter,
            ..
        } = req
        else {
            panic!("expected submit");
        };
        assert_eq!(source, None);
        assert_eq!(kb.as_deref(), Some("elevator"));
        assert_eq!(priority, Priority::High);
        assert_eq!(submitter.as_deref(), Some("alice"));
    }

    #[test]
    fn submit_validation_rejects_bad_inputs_structurally() {
        let cases = [
            (r#"{"op":"submit"}"#, "source"),
            (
                r#"{"op":"submit","source":"r(a).","kb":"elevator"}"#,
                "not both",
            ),
            (r#"{"op":"submit","kb":"nosuch"}"#, "unknown kb"),
            (
                r#"{"op":"submit","source":"r(a).","max_apps":0}"#,
                "must be positive",
            ),
            (
                r#"{"op":"submit","source":"r(a).","max_atoms":0}"#,
                "must be positive",
            ),
            (
                r#"{"op":"submit","source":"r(a).","progress_every":0}"#,
                "must be positive",
            ),
            (
                r#"{"op":"submit","source":"r(a).","mem_soft":10,"mem_hard":5}"#,
                "must not exceed",
            ),
            (
                r#"{"op":"submit","source":"r(a).","priority":"urgent"}"#,
                "unknown priority",
            ),
            (
                r#"{"op":"submit","source":"r(a).","fault":"app:x"}"#,
                "fault site",
            ),
        ];
        for (line, needle) in cases {
            let err = parse_request(&parse_json(line).unwrap()).unwrap_err();
            assert!(
                err.contains(needle),
                "for {line}: error `{err}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn wait_and_drain_requests_parse() {
        let req = parse_request(&parse_json(r#"{"op":"wait","job":3,"timeout_ms":250}"#).unwrap())
            .unwrap();
        let Request::Wait { job, timeout_ms } = req else {
            panic!("expected wait");
        };
        assert_eq!((job, timeout_ms), (3, Some(250)));
        assert!(
            parse_request(&parse_json(r#"{"op":"wait","job":3,"timeout_ms":0}"#).unwrap()).is_err()
        );
        assert!(matches!(
            parse_request(&parse_json(r#"{"op":"drain"}"#).unwrap()).unwrap(),
            Request::Drain
        ));
    }

    #[test]
    fn config_roundtrips_through_json() {
        let cfg = ChaseConfig::variant(ChaseVariant::Frugal)
            .with_max_applications(123)
            .with_max_atoms(456)
            .with_max_wall(Duration::from_millis(789))
            .with_scheduler(SchedulerKind::Random(5));
        let back = config_from_json(&config_to_json(&cfg)).unwrap();
        assert_eq!(back.variant, cfg.variant);
        assert_eq!(back.scheduler, cfg.scheduler);
        assert_eq!(back.max_applications, cfg.max_applications);
        assert_eq!(back.max_atoms, cfg.max_atoms);
        assert_eq!(back.max_wall, cfg.max_wall);
        assert_eq!(back.core_interval, cfg.core_interval);
        assert_eq!(back.core_maintenance, cfg.core_maintenance);
    }

    #[test]
    fn config_without_core_maintenance_defaults_to_full() {
        // Checkpoints from before the field existed ran the full
        // recompute; parsing must preserve that behaviour.
        let line = r#"{"variant":"core","scheduler":"deterministic","scheduler_seed":null,
                       "max_applications":10,"max_atoms":100,"max_wall_ms":null,"core_interval":1}"#;
        let cfg = config_from_json(&parse_json(line).unwrap()).unwrap();
        assert_eq!(cfg.core_maintenance, CoreMaintenance::FullRecompute);
    }

    #[test]
    fn stats_roundtrip_with_matcher_counters() {
        let stats = ChaseStats {
            applications: 3,
            rounds: 2,
            retractions: 1,
            peak_atoms: 9,
            core_steps: 4,
            match_nodes: 1234,
            fold_candidates: 17,
            core_truncations: 1,
            core_time_us: 5678,
            wall_us: 91_011,
            nulls_minted: 21,
            peak_trigger_queue: 12,
            peak_mem_units: 42,
            match_time_us: 777,
            match_searches: 31,
            match_trials: 999,
            peak_index_postings: 64,
        };
        let back = stats_from_json(&stats_to_json(&stats)).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn fault_plan_specs_parse() {
        use chase_engine::FaultSite;
        let plan = parse_fault_plan("app:3, core:1,ckpt:2").unwrap();
        assert_eq!(
            plan.sites(),
            &[
                FaultSite::Application(3),
                FaultSite::CorePhase(1),
                FaultSite::CheckpointWrite(2)
            ]
        );
        let seeded = parse_fault_plan("rand:9:2:100").unwrap();
        assert_eq!(seeded.sites().len(), 2);
        assert!(parse_fault_plan("app:0").is_err());
        assert!(parse_fault_plan("boom:1").is_err());
        assert!(parse_fault_plan("").is_err());
    }

    #[test]
    fn overload_fault_sites_parse() {
        use chase_engine::FaultSite;
        let plan = parse_fault_plan("mem:4, slow:2:150").unwrap();
        assert_eq!(
            plan.sites(),
            &[FaultSite::MemoryPressure(4), FaultSite::Slow(2, 150)]
        );
        assert!(parse_fault_plan("mem:0").is_err());
        assert!(parse_fault_plan("mem").is_err());
        assert!(parse_fault_plan("slow:1").is_err(), "slow needs K and MS");
        assert!(parse_fault_plan("slow:0:10").is_err());
        assert!(parse_fault_plan("slow:1:abc").is_err());
    }

    #[test]
    fn malformed_rand_specs_are_rejected() {
        for bad in [
            "rand:9",         // missing kills + horizon
            "rand:9:2",       // missing horizon
            "rand:9:2:100:7", // extra field
            "rand:9:0:100",   // zero kills
            "rand:9:2:0",     // zero horizon
            "rand:9:101:100", // more kills than horizon
            "rand:x:2:100",   // non-numeric seed
            "rand:9:x:100",   // non-numeric kills
            "rand:9:2:x",     // non-numeric horizon
        ] {
            let err = parse_fault_plan(bad)
                .err()
                .unwrap_or_else(|| panic!("`{bad}` should be rejected"));
            assert!(err.contains(bad), "error for `{bad}` should echo the spec");
        }
        // The boundary case kills == horizon is legal.
        assert!(parse_fault_plan("rand:9:3:3").is_ok());
    }

    #[test]
    fn query_request_parses_and_validates() {
        let line = r#"{"op":"query","job":4,"query":"?(X) :- at(X, f0)","node_limit":500,"timeout_ms":200}"#;
        let req = parse_request(&parse_json(line).unwrap()).unwrap();
        let Request::Query {
            job,
            kb,
            source,
            query,
            node_limit,
            timeout_ms,
            ..
        } = req
        else {
            panic!("expected query");
        };
        assert_eq!(job, Some(4));
        assert_eq!((kb, source), (None, None));
        assert_eq!(query, "?(X) :- at(X, f0)");
        assert_eq!(node_limit, Some(500));
        assert_eq!(timeout_ms, Some(200));

        let line = r#"{"op":"query","kb":"staircase","query":"?- top(X)","variant":"restricted","max_apps":50}"#;
        let Request::Query { kb, config, .. } = parse_request(&parse_json(line).unwrap()).unwrap()
        else {
            panic!("expected query");
        };
        assert_eq!(kb.as_deref(), Some("staircase"));
        assert_eq!(config.variant, ChaseVariant::Restricted);
        assert_eq!(config.max_applications, 50);

        let cases = [
            (r#"{"op":"query","query":"p(X)"}"#, "exactly one"),
            (
                r#"{"op":"query","job":1,"kb":"staircase","query":"p(X)"}"#,
                "exactly one",
            ),
            (r#"{"op":"query","job":1}"#, "`query` string"),
            (
                r#"{"op":"query","kb":"nosuch","query":"p(X)"}"#,
                "unknown kb",
            ),
            (
                r#"{"op":"query","job":1,"query":"p(X)","node_limit":0}"#,
                "must be positive",
            ),
        ];
        for (line, needle) in cases {
            let err = parse_request(&parse_json(line).unwrap()).unwrap_err();
            assert!(
                err.contains(needle),
                "for {line}: error `{err}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn unknown_op_is_rejected() {
        let line = r#"{"op":"frobnicate"}"#;
        assert!(parse_request(&parse_json(line).unwrap()).is_err());
    }

    #[test]
    fn config_strata_roundtrip_through_json() {
        let mut cfg = ChaseConfig::variant(ChaseVariant::Core);
        cfg.strata = Some(vec![vec![0, 2], vec![1]]);
        let back = config_from_json(&config_to_json(&cfg)).unwrap();
        assert_eq!(back.strata, Some(vec![vec![0, 2], vec![1]]));
        // Absent (old checkpoints) and null both mean "no schedule".
        let line = r#"{"variant":"core","scheduler":"deterministic","scheduler_seed":null,
                       "max_applications":10,"max_atoms":100,"max_wall_ms":null,"core_interval":1}"#;
        let cfg = config_from_json(&parse_json(line).unwrap()).unwrap();
        assert_eq!(cfg.strata, None);
    }

    #[test]
    fn submit_detects_pinned_strategy_and_budgets() {
        let cases = [
            (r#"{"op":"submit","kb":"elevator"}"#, true, true),
            (
                r#"{"op":"submit","kb":"elevator","variant":"core"}"#,
                false,
                true,
            ),
            (
                r#"{"op":"submit","kb":"elevator","max_apps":9}"#,
                true,
                false,
            ),
            (
                r#"{"op":"submit","kb":"elevator","max_wall_ms":50}"#,
                true,
                false,
            ),
        ];
        for (line, want_strategy, want_budgets) in cases {
            let req = parse_request(&parse_json(line).unwrap()).unwrap();
            let Request::Submit {
                auto_strategy,
                auto_budgets,
                ..
            } = req
            else {
                panic!("expected submit");
            };
            assert_eq!(auto_strategy, want_strategy, "{line}");
            assert_eq!(auto_budgets, want_budgets, "{line}");
        }
    }

    #[test]
    fn analysis_json_names_certificates_and_plan_shapes() {
        let kb = chase_core::KnowledgeBase::staircase();
        let budget = chase_homomorphism::SearchBudget::unlimited().with_node_limit(2_000);
        let gate = chase_core::analyze_kb(&kb, &budget, 80);
        let v = analysis_to_json(&gate, &kb.rules);
        let text = v.to_string();
        assert!(text.contains(r#""admissible":true"#), "{text}");
        assert!(text.contains("core-bounded-loop"), "{text}");
        let report = v.get("report").unwrap();
        assert_eq!(
            report.get("weakly_acyclic").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            report
                .get("core_bts")
                .and_then(|c| c.get("status"))
                .and_then(Json::as_str),
            Some("certified")
        );
    }
}
