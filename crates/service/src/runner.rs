//! The worker pool: a fixed set of threads draining a FIFO job queue,
//! with per-job cooperative cancellation and a single-subscriber event
//! stream.
//!
//! Locking discipline: one mutex guards the whole job table and queue;
//! workers hold it only while picking up or publishing a job, never
//! while chasing. Cancellation flips the job's [`CancelToken`], which
//! the engine polls between trigger applications — so a cancel lands
//! within one application's latency without the pool being poisoned.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use chase_engine::{run_chase_controlled, CancelToken, ChaseEvent, ChaseOutcome};
use chase_homomorphism::maps_to;
use chase_treewidth::treewidth_bounds;

use crate::checkpoint::Checkpoint;
use crate::job::{add_stats, JobId, JobResult, JobSpec, JobStatus, QueryVerdict};

/// A progress event, tagged with the job it belongs to.
#[derive(Clone, Debug)]
pub struct JobEvent {
    /// The job this event concerns.
    pub job: JobId,
    /// The job's display name.
    pub name: String,
    /// What happened.
    pub kind: JobEventKind,
}

/// The kinds of progress events a job emits over its lifetime.
#[derive(Clone, Debug)]
pub enum JobEventKind {
    /// The job was accepted into the queue.
    Queued,
    /// A worker picked the job up.
    Started,
    /// A rule application landed (emitted every `progress_every` steps).
    StepApplied {
        /// Applications so far in this slice.
        applications: usize,
        /// Current instance size in atoms.
        atoms: usize,
        /// Fairness rounds so far in this slice.
        rounds: usize,
    },
    /// A core simplification strictly shrank the instance.
    CoreRetracted {
        /// Atoms before the retraction.
        before: usize,
        /// Atoms after the retraction.
        after: usize,
        /// Matcher search nodes explored in this core phase.
        match_nodes: usize,
        /// Fold candidates probed in this core phase.
        fold_candidates: usize,
        /// The phase was cut by the wall/cancel budget — the instance is
        /// a sound retract but may not be the core.
        truncated: bool,
    },
    /// A periodic treewidth estimate of the current instance.
    TreewidthSample {
        /// Applications so far in this slice.
        applications: usize,
        /// Proven upper bound (width of a found decomposition).
        tw_upper: usize,
        /// Proven lower bound (degeneracy).
        tw_lower: usize,
    },
    /// The job reached a terminal state.
    Finished {
        /// Final status (`Finished` or `Cancelled`).
        status: JobStatus,
        /// The chase outcome.
        outcome: ChaseOutcome,
        /// Total applications across all resumed slices.
        applications: usize,
        /// Final instance size.
        atoms: usize,
        /// Whether a resume checkpoint is available.
        resumable: bool,
        /// Wall-clock milliseconds of this slice.
        wall_ms: u64,
    },
    /// The job could not run at all.
    Failed {
        /// Human-readable reason.
        message: String,
    },
    /// A non-fatal condition worth surfacing (e.g. an inexact resume of
    /// an oblivious checkpoint whose applied-trigger memory was lost).
    Warning {
        /// Human-readable description.
        message: String,
    },
}

struct JobEntry {
    name: String,
    status: JobStatus,
    cancel: CancelToken,
    spec: Option<JobSpec>,
    result: Option<JobResult>,
}

struct State {
    next_id: JobId,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, JobEntry>,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    events: Mutex<Option<Sender<JobEvent>>>,
    shutdown: AtomicBool,
}

impl Inner {
    fn emit(&self, ev: JobEvent) {
        let mut guard = self.events.lock().expect("event lock poisoned");
        if let Some(tx) = guard.as_ref() {
            // A dropped receiver just means nobody is listening anymore.
            if tx.send(ev).is_err() {
                *guard = None;
            }
        }
    }
}

/// A handle to a running worker pool. Dropping the service shuts the
/// pool down (pending queued jobs are abandoned, running jobs are
/// cancelled).
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// A row in the [`Service::list`] summary.
#[derive(Clone, Debug)]
pub struct JobSummary {
    /// The job's id.
    pub id: JobId,
    /// The job's display name.
    pub name: String,
    /// Current lifecycle state.
    pub status: JobStatus,
}

impl Service {
    /// Starts a pool with `workers` threads (clamped to at least 1).
    pub fn start(workers: usize) -> Service {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                next_id: 1,
                queue: VecDeque::new(),
                jobs: HashMap::new(),
            }),
            cv: Condvar::new(),
            events: Mutex::new(None),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Service { inner, workers }
    }

    /// Subscribes to the event stream. Only the most recent subscriber
    /// receives events; earlier receivers go quiet.
    pub fn events(&self) -> Receiver<JobEvent> {
        let (tx, rx) = channel();
        *self.inner.events.lock().expect("event lock poisoned") = Some(tx);
        rx
    }

    /// Enqueues a job and returns its id.
    pub fn submit(&self, spec: JobSpec) -> JobId {
        let mut st = self.inner.state.lock().expect("state lock poisoned");
        let id = st.next_id;
        st.next_id += 1;
        let name = spec.name.clone();
        st.jobs.insert(
            id,
            JobEntry {
                name: name.clone(),
                status: JobStatus::Queued,
                cancel: CancelToken::new(),
                spec: Some(spec),
                result: None,
            },
        );
        st.queue.push_back(id);
        drop(st);
        self.inner.cv.notify_all();
        self.inner.emit(JobEvent {
            job: id,
            name,
            kind: JobEventKind::Queued,
        });
        id
    }

    /// Requests cancellation. Queued jobs die immediately; running jobs
    /// stop at the next trigger boundary. Returns false for unknown or
    /// already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().expect("state lock poisoned");
        let Some(entry) = st.jobs.get_mut(&id) else {
            return false;
        };
        match entry.status {
            JobStatus::Queued => {
                entry.status = JobStatus::Cancelled;
                entry.cancel.cancel();
                let spec = entry.spec.take();
                let name = entry.name.clone();
                drop(st);
                drop(spec);
                self.inner.cv.notify_all();
                self.inner.emit(JobEvent {
                    job: id,
                    name,
                    kind: JobEventKind::Finished {
                        status: JobStatus::Cancelled,
                        outcome: ChaseOutcome::Cancelled,
                        applications: 0,
                        atoms: 0,
                        resumable: false,
                        wall_ms: 0,
                    },
                });
                true
            }
            JobStatus::Running => {
                entry.cancel.cancel();
                true
            }
            _ => false,
        }
    }

    /// Returns the status of a job, if known.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.state.lock().expect("state lock poisoned");
        st.jobs.get(&id).map(|e| e.status.clone())
    }

    /// Blocks until the job reaches a terminal state and returns it.
    /// Returns `None` for unknown job ids.
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut st = self.inner.state.lock().expect("state lock poisoned");
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(e) if e.status.is_terminal() => return Some(e.status.clone()),
                Some(_) => {
                    st = self.inner.cv.wait(st).expect("state lock poisoned");
                }
            }
        }
    }

    /// Borrow-free peek at a terminal job's result via a closure (the
    /// result stays in the table so `checkpoint` requests keep working).
    pub fn with_result<T>(&self, id: JobId, f: impl FnOnce(&JobResult) -> T) -> Option<T> {
        let st = self.inner.state.lock().expect("state lock poisoned");
        st.jobs.get(&id).and_then(|e| e.result.as_ref()).map(f)
    }

    /// Waits for the job and moves its full result out of the table
    /// (used by the bench drivers, which need the owned derivation).
    pub fn take_result(&self, id: JobId) -> Option<JobResult> {
        self.wait(id)?;
        let mut st = self.inner.state.lock().expect("state lock poisoned");
        st.jobs.get_mut(&id).and_then(|e| e.result.take())
    }

    /// Summarizes every known job, in id order.
    pub fn list(&self) -> Vec<JobSummary> {
        let st = self.inner.state.lock().expect("state lock poisoned");
        let mut rows: Vec<JobSummary> = st
            .jobs
            .iter()
            .map(|(id, e)| JobSummary {
                id: *id,
                name: e.name.clone(),
                status: e.status.clone(),
            })
            .collect();
        rows.sort_by_key(|r| r.id);
        rows
    }

    /// Stops accepting work, cancels everything live and joins the
    /// workers. Idempotent.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let mut st = self.inner.state.lock().expect("state lock poisoned");
            st.queue.clear();
            for e in st.jobs.values_mut() {
                if e.status == JobStatus::Queued {
                    e.status = JobStatus::Cancelled;
                    e.spec = None;
                }
                e.cancel.cancel();
            }
        }
        self.inner.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (id, spec, cancel, name) = {
            let mut st = inner.state.lock().expect("state lock poisoned");
            let picked = loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Lazily skip queue entries whose job was cancelled
                // while still queued (their spec is gone).
                let mut found = None;
                while let Some(id) = st.queue.pop_front() {
                    let live = st
                        .jobs
                        .get(&id)
                        .is_some_and(|e| e.status == JobStatus::Queued);
                    if live {
                        found = Some(id);
                        break;
                    }
                }
                match found {
                    Some(id) => break id,
                    None => {
                        st = inner.cv.wait(st).expect("state lock poisoned");
                    }
                }
            };
            let entry = st.jobs.get_mut(&picked).expect("queued job vanished");
            entry.status = JobStatus::Running;
            let spec = entry.spec.take().expect("queued job without a spec");
            (picked, spec, entry.cancel.clone(), entry.name.clone())
        };
        inner.cv.notify_all();
        inner.emit(JobEvent {
            job: id,
            name: name.clone(),
            kind: JobEventKind::Started,
        });

        let started = Instant::now();
        let result = execute(inner, id, &name, &spec, &cancel, started);

        let mut st = inner.state.lock().expect("state lock poisoned");
        let entry = st.jobs.get_mut(&id).expect("running job vanished");
        let kind = match result {
            Ok(res) => {
                entry.status = if res.outcome == ChaseOutcome::Cancelled {
                    JobStatus::Cancelled
                } else {
                    JobStatus::Finished
                };
                let kind = JobEventKind::Finished {
                    status: entry.status.clone(),
                    outcome: res.outcome,
                    applications: res.stats.applications,
                    atoms: res.final_instance.len(),
                    resumable: res.checkpoint.is_some(),
                    wall_ms: res.wall_ms,
                };
                entry.result = Some(res);
                kind
            }
            Err(message) => {
                entry.status = JobStatus::Failed;
                JobEventKind::Failed { message }
            }
        };
        drop(st);
        inner.cv.notify_all();
        inner.emit(JobEvent {
            job: id,
            name,
            kind,
        });
    }
}

/// Runs one job slice to its outcome and assembles the result.
fn execute(
    inner: &Inner,
    id: JobId,
    name: &str,
    spec: &JobSpec,
    cancel: &CancelToken,
    started: Instant,
) -> Result<JobResult, String> {
    let mut vocab = spec.kb.vocab.clone();
    let progress_every = spec.progress_every.max(1);
    let mut last_step_emitted = 0usize;
    let mut last_tw_sampled = 0usize;
    if spec.resumed_inexact {
        // The checkpoint could not carry the applied-trigger memory of
        // its oblivious/semi-oblivious prefix; the resumed slice may
        // re-apply triggers. This used to be silently dropped.
        inner.emit(JobEvent {
            job: id,
            name: name.to_string(),
            kind: JobEventKind::Warning {
                message: format!(
                    "inexact resume: the {} checkpoint drops applied-trigger \
                     memory, so triggers of the prefix may fire again",
                    crate::protocol::variant_name(spec.config.variant)
                ),
            },
        });
    }
    let res = run_chase_controlled(
        &mut vocab,
        &spec.kb.facts,
        &spec.kb.rules,
        &spec.config,
        Some(cancel),
        |ev| {
            match ev {
                ChaseEvent::RoundStarted { .. } => {}
                ChaseEvent::StepApplied { instance, stats } => {
                    if stats.applications >= last_step_emitted + progress_every {
                        last_step_emitted = stats.applications;
                        inner.emit(JobEvent {
                            job: id,
                            name: name.to_string(),
                            kind: JobEventKind::StepApplied {
                                applications: stats.applications,
                                atoms: instance.len(),
                                rounds: stats.rounds,
                            },
                        });
                    }
                    if let Some(every) = spec.tw_sample_interval {
                        if stats.applications >= last_tw_sampled + every {
                            last_tw_sampled = stats.applications;
                            let tw = treewidth_bounds(instance);
                            inner.emit(JobEvent {
                                job: id,
                                name: name.to_string(),
                                kind: JobEventKind::TreewidthSample {
                                    applications: stats.applications,
                                    tw_upper: tw.upper,
                                    tw_lower: tw.lower,
                                },
                            });
                        }
                    }
                }
                ChaseEvent::CoreRetracted {
                    before,
                    after,
                    match_stats,
                    ..
                } => {
                    inner.emit(JobEvent {
                        job: id,
                        name: name.to_string(),
                        kind: JobEventKind::CoreRetracted {
                            before,
                            after,
                            match_nodes: match_stats.nodes,
                            fold_candidates: match_stats.candidates,
                            truncated: match_stats.truncated,
                        },
                    });
                }
            }
            std::ops::ControlFlow::Continue(())
        },
    );

    let stats = add_stats(spec.base_stats, res.stats);
    let queries = spec
        .queries
        .iter()
        .map(|(qname, q)| {
            let verdict = if maps_to(q, &res.final_instance) {
                QueryVerdict::EntailedCertified
            } else if res.outcome.terminated() {
                QueryVerdict::NotEntailedCertified
            } else {
                QueryVerdict::Inconclusive
            };
            (qname.clone(), verdict)
        })
        .collect();
    let checkpoint = if res.outcome.resumable() {
        Some(Checkpoint::capture(
            spec,
            &vocab,
            &res.final_instance,
            stats,
        ))
    } else {
        None
    };
    Ok(JobResult {
        outcome: res.outcome,
        stats,
        final_instance: res.final_instance,
        derivation: res.derivation,
        queries,
        checkpoint,
        wall_ms: started.elapsed().as_millis() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::{ChaseConfig, ChaseVariant};

    fn transitive_spec(name: &str, cfg: ChaseConfig) -> JobSpec {
        JobSpec::from_text(
            name,
            "r(a, b). r(b, c). r(c, d). T: r(X, Y), r(Y, Z) -> r(X, Z). \
             Q: ?- r(a, d).",
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn submit_wait_and_query_verdicts() {
        let svc = Service::start(2);
        let id = svc.submit(transitive_spec(
            "t",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
        let (outcome, verdicts) = svc
            .with_result(id, |r| (r.outcome, r.queries.clone()))
            .unwrap();
        assert!(outcome.terminated());
        assert_eq!(
            verdicts,
            vec![("Q".to_string(), QueryVerdict::EntailedCertified)]
        );
    }

    #[test]
    fn queued_job_can_be_cancelled_before_running() {
        // One worker, keep it busy with a long job so the second one
        // sits in the queue when we cancel it.
        let svc = Service::start(1);
        let busy = svc.submit(JobSpec::from_kb(
            "busy",
            chase_core::KnowledgeBase::staircase(),
            ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(50_000),
        ));
        let victim = svc.submit(transitive_spec(
            "victim",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        assert!(svc.cancel(victim));
        assert_eq!(svc.status(victim), Some(JobStatus::Cancelled));
        assert!(svc.cancel(busy));
        assert_eq!(svc.wait(busy), Some(JobStatus::Cancelled));
        // The pool is still healthy after the cancellations.
        let id = svc.submit(transitive_spec(
            "after",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
    }

    #[test]
    fn budget_exhaustion_yields_checkpoint_and_inconclusive_query() {
        let svc = Service::start(1);
        let id = svc.submit(transitive_spec(
            "cut",
            ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(1),
        ));
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
        let res = svc.take_result(id).unwrap();
        assert_eq!(res.outcome, ChaseOutcome::ApplicationBudgetExhausted);
        let ck = res.checkpoint.expect("budget exhaustion is resumable");
        assert!(ck.exact());
        // The lone query did not certify either way at the cut.
        assert!(
            res.queries
                .iter()
                .any(|(_, v)| *v == QueryVerdict::Inconclusive)
                || res
                    .queries
                    .iter()
                    .any(|(_, v)| *v == QueryVerdict::EntailedCertified)
        );
    }

    #[test]
    fn events_cover_the_job_lifecycle() {
        let svc = Service::start(1);
        let rx = svc.events();
        let id = svc.submit(transitive_spec(
            "ev",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        svc.wait(id);
        let mut saw_queued = false;
        let mut saw_started = false;
        let mut saw_step = false;
        let mut saw_finished = false;
        while let Ok(ev) = rx.try_recv() {
            assert_eq!(ev.job, id);
            match ev.kind {
                JobEventKind::Queued => saw_queued = true,
                JobEventKind::Started => saw_started = true,
                JobEventKind::StepApplied { .. } => saw_step = true,
                JobEventKind::Finished { status, .. } => {
                    assert_eq!(status, JobStatus::Finished);
                    saw_finished = true;
                }
                _ => {}
            }
        }
        assert!(saw_queued && saw_started && saw_step && saw_finished);
    }

    #[test]
    fn failed_source_marks_job_failed_not_pool() {
        let svc = Service::start(1);
        // from_text fails eagerly, so a Failed entry can only come from
        // the worker; simulate by submitting a fine job after a burst.
        let ids: Vec<_> = (0..4)
            .map(|i| {
                svc.submit(transitive_spec(
                    &format!("j{i}"),
                    ChaseConfig::variant(ChaseVariant::Core),
                ))
            })
            .collect();
        for id in ids {
            assert_eq!(svc.wait(id), Some(JobStatus::Finished));
        }
        assert_eq!(svc.list().len(), 4);
    }
}
