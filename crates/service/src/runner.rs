//! The worker pool: a fixed set of threads draining a FIFO job queue,
//! with per-job cooperative cancellation, a bounded event buffer,
//! periodic durable checkpointing and crash supervision.
//!
//! Locking discipline: one mutex guards the whole job table and queue;
//! workers hold it only while picking up or publishing a job, never
//! while chasing — and never while emitting events or doing checkpoint
//! I/O. Cancellation flips the job's [`CancelToken`], which the engine
//! polls between trigger applications — so a cancel lands within one
//! application's latency without the pool being poisoned.
//!
//! Supervision: every slice runs under `catch_unwind`. A panic — real,
//! or injected through a [`chase_engine::FaultPlan`] — surfaces as a
//! [`JobEventKind::Crashed`] event, and the worker retries from the
//! job's last checkpoint (or from scratch if none was captured yet)
//! with exponential backoff, up to [`ServiceConfig::max_retries`]
//! times. After that the job degrades to [`JobStatus::Failed`] with the
//! last checkpoint still retrievable via [`Service::checkpoint_of`].
//! With a state directory configured, checkpoints also go to disk (see
//! [`CheckpointStore`]), and [`Service::with_config`] recovers them
//! into resumable queued jobs on the next start.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chase_core::{AnalysisGate, KnowledgeBase};
use chase_engine::{run_chase_controlled, CancelToken, ChaseConfig, ChaseEvent, ChaseOutcome};
use chase_homomorphism::{maps_to, SearchBudget};
use chase_query::{answer_kb, answer_view, CacheStats, QueryOutcome, Snapshot, SnapshotCache};
use chase_treewidth::treewidth_bounds;

use crate::checkpoint::Checkpoint;
use crate::job::{add_stats, JobId, JobResult, JobSpec, JobStatus, Priority, QueryVerdict};
use crate::store::{CheckpointStore, CorruptEntry};

/// A progress event, tagged with the job it belongs to.
#[derive(Clone, Debug)]
pub struct JobEvent {
    /// The job this event concerns.
    pub job: JobId,
    /// The job's display name.
    pub name: String,
    /// What happened.
    pub kind: JobEventKind,
}

/// The kinds of progress events a job emits over its lifetime.
#[derive(Clone, Debug)]
pub enum JobEventKind {
    /// The job was accepted into the queue.
    Queued,
    /// A worker picked the job up.
    Started,
    /// A rule application landed (emitted every `progress_every` steps).
    StepApplied {
        /// Applications so far in this slice.
        applications: usize,
        /// Current instance size in atoms.
        atoms: usize,
        /// Fairness rounds so far in this slice.
        rounds: usize,
    },
    /// A core simplification strictly shrank the instance.
    CoreRetracted {
        /// Atoms before the retraction.
        before: usize,
        /// Atoms after the retraction.
        after: usize,
        /// Matcher search nodes explored in this core phase.
        match_nodes: usize,
        /// Fold candidates probed in this core phase.
        fold_candidates: usize,
        /// The phase was cut by the wall/cancel budget — the instance is
        /// a sound retract but may not be the core.
        truncated: bool,
    },
    /// A periodic treewidth estimate of the current instance.
    TreewidthSample {
        /// Applications so far in this slice.
        applications: usize,
        /// Proven upper bound (width of a found decomposition).
        tw_upper: usize,
        /// Proven lower bound (degeneracy).
        tw_lower: usize,
    },
    /// The job reached a terminal state.
    Finished {
        /// Final status (`Finished` or `Cancelled`).
        status: JobStatus,
        /// The chase outcome.
        outcome: ChaseOutcome,
        /// Total applications across all resumed slices.
        applications: usize,
        /// Final instance size.
        atoms: usize,
        /// Whether a resume checkpoint is available.
        resumable: bool,
        /// Wall-clock milliseconds of this slice.
        wall_ms: u64,
    },
    /// A slice of the job panicked; the supervisor decides whether a
    /// retry from the last checkpoint follows.
    Crashed {
        /// The panic message.
        message: String,
        /// 1-based crash count for this job.
        attempt: usize,
        /// Whether the supervisor will retry (false on the final crash,
        /// after which the job degrades to `Failed`).
        retrying: bool,
    },
    /// The job crossed its soft memory ceiling and entered degraded
    /// mode: an immediate core retraction pass and a tightened matcher
    /// budget. Emitted at most once per slice.
    Degraded {
        /// Abstract memory units at the crossing.
        mem_units: usize,
        /// The configured soft ceiling.
        soft_limit: usize,
    },
    /// The job could not run at all, or crashed past its retry budget.
    Failed {
        /// Human-readable reason.
        message: String,
    },
    /// A non-fatal condition worth surfacing (e.g. an inexact resume of
    /// an oblivious checkpoint, or a failed durable checkpoint write).
    Warning {
        /// Human-readable description.
        message: String,
    },
}

/// Tuning knobs for [`Service::with_config`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Directory for durable per-job checkpoints; `None` disables
    /// persistence (in-memory checkpoints still feed crash retries).
    pub state_dir: Option<PathBuf>,
    /// How many times a crashed job is retried from its last checkpoint
    /// before degrading to `Failed`.
    pub max_retries: usize,
    /// Backoff before the first retry; doubles per subsequent attempt.
    pub retry_backoff: Duration,
    /// Event-buffer capacity; beyond it the oldest events are dropped
    /// (counted per job in [`JobSummary::events_dropped`]).
    pub event_capacity: usize,
    /// Default checkpoint interval, in applications, for jobs that do
    /// not set their own; `None` checkpoints only at slice boundaries.
    pub checkpoint_every: Option<usize>,
    /// Admission control: reject new submissions once this many jobs sit
    /// in the queue (`None` = unbounded, the historical behaviour).
    pub max_queue: Option<usize>,
    /// Admission control: reject a submission whose submitter tag
    /// already has this many live (queued or running) jobs. Untagged
    /// submissions are exempt.
    pub submitter_quota: Option<usize>,
    /// Default wall-clock deadline applied to jobs that set no
    /// `max_wall` of their own — no admitted job runs forever.
    pub job_deadline: Option<Duration>,
    /// Default timeout for blocking protocol operations (`wait`) that do
    /// not carry their own; `None` blocks indefinitely.
    pub op_deadline: Option<Duration>,
    /// How long [`Service::drain`] waits for running slices to
    /// checkpoint and stop before reporting them timed out.
    pub drain_grace: Duration,
    /// Strict admission: shed submissions (via
    /// [`Service::submit_analyzed`]) whose admission-time analysis
    /// refutes every decidability route instead of admitting a job that
    /// can only burn its budget.
    pub strict_admission: bool,
    /// Homomorphism-search node limit granted to the admission-time
    /// static analyzer (the MFA critical-instance test).
    pub analysis_node_limit: usize,
    /// Chase applications granted to the admission-time dynamic probe.
    pub analysis_probe: usize,
    /// Wall-clock ceiling for the whole admission-time analysis (static
    /// tests and dynamic probes alike). The submit path runs the
    /// analyzer synchronously, so without a deadline one pathological
    /// ruleset could stall every subsequent submission; an analysis cut
    /// short reports inconclusive verdicts and short (no-signal)
    /// profiles rather than a fabricated refutation. `None` disables
    /// the ceiling.
    pub analysis_deadline: Option<Duration>,
    /// Publish a materialization snapshot for the query cache every this
    /// many rule applications (plus one at slice start and one at slice
    /// end).
    pub snapshot_every: usize,
    /// Trailing snapshots kept per job; their intersection is the robust
    /// D^⊛ prefix that live-job queries evaluate against.
    pub snapshot_ring: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            state_dir: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(50),
            event_capacity: 4096,
            checkpoint_every: None,
            max_queue: None,
            submitter_quota: None,
            job_deadline: None,
            op_deadline: None,
            drain_grace: Duration::from_secs(5),
            strict_admission: false,
            analysis_node_limit: 2_000,
            analysis_probe: chase_core::DEFAULT_PROBE_APPLICATIONS,
            analysis_deadline: Some(Duration::from_secs(2)),
            snapshot_every: 64,
            snapshot_ring: 4,
        }
    }
}

/// Why an admission-controlled submission was shed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity.
    QueueFull,
    /// The submitter already has its quota of live jobs.
    QuotaExceeded,
    /// The service is draining (or shut down) and admits nothing new.
    Draining,
    /// Strict admission: the analyzer refuted every decidability route
    /// for the submitted ruleset.
    AnalysisRefuted,
}

impl RejectReason {
    /// Wire spelling of the reason.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::QuotaExceeded => "quota-exceeded",
            RejectReason::Draining => "draining",
            RejectReason::AnalysisRefuted => "analysis-refuted",
        }
    }
}

/// A structured load-shedding reply: the client learns why it was shed
/// and when a retry is worth attempting — never a panic, never a
/// silently dropped job.
#[derive(Clone, Debug)]
pub struct Rejection {
    /// Why the submission was shed.
    pub reason: RejectReason,
    /// Human-readable detail (includes the current counts).
    pub message: String,
    /// Suggested client backoff; `None` when retrying is pointless
    /// (draining).
    pub retry_after: Option<Duration>,
}

/// Application ceiling the cost model's `Open` envelope collapses to
/// when no decidability route certifies: divergence is plausible, so
/// cut early. Kept as a named constant because tests and operators
/// reason about the worst-case admission budget by this number.
pub const TIGHT_MAX_APPLICATIONS: usize = 1_000;
/// Soft memory ceiling (abstract units) of the `Open` envelope.
pub const TIGHT_MEM_SOFT: usize = 8_192;
/// Hard memory ceiling (abstract units) of the `Open` envelope.
pub const TIGHT_MEM_HARD: usize = 16_384;

/// What [`Service::submit_analyzed`] decided at admission time.
#[derive(Clone, Debug)]
pub struct Admission {
    /// The full analysis gate (report, plan, evidence, probe) — boxed,
    /// it dominates the struct's size. `None` when the gate was skipped
    /// because the submit pinned both its strategy and its budgets and
    /// strict admission is off: there is nothing for the analyzer to
    /// decide, and keeping fully-pinned submits probe-free keeps them
    /// cheap to shed under an overload burst.
    pub gate: Option<Box<AnalysisGate>>,
    /// The plan's variant + stratified schedule were written into the
    /// job's config (`auto_strategy`).
    pub strategy_applied: bool,
    /// The certificate-priced budget envelope lowered the job's
    /// application ceiling (`auto_budgets`).
    pub budgets_tightened: bool,
}

/// Runs the admission-time analyzer over `spec` and applies its
/// strategy/budget decisions in place — the queue-independent half of
/// admission, shared by [`Service::submit_analyzed`] and the cluster
/// coordinator's submit path (which has no local queue but must apply
/// the same gate and emit the same structured rejections).
///
/// A spec that pinned both its variant and a budget gives the analyzer
/// nothing to decide; unless `cfg.strict_admission` needs a verdict it
/// skips the gate entirely, keeping fully-pinned submits cheap to shed
/// under an overload burst.
pub fn apply_admission_gate(
    spec: &mut JobSpec,
    cfg: &ServiceConfig,
) -> Result<Admission, Rejection> {
    if !spec.auto_strategy && !spec.auto_budgets && !cfg.strict_admission {
        return Ok(Admission {
            gate: None,
            strategy_applied: false,
            budgets_tightened: false,
        });
    }
    let mut budget = SearchBudget::unlimited().with_node_limit(cfg.analysis_node_limit);
    if let Some(d) = cfg.analysis_deadline {
        budget = budget.with_deadline(Instant::now() + d);
    }
    let gate = chase_core::analyze_kb(&spec.kb, &budget, cfg.analysis_probe);
    if cfg.strict_admission && !gate.admissible() {
        return Err(Rejection {
            reason: RejectReason::AnalysisRefuted,
            message: format!(
                "strict admission: every decidability route is refuted-or-unknown \
                 (terminating {}; bts {}; core-bts {})",
                gate.report.terminating, gate.report.bts, gate.report.core_bts
            ),
            retry_after: None,
        });
    }
    let strategy_applied = spec.auto_strategy;
    if spec.auto_strategy {
        spec.config = gate.plan.apply(spec.config.clone());
    }
    // Certificate-priced budgets: the gate's cost model maps the best
    // certificate (or its absence) to a budget envelope, which replaces
    // the old flat "tighten to 1000 when refuted" rule. The envelope
    // only ever *lowers* the application ceiling and fills memory/wall
    // budgets the submit left open.
    let mut budgets_tightened = false;
    if spec.auto_budgets {
        let before = spec.config.max_applications;
        spec.config.max_applications = spec.config.max_applications.min(gate.envelope.max_apps);
        budgets_tightened = spec.config.max_applications < before;
        if spec.config.mem_soft.is_none() {
            spec.config.mem_soft = Some(gate.envelope.mem_soft);
        }
        if spec.config.mem_hard.is_none() {
            spec.config.mem_hard = Some(gate.envelope.mem_hard);
        }
        if spec.config.max_wall.is_none() {
            spec.config.max_wall = Some(gate.envelope.deadline);
        }
    }
    Ok(Admission {
        gate: Some(Box::new(gate)),
        strategy_applied,
        budgets_tightened,
    })
}

/// What [`Service::wait_timeout`] observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaitResult {
    /// The job reached this terminal state.
    Terminal(JobStatus),
    /// The deadline passed first; the job was still in this
    /// (non-terminal) state.
    TimedOut(JobStatus),
    /// No job with that id exists.
    Unknown,
}

/// What [`Service::drain`] accomplished within its grace period.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Queued jobs cancelled before they ever ran.
    pub cancelled_queued: usize,
    /// Running jobs that stopped within the grace period and left a
    /// resume checkpoint behind.
    pub checkpointed: usize,
    /// Running jobs still not terminal when the grace period expired.
    pub timed_out: usize,
}

struct HubState {
    buf: VecDeque<JobEvent>,
    dropped: HashMap<JobId, u64>,
    /// Bumped on every subscribe; a receiver from an older generation is
    /// superseded and goes quiet.
    generation: u64,
    closed: bool,
}

/// Bounded single-subscriber event buffer. Emitting never blocks: with
/// no (or a slow) subscriber the buffer caps at `capacity` and drops its
/// *oldest* entries, counting drops per job — so an unobserved service
/// neither grows without bound nor stalls its workers.
struct EventHub {
    state: Mutex<HubState>,
    cv: Condvar,
    capacity: usize,
}

impl EventHub {
    fn new(capacity: usize) -> EventHub {
        EventHub {
            state: Mutex::new(HubState {
                buf: VecDeque::new(),
                dropped: HashMap::new(),
                generation: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn emit(&self, ev: JobEvent) {
        let mut st = self.state.lock().expect("event hub poisoned");
        if st.closed {
            return;
        }
        if st.buf.len() >= self.capacity {
            if let Some(old) = st.buf.pop_front() {
                *st.dropped.entry(old.job).or_insert(0) += 1;
            }
        }
        st.buf.push_back(ev);
        drop(st);
        self.cv.notify_all();
    }

    fn close(&self) {
        self.state.lock().expect("event hub poisoned").closed = true;
        self.cv.notify_all();
    }

    fn dropped_for(&self, job: JobId) -> u64 {
        let st = self.state.lock().expect("event hub poisoned");
        st.dropped.get(&job).copied().unwrap_or(0)
    }
}

/// The receiving end of [`Service::events`]. Only the most recent
/// subscriber receives events; earlier receivers go quiet. Iterating
/// blocks until the next event and ends on shutdown.
pub struct EventReceiver {
    inner: Arc<Inner>,
    generation: u64,
}

impl EventReceiver {
    /// Pops the next buffered event without blocking.
    pub fn try_recv(&self) -> Option<JobEvent> {
        let mut st = self.inner.hub.state.lock().expect("event hub poisoned");
        if st.generation != self.generation {
            return None;
        }
        st.buf.pop_front()
    }

    /// Blocks for the next event; `None` once the service shuts down
    /// (after draining) or a newer subscriber supersedes this one.
    pub fn recv(&self) -> Option<JobEvent> {
        let mut st = self.inner.hub.state.lock().expect("event hub poisoned");
        loop {
            if st.generation != self.generation {
                return None;
            }
            if let Some(ev) = st.buf.pop_front() {
                return Some(ev);
            }
            if st.closed {
                return None;
            }
            st = self.inner.hub.cv.wait(st).expect("event hub poisoned");
        }
    }
}

impl Iterator for EventReceiver {
    type Item = JobEvent;

    fn next(&mut self) -> Option<JobEvent> {
        self.recv()
    }
}

struct JobEntry {
    name: String,
    status: JobStatus,
    cancel: CancelToken,
    spec: Option<JobSpec>,
    result: Option<JobResult>,
    /// The most recent checkpoint of this job — periodic, end-of-slice,
    /// or the one it was recovered from. Feeds crash retries and stays
    /// retrievable after a `Failed` degradation.
    last_checkpoint: Option<Checkpoint>,
    priority: Priority,
    submitter: Option<String>,
    /// Queries answered from this job's snapshots (surfaced in
    /// [`JobSummary::queries_served`]).
    queries_served: u64,
}

struct State {
    next_id: JobId,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, JobEntry>,
    /// Raised by [`Service::drain`]: nothing new is admitted and the
    /// workers stop picking (idle until shutdown).
    draining: bool,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    hub: EventHub,
    cfg: ServiceConfig,
    store: Option<CheckpointStore>,
    shutdown: AtomicBool,
    /// Per-job materialization snapshots for the query read path.
    /// Separate from `state`: readers take views by `Arc` and never
    /// contend with the job table or the chase writers.
    snapshots: SnapshotCache,
}

impl Inner {
    fn set_last_checkpoint(&self, id: JobId, ck: Checkpoint) {
        let mut st = self.state.lock().expect("state lock poisoned");
        if let Some(entry) = st.jobs.get_mut(&id) {
            entry.last_checkpoint = Some(ck);
        }
    }

    /// Persists a checkpoint if a store is configured; a failed write is
    /// surfaced as a warning (the previous durable checkpoint, if any,
    /// is untouched by construction of [`CheckpointStore::save`]).
    fn persist_checkpoint(&self, id: JobId, name: &str, spec: &JobSpec, ck: &Checkpoint) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        if let Err(e) = store.save(id, ck, spec.config.fault.as_ref()) {
            self.hub.emit(JobEvent {
                job: id,
                name: name.to_string(),
                kind: JobEventKind::Warning {
                    message: format!(
                        "durable checkpoint write failed (previous checkpoint kept): {e}"
                    ),
                },
            });
        }
    }
}

/// A handle to a running worker pool. Dropping the service shuts the
/// pool down (pending queued jobs are abandoned, running jobs are
/// cancelled). All methods take `&self`, so the handle can be shared
/// behind an [`Arc`] (e.g. with a signal-watcher thread that drains).
pub struct Service {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    recovered: Vec<JobId>,
    recovery_errors: Vec<CorruptEntry>,
}

/// A row in the [`Service::list`] summary.
#[derive(Clone, Debug)]
pub struct JobSummary {
    /// The job's id.
    pub id: JobId,
    /// The job's display name.
    pub name: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Events of this job dropped from the bounded buffer because no
    /// subscriber drained them in time.
    pub events_dropped: u64,
    /// Queries answered from this job's materialization snapshots.
    pub queries_served: u64,
    /// Age of the newest published snapshot, in milliseconds; `None`
    /// when the job has not published one yet.
    pub snapshot_age_ms: Option<u64>,
}

/// Why a `query` operation could not produce answers.
#[derive(Clone, Debug)]
pub enum QueryError {
    /// Shed by admission control (draining, or queue at capacity — the
    /// service protects the chase writers before serving more reads).
    Rejected(Rejection),
    /// The referenced job does not exist.
    UnknownJob(JobId),
    /// The job exists but has not published a snapshot yet (still
    /// queued).
    NoSnapshot(JobId),
    /// The query text failed to parse.
    Parse(chase_parser::ParseError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Rejected(rej) => write!(f, "query rejected: {}", rej.message),
            QueryError::UnknownJob(id) => write!(f, "no such job: {id}"),
            QueryError::NoSnapshot(id) => {
                write!(f, "job {id} has not published a snapshot yet")
            }
            QueryError::Parse(e) => write!(f, "query parse error: {e}"),
        }
    }
}

/// A successful `query` reply: the answers plus the snapshot metadata
/// and cache counters that let a client reason about staleness.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// Answers, variable names and the completeness tag.
    pub outcome: QueryOutcome,
    /// The job answered from (`None` for ad-hoc KB queries).
    pub job: Option<JobId>,
    /// Monotone snapshot publication counter (job path only).
    pub sequence: Option<u64>,
    /// Rule applications at the snapshot horizon (job path only).
    pub applications: Option<u64>,
    /// Age of the snapshot answered from, in milliseconds (job path
    /// only).
    pub snapshot_age_ms: Option<u64>,
    /// Service-wide cache counters as of this reply.
    pub cache: CacheStats,
}

impl Service {
    /// Starts a pool with `workers` threads (clamped to at least 1) and
    /// default configuration (no persistence).
    pub fn start(workers: usize) -> Service {
        Service::with_config(workers, ServiceConfig::default())
            .expect("a service without a state dir cannot fail to start")
    }

    /// Starts a pool with explicit configuration. With a state dir, any
    /// checkpoint persisted by a previous (possibly killed) process is
    /// recovered into a fresh queued job before the workers start; see
    /// [`Service::recovered_jobs`] / [`Service::recovery_errors`].
    pub fn with_config(workers: usize, cfg: ServiceConfig) -> Result<Service, String> {
        let store = match &cfg.state_dir {
            Some(dir) => Some(CheckpointStore::open(dir.clone())?),
            None => None,
        };
        let event_capacity = cfg.event_capacity;
        let snapshot_ring = cfg.snapshot_ring.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                next_id: 1,
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            hub: EventHub::new(event_capacity),
            cfg,
            store,
            shutdown: AtomicBool::new(false),
            snapshots: SnapshotCache::new(snapshot_ring),
        });

        let mut recovered = Vec::new();
        let mut recovery_errors = Vec::new();
        if let Some(store) = inner.store.as_ref() {
            let (good, bad) = store.load_all()?;
            recovery_errors.extend(bad);
            for (old_id, ck) in good {
                let spec = match ck.into_spec() {
                    Ok(spec) => spec,
                    Err(error) => {
                        recovery_errors.push(CorruptEntry {
                            path: store.dir().join(format!("job-{old_id}.ckpt.json")),
                            error,
                        });
                        continue;
                    }
                };
                let new_id = {
                    let mut st = inner.state.lock().expect("state lock poisoned");
                    let id = st.next_id;
                    st.next_id += 1;
                    let priority = spec.priority;
                    let submitter = spec.submitter.clone();
                    st.jobs.insert(
                        id,
                        JobEntry {
                            name: spec.name.clone(),
                            status: JobStatus::Queued,
                            cancel: CancelToken::new(),
                            spec: Some(spec),
                            result: None,
                            last_checkpoint: Some(ck.clone()),
                            priority,
                            submitter,
                            queries_served: 0,
                        },
                    );
                    st.queue.push_back(id);
                    id
                };
                // Re-home the durable file under the new id, so a second
                // crash before the next periodic checkpoint still
                // recovers (and the old file does not resurrect twice).
                if new_id != old_id && store.save(new_id, &ck, None).is_ok() {
                    let _ = store.remove(old_id);
                }
                recovered.push(new_id);
            }
        }

        let workers = (0..workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(Service {
            inner,
            workers: Mutex::new(workers),
            recovered,
            recovery_errors,
        })
    }

    /// Ids of the jobs re-queued from persisted checkpoints at startup.
    pub fn recovered_jobs(&self) -> &[JobId] {
        &self.recovered
    }

    /// Store files that could not be recovered at startup (corrupt JSON,
    /// version mismatch): reported, not fatal.
    pub fn recovery_errors(&self) -> &[CorruptEntry] {
        &self.recovery_errors
    }

    /// Subscribes to the event stream, superseding any earlier
    /// subscriber and discarding already-buffered events.
    pub fn events(&self) -> EventReceiver {
        let mut st = self.inner.hub.state.lock().expect("event hub poisoned");
        st.generation += 1;
        st.buf.clear();
        EventReceiver {
            inner: Arc::clone(&self.inner),
            generation: st.generation,
        }
    }

    /// Inserts the job into the table and queue. Caller holds the lock;
    /// the `Queued` event is the caller's to emit after releasing it.
    fn enqueue_locked(&self, st: &mut State, mut spec: JobSpec) -> (JobId, String) {
        // No admitted job runs forever: jobs without their own wall
        // budget inherit the service-level deadline.
        if spec.config.max_wall.is_none() {
            spec.config.max_wall = self.inner.cfg.job_deadline;
        }
        let id = st.next_id;
        st.next_id += 1;
        let name = spec.name.clone();
        let priority = spec.priority;
        let submitter = spec.submitter.clone();
        st.jobs.insert(
            id,
            JobEntry {
                name: name.clone(),
                status: JobStatus::Queued,
                cancel: CancelToken::new(),
                spec: Some(spec),
                result: None,
                last_checkpoint: None,
                priority,
                submitter,
                queries_served: 0,
            },
        );
        st.queue.push_back(id);
        (id, name)
    }

    /// Enqueues a job unconditionally (the trusted in-process path used
    /// by tests and the bench drivers — admission control applies to
    /// [`Service::try_submit`], the wire path).
    pub fn submit(&self, spec: JobSpec) -> JobId {
        let mut st = self.inner.state.lock().expect("state lock poisoned");
        let (id, name) = self.enqueue_locked(&mut st, spec);
        drop(st);
        self.inner.cv.notify_all();
        self.inner.hub.emit(JobEvent {
            job: id,
            name,
            kind: JobEventKind::Queued,
        });
        id
    }

    /// Enqueues a job subject to admission control: a full queue, an
    /// exhausted submitter quota or a draining service sheds the
    /// submission with a structured [`Rejection`] instead of accepting
    /// unbounded work.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobId, Rejection> {
        let mut st = self.inner.state.lock().expect("state lock poisoned");
        if st.draining || self.inner.shutdown.load(Ordering::Acquire) {
            return Err(Rejection {
                reason: RejectReason::Draining,
                message: "service is draining; not admitting new jobs".to_string(),
                retry_after: None,
            });
        }
        let queued = st
            .jobs
            .values()
            .filter(|e| e.status == JobStatus::Queued)
            .count();
        if let Some(cap) = self.inner.cfg.max_queue {
            if queued >= cap {
                // Backoff scales with the backlog so a retry storm
                // spreads out instead of hammering a full queue.
                let backoff = (100 * queued as u64).clamp(100, 5_000);
                return Err(Rejection {
                    reason: RejectReason::QueueFull,
                    message: format!("queue is full ({queued}/{cap} jobs queued)"),
                    retry_after: Some(Duration::from_millis(backoff)),
                });
            }
        }
        if let (Some(quota), Some(sub)) =
            (self.inner.cfg.submitter_quota, spec.submitter.as_deref())
        {
            let live = st
                .jobs
                .values()
                .filter(|e| !e.status.is_terminal() && e.submitter.as_deref() == Some(sub))
                .count();
            if live >= quota {
                return Err(Rejection {
                    reason: RejectReason::QuotaExceeded,
                    message: format!("submitter `{sub}` has {live}/{quota} live jobs"),
                    retry_after: Some(Duration::from_millis(1_000)),
                });
            }
        }
        let (id, name) = self.enqueue_locked(&mut st, spec);
        drop(st);
        self.inner.cv.notify_all();
        self.inner.hub.emit(JobEvent {
            job: id,
            name,
            kind: JobEventKind::Queued,
        });
        Ok(id)
    }

    /// Runs the admission-time analyzer over the spec's KB, then
    /// enqueues through [`Service::try_submit`]. This is the wire path
    /// for `submit` requests:
    ///
    /// * under [`ServiceConfig::strict_admission`], a ruleset whose
    ///   analysis refutes every decidability route is shed with
    ///   [`RejectReason::AnalysisRefuted`] — the job could only burn
    ///   its budget;
    /// * with [`JobSpec::auto_strategy`], the derived [`ChasePlan`]
    ///   picks the chase variant and stratified rule schedule;
    /// * with [`JobSpec::auto_budgets`], a ruleset whose termination is
    ///   refuted **or likely refuted** (an MFA cyclic-term witness —
    ///   strong divergence evidence, though not a proof) gets tighter
    ///   default budgets — divergence is expected, so fail fast and
    ///   leave a resumable checkpoint.
    ///
    /// A submit that pinned both its variant and a budget (neither
    /// `auto_strategy` nor `auto_budgets`) gives the analyzer nothing
    /// to decide; unless strict admission needs a verdict, such a spec
    /// skips the gate entirely — admission latency stays flat under a
    /// burst of pinned submissions, which the overload ladder (shed on
    /// `queue-full`) depends on.
    ///
    /// [`ChasePlan`]: chase_analysis::ChasePlan
    pub fn submit_analyzed(&self, mut spec: JobSpec) -> Result<(JobId, Admission), Rejection> {
        let admission = apply_admission_gate(&mut spec, &self.inner.cfg)?;
        let id = self.try_submit(spec)?;
        Ok((id, admission))
    }

    /// Requests cancellation. Queued jobs die immediately; running jobs
    /// stop at the next trigger boundary. Returns false for unknown or
    /// already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().expect("state lock poisoned");
        let Some(entry) = st.jobs.get_mut(&id) else {
            return false;
        };
        match entry.status {
            JobStatus::Queued => {
                entry.status = JobStatus::Cancelled;
                entry.cancel.cancel();
                let spec = entry.spec.take();
                let name = entry.name.clone();
                drop(st);
                drop(spec);
                self.inner.cv.notify_all();
                self.inner.hub.emit(JobEvent {
                    job: id,
                    name,
                    kind: JobEventKind::Finished {
                        status: JobStatus::Cancelled,
                        outcome: ChaseOutcome::Cancelled,
                        applications: 0,
                        atoms: 0,
                        resumable: false,
                        wall_ms: 0,
                    },
                });
                true
            }
            JobStatus::Running => {
                entry.cancel.cancel();
                true
            }
            _ => false,
        }
    }

    /// Returns the status of a job, if known.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.state.lock().expect("state lock poisoned");
        st.jobs.get(&id).map(|e| e.status.clone())
    }

    /// Blocks until the job reaches a terminal state and returns it.
    /// Returns `None` for unknown job ids.
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        match self.wait_timeout(id, None) {
            WaitResult::Terminal(s) => Some(s),
            WaitResult::TimedOut(_) => unreachable!("no deadline given"),
            WaitResult::Unknown => None,
        }
    }

    /// Blocks until the job is terminal or the timeout expires,
    /// whichever comes first. `timeout: None` falls back to the
    /// service-level [`ServiceConfig::op_deadline`]; if that is also
    /// `None`, blocks indefinitely. A timed-out wait is not an error:
    /// the caller gets the current status and may wait again.
    pub fn wait_timeout(&self, id: JobId, timeout: Option<Duration>) -> WaitResult {
        let timeout = timeout.or(self.inner.cfg.op_deadline);
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.inner.state.lock().expect("state lock poisoned");
        loop {
            let status = match st.jobs.get(&id) {
                None => return WaitResult::Unknown,
                Some(e) if e.status.is_terminal() => return WaitResult::Terminal(e.status.clone()),
                Some(e) => e.status.clone(),
            };
            match deadline {
                None => {
                    st = self.inner.cv.wait(st).expect("state lock poisoned");
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return WaitResult::TimedOut(status);
                    }
                    let (guard, _) = self
                        .inner
                        .cv
                        .wait_timeout(st, d - now)
                        .expect("state lock poisoned");
                    st = guard;
                }
            }
        }
    }

    /// Borrow-free peek at a terminal job's result via a closure (the
    /// result stays in the table so `checkpoint` requests keep working).
    pub fn with_result<T>(&self, id: JobId, f: impl FnOnce(&JobResult) -> T) -> Option<T> {
        let st = self.inner.state.lock().expect("state lock poisoned");
        st.jobs.get(&id).and_then(|e| e.result.as_ref()).map(f)
    }

    /// Waits for the job and moves its full result out of the table
    /// (used by the bench drivers, which need the owned derivation).
    pub fn take_result(&self, id: JobId) -> Option<JobResult> {
        self.wait(id)?;
        let mut st = self.inner.state.lock().expect("state lock poisoned");
        st.jobs.get_mut(&id).and_then(|e| e.result.take())
    }

    /// The job's most recent checkpoint: the final one for completed
    /// jobs, otherwise the last periodic capture — in particular, still
    /// available after a crash degraded the job to `Failed`.
    pub fn checkpoint_of(&self, id: JobId) -> Option<Checkpoint> {
        let st = self.inner.state.lock().expect("state lock poisoned");
        let entry = st.jobs.get(&id)?;
        entry
            .result
            .as_ref()
            .and_then(|r| r.checkpoint.clone())
            .or_else(|| entry.last_checkpoint.clone())
    }

    /// Summarizes every known job, in id order.
    pub fn list(&self) -> Vec<JobSummary> {
        let mut rows: Vec<JobSummary> = {
            let st = self.inner.state.lock().expect("state lock poisoned");
            st.jobs
                .iter()
                .map(|(id, e)| JobSummary {
                    id: *id,
                    name: e.name.clone(),
                    status: e.status.clone(),
                    events_dropped: 0,
                    queries_served: e.queries_served,
                    snapshot_age_ms: None,
                })
                .collect()
        };
        for row in &mut rows {
            row.events_dropped = self.inner.hub.dropped_for(row.id);
            row.snapshot_age_ms = self
                .inner
                .snapshots
                .latest_captured(row.id)
                .map(|t| t.elapsed().as_millis() as u64);
        }
        rows.sort_by_key(|r| r.id);
        rows
    }

    /// Admission gate for the read path: queries are shed while the
    /// service drains, and — with `--max-queue` set — while the write
    /// queue is at capacity, so an overloaded service protects its
    /// chase workers before taking on more reads.
    fn admit_query(&self) -> Result<(), Rejection> {
        let st = self.inner.state.lock().expect("state lock poisoned");
        if st.draining || self.inner.shutdown.load(Ordering::Acquire) {
            return Err(Rejection {
                reason: RejectReason::Draining,
                message: "service is draining; not serving queries".to_string(),
                retry_after: None,
            });
        }
        if let Some(cap) = self.inner.cfg.max_queue {
            let queued = st
                .jobs
                .values()
                .filter(|e| e.status == JobStatus::Queued)
                .count();
            if queued >= cap {
                let backoff = (100 * queued as u64).clamp(100, 5_000);
                return Err(Rejection {
                    reason: RejectReason::QueueFull,
                    message: format!(
                        "service overloaded ({queued}/{cap} jobs queued); queries shed"
                    ),
                    retry_after: Some(Duration::from_millis(backoff)),
                });
            }
        }
        Ok(())
    }

    /// The budget every query runs under: the caller's node limit plus a
    /// deadline from the explicit timeout or the service's
    /// `--op-deadline`, so a query can never outlive its operation
    /// deadline.
    fn query_search_budget(
        &self,
        node_limit: Option<usize>,
        timeout: Option<Duration>,
    ) -> SearchBudget {
        let mut budget = SearchBudget::unlimited();
        if let Some(n) = node_limit {
            budget = budget.with_node_limit(n);
        }
        if let Some(d) = timeout.or(self.inner.cfg.op_deadline) {
            budget = budget.with_deadline(Instant::now() + d);
        }
        budget
    }

    /// Answers a CQ/UCQ against a job's newest materialization snapshot
    /// (the robust D^⊛ prefix while the chase is live, the final
    /// universal model once it terminated).
    ///
    /// Runs synchronously on the caller's thread — queries never queue
    /// behind chase jobs, which is what lets millions of cheap reads
    /// overtake a few expensive writes. The snapshot is shared by `Arc`,
    /// so concurrent queries never block the chase writer.
    pub fn query_job(
        &self,
        id: JobId,
        query: &str,
        node_limit: Option<usize>,
        timeout: Option<Duration>,
    ) -> Result<QueryReply, QueryError> {
        self.admit_query().map_err(QueryError::Rejected)?;
        {
            let st = self.inner.state.lock().expect("state lock poisoned");
            if !st.jobs.contains_key(&id) {
                return Err(QueryError::UnknownJob(id));
            }
        }
        let view = self
            .inner
            .snapshots
            .view(id)
            .ok_or(QueryError::NoSnapshot(id))?;
        let budget = self.query_search_budget(node_limit, timeout);
        let outcome = answer_view(&view, query, &budget).map_err(QueryError::Parse)?;
        self.inner
            .snapshots
            .add_answers_served(outcome.answers.len() as u64);
        {
            let mut st = self.inner.state.lock().expect("state lock poisoned");
            if let Some(entry) = st.jobs.get_mut(&id) {
                entry.queries_served += 1;
            }
        }
        Ok(QueryReply {
            outcome,
            job: Some(id),
            sequence: Some(view.sequence),
            applications: Some(view.applications),
            snapshot_age_ms: Some(view.captured.elapsed().as_millis() as u64),
            cache: self.inner.snapshots.stats(),
        })
    }

    /// Answers a CQ/UCQ against an ad-hoc knowledge base by running a
    /// budgeted chase to (attempted) completion on the caller's thread —
    /// the `kb`/`source` form of the `query` wire op.
    pub fn query_kb(
        &self,
        kb: &KnowledgeBase,
        cfg: &ChaseConfig,
        query: &str,
        node_limit: Option<usize>,
        timeout: Option<Duration>,
    ) -> Result<QueryReply, QueryError> {
        self.admit_query().map_err(QueryError::Rejected)?;
        let budget = self.query_search_budget(node_limit, timeout);
        let outcome = answer_kb(kb, query, cfg, &budget).map_err(QueryError::Parse)?;
        self.inner
            .snapshots
            .add_answers_served(outcome.answers.len() as u64);
        Ok(QueryReply {
            outcome,
            job: None,
            sequence: None,
            applications: None,
            snapshot_age_ms: None,
            cache: self.inner.snapshots.stats(),
        })
    }

    /// Service-wide query-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.snapshots.stats()
    }

    /// Graceful drain: stop admitting and picking, cancel queued jobs,
    /// ask running slices to stop at their next trigger boundary, and
    /// wait up to `grace` (`None` = the configured
    /// [`ServiceConfig::drain_grace`]) for them to land their resume
    /// checkpoints. Does *not* join the workers or close the event
    /// stream — a drained service still answers status/checkpoint
    /// requests; call [`Service::shutdown`] to finish.
    pub fn drain(&self, grace: Option<Duration>) -> DrainReport {
        let grace = grace.unwrap_or(self.inner.cfg.drain_grace);
        let (cancelled, running) = {
            let mut st = self.inner.state.lock().expect("state lock poisoned");
            st.draining = true;
            st.queue.clear();
            let mut cancelled = Vec::new();
            let mut running = Vec::new();
            for (&id, e) in st.jobs.iter_mut() {
                match e.status {
                    JobStatus::Queued => {
                        e.status = JobStatus::Cancelled;
                        e.cancel.cancel();
                        e.spec = None;
                        cancelled.push((id, e.name.clone()));
                    }
                    JobStatus::Running => {
                        e.cancel.cancel();
                        running.push(id);
                    }
                    _ => {}
                }
            }
            (cancelled, running)
        };
        self.inner.cv.notify_all();
        for (id, name) in &cancelled {
            self.inner.hub.emit(JobEvent {
                job: *id,
                name: name.clone(),
                kind: JobEventKind::Finished {
                    status: JobStatus::Cancelled,
                    outcome: ChaseOutcome::Cancelled,
                    applications: 0,
                    atoms: 0,
                    resumable: false,
                    wall_ms: 0,
                },
            });
        }

        let deadline = Instant::now() + grace;
        let mut st = self.inner.state.lock().expect("state lock poisoned");
        loop {
            let live = running
                .iter()
                .filter(|id| st.jobs.get(id).is_some_and(|e| !e.status.is_terminal()))
                .count();
            if live == 0 {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(st, deadline - now)
                .expect("state lock poisoned");
            st = guard;
        }
        let mut report = DrainReport {
            cancelled_queued: cancelled.len(),
            ..DrainReport::default()
        };
        for id in &running {
            let Some(e) = st.jobs.get(id) else { continue };
            if !e.status.is_terminal() {
                report.timed_out += 1;
                continue;
            }
            let ck = e
                .result
                .as_ref()
                .and_then(|r| r.checkpoint.clone())
                .or_else(|| e.last_checkpoint.clone());
            if let Some(ck) = ck {
                report.checkpointed += 1;
                // The worker persists after publishing; re-persisting
                // here closes the window where an exit right after
                // drain() races the worker's own durable write.
                if let Some(store) = self.inner.store.as_ref() {
                    let _ = store.save(*id, &ck, None);
                }
            }
        }
        report
    }

    /// Closes the event stream: subscribers drain what is buffered and
    /// then see the end. Part of the serve loop's exit sequence (after
    /// [`Service::drain`], before joining the output forwarder).
    pub fn close_events(&self) {
        self.inner.hub.close();
    }

    /// Stops accepting work, cancels everything live and joins the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let mut st = self.inner.state.lock().expect("state lock poisoned");
            st.queue.clear();
            for e in st.jobs.values_mut() {
                if e.status == JobStatus::Queued {
                    e.status = JobStatus::Cancelled;
                    e.spec = None;
                }
                e.cancel.cancel();
            }
        }
        self.inner.cv.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut ws = self.workers.lock().expect("worker list poisoned");
            ws.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        self.inner.hub.close();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Blocks until a queued job is available (returns `None` on shutdown)
/// and marks it running. Picks the best-priority job, FIFO within a
/// priority class — so a small high-priority probe overtakes a backlog
/// of heavyweights. A draining service picks nothing: workers idle
/// until shutdown.
fn pick_job(inner: &Inner) -> Option<(JobId, JobSpec, CancelToken, String)> {
    let mut st = inner.state.lock().expect("state lock poisoned");
    let picked = loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return None;
        }
        let found = if st.draining {
            None
        } else {
            // Lazily drop queue entries whose job was cancelled while
            // still queued (their spec is gone), then pick the earliest
            // entry of the best priority class.
            let State { queue, jobs, .. } = &mut *st;
            queue.retain(|id| jobs.get(id).is_some_and(|e| e.status == JobStatus::Queued));
            queue
                .iter()
                .enumerate()
                .min_by_key(|(i, id)| {
                    let prio = jobs.get(*id).map_or(Priority::Low, |e| e.priority);
                    (prio, *i)
                })
                .map(|(i, _)| i)
                .and_then(|i| queue.remove(i))
        };
        match found {
            Some(id) => break id,
            None => {
                st = inner.cv.wait(st).expect("state lock poisoned");
            }
        }
    };
    let entry = st.jobs.get_mut(&picked).expect("queued job vanished");
    entry.status = JobStatus::Running;
    let spec = entry.spec.take().expect("queued job without a spec");
    Some((picked, spec, entry.cancel.clone(), entry.name.clone()))
}

/// Renders a panic payload for the `Crashed` event.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

/// Builds the spec for a crash retry: resume the derivation from the
/// checkpoint, carrying over the original job's process-local knobs
/// (the budget split is re-derived by [`Checkpoint::into_spec`], which
/// works in derivation totals — no budget resets, no double counting).
fn respawn_spec(original: &JobSpec, ck: &Checkpoint) -> Result<JobSpec, String> {
    let mut spec = ck.into_spec()?;
    // The fault plan's fire-once counters are shared through the clone,
    // so an already-injected crash does not re-fire on the retry.
    spec.config.fault = original.config.fault.clone();
    spec.tw_sample_interval = original.tw_sample_interval;
    spec.progress_every = original.progress_every;
    spec.checkpoint_every = original.checkpoint_every;
    Ok(spec)
}

fn worker_loop(inner: &Inner) {
    loop {
        let Some((id, original, cancel, name)) = pick_job(inner) else {
            return;
        };
        inner.cv.notify_all();
        inner.hub.emit(JobEvent {
            job: id,
            name: name.clone(),
            kind: JobEventKind::Started,
        });

        // Supervision loop: a panicking slice is retried from the last
        // checkpoint until the retry budget runs out.
        let mut attempt = 0usize;
        let mut spec = original.clone();
        let result = loop {
            let started = Instant::now();
            let run = catch_unwind(AssertUnwindSafe(|| {
                execute(inner, id, &name, &spec, &cancel, started)
            }));
            match run {
                Ok(result) => break result,
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    attempt += 1;
                    let retrying = attempt <= inner.cfg.max_retries;
                    inner.hub.emit(JobEvent {
                        job: id,
                        name: name.clone(),
                        kind: JobEventKind::Crashed {
                            message: message.clone(),
                            attempt,
                            retrying,
                        },
                    });
                    if !retrying {
                        break Err(format!(
                            "crashed {attempt} time(s), retries exhausted: {message}"
                        ));
                    }
                    let backoff = inner
                        .cfg
                        .retry_backoff
                        .saturating_mul(1u32 << (attempt - 1).min(16));
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    let last = {
                        let st = inner.state.lock().expect("state lock poisoned");
                        st.jobs.get(&id).and_then(|e| e.last_checkpoint.clone())
                    };
                    spec = match last {
                        Some(ck) => match respawn_spec(&original, &ck) {
                            Ok(spec) => spec,
                            Err(e) => {
                                break Err(format!("cannot rebuild job from its checkpoint: {e}"))
                            }
                        },
                        // Crashed before any checkpoint: retry the whole
                        // slice from scratch.
                        None => original.clone(),
                    };
                }
            }
        };

        let store_op = {
            let mut st = inner.state.lock().expect("state lock poisoned");
            let entry = st.jobs.get_mut(&id).expect("running job vanished");
            let (kind, store_op) = match result {
                Ok(res) => {
                    entry.status = if res.outcome == ChaseOutcome::Cancelled {
                        JobStatus::Cancelled
                    } else {
                        JobStatus::Finished
                    };
                    let kind = JobEventKind::Finished {
                        status: entry.status.clone(),
                        outcome: res.outcome,
                        applications: res.stats.applications,
                        atoms: res.final_instance.len(),
                        resumable: res.checkpoint.is_some(),
                        wall_ms: res.wall_ms,
                    };
                    let store_op = match res.checkpoint.clone() {
                        Some(ck) => {
                            entry.last_checkpoint = Some(ck.clone());
                            StoreOp::Save(Box::new(ck))
                        }
                        // A terminated job needs no recovery on restart.
                        None => StoreOp::Remove,
                    };
                    entry.result = Some(res);
                    (kind, store_op)
                }
                Err(message) => {
                    entry.status = JobStatus::Failed;
                    // Keep the durable file: the last checkpoint of a
                    // crashed-out job is exactly what a restart needs.
                    (JobEventKind::Failed { message }, StoreOp::Keep)
                }
            };
            // Emitted before the status flip is observable through
            // `wait` (lock order state → hub, same as `list`): a waiter
            // that saw the terminal status must find the terminal event
            // already in the buffer when it drains.
            inner.hub.emit(JobEvent {
                job: id,
                name: name.clone(),
                kind,
            });
            store_op
        };
        inner.cv.notify_all();
        match store_op {
            StoreOp::Save(ck) => inner.persist_checkpoint(id, &name, &spec, &ck),
            StoreOp::Remove => {
                if let Some(store) = inner.store.as_ref() {
                    let _ = store.remove(id);
                }
            }
            StoreOp::Keep => {}
        }
    }
}

/// What the worker does to the durable store after publishing a result.
enum StoreOp {
    Save(Box<Checkpoint>),
    Remove,
    Keep,
}

/// Runs one job slice to its outcome and assembles the result.
fn execute(
    inner: &Inner,
    id: JobId,
    name: &str,
    spec: &JobSpec,
    cancel: &CancelToken,
    started: Instant,
) -> Result<JobResult, String> {
    let mut vocab = spec.kb.vocab.clone();
    let progress_every = spec.progress_every.max(1);
    let checkpoint_every = spec.checkpoint_every.or(inner.cfg.checkpoint_every);
    let snapshot_every = inner.cfg.snapshot_every.max(1);
    let base_applications = spec.base_stats.applications as u64;
    let mut last_step_emitted = 0usize;
    let mut last_tw_sampled = 0usize;
    let mut last_checkpointed = 0usize;
    let mut last_snapshotted = 0usize;
    // Queries can be answered from the moment the slice starts: the
    // initial facts (or the resumed instance) are already a sound
    // prefix of every chase element.
    inner.snapshots.publish(
        id,
        Snapshot::live(
            spec.kb.vocab.clone(),
            spec.kb.facts.clone(),
            base_applications,
        ),
    );
    if spec.resumed_inexact {
        // The checkpoint could not carry the applied-trigger memory of
        // its oblivious/semi-oblivious prefix; the resumed slice may
        // re-apply triggers. This used to be silently dropped.
        inner.hub.emit(JobEvent {
            job: id,
            name: name.to_string(),
            kind: JobEventKind::Warning {
                message: format!(
                    "inexact resume: the {} checkpoint drops applied-trigger \
                     memory, so triggers of the prefix may fire again",
                    crate::protocol::variant_name(spec.config.variant)
                ),
            },
        });
    }
    let res = run_chase_controlled(
        &mut vocab,
        &spec.kb.facts,
        &spec.kb.rules,
        &spec.config,
        Some(cancel),
        |ev| {
            match ev {
                ChaseEvent::RoundStarted { .. } => {}
                ChaseEvent::StepApplied {
                    instance,
                    vocab,
                    stats,
                } => {
                    if stats.applications >= last_step_emitted + progress_every {
                        last_step_emitted = stats.applications;
                        inner.hub.emit(JobEvent {
                            job: id,
                            name: name.to_string(),
                            kind: JobEventKind::StepApplied {
                                applications: stats.applications,
                                atoms: instance.len(),
                                rounds: stats.rounds,
                            },
                        });
                    }
                    if let Some(every) = spec.tw_sample_interval {
                        if stats.applications >= last_tw_sampled + every {
                            last_tw_sampled = stats.applications;
                            let tw = treewidth_bounds(instance);
                            inner.hub.emit(JobEvent {
                                job: id,
                                name: name.to_string(),
                                kind: JobEventKind::TreewidthSample {
                                    applications: stats.applications,
                                    tw_upper: tw.upper,
                                    tw_lower: tw.lower,
                                },
                            });
                        }
                    }
                    if let Some(every) = checkpoint_every {
                        if stats.applications >= last_checkpointed + every {
                            last_checkpointed = stats.applications;
                            let total = add_stats(spec.base_stats, *stats);
                            let ck = Checkpoint::capture(spec, vocab, instance, total);
                            inner.set_last_checkpoint(id, ck.clone());
                            inner.persist_checkpoint(id, name, spec, &ck);
                        }
                    }
                    if stats.applications >= last_snapshotted + snapshot_every {
                        last_snapshotted = stats.applications;
                        inner.snapshots.publish(
                            id,
                            Snapshot::live(
                                vocab.clone(),
                                instance.clone(),
                                base_applications + stats.applications as u64,
                            ),
                        );
                    }
                }
                ChaseEvent::Degraded {
                    mem_units,
                    soft_limit,
                    ..
                } => {
                    inner.hub.emit(JobEvent {
                        job: id,
                        name: name.to_string(),
                        kind: JobEventKind::Degraded {
                            mem_units,
                            soft_limit,
                        },
                    });
                }
                ChaseEvent::CoreRetracted {
                    before,
                    after,
                    match_stats,
                    ..
                } => {
                    inner.hub.emit(JobEvent {
                        job: id,
                        name: name.to_string(),
                        kind: JobEventKind::CoreRetracted {
                            before,
                            after,
                            match_nodes: match_stats.nodes,
                            fold_candidates: match_stats.candidates,
                            truncated: match_stats.truncated,
                        },
                    });
                }
            }
            std::ops::ControlFlow::Continue(())
        },
    );

    let stats = add_stats(spec.base_stats, res.stats);
    // Final snapshot: a terminated run's instance is a universal model,
    // so queries over it are complete from here on.
    let final_snapshot = if res.outcome.terminated() {
        Snapshot::terminal(
            vocab.clone(),
            res.final_instance.clone(),
            stats.applications as u64,
        )
    } else {
        Snapshot::live(
            vocab.clone(),
            res.final_instance.clone(),
            stats.applications as u64,
        )
    };
    inner.snapshots.publish(id, final_snapshot);
    let queries = spec
        .queries
        .iter()
        .map(|(qname, q)| {
            let verdict = if maps_to(q, &res.final_instance) {
                QueryVerdict::EntailedCertified
            } else if res.outcome.terminated() {
                QueryVerdict::NotEntailedCertified
            } else {
                QueryVerdict::Inconclusive
            };
            (qname.clone(), verdict)
        })
        .collect();
    let checkpoint = if res.outcome.resumable() {
        Some(Checkpoint::capture(
            spec,
            &vocab,
            &res.final_instance,
            stats,
        ))
    } else {
        None
    };
    Ok(JobResult {
        outcome: res.outcome,
        stats,
        final_instance: res.final_instance,
        final_vocab: vocab,
        derivation: res.derivation,
        queries,
        checkpoint,
        wall_ms: started.elapsed().as_millis() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::{ChaseConfig, ChaseVariant, FaultPlan, FaultSite};

    fn transitive_spec(name: &str, cfg: ChaseConfig) -> JobSpec {
        JobSpec::from_text(
            name,
            "r(a, b). r(b, c). r(c, d). T: r(X, Y), r(Y, Z) -> r(X, Z). \
             Q: ?- r(a, d).",
            cfg,
        )
        .unwrap()
    }

    fn fast_retry_config() -> ServiceConfig {
        ServiceConfig {
            retry_backoff: Duration::ZERO,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn submit_wait_and_query_verdicts() {
        let svc = Service::start(2);
        let id = svc.submit(transitive_spec(
            "t",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
        let (outcome, verdicts) = svc
            .with_result(id, |r| (r.outcome, r.queries.clone()))
            .unwrap();
        assert!(outcome.terminated());
        assert_eq!(
            verdicts,
            vec![("Q".to_string(), QueryVerdict::EntailedCertified)]
        );
    }

    #[test]
    fn queued_job_can_be_cancelled_before_running() {
        // One worker, keep it busy with a long job so the second one
        // sits in the queue when we cancel it.
        let svc = Service::start(1);
        let busy = svc.submit(JobSpec::from_kb(
            "busy",
            chase_core::KnowledgeBase::staircase(),
            ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(50_000),
        ));
        let victim = svc.submit(transitive_spec(
            "victim",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        assert!(svc.cancel(victim));
        assert_eq!(svc.status(victim), Some(JobStatus::Cancelled));
        assert!(svc.cancel(busy));
        assert_eq!(svc.wait(busy), Some(JobStatus::Cancelled));
        // The pool is still healthy after the cancellations.
        let id = svc.submit(transitive_spec(
            "after",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
    }

    #[test]
    fn budget_exhaustion_yields_checkpoint_and_inconclusive_query() {
        let svc = Service::start(1);
        let id = svc.submit(transitive_spec(
            "cut",
            ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(1),
        ));
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
        let res = svc.take_result(id).unwrap();
        assert_eq!(res.outcome, ChaseOutcome::ApplicationBudgetExhausted);
        let ck = res.checkpoint.expect("budget exhaustion is resumable");
        assert!(ck.exact());
        // The lone query did not certify either way at the cut.
        assert!(
            res.queries
                .iter()
                .any(|(_, v)| *v == QueryVerdict::Inconclusive)
                || res
                    .queries
                    .iter()
                    .any(|(_, v)| *v == QueryVerdict::EntailedCertified)
        );
    }

    #[test]
    fn events_cover_the_job_lifecycle() {
        let svc = Service::start(1);
        let rx = svc.events();
        let id = svc.submit(transitive_spec(
            "ev",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        svc.wait(id);
        let mut saw_queued = false;
        let mut saw_started = false;
        let mut saw_step = false;
        let mut saw_finished = false;
        while let Some(ev) = rx.try_recv() {
            assert_eq!(ev.job, id);
            match ev.kind {
                JobEventKind::Queued => saw_queued = true,
                JobEventKind::Started => saw_started = true,
                JobEventKind::StepApplied { .. } => saw_step = true,
                JobEventKind::Finished { status, .. } => {
                    assert_eq!(status, JobStatus::Finished);
                    saw_finished = true;
                }
                _ => {}
            }
        }
        assert!(saw_queued && saw_started && saw_step && saw_finished);
    }

    #[test]
    fn failed_source_marks_job_failed_not_pool() {
        let svc = Service::start(1);
        // from_text fails eagerly, so a Failed entry can only come from
        // the worker; simulate by submitting a fine job after a burst.
        let ids: Vec<_> = (0..4)
            .map(|i| {
                svc.submit(transitive_spec(
                    &format!("j{i}"),
                    ChaseConfig::variant(ChaseVariant::Core),
                ))
            })
            .collect();
        for id in ids {
            assert_eq!(svc.wait(id), Some(JobStatus::Finished));
        }
        assert_eq!(svc.list().len(), 4);
    }

    #[test]
    fn injected_crash_is_retried_from_the_last_checkpoint() {
        let svc = Service::with_config(1, fast_retry_config()).unwrap();
        let rx = svc.events();
        let clean = transitive_spec("clean", ChaseConfig::variant(ChaseVariant::Restricted));
        let crashing = transitive_spec(
            "crashy",
            ChaseConfig::variant(ChaseVariant::Restricted)
                .with_fault(FaultPlan::new(vec![FaultSite::Application(2)])),
        )
        .with_checkpoint_every(1);
        let cid = svc.submit(clean);
        assert_eq!(svc.wait(cid), Some(JobStatus::Finished));
        let clean_res = svc.take_result(cid).unwrap();

        let id = svc.submit(crashing);
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
        let res = svc.take_result(id).unwrap();
        assert!(res.outcome.terminated());
        // The derivation converged to the same closure as the clean run,
        // and the stats stayed monotone across the crash (the retried
        // slice continued from application 1, it did not recount it).
        assert!(
            chase_homomorphism::isomorphism(&res.final_instance, &clean_res.final_instance)
                .is_some()
        );
        assert_eq!(res.stats.applications, clean_res.stats.applications);
        let crashes: Vec<(usize, bool)> = std::iter::from_fn(|| rx.try_recv())
            .filter_map(|ev| match ev.kind {
                JobEventKind::Crashed {
                    attempt, retrying, ..
                } if ev.job == id => Some((attempt, retrying)),
                _ => None,
            })
            .collect();
        assert_eq!(crashes, vec![(1, true)]);
    }

    #[test]
    fn crash_before_any_checkpoint_restarts_from_scratch() {
        let svc = Service::with_config(1, fast_retry_config()).unwrap();
        // No checkpoint interval: the crash at application #1 happens
        // before any checkpoint exists, so the retry re-runs the slice.
        let id = svc.submit(transitive_spec(
            "early",
            ChaseConfig::variant(ChaseVariant::Restricted)
                .with_fault(FaultPlan::new(vec![FaultSite::Application(1)])),
        ));
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
        let res = svc.take_result(id).unwrap();
        assert!(res.outcome.terminated());
        assert_eq!(
            res.queries,
            vec![("Q".to_string(), QueryVerdict::EntailedCertified)]
        );
    }

    #[test]
    fn retries_exhausted_degrades_to_failed_with_checkpoint() {
        let svc = Service::with_config(
            1,
            ServiceConfig {
                max_retries: 1,
                retry_backoff: Duration::ZERO,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let rx = svc.events();
        // The plan kills applications #2 and #3: the first run dies at
        // its second application, the retry (resuming after checkpoint
        // apps=1) dies at its first — which is global application #3.
        let id = svc.submit(
            transitive_spec(
                "doomed",
                ChaseConfig::variant(ChaseVariant::Restricted).with_fault(FaultPlan::new(vec![
                    FaultSite::Application(2),
                    FaultSite::Application(3),
                ])),
            )
            .with_checkpoint_every(1),
        );
        assert_eq!(svc.wait(id), Some(JobStatus::Failed));
        // The last periodic checkpoint survives the degradation.
        let ck = svc.checkpoint_of(id).expect("checkpoint retrievable");
        assert!(ck.stats.applications >= 1);
        assert!(ck.into_spec().is_ok());
        let kinds: Vec<bool> = std::iter::from_fn(|| rx.try_recv())
            .filter_map(|ev| match ev.kind {
                JobEventKind::Crashed { retrying, .. } => Some(retrying),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![true, false]);
    }

    #[test]
    fn unobserved_event_buffer_drops_oldest_and_counts() {
        let svc = Service::with_config(
            1,
            ServiceConfig {
                event_capacity: 4,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        // No subscriber: a job emitting more than 4 events must drop its
        // oldest ones instead of growing or blocking the worker.
        let id = svc.submit(transitive_spec(
            "noisy",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
        let rows = svc.list();
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].events_dropped > 0,
            "expected drops, got {}",
            rows[0].events_dropped
        );
        // A late subscriber starts clean and still sees future events.
        let rx = svc.events();
        assert!(rx.try_recv().is_none());
        let id2 = svc.submit(transitive_spec(
            "late",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        svc.wait(id2);
        assert!(rx.try_recv().is_some());
    }

    /// A job that spins long enough to still be running when the test
    /// acts on it (cancellation cuts it at a trigger boundary).
    fn heavyweight(name: &str) -> JobSpec {
        JobSpec::from_kb(
            name,
            chase_core::KnowledgeBase::staircase(),
            ChaseConfig::variant(ChaseVariant::Oblivious).with_max_applications(500_000),
        )
    }

    #[test]
    fn full_queue_sheds_with_structured_rejection() {
        let svc = Service::with_config(
            1,
            ServiceConfig {
                max_queue: Some(2),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        // Occupy the single worker so submissions pile up in the queue.
        let busy = svc.submit(heavyweight("busy"));
        while svc.status(busy) == Some(JobStatus::Queued) {
            std::thread::yield_now();
        }
        let a = svc.try_submit(transitive_spec(
            "a",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        let b = svc.try_submit(transitive_spec(
            "b",
            ChaseConfig::variant(ChaseVariant::Restricted),
        ));
        assert!(a.is_ok() && b.is_ok());
        let shed = svc
            .try_submit(transitive_spec(
                "c",
                ChaseConfig::variant(ChaseVariant::Restricted),
            ))
            .unwrap_err();
        assert_eq!(shed.reason, RejectReason::QueueFull);
        assert!(shed.retry_after.is_some());
        assert!(shed.message.contains("2/2"));
        svc.cancel(busy);
    }

    #[test]
    fn submitter_quota_limits_live_jobs_per_tag() {
        let svc = Service::with_config(
            1,
            ServiceConfig {
                submitter_quota: Some(1),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let first = svc
            .try_submit(heavyweight("first").with_submitter("alice"))
            .unwrap();
        let over = svc
            .try_submit(heavyweight("second").with_submitter("alice"))
            .unwrap_err();
        assert_eq!(over.reason, RejectReason::QuotaExceeded);
        assert!(over.message.contains("alice"));
        // A different (or absent) tag is unaffected.
        assert!(svc
            .try_submit(heavyweight("other").with_submitter("bob"))
            .is_ok());
        assert!(svc.try_submit(heavyweight("untagged")).is_ok());
        // Quota frees up once the job is terminal.
        svc.cancel(first);
        assert_eq!(svc.wait(first), Some(JobStatus::Cancelled));
        assert!(svc
            .try_submit(heavyweight("third").with_submitter("alice"))
            .is_ok());
    }

    #[test]
    fn high_priority_probe_overtakes_queued_heavyweights() {
        let svc = Service::start(1);
        let busy = svc.submit(heavyweight("busy"));
        while svc.status(busy) == Some(JobStatus::Queued) {
            std::thread::yield_now();
        }
        // Two heavyweights queued ahead of a small high-priority probe.
        let heavy1 = svc.submit(heavyweight("heavy1"));
        let heavy2 = svc.submit(heavyweight("heavy2"));
        let probe = svc.submit(
            transitive_spec("probe", ChaseConfig::variant(ChaseVariant::Restricted))
                .with_priority(Priority::High),
        );
        // Free the worker: the probe must be picked before the queued
        // heavyweights, so it finishes while they are still queued.
        svc.cancel(busy);
        assert_eq!(svc.wait(probe), Some(JobStatus::Finished));
        assert!(
            svc.status(heavy1) != Some(JobStatus::Finished)
                && svc.status(heavy2) != Some(JobStatus::Finished),
            "the probe overtook the heavyweights"
        );
        svc.cancel(heavy1);
        svc.cancel(heavy2);
    }

    #[test]
    fn wait_timeout_reports_nonterminal_status_and_recovers() {
        let svc = Service::start(1);
        let id = svc.submit(heavyweight("slowpoke"));
        match svc.wait_timeout(id, Some(Duration::from_millis(50))) {
            WaitResult::TimedOut(s) => {
                assert!(!s.is_terminal());
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
        assert_eq!(svc.wait_timeout(999, None), WaitResult::Unknown);
        svc.cancel(id);
        assert_eq!(
            svc.wait_timeout(id, Some(Duration::from_secs(30))),
            WaitResult::Terminal(JobStatus::Cancelled)
        );
    }

    #[test]
    fn drain_cancels_queued_checkpoints_running_and_stops_admitting() {
        let svc = Service::start(1);
        let running = svc.submit(heavyweight("running"));
        while svc.status(running) == Some(JobStatus::Queued) {
            std::thread::yield_now();
        }
        let queued = svc.submit(heavyweight("queued"));
        let report = svc.drain(Some(Duration::from_secs(30)));
        assert_eq!(report.cancelled_queued, 1);
        assert_eq!(report.checkpointed, 1, "the running slice checkpointed");
        assert_eq!(report.timed_out, 0);
        assert_eq!(svc.status(queued), Some(JobStatus::Cancelled));
        assert_eq!(svc.status(running), Some(JobStatus::Cancelled));
        assert!(
            svc.checkpoint_of(running).is_some(),
            "drained slice left a resume checkpoint"
        );
        // Drained means closed for business, but still answering.
        let shed = svc.try_submit(heavyweight("late")).unwrap_err();
        assert_eq!(shed.reason, RejectReason::Draining);
        assert!(shed.retry_after.is_none());
        assert_eq!(svc.list().len(), 2);
    }

    #[test]
    fn submit_analyzed_applies_strategy_and_tightens_budgets() {
        let svc = Service::with_config(
            1,
            ServiceConfig {
                analysis_probe: 80,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let mut spec = JobSpec::from_kb(
            "auto",
            chase_core::KnowledgeBase::staircase(),
            ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(50_000),
        );
        spec.auto_strategy = true;
        spec.auto_budgets = true;
        let (id, admission) = svc.submit_analyzed(spec).unwrap();
        // The staircase: termination refuted, core width plateaus — the
        // plan recommends the core variant and the cost model prices the
        // job off its core-bts certificate.
        assert!(admission.strategy_applied);
        assert!(admission.budgets_tightened);
        let gate = admission.gate.as_ref().expect("auto submits run the gate");
        assert_eq!(
            gate.plan.recommended_variant(),
            chase_engine::ChaseVariant::Core
        );
        assert!(!gate.plan.strata.is_empty());
        assert_eq!(gate.cost_class, chase_analysis::CostClass::BoundedWidth);
        assert_eq!(gate.provenance, "core-width-probe");
        assert!(
            gate.envelope.max_apps < 50_000,
            "envelope lowers the pinned ceiling"
        );
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
        let apps = svc.with_result(id, |r| r.stats.applications).unwrap();
        assert!(apps <= gate.envelope.max_apps);
    }

    #[test]
    fn strict_admission_sheds_refuted_rulesets() {
        // A probe too short for any width plateau: every decidability
        // route of the staircase ruleset stays refuted-or-unknown.
        let strict = Service::with_config(
            1,
            ServiceConfig {
                strict_admission: true,
                analysis_probe: 8,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let spec = || {
            JobSpec::from_kb(
                "refuted",
                chase_core::KnowledgeBase::staircase(),
                ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(10),
            )
        };
        let shed = strict.submit_analyzed(spec()).unwrap_err();
        assert_eq!(shed.reason, RejectReason::AnalysisRefuted);
        assert!(shed.retry_after.is_none());
        assert!(shed.message.contains("refuted"));
        // The same submission is admitted without strict admission —
        // and because it pins both variant and budget, the lax path
        // skips the probe entirely (fully-pinned admission stays flat).
        let lax = Service::with_config(
            1,
            ServiceConfig {
                analysis_probe: 8,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let (id, admission) = lax.submit_analyzed(spec()).unwrap();
        assert!(admission.gate.is_none());
        assert_eq!(lax.wait(id), Some(JobStatus::Finished));
        // … and under strict admission with the production probe, the
        // core-width plateau keeps the staircase admissible.
        let strict_long = Service::with_config(
            1,
            ServiceConfig {
                strict_admission: true,
                analysis_probe: 80,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let (id, admission) = strict_long.submit_analyzed(spec()).unwrap();
        assert!(admission
            .gate
            .expect("strict admission runs the gate")
            .admissible());
        assert_eq!(strict_long.wait(id), Some(JobStatus::Finished));
    }

    #[test]
    fn high_arity_blowup_does_not_stall_admission() {
        // The critical instance of this ruleset would hold ~9^8 (~43M)
        // atoms; the capped construction must refuse it up front so the
        // synchronous submit path stays responsive. The r-cycle keeps
        // the ruleset outside every acyclicity class, so the verdict
        // really does fall through to the capped dynamic tests.
        let svc = Service::with_config(1, ServiceConfig::default()).unwrap();
        let kb = chase_core::KnowledgeBase::from_text(
            "seed(a). R: r(X, Y), p(a, b, c, d, e, f, g, h) -> r(Y, Z).",
        )
        .unwrap();
        let mut spec = JobSpec::from_kb(
            "wide",
            kb,
            ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(10),
        );
        spec.auto_budgets = true;
        let started = Instant::now();
        let (id, admission) = svc.submit_analyzed(spec).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "admission must not materialize the critical instance"
        );
        let gate = admission.gate.expect("auto submits run the gate");
        // No certificate and no refutation — the test gave up, it did
        // not guess.
        assert!(gate.report.terminating.is_inconclusive());
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
    }

    #[test]
    fn expired_analysis_deadline_yields_no_signal_not_refutation() {
        // With the analysis deadline already spent, the probe chases are
        // cut immediately: short profiles must read as "unobserved", and
        // the gate must not fabricate a width-divergence refutation.
        let svc = Service::with_config(
            1,
            ServiceConfig {
                analysis_deadline: Some(Duration::ZERO),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let mut spec = JobSpec::from_kb(
            "rushed",
            chase_core::KnowledgeBase::staircase(),
            ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(10),
        );
        spec.auto_strategy = true;
        let (id, admission) = svc.submit_analyzed(spec).unwrap();
        let gate = admission.gate.expect("auto submits run the gate");
        assert!(gate.evidence.restricted_width.plateau().is_none());
        assert!(!gate.evidence.restricted_width.is_climbing());
        assert!(!gate.evidence.core_width.is_climbing());
        assert!(
            !gate.report.bts.is_refuted() && !gate.report.core_bts.is_refuted(),
            "an interrupted probe is no evidence of divergence"
        );
        assert_eq!(svc.wait(id), Some(JobStatus::Finished));
    }

    #[test]
    fn state_dir_persists_and_recovers_interrupted_jobs() {
        let dir = std::env::temp_dir().join(format!("treechase-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || ServiceConfig {
            state_dir: Some(dir.clone()),
            retry_backoff: Duration::ZERO,
            checkpoint_every: Some(1),
            ..ServiceConfig::default()
        };
        // First service: the job exhausts its 1-application budget
        // mid-derivation, so its final checkpoint stays on disk.
        {
            let svc = Service::with_config(1, cfg()).unwrap();
            let id = svc.submit(transitive_spec(
                "durable",
                ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(1),
            ));
            assert_eq!(svc.wait(id), Some(JobStatus::Finished));
            let apps = svc.with_result(id, |r| r.stats.applications).unwrap();
            assert_eq!(apps, 1);
            svc.shutdown();
        }
        // Second service on the same dir: the checkpoint comes back as a
        // queued job continuing the same derivation.
        {
            let svc = Service::with_config(1, cfg()).unwrap();
            assert!(svc.recovery_errors().is_empty());
            let recovered = svc.recovered_jobs().to_vec();
            assert_eq!(recovered.len(), 1);
            let id = recovered[0];
            assert_eq!(svc.wait(id), Some(JobStatus::Finished));
            // The recovered slice had 0 of its 1-application target left
            // (budget totals persist), so it stopped immediately but
            // stayed resumable — no fresh budget out of thin air.
            let (outcome, apps) = svc
                .with_result(id, |r| (r.outcome, r.stats.applications))
                .unwrap();
            assert_eq!(outcome, ChaseOutcome::ApplicationBudgetExhausted);
            assert_eq!(apps, 1, "monotone: prefix counted once, no rerun");
            svc.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
