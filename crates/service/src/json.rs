//! A minimal JSON value type with a recursive-descent parser and a
//! compact writer — the wire format of the JSONL job protocol.
//!
//! The workspace builds with no registry access, so this replaces
//! `serde_json` for the small, flat documents the protocol exchanges.
//! Object key order is preserved (insertion order), which keeps emitted
//! lines stable and diffable.

use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (the protocol never needs non-integral numbers, but
    /// they still parse — see [`Json::Float`]).
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required-field lookup with a protocol-grade error message.
    pub fn require(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// Required string field.
    pub fn require_str(&self, key: &str) -> Result<&str, String> {
        self.require(key)?
            .as_str()
            .ok_or_else(|| format!("field `{key}` must be a string"))
    }

    /// Required unsigned-integer field.
    pub fn require_u64(&self, key: &str) -> Result<u64, String> {
        self.require(key)?
            .as_u64()
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
    }

    /// Optional unsigned-integer field.
    pub fn opt_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
        }
    }

    /// Optional string field.
    pub fn opt_str(&self, key: &str) -> Result<Option<&str>, String> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("field `{key}` must be a string")),
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                write!(f, "\"{buf}\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len());
                    escape_into(&mut key, k);
                    write!(f, "\"{key}\":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // protocol; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let src = r#"{"op":"submit","name":"k1","max_apps":100,"nested":{"a":[1,2,true,null]},"msg":"line\nbreak \"q\""}"#;
        let v = parse_json(src).unwrap();
        assert_eq!(v.require_str("op").unwrap(), "submit");
        assert_eq!(v.require_u64("max_apps").unwrap(), 100);
        assert_eq!(
            v.get("nested").unwrap().get("a").unwrap().as_arr().unwrap()[2],
            Json::Bool(true)
        );
        // print → parse is the identity on the value.
        let printed = v.to_string();
        assert_eq!(parse_json(&printed).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "{}x", "\"\\q\""] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn numbers_and_negatives() {
        assert_eq!(parse_json("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse_json("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::Int(-42).to_string(), "-42");
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::str("a\u{1}b");
        assert_eq!(v.to_string(), "\"a\\u0001b\"");
        assert_eq!(parse_json(&v.to_string()).unwrap(), v);
    }
}
