//! Disk-backed checkpoint persistence: one JSON file per job under a
//! state directory, written atomically (temp file + fsync + rename +
//! directory fsync) so a crash mid-write never corrupts the previous
//! durable checkpoint.
//!
//! File layout: `<dir>/job-<id>.ckpt.json` containing a versioned header
//! `{"format": "treechase-checkpoint", "version": 1, "job": <id>,
//! "checkpoint": {...}}`. Unreadable or version-mismatched files are
//! reported (not silently dropped, not fatal) so a service restart can
//! degrade gracefully.

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use chase_engine::FaultPlan;

use crate::checkpoint::Checkpoint;
use crate::job::JobId;
use crate::json::{parse_json, Json};

/// The `format` header value every store file carries.
const FORMAT: &str = "treechase-checkpoint";
/// The current store file version.
const VERSION: u64 = 1;

/// A directory of durable per-job checkpoints.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

/// What [`CheckpointStore::load_all`] returns: the recovered
/// `(job, checkpoint)` pairs in id order, plus the files it rejected.
pub type LoadedCheckpoints = (Vec<(JobId, Checkpoint)>, Vec<CorruptEntry>);

/// One file the store could not recover on [`CheckpointStore::load_all`].
#[derive(Clone, Debug)]
pub struct CorruptEntry {
    /// The offending file.
    pub path: PathBuf,
    /// Why it was rejected.
    pub error: String,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointStore, String> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| format!("state dir {}: {e}", dir.display()))?;
        Ok(CheckpointStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_path(&self, job: JobId) -> PathBuf {
        self.dir.join(format!("job-{job}.ckpt.json"))
    }

    /// Durably writes `ck` as job `job`'s checkpoint, replacing any
    /// previous one only after the new file is fully on disk. A fault
    /// plan with a pending `ckpt:` site makes the write fail before
    /// touching the old file (crash-injection for the supervision
    /// tests).
    pub fn save(
        &self,
        job: JobId,
        ck: &Checkpoint,
        fault: Option<&FaultPlan>,
    ) -> Result<(), String> {
        if let Some(n) = fault.and_then(FaultPlan::on_checkpoint_write) {
            return Err(format!("injected fault: checkpoint write #{n}"));
        }
        let body = Json::obj([
            ("format", Json::str(FORMAT)),
            ("version", Json::Int(VERSION as i64)),
            ("job", Json::Int(job as i64)),
            ("checkpoint", ck.to_json()),
        ])
        .to_string();
        let final_path = self.file_path(job);
        let tmp_path = self.dir.join(format!("job-{job}.ckpt.json.tmp"));
        let write = |p: &Path| -> std::io::Result<()> {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(p)?;
            f.write_all(body.as_bytes())?;
            // The rename below must only become durable after the data:
            // fsync the temp file first, then the directory entry.
            f.sync_all()
        };
        write(&tmp_path).map_err(|e| format!("write {}: {e}", tmp_path.display()))?;
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| format!("rename {}: {e}", final_path.display()))?;
        if let Ok(d) = File::open(&self.dir) {
            // Directory fsync is advisory on some platforms; a failure
            // here weakens durability but does not corrupt state.
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Removes job `job`'s checkpoint file (a job that terminated needs
    /// no recovery). Missing files are fine.
    pub fn remove(&self, job: JobId) -> Result<(), String> {
        match fs::remove_file(self.file_path(job)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(format!("remove job {job}: {e}")),
        }
    }

    /// Loads every recoverable checkpoint in the store, plus the list of
    /// files that failed to load (corrupt JSON, wrong version, torn
    /// non-atomic writes from other tools). Leftover `.tmp` files are
    /// ignored: by construction they were never the durable copy.
    pub fn load_all(&self) -> Result<LoadedCheckpoints, String> {
        let mut good = Vec::new();
        let mut bad = Vec::new();
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| format!("read state dir {}: {e}", self.dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read state dir: {e}"))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("job-") || !name.ends_with(".ckpt.json") {
                continue;
            }
            match Self::load_file(&path) {
                Ok(pair) => good.push(pair),
                Err(error) => bad.push(CorruptEntry { path, error }),
            }
        }
        // Recover in original submission order.
        good.sort_by_key(|(id, _)| *id);
        Ok((good, bad))
    }

    fn load_file(path: &Path) -> Result<(JobId, Checkpoint), String> {
        let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
        let v = parse_json(&text)?;
        let format = v.require_str("format")?;
        if format != FORMAT {
            return Err(format!("unexpected format `{format}`"));
        }
        let version = v.require_u64("version")?;
        if version != VERSION {
            return Err(format!(
                "unsupported version {version} (expected {VERSION})"
            ));
        }
        let job = v.require_u64("job")?;
        let ck = Checkpoint::from_json(v.require("checkpoint")?)?;
        Ok((job, ck))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use chase_engine::{ChaseConfig, ChaseStats, ChaseVariant, FaultSite};

    fn sample_checkpoint(name: &str) -> Checkpoint {
        let spec = JobSpec::from_text(
            name,
            "r(a, b). T: r(X, Y), r(Y, Z) -> r(X, Z). Q: ?- r(a, a).",
            ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(7),
        )
        .unwrap();
        let stats = ChaseStats {
            applications: 3,
            wall_us: 1_234,
            ..ChaseStats::default()
        };
        Checkpoint::capture(&spec, &spec.kb.vocab, &spec.kb.facts, stats)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("treechase-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_remove_roundtrip() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(4, &sample_checkpoint("a"), None).unwrap();
        store.save(9, &sample_checkpoint("b"), None).unwrap();
        let (good, bad) = store.load_all().unwrap();
        assert!(bad.is_empty());
        assert_eq!(
            good.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![4, 9]
        );
        assert_eq!(good[0].1.name, "a");
        assert_eq!(good[0].1.stats.applications, 3);
        assert_eq!(good[0].1.stats.wall_us, 1_234);
        assert_eq!(good[0].1.config.max_applications, 7);
        store.remove(4).unwrap();
        store.remove(4).unwrap(); // idempotent
        let (good, _) = store.load_all().unwrap();
        assert_eq!(good.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_files_are_reported_not_fatal() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(1, &sample_checkpoint("ok"), None).unwrap();
        fs::write(dir.join("job-2.ckpt.json"), "{ torn writ").unwrap();
        fs::write(
            dir.join("job-3.ckpt.json"),
            r#"{"format": "treechase-checkpoint", "version": 99, "job": 3}"#,
        )
        .unwrap();
        // Stray temp files and unrelated names are skipped entirely.
        fs::write(dir.join("job-5.ckpt.json.tmp"), "half").unwrap();
        fs::write(dir.join("notes.txt"), "hi").unwrap();
        let (good, bad) = store.load_all().unwrap();
        assert_eq!(good.len(), 1);
        assert_eq!(good[0].0, 1);
        assert_eq!(bad.len(), 2);
        assert!(bad.iter().any(|c| c.error.contains("version")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_zero_byte_and_version_skew_files_degrade_gracefully() {
        let dir = temp_dir("degrade");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(1, &sample_checkpoint("ok"), None).unwrap();
        // A checkpoint cut mid-file (e.g. by a full disk on a tool that
        // did not write atomically): valid prefix, no closing braces.
        let full = fs::read_to_string(dir.join("job-1.ckpt.json")).unwrap();
        fs::write(dir.join("job-2.ckpt.json"), &full[..full.len() / 2]).unwrap();
        // A zero-byte file (open() landed, write never did).
        fs::write(dir.join("job-3.ckpt.json"), "").unwrap();
        // A version from the future.
        fs::write(
            dir.join("job-4.ckpt.json"),
            full.replace("\"version\":1", "\"version\":2"),
        )
        .unwrap();
        // A file with the right shape but the wrong format tag.
        fs::write(
            dir.join("job-5.ckpt.json"),
            full.replace(FORMAT, "someone-elses-checkpoint"),
        )
        .unwrap();
        let (good, bad) = store.load_all().unwrap();
        assert_eq!(good.len(), 1, "only the intact file recovers");
        assert_eq!(good[0].0, 1);
        assert_eq!(bad.len(), 4);
        let errors_for = |job: u64| {
            bad.iter()
                .find(|c| c.path.ends_with(format!("job-{job}.ckpt.json")))
                .unwrap_or_else(|| panic!("job-{job} should be reported"))
                .error
                .clone()
        };
        assert!(errors_for(4).contains("unsupported version 2"));
        assert!(errors_for(5).contains("unexpected format"));
        // Truncated and empty files fail at the JSON layer; the exact
        // message matters less than that they are reported, not fatal
        // and not half-recovered.
        assert!(!errors_for(2).is_empty());
        assert!(!errors_for(3).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_checkpoint_write_fault_fails_once_and_keeps_old_file() {
        let dir = temp_dir("fault");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(1, &sample_checkpoint("first"), None).unwrap();
        let plan = FaultPlan::new(vec![FaultSite::CheckpointWrite(1)]);
        let err = store
            .save(1, &sample_checkpoint("second"), Some(&plan))
            .unwrap_err();
        assert!(err.contains("injected fault"), "{err}");
        // The durable copy is untouched by the failed write...
        let (good, _) = store.load_all().unwrap();
        assert_eq!(good[0].1.name, "first");
        // ...and the site fires only once: the retry goes through.
        store
            .save(1, &sample_checkpoint("second"), Some(&plan))
            .unwrap();
        let (good, _) = store.load_all().unwrap();
        assert_eq!(good[0].1.name, "second");
        let _ = fs::remove_dir_all(&dir);
    }
}
