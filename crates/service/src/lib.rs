//! `treechase-service`: a concurrent, budgeted, cancellable chase job
//! runner.
//!
//! The chase runs this repo cares about are *long*: the paper's Section 6
//! staircase and Section 7 elevator knowledge bases drive the core chase
//! through thousands of applications, and an unbounded run may never
//! terminate at all (the infinite core chase of the title). This crate
//! turns those runs into managed *jobs*:
//!
//! - a [`Service`] owns a worker pool and a job table; [`JobSpec`]s are
//!   queued and executed concurrently,
//! - every job carries budgets (applications, atoms, wall clock) and a
//!   [`CancelToken`](chase_engine::CancelToken) polled between trigger
//!   applications, so cancellation lands without poisoning the pool,
//! - budget-exhausted jobs produce a [`Checkpoint`] — the live end of the
//!   derivation serialized as program text — from which a later job
//!   resumes; for the satisfaction-based variants the resumed run is
//!   equivalent to never having stopped,
//! - progress streams out as [`JobEvent`]s (queued / started / step /
//!   core-retraction / treewidth-sample / crashed / finished), which the
//!   `treechase serve` subcommand renders as JSONL,
//! - with a state directory, periodic checkpoints go to a durable
//!   [`store::CheckpointStore`] (atomic temp-file + rename writes) and a
//!   restarted service recovers them into resumable jobs; crashes — real
//!   or injected via [`chase_engine::FaultPlan`] — are supervised with
//!   bounded retries from the last checkpoint.
//!
//! The wire protocol lives in [`protocol`]; the hand-rolled JSON layer in
//! [`json`] keeps the crate dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod job;
pub mod json;
pub mod protocol;
pub mod runner;
pub mod store;

pub use checkpoint::Checkpoint;
pub use job::{add_stats, JobId, JobResult, JobSpec, JobStatus, Priority, QueryVerdict};
pub use json::{parse_json, Json};
pub use protocol::{
    analysis_to_json, named_kb, parse_fault_plan, parse_request, query_reply_to_json,
    rejection_to_json, Request,
};
pub use runner::{
    apply_admission_gate, Admission, DrainReport, EventReceiver, JobEvent, JobEventKind,
    JobSummary, QueryError, QueryReply, RejectReason, Rejection, Service, ServiceConfig,
    WaitResult,
};
pub use store::{CheckpointStore, CorruptEntry};
