//! Pause/resume checkpoints: serializing the live end of a derivation so
//! a budget-exhausted job can continue in a later request (or another
//! process entirely).
//!
//! A checkpoint stores the current instance *as a program text* in the
//! `chase-parser` syntax — facts (labeled nulls print as `V<n>` variables
//! within a single statement, so sharing survives), the rule set and the
//! pending queries — plus the chase configuration and the accumulated
//! counters. Resuming re-parses the text and restarts the chase with the
//! instance as the fact base.
//!
//! This is semantically exact for the *satisfaction-based* variants
//! (restricted, frugal, core): their trigger activity is a function of
//! the current instance alone, so a run from the checkpoint instance is
//! itself a valid continuation of the original derivation (the paper's
//! Definition 1 composes). For the oblivious variants the applied-trigger
//! memory is not carried, so a resumed run may re-apply triggers the
//! original already fired — still sound (the result is a chase of the
//! checkpoint KB) but not slice-invariant; the service surfaces this in
//! the checkpoint's `exact` flag.

use std::time::Duration;

use chase_engine::{ChaseConfig, ChaseStats, ChaseVariant};
use chase_parser::{parse_program_trusted, program_to_text, Program};

use crate::job::JobSpec;
use crate::json::Json;
use crate::protocol::{config_from_json, config_to_json, stats_from_json, stats_to_json};

/// A serializable snapshot of an interrupted chase job.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The job's display name.
    pub name: String,
    /// The chase configuration of the interrupted run.
    pub config: ChaseConfig,
    /// Instance, rules and queries in the parser syntax.
    pub program: String,
    /// Counters accumulated over all slices up to this checkpoint.
    pub stats: ChaseStats,
}

impl Checkpoint {
    /// Captures a checkpoint from a finished slice. `vocab` must be the
    /// post-run vocabulary (it knows every predicate and constant the
    /// instance mentions).
    pub fn capture(
        spec: &JobSpec,
        vocab: &chase_atoms::Vocabulary,
        instance: &chase_atoms::AtomSet,
        total_stats: ChaseStats,
    ) -> Checkpoint {
        let program = program_to_text(&Program {
            vocab: vocab.clone(),
            facts: instance.clone(),
            rules: spec.kb.rules.clone(),
            queries: spec.queries.clone(),
        });
        // Stored budgets are derivation-total, consumed amounts live in
        // `stats`, and the split is re-derived at resume time. Baking the
        // slice-local view in instead would hand every resumed slice a
        // fresh budget (the overshoot bug) or double-count what recovery
        // already subtracted (checkpoints taken after a crash retry).
        let mut config = spec.config.clone();
        config.consumed_wall = Duration::ZERO;
        config.max_applications = spec
            .config
            .max_applications
            .saturating_add(spec.base_stats.applications);
        Checkpoint {
            name: spec.name.clone(),
            config,
            program,
            stats: total_stats,
        }
    }

    /// Is resuming from this checkpoint guaranteed equivalent to having
    /// never stopped? True for the satisfaction-based variants.
    pub fn exact(&self) -> bool {
        matches!(
            self.config.variant,
            ChaseVariant::Restricted | ChaseVariant::Frugal | ChaseVariant::Core
        )
    }

    /// Rebuilds a runnable job from the checkpoint. The new slice starts
    /// from the serialized instance and inherits the stored config. An
    /// inexact (oblivious/semi-oblivious) resume is flagged on the spec
    /// so the runner emits a `warning` event instead of silently dropping
    /// the applied-trigger memory.
    pub fn into_spec(&self) -> Result<JobSpec, String> {
        let mut spec =
            JobSpec::from_checkpoint_text(self.name.clone(), &self.program, self.config.clone())?;
        spec.base_stats = self.stats;
        spec.resumed_inexact = !self.exact();
        // The resumed slice continues the derivation's budgets rather
        // than getting fresh ones: what the prefix spent comes off the
        // stored totals (an explicit new budget on the resume request
        // overrides this, see `resume_spec`).
        spec.config.max_applications = self
            .config
            .max_applications
            .saturating_sub(self.stats.applications);
        spec.config.consumed_wall = Duration::from_micros(self.stats.wall_us);
        Ok(spec)
    }

    /// Serializes for the wire.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("exact", Json::Bool(self.exact())),
            ("config", config_to_json(&self.config)),
            ("stats", stats_to_json(&self.stats)),
            ("program", Json::str(&self.program)),
        ])
    }

    /// Deserializes from the wire.
    pub fn from_json(v: &Json) -> Result<Checkpoint, String> {
        let program = v.require_str("program")?.to_string();
        // Validate the program eagerly so resume errors surface on the
        // resume request, not inside a worker. Checkpoint programs are
        // printer output, so the reserved null spelling is legal here.
        parse_program_trusted(&program).map_err(|e| format!("checkpoint program: {e}"))?;
        Ok(Checkpoint {
            name: v.require_str("name")?.to_string(),
            config: config_from_json(v.require("config")?)?,
            program,
            stats: stats_from_json(v.require("stats")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::{run_chase, ChaseConfig, ChaseOutcome, ChaseVariant};

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let spec = JobSpec::from_text(
            "ck",
            "r(a, b). r(b, X). T: r(X, Y), r(Y, Z) -> r(X, Z). Q: ?- r(a, a).",
            ChaseConfig::variant(ChaseVariant::Core).with_max_applications(2),
        )
        .unwrap();
        let mut vocab = spec.kb.vocab.clone();
        let res = run_chase(&mut vocab, &spec.kb.facts, &spec.kb.rules, &spec.config);
        let ck = Checkpoint::capture(&spec, &vocab, &res.final_instance, res.stats);
        let back = Checkpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(back.name, "ck");
        assert!(back.exact());
        assert_eq!(back.stats, res.stats);
        let resumed = back.into_spec().unwrap();
        assert_eq!(resumed.queries.len(), 1);
        assert_eq!(resumed.kb.facts.len(), res.final_instance.len());
        assert_eq!(resumed.base_stats, res.stats);
    }

    #[test]
    fn resume_deducts_consumed_wall_instead_of_resetting_the_budget() {
        let spec = JobSpec::from_text(
            "w",
            "r(a, b). T: r(X, Y), r(Y, Z) -> r(X, Z).",
            ChaseConfig::variant(ChaseVariant::Restricted)
                .with_max_wall(std::time::Duration::from_millis(10))
                // A slice mid-flight has a nonzero carry-over of its own;
                // the checkpoint must not bake it in twice.
                .with_consumed_wall(std::time::Duration::from_millis(2)),
        )
        .unwrap();
        let vocab = spec.kb.vocab.clone();
        let stats = ChaseStats {
            applications: 1,
            wall_us: 5_000,
            ..ChaseStats::default()
        };
        let ck = Checkpoint::capture(&spec, &vocab, &spec.kb.facts, stats);
        assert_eq!(ck.config.consumed_wall, std::time::Duration::ZERO);
        let resumed = ck.into_spec().unwrap();
        // The resumed slice sees 10ms total minus the 5ms the derivation
        // has accumulated so far — not a fresh 10ms.
        assert_eq!(
            resumed.config.consumed_wall,
            std::time::Duration::from_micros(5_000)
        );
        assert_eq!(
            resumed.config.max_wall,
            Some(std::time::Duration::from_millis(10))
        );
        // And the carry-over survives the wire.
        let wired = Checkpoint::from_json(&ck.to_json())
            .unwrap()
            .into_spec()
            .unwrap();
        assert_eq!(
            wired.config.consumed_wall,
            std::time::Duration::from_micros(5_000)
        );
    }

    #[test]
    fn resume_continues_toward_the_original_application_target() {
        // A job resumed once already: 4 of its 10-application target are
        // spent (base), its current slice budget is the remaining 6.
        let mut spec = JobSpec::from_text(
            "apps",
            "r(a, b). T: r(X, Y), r(Y, Z) -> r(X, Z).",
            ChaseConfig::variant(ChaseVariant::Restricted).with_max_applications(6),
        )
        .unwrap();
        spec.base_stats.applications = 4;
        // The slice crashes/pauses after 3 more applications.
        let stats = ChaseStats {
            applications: 7,
            ..ChaseStats::default()
        };
        let vocab = spec.kb.vocab.clone();
        let ck = Checkpoint::capture(&spec, &vocab, &spec.kb.facts, stats);
        assert_eq!(ck.config.max_applications, 10, "stored as total");
        let resumed = ck.into_spec().unwrap();
        assert_eq!(resumed.config.max_applications, 3, "10 - 7 remain");
        assert_eq!(resumed.base_stats.applications, 7);
        // Capturing again from the resumed spec is stable: still 10.
        let again = Checkpoint::capture(&resumed, &vocab, &resumed.kb.facts, stats);
        assert_eq!(again.config.max_applications, 10);
    }

    #[test]
    fn resume_reaches_the_same_closure_as_uninterrupted() {
        let src = "r(a, b). r(b, c). r(c, d). T: r(X, Y), r(Y, Z) -> r(X, Z).";
        let cfg = ChaseConfig::variant(ChaseVariant::Restricted);
        let full_spec = JobSpec::from_text("full", src, cfg.clone()).unwrap();
        let mut v1 = full_spec.kb.vocab.clone();
        let full = run_chase(&mut v1, &full_spec.kb.facts, &full_spec.kb.rules, &cfg);
        assert!(full.outcome.terminated());

        let cut = cfg.clone().with_max_applications(2);
        let part_spec = JobSpec::from_text("part", src, cut.clone()).unwrap();
        let mut v2 = part_spec.kb.vocab.clone();
        let part = run_chase(&mut v2, &part_spec.kb.facts, &part_spec.kb.rules, &cut);
        assert_eq!(part.outcome, ChaseOutcome::ApplicationBudgetExhausted);

        let ck = Checkpoint::capture(&part_spec, &v2, &part.final_instance, part.stats);
        let resumed_spec = ck.into_spec().unwrap();
        let mut v3 = resumed_spec.kb.vocab.clone();
        let resumed = run_chase(
            &mut v3,
            &resumed_spec.kb.facts,
            &resumed_spec.kb.rules,
            &cfg,
        );
        assert!(resumed.outcome.terminated());
        // Ground closure: resumed result is literally isomorphic (here
        // even equal up to constant interning) to the uninterrupted one.
        assert!(
            chase_homomorphism::isomorphism(&resumed.final_instance, &full.final_instance)
                .is_some()
        );
    }
}
