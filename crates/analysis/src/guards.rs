//! Guardedness checks: syntactic bts certificates.

use std::collections::BTreeSet;

use chase_atoms::{Term, VarId};
use chase_engine::{Rule, RuleSet};

/// How strongly a single rule is guarded.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum GuardKind {
    /// No body atom covers even the frontier variables.
    Unguarded,
    /// Some body atom contains all *frontier* variables.
    FrontierGuarded,
    /// Some body atom contains all *universal* (body) variables.
    Guarded,
    /// The body is a single atom (linear rules; trivially guarded).
    Linear,
}

/// Guardedness summary of a ruleset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Guardedness {
    /// Per-rule kinds, in ruleset order.
    pub per_rule: Vec<GuardKind>,
}

impl Guardedness {
    /// Is every rule guarded (⇒ bts, per Calì–Gottlob–Kifer)?
    #[must_use]
    pub fn is_guarded(&self) -> bool {
        self.per_rule.iter().all(|&k| k >= GuardKind::Guarded)
    }

    /// Is every rule at least frontier-guarded (⇒ bts, per
    /// Baget–Leclère–Mugnier / Baget–Mugnier–Rudolph–Thomazo)?
    #[must_use]
    pub fn is_frontier_guarded(&self) -> bool {
        self.per_rule
            .iter()
            .all(|&k| k >= GuardKind::FrontierGuarded)
    }

    /// Is every rule linear (single body atom)?
    #[must_use]
    pub fn is_linear(&self) -> bool {
        self.per_rule.iter().all(|&k| k == GuardKind::Linear)
    }
}

fn atom_covers(rule: &Rule, vars: &BTreeSet<VarId>) -> bool {
    rule.body()
        .iter()
        .any(|atom| vars.iter().all(|&v| atom.mentions(Term::Var(v))))
}

/// Classifies one rule.
pub fn guard_kind(rule: &Rule) -> GuardKind {
    if rule.body().len() == 1 {
        return GuardKind::Linear;
    }
    if atom_covers(rule, rule.universal_vars()) {
        return GuardKind::Guarded;
    }
    if atom_covers(rule, rule.frontier_vars()) {
        return GuardKind::FrontierGuarded;
    }
    GuardKind::Unguarded
}

/// Classifies every rule of a ruleset.
#[must_use]
pub fn guardedness(rules: &RuleSet) -> Guardedness {
    Guardedness {
        per_rule: rules.iter().map(|(_, r)| guard_kind(r)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    #[test]
    fn linear_rule() {
        let rs = rules("R: r(X, Y) -> r(Y, Z).");
        let g = guardedness(&rs);
        assert_eq!(g.per_rule, vec![GuardKind::Linear]);
        assert!(g.is_linear() && g.is_guarded() && g.is_frontier_guarded());
    }

    #[test]
    fn guarded_multi_atom_rule() {
        // The triple atom guards X, Y, Z.
        let rs = rules("R: t(X, Y, Z), r(X, Y) -> s(Z, W).");
        let g = guardedness(&rs);
        assert_eq!(g.per_rule, vec![GuardKind::Guarded]);
        assert!(!g.is_linear());
        assert!(g.is_guarded());
    }

    #[test]
    fn frontier_guarded_only() {
        // Body vars X, Y, Z; frontier is {X, Z} (head uses X, Z); atom
        // s(X, Z) guards the frontier but nothing guards Y too.
        let rs = rules("R: r(X, Y), r(Y, Z), s(X, Z) -> t(X, Z, W).");
        let g = guardedness(&rs);
        assert_eq!(g.per_rule, vec![GuardKind::FrontierGuarded]);
        assert!(!g.is_guarded());
        assert!(g.is_frontier_guarded());
    }

    #[test]
    fn unguarded_transitivity() {
        let rs = rules("T: r(X, Y), r(Y, Z) -> r(X, Z).");
        let g = guardedness(&rs);
        assert_eq!(g.per_rule, vec![GuardKind::Unguarded]);
        assert!(!g.is_frontier_guarded());
    }

    #[test]
    fn mixed_ruleset() {
        let rs = rules(
            "A: r(X, Y) -> s(Y).
             B: r(X, Y), r(Y, Z) -> r(X, Z).",
        );
        let g = guardedness(&rs);
        assert_eq!(g.per_rule, vec![GuardKind::Linear, GuardKind::Unguarded]);
        assert!(!g.is_guarded());
    }
}
