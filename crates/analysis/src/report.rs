//! Combined static-analysis report for a ruleset: a verdict lattice
//! per semantic property, with certificate provenance.
//!
//! Each semantic property (termination / bts / core-bts) gets a
//! [`Verdict`]: **Certified** with the [`Certificate`] that justifies
//! it, **Refuted** with the witness, **`LikelyRefuted`** when the witness
//! only sinks a sufficient condition (an MFA cycle refutes MFA-class
//! membership, not termination itself), or **Inconclusive** with the
//! budget that ran out. The raw syntactic facts (datalog, acyclicity,
//! guardedness) stay available as plain booleans.
//!
//! Certificate provenance matters because the routes are *not*
//! interchangeable (the paper's "complications"): guardedness certifies
//! bts but says nothing about core-chase width — the elevator `K_v` is
//! treewidth-1 bts while its core chase width diverges — so `core-bts`
//! is never certified from a guardedness certificate, only from a
//! termination certificate or explicit core-width evidence.

use std::fmt;

use chase_engine::{RuleId, RuleSet};
use chase_homomorphism::SearchBudget;

use crate::acyclicity::{jointly_acyclic, weakly_acyclic};
use crate::guards::{guardedness, Guardedness};
use crate::mfa::{mfa_test, MfaOutcome};

/// Default application budget for the MFA sub-test of [`analyze`].
const DEFAULT_MFA_BUDGET: usize = 5_000;

/// What justified a [`Verdict::Certified`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// Every rule is datalog.
    Datalog,
    /// Weak acyclicity (Fagin et al.).
    WeaklyAcyclic,
    /// Joint acyclicity (Krötzsch & Rudolph).
    JointlyAcyclic,
    /// MFA-style critical-instance saturation ([`crate::mfa`]).
    Mfa,
    /// Every rule is guarded.
    Guarded,
    /// Every rule is frontier-guarded.
    FrontierGuarded,
    /// Every rule is linear.
    Linear,
    /// Dynamic evidence: the restricted-chase treewidth profile
    /// plateaued at this bound (finite-horizon evidence, not a proof).
    RestrictedWidthProbe(usize),
    /// Dynamic evidence: the core-chase treewidth profile plateaued at
    /// this bound (finite-horizon evidence, not a proof).
    CoreWidthProbe(usize),
}

impl Certificate {
    /// Stable kebab-case name for reports and wire formats.
    pub fn name(&self) -> &'static str {
        match self {
            Certificate::Datalog => "datalog",
            Certificate::WeaklyAcyclic => "weakly-acyclic",
            Certificate::JointlyAcyclic => "jointly-acyclic",
            Certificate::Mfa => "mfa",
            Certificate::Guarded => "guarded",
            Certificate::FrontierGuarded => "frontier-guarded",
            Certificate::Linear => "linear",
            Certificate::RestrictedWidthProbe(_) => "restricted-width-probe",
            Certificate::CoreWidthProbe(_) => "core-width-probe",
        }
    }
}

/// What justified a [`Verdict::Refuted`] or [`Verdict::LikelyRefuted`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Refutation {
    /// The MFA test found a cyclically nested Skolem term: membership
    /// in the MFA class is refuted and the critical chase shows the
    /// self-similar expansion that drives divergence. This witness
    /// refutes the MFA *class*, not termination itself (terminating
    /// rulesets can produce cyclic Skolem terms), so the termination
    /// route carries it as [`Verdict::LikelyRefuted`], never
    /// [`Verdict::Refuted`].
    MfaCycle {
        /// Rule whose existential restarted its own expansion.
        rule: RuleId,
        /// Nesting depth at which the cycle closed.
        depth: usize,
    },
    /// Dynamic evidence: the core-chase treewidth profile kept growing
    /// over the whole probe horizon.
    CoreWidthDiverging,
}

impl Refutation {
    /// Stable kebab-case name for reports and wire formats.
    pub fn name(&self) -> &'static str {
        match self {
            Refutation::MfaCycle { .. } => "mfa-cycle",
            Refutation::CoreWidthDiverging => "core-width-diverging",
        }
    }
}

/// Verdict for one semantic property: certified, refuted, likely
/// refuted (positive divergence evidence short of a proof), or
/// inconclusive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds, justified by this certificate.
    Certified(Certificate),
    /// The property fails, with a witness.
    Refuted(Refutation),
    /// Finite-horizon evidence points against the property — the
    /// witness refutes a *sufficient condition* (e.g. MFA-class
    /// membership), not the property itself. Strictly weaker than
    /// [`Verdict::Refuted`]; consumers that act on divergence evidence
    /// (budget tightening, strict shedding) opt into it via
    /// [`Verdict::suspects_divergence`].
    LikelyRefuted(Refutation),
    /// Neither direction was decided within the budget (applications
    /// granted to the dynamic sub-tests).
    Inconclusive {
        /// The application budget that ran out.
        budget: usize,
    },
}

impl Verdict {
    /// Is the property certified?
    pub fn is_certified(&self) -> bool {
        matches!(self, Verdict::Certified(_))
    }

    /// Is the property positively refuted?
    pub fn is_refuted(&self) -> bool {
        matches!(self, Verdict::Refuted(_))
    }

    /// Is the property likely refuted (evidence, not proof)?
    pub fn is_likely_refuted(&self) -> bool {
        matches!(self, Verdict::LikelyRefuted(_))
    }

    /// Did the budget run out before either direction was decided?
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, Verdict::Inconclusive { .. })
    }

    /// Refuted or likely refuted: there is a positive divergence
    /// witness, proven or finite-horizon. This is the predicate that
    /// fail-fast policies (tight budgets, strict admission shedding)
    /// key on — deliberately including the evidence-only level.
    pub fn suspects_divergence(&self) -> bool {
        matches!(self, Verdict::Refuted(_) | Verdict::LikelyRefuted(_))
    }

    /// The certificate, when certified.
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            Verdict::Certified(c) => Some(c),
            _ => None,
        }
    }

    /// The divergence witness, when refuted or likely refuted.
    pub fn refutation(&self) -> Option<&Refutation> {
        match self {
            Verdict::Refuted(r) | Verdict::LikelyRefuted(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Certified(c) => match c {
                Certificate::RestrictedWidthProbe(w) | Certificate::CoreWidthProbe(w) => {
                    write!(f, "certified by {} (width {w})", c.name())
                }
                _ => write!(f, "certified by {}", c.name()),
            },
            Verdict::Refuted(r) | Verdict::LikelyRefuted(r) => {
                let level = if self.is_refuted() {
                    "refuted"
                } else {
                    "likely refuted"
                };
                match r {
                    Refutation::MfaCycle { rule, depth } => {
                        write!(f, "{level} by mfa-cycle (rule {rule}, depth {depth})")
                    }
                    Refutation::CoreWidthDiverging => write!(f, "{level} by {}", r.name()),
                }
            }
            Verdict::Inconclusive { budget } => write!(f, "inconclusive (budget {budget})"),
        }
    }
}

/// What a finite-horizon treewidth-profile probe observed.
///
/// The three states are deliberately distinct: a profile that *climbed*
/// over the whole horizon is positive divergence evidence, while a
/// horizon too short to judge carries **no** signal — conflating the
/// two would mint refutations out of small probe budgets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WidthObservation {
    /// The profile plateaued at this certified upper bound (or the
    /// chase terminated, trivially bounding it).
    Plateau(usize),
    /// The profile was still climbing when the horizon ended.
    Climbing,
    /// The horizon was too short (or no probe ran): no signal either
    /// way.
    #[default]
    Unobserved,
}

impl WidthObservation {
    /// The plateau bound, when one was observed.
    pub fn plateau(self) -> Option<usize> {
        match self {
            WidthObservation::Plateau(w) => Some(w),
            _ => None,
        }
    }

    /// Did the profile climb over the whole horizon?
    pub fn is_climbing(self) -> bool {
        matches!(self, WidthObservation::Climbing)
    }

    /// Stable kebab-case name for reports and wire formats.
    pub fn name(self) -> &'static str {
        match self {
            WidthObservation::Plateau(_) => "plateau",
            WidthObservation::Climbing => "climbing",
            WidthObservation::Unobserved => "unobserved",
        }
    }
}

/// Dynamic (per-instance, finite-horizon) evidence from the chase
/// probes in `chase_core::classes`, used to settle verdicts that the
/// syntactic certificates leave inconclusive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DynamicEvidence {
    /// Did the restricted-chase probe terminate within its budget?
    pub restricted_terminated: bool,
    /// What the restricted-chase treewidth profile showed.
    pub restricted_width: WidthObservation,
    /// Did the core-chase probe terminate within its budget?
    pub core_terminated: bool,
    /// What the core-chase treewidth profile showed.
    pub core_width: WidthObservation,
}

/// Everything the analyses can certify about a ruleset: syntactic
/// facts plus the semantic verdict lattice (Figure 1 vocabulary).
#[derive(Clone, Debug)]
pub struct RulesetReport {
    /// Is every rule datalog (no existential variables)?
    pub datalog: bool,
    /// Weak acyclicity (Fagin et al.).
    pub weakly_acyclic: bool,
    /// Joint acyclicity (Krötzsch & Rudolph).
    pub jointly_acyclic: bool,
    /// Guardedness classification.
    pub guardedness: Guardedness,
    /// Raw outcome of the MFA-style critical-instance test.
    pub mfa: MfaOutcome,
    /// Chase termination on every fact base (**fes** membership).
    pub terminating: Verdict,
    /// Treewidth-bounded restricted chase on every fact base (**bts**).
    pub bts: Verdict,
    /// Terminating, treewidth-bounded **core** chase (**core-bts**).
    /// Never certified from guardedness alone: bts does not bound the
    /// core chase (the elevator is the counterexample).
    pub core_bts: Verdict,
}

impl RulesetReport {
    /// Does some certificate guarantee **fes** membership?
    pub fn certified_fes(&self) -> bool {
        self.terminating.is_certified()
    }

    /// Does some certificate guarantee **bts** membership?
    pub fn certified_bts(&self) -> bool {
        self.bts.is_certified()
    }

    /// Does some certificate guarantee **core-bts** membership?
    pub fn certified_core_bts(&self) -> bool {
        self.core_bts.is_certified()
    }

    /// Is every decidability route refuted-or-unknown, with positive
    /// divergence evidence on the termination route? This is the
    /// strict-admission shedding predicate: nothing certified, and a
    /// divergence witness in hand. It deliberately accepts the
    /// [`Verdict::LikelyRefuted`] level — an MFA cycle does not *prove*
    /// non-termination, but shedding on it while no other route is
    /// certified is the analyzer's only actionable signal.
    pub fn refutes_every_route(&self) -> bool {
        self.terminating.suspects_divergence()
            && !self.bts.is_certified()
            && !self.core_bts.is_certified()
    }

    /// Upgrades inconclusive verdicts with dynamic probe evidence.
    ///
    /// Probe certificates are finite-horizon evidence, not proofs; they
    /// carry their own [`Certificate`] variants so consumers can
    /// discount them. Syntactic certificates are never overridden, and
    /// an [`WidthObservation::Unobserved`] probe (horizon too short)
    /// changes nothing — only a profile that *climbed over the whole
    /// horizon* refutes core-bts.
    pub fn attach_evidence(&mut self, ev: &DynamicEvidence) {
        if !self.bts.is_certified() {
            if let Some(w) = ev.restricted_width.plateau() {
                self.bts = Verdict::Certified(Certificate::RestrictedWidthProbe(w));
            }
        }
        if !self.core_bts.is_certified() {
            match ev.core_width {
                WidthObservation::Plateau(w) => {
                    self.core_bts = Verdict::Certified(Certificate::CoreWidthProbe(w));
                }
                WidthObservation::Climbing => {
                    self.core_bts = Verdict::Refuted(Refutation::CoreWidthDiverging);
                }
                WidthObservation::Unobserved => {}
            }
        }
    }
}

impl fmt::Display for RulesetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "datalog:          {}", self.datalog)?;
        writeln!(f, "weakly acyclic:   {}", self.weakly_acyclic)?;
        writeln!(f, "jointly acyclic:  {}", self.jointly_acyclic)?;
        writeln!(f, "guarded:          {}", self.guardedness.is_guarded())?;
        writeln!(
            f,
            "frontier-guarded: {}",
            self.guardedness.is_frontier_guarded()
        )?;
        let mfa = match &self.mfa {
            MfaOutcome::Acyclic { applications } => {
                format!("acyclic ({applications} applications)")
            }
            MfaOutcome::CyclicTerm { rule, depth } => {
                format!("cyclic term (rule {rule}, depth {depth})")
            }
            MfaOutcome::BudgetExhausted { applications } => {
                format!("budget exhausted ({applications} applications)")
            }
        };
        writeln!(f, "mfa:              {mfa}")?;
        writeln!(f, "⇒ terminating: {}", self.terminating)?;
        writeln!(f, "⇒ bts:         {}", self.bts)?;
        write!(f, "⇒ core-bts:    {}", self.core_bts)
    }
}

/// Runs every static analysis on a ruleset with the default MFA budget.
pub fn analyze(rules: &RuleSet) -> RulesetReport {
    analyze_with_budget(
        rules,
        &SearchBudget::unlimited().with_node_limit(DEFAULT_MFA_BUDGET),
    )
}

/// Runs every static analysis, granting the dynamic sub-tests (MFA) the
/// given shared [`SearchBudget`].
pub fn analyze_with_budget(rules: &RuleSet, budget: &SearchBudget) -> RulesetReport {
    let datalog = rules.iter().all(|(_, r)| r.is_datalog());
    let wa = weakly_acyclic(rules);
    let ja = jointly_acyclic(rules);
    let guards = guardedness(rules);
    let mfa = mfa_test(rules, budget);
    let spent = budget.node_limit.unwrap_or(DEFAULT_MFA_BUDGET);

    let terminating = if datalog {
        Verdict::Certified(Certificate::Datalog)
    } else if wa {
        Verdict::Certified(Certificate::WeaklyAcyclic)
    } else if ja {
        Verdict::Certified(Certificate::JointlyAcyclic)
    } else {
        match &mfa {
            MfaOutcome::Acyclic { .. } => Verdict::Certified(Certificate::Mfa),
            // A cyclic Skolem term refutes MFA-class membership, not
            // termination itself (mfa.rs): evidence level, not proof.
            MfaOutcome::CyclicTerm { rule, depth } => {
                Verdict::LikelyRefuted(Refutation::MfaCycle {
                    rule: *rule,
                    depth: *depth,
                })
            }
            MfaOutcome::BudgetExhausted { .. } => Verdict::Inconclusive { budget: spent },
        }
    };

    let bts = if let Verdict::Certified(c) = &terminating {
        // fes ⇒ every chase is finite ⇒ trivially treewidth-bounded.
        Verdict::Certified(c.clone())
    } else if guards.is_linear() {
        Verdict::Certified(Certificate::Linear)
    } else if guards.is_guarded() {
        Verdict::Certified(Certificate::Guarded)
    } else if guards.is_frontier_guarded() {
        Verdict::Certified(Certificate::FrontierGuarded)
    } else {
        Verdict::Inconclusive { budget: spent }
    };

    // Core-bts: a termination certificate gives a finite core chase;
    // guardedness does NOT carry over (bts with diverging core-chase
    // width is possible — the elevator). Width evidence arrives later
    // via `attach_evidence`.
    let core_bts = if let Verdict::Certified(c) = &terminating {
        Verdict::Certified(c.clone())
    } else {
        Verdict::Inconclusive { budget: spent }
    };

    RulesetReport {
        datalog,
        weakly_acyclic: wa,
        jointly_acyclic: ja,
        guardedness: guards,
        mfa,
        terminating,
        bts,
        core_bts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_parser::parse_program;

    fn rules(src: &str) -> RuleSet {
        parse_program(src).expect("parses").rules
    }

    #[test]
    fn datalog_certifies_everything() {
        let report = analyze(&rules("T: r(X, Y), r(Y, Z) -> r(X, Z)."));
        assert!(report.datalog);
        assert!(report.certified_fes());
        assert!(report.certified_bts());
        assert!(report.certified_core_bts());
        assert_eq!(
            report.terminating.certificate(),
            Some(&Certificate::Datalog)
        );
    }

    #[test]
    fn linear_chain_certifies_bts_not_fes_nor_core_bts() {
        let report = analyze(&rules("R: r(X, Y) -> r(Y, Z)."));
        assert!(!report.certified_fes());
        assert!(report.certified_bts(), "linear rules are guarded ⇒ bts");
        assert_eq!(report.bts.certificate(), Some(&Certificate::Linear));
        // The fixed predicate: guardedness certifies bts only. Whether
        // the *core* chase stays width-bounded is a separate question
        // (the elevator is bts with diverging core-chase width), so
        // without width evidence the verdict stays open.
        assert!(!report.certified_core_bts());
        assert!(!report.core_bts.is_refuted());
        // The MFA cycle is divergence *evidence*: it refutes MFA-class
        // membership, so termination is likely refuted — never the
        // proven-refuted level, which the cycle cannot justify.
        assert!(matches!(
            report.terminating,
            Verdict::LikelyRefuted(Refutation::MfaCycle { rule: 0, .. })
        ));
        assert!(!report.terminating.is_refuted());
        assert!(report.terminating.suspects_divergence());
    }

    #[test]
    fn unguarded_cyclic_ruleset_certifies_nothing() {
        let report = analyze(&rules("Fill: h(X, Y), v(X, X2) -> h(X2, Y2), v(Y, Y2)."));
        assert!(!report.certified_fes());
        assert!(!report.certified_bts());
        assert!(!report.certified_core_bts());
        assert!(report.refutes_every_route());
    }

    #[test]
    fn weakly_acyclic_existential_ruleset() {
        let report = analyze(&rules("R: r(X, Y) -> s(Y, Z). S: s(X, Y) -> t(X)."));
        assert!(!report.datalog);
        assert!(report.weakly_acyclic);
        assert!(report.certified_fes());
        assert!(report.certified_core_bts());
        assert_eq!(
            report.core_bts.certificate(),
            Some(&Certificate::WeaklyAcyclic)
        );
    }

    #[test]
    fn mfa_certifies_beyond_acyclicity() {
        // The same-variable-join pattern: R1 puts its null in *both*
        // columns of `q` (in separate atoms), and R2's body `q(Y, Y)`
        // joins the columns. Position-wise the null reaches every body
        // position of R2's frontier and flows back into `p`, so both
        // weak and joint acyclicity report a cycle. Atom-wise no single
        // null ever occupies both columns of one `q`-fact, so R2 never
        // fires on invented values and the Skolem chase saturates: MFA
        // certifies what the positional over-approximations cannot.
        let report = analyze(&rules("R1: p(X) -> q(X, Z), q(Z, X). R2: q(Y, Y) -> p(Y)."));
        assert!(!report.weakly_acyclic);
        assert!(!report.jointly_acyclic);
        assert_eq!(report.terminating.certificate(), Some(&Certificate::Mfa));
        assert!(report.certified_core_bts());
    }

    #[test]
    fn evidence_upgrades_inconclusive_verdicts() {
        let mut report = analyze(&rules("R: r(X, Y) -> r(Y, Z)."));
        assert!(!report.certified_core_bts());
        report.attach_evidence(&DynamicEvidence {
            restricted_terminated: false,
            restricted_width: WidthObservation::Plateau(1),
            core_terminated: false,
            core_width: WidthObservation::Climbing,
        });
        // bts was already certified by linearity — untouched.
        assert_eq!(report.bts.certificate(), Some(&Certificate::Linear));
        assert_eq!(
            report.core_bts,
            Verdict::Refuted(Refutation::CoreWidthDiverging)
        );
    }

    #[test]
    fn unobserved_probe_refutes_nothing() {
        // A probe horizon too short to judge must leave the verdicts
        // exactly where the static pass put them — a short profile is
        // the absence of a signal, not a divergence witness.
        let mut report = analyze(&rules("R: r(X, Y) -> r(Y, Z)."));
        let before = report.core_bts.clone();
        report.attach_evidence(&DynamicEvidence::default());
        assert_eq!(report.core_bts, before);
        assert!(!report.core_bts.is_refuted());
    }

    #[test]
    fn display_renders() {
        let report = analyze(&rules("R: r(X, Y) -> r(Y, Z)."));
        let text = report.to_string();
        assert!(text.contains("weakly acyclic:   false"));
        assert!(text.contains("⇒ bts:         certified by linear"));
        assert!(text.contains("mfa-cycle (rule 0"));
    }
}
